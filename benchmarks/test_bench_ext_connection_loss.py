"""Extension — association loss under jamming (paper §4.3).

The paper observes that the continuous jammer caused "connection to
the access point [to be] lost", and that after reactive jamming "only
a short reactive jamming burst is required to disable the wireless
link and force a reset of the client connection".  With beacons and
association tracking enabled, the MAC simulation reproduces the
mechanism: jamming first silences the client (carrier-sense denial /
corrupted data), and a few dB later kills the beacons too, at which
point the client drops its association.
"""

from __future__ import annotations

from repro.core.presets import continuous_jammer, reactive_jammer
from repro.experiments.wifi_jamming import WifiJammingTestbed

SIRS_DB = [40.0, 30.0, 25.0, 20.0, 15.0, 10.0, 5.0]
DURATION_S = 0.3


def _run():
    bed = WifiJammingTestbed(duration_s=DURATION_S, beacons=True)
    results = {}
    for name, personality in (("continuous", continuous_jammer()),
                              ("reactive-0.1ms", reactive_jammer(1e-4))):
        rows = []
        for sir_db in SIRS_DB:
            point = bed.run_point(personality, sir_db)
            rows.append((sir_db, point.report.bandwidth_mbps,
                         point.connection_lost))
        results[name] = rows
    baseline = bed.run_point(None, None)
    return results, baseline


def test_bench_ext_connection_loss(benchmark):
    results, baseline = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nExtension — connection loss under jamming (beacons enabled)")
    print(f"baseline: {baseline.report.bandwidth_mbps:.1f} Mbps, "
          f"association kept: {not baseline.connection_lost}")
    for name, rows in results.items():
        print(f"--- {name} ---")
        print("SIR(dB)     " + "".join(f"{s:>8.0f}" for s, _b, _l in rows))
        print("Mbps        " + "".join(f"{b:>8.1f}" for _s, b, _l in rows))
        print("assoc lost  " + "".join(f"{'yes' if l else 'no':>8}"
                                       for _s, _b, l in rows))

    assert not baseline.connection_lost
    cont = {s: (b, lost) for s, b, lost in results["continuous"]}
    react = {s: (b, lost) for s, b, lost in results["reactive-0.1ms"]}

    # The paper's sequence for the continuous jammer: the link dies
    # first (client carrier-sense denial), the association follows a
    # few dB later once beacons stop getting through.
    assert cont[40.0][0] > 25.0 and not cont[40.0][1]
    dead_sirs = [s for s, (b, _l) in cont.items() if b < 0.5]
    lost_sirs = [s for s, (_b, lost) in cont.items() if lost]
    assert dead_sirs and lost_sirs
    assert max(lost_sirs) <= max(dead_sirs)
    # The reactive jammer also forces the client off the AP once its
    # bursts kill beacons (below the AGC margin at the client).
    assert react[10.0][1]
    assert not react[25.0][1]
