"""Ablation — energy differentiator window length (DESIGN.md).

The hardware uses a 32-sample moving sum.  A shorter window reacts
faster (lower T_en_det) but fluctuates more (noisier detection near
the threshold); a longer window is steadier but slower.  This bench
quantifies the latency/stability trade directly on the block.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.channel.awgn import awgn
from repro.hw.energy_differentiator import EnergyDifferentiator
from repro.hw.trigger import rising_edges

WINDOWS = [8, 16, 32, 64]
N_FRAMES = 200
#: Strong step for the latency measurement (prompt threshold crossing).
LATENCY_SNR_DB = 20.0
#: Marginal step (barely above the 10 dB threshold) for the stability
#: measurement, where shorter windows re-trigger on fluctuations.
MARGINAL_SNR_DB = 12.0
GUARD = 512


def _measure(window: int, snr_db: float, rng) -> dict:
    scale = np.sqrt(units.db_to_linear(snr_db))
    latencies = []
    extra_triggers = 0
    detected = 0
    det = EnergyDifferentiator(threshold_high_db=10.0,
                               threshold_low_db=10.0,
                               window=window, delay=2 * window)
    det.process(awgn(8 * window, 1.0, rng))  # consume cold start
    for _ in range(N_FRAMES):
        block = awgn(GUARD + 1500, 1.0, rng)
        block[GUARD:] += scale * awgn(1500, 1.0, rng)
        high, _low = det.process(block)
        edges = rising_edges(high)
        edges = edges[edges >= GUARD]
        if edges.size:
            detected += 1
            latencies.append(int(edges[0]) - GUARD)
            extra_triggers += edges.size - 1
    return {
        "detection": detected / N_FRAMES,
        "mean_latency_samples": float(np.mean(latencies)) if latencies else float("nan"),
        "worst_latency_samples": max(latencies) if latencies else -1,
        "extra_triggers_per_frame": extra_triggers / N_FRAMES,
    }


def _run():
    results = {}
    rng = np.random.default_rng(11)
    for window in WINDOWS:
        strong = _measure(window, LATENCY_SNR_DB, rng)
        marginal = _measure(window, MARGINAL_SNR_DB, rng)
        results[window] = {
            "detection": strong["detection"],
            "mean_latency_samples": strong["mean_latency_samples"],
            "worst_latency_samples": strong["worst_latency_samples"],
            "extra_triggers_per_frame": marginal["extra_triggers_per_frame"],
        }
    return results


def test_bench_ablation_energy_window(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nAblation — energy differentiator window length")
    print("(latency at a 20 dB step; stability at a marginal 12 dB step)")
    print(f"{'window':>8}{'P(det)':>9}{'mean lat':>10}{'worst lat':>11}"
          f"{'extra trig/frame':>18}")
    for window, r in results.items():
        print(f"{window:>8}{r['detection']:>9.2f}"
              f"{r['mean_latency_samples']:>10.1f}"
              f"{r['worst_latency_samples']:>11}"
              f"{r['extra_triggers_per_frame']:>18.2f}")
    print("T_en_det bound: window samples (32 -> 1.28 us, the paper's value)")

    # Every window detects the strong step reliably.
    for r in results.values():
        assert r["detection"] > 0.99
    # Worst-case latency on a strong rise is bounded by the window
    # length (the paper's T_en_det <= 32 samples claim, generalized).
    for window, r in results.items():
        assert r["worst_latency_samples"] <= window
    # Longer windows never react faster on average...
    latencies = [results[w]["mean_latency_samples"] for w in WINDOWS]
    assert all(a <= b + 1.0 for a, b in zip(latencies, latencies[1:]))
    # ...but they re-trigger less on a marginal signal.
    jitter = [results[w]["extra_triggers_per_frame"] for w in WINDOWS]
    assert jitter[0] > jitter[-1]
