"""Chaos harness — the jammer under injected control/data-plane faults.

Deterministic campaigns (every draw seeded through the fault-plan DSL)
measuring how detection probability, jam coverage, and transmit duty
cycle degrade as faults are injected:

* the PR's acceptance arm: 5% register-write drops + ~1% stream-fault
  sample coverage against the hardened stack must hold full-frame
  detection within 10% relative of the fault-free baseline;
* a bit-flip contrast arm showing what the hardening buys: the same
  plan collapses an unhardened jammer's coverage and duty while the
  hardened one matches the baseline;
* a drop-rate sweep asserting graceful degradation (no cliffs);
* a watchdog arm where uptime-register bit flips try to run the duty
  cycle away and the in-fabric guard bounds it.

Run via the `chaos` marker: ``python -m pytest benchmarks -m chaos``.
"""

from __future__ import annotations

import pytest

from repro.faults import ChaosScenario, FaultPlan, NO_FAULTS, run_scenario
from repro.hw import register_map as regmap
from repro.hw.watchdog import WatchdogConfig

N_FRAMES = 30

#: ~1% of stream samples faulted: overruns cover 40e-6 * 128 and DC
#: spikes 80e-6 * 64 of the timeline each, ~0.5% + ~0.5%.
ACCEPTANCE_STREAM_OVERRUN_RATE = 40
ACCEPTANCE_STREAM_DC_RATE = 80


def _acceptance_plan(seed: int = 42) -> FaultPlan:
    return (FaultPlan(seed=seed)
            .drop_writes(0.05)
            .overruns(ACCEPTANCE_STREAM_OVERRUN_RATE, duration_samples=128)
            .dc_spikes(ACCEPTANCE_STREAM_DC_RATE, duration_samples=64,
                       magnitude=0.1))


def _bitflip_plan(seed: int = 7) -> FaultPlan:
    return FaultPlan(seed=seed).bitflip_writes(
        0.25, addresses={regmap.REG_XCORR_THRESHOLD, regmap.REG_JAM_UPTIME})


@pytest.mark.chaos
def test_bench_chaos_acceptance(benchmark):
    """5% write drops + 1% stream faults: hardened detection holds."""
    def _run():
        baseline = run_scenario(ChaosScenario(
            name="baseline", plan=NO_FAULTS, n_frames=N_FRAMES))
        hardened = run_scenario(ChaosScenario(
            name="hardened", plan=_acceptance_plan(), n_frames=N_FRAMES))
        return baseline, hardened

    baseline, hardened = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nChaos — acceptance arm (5% drops + ~1% stream faults)")
    for r in (baseline, hardened):
        print(f"{r.name:<10} det={r.detection_probability:.3f} "
              f"cov={r.jam_coverage:.3f} duty={r.tx_duty_cycle:.3f} "
              f"ctrl_faults={r.control_faults_injected} "
              f"stream_faults={r.stream_faults_injected}")

    assert baseline.detection_probability == 1.0
    assert baseline.jam_coverage == 1.0
    # Faults actually flowed.
    assert hardened.control_faults_injected > 0
    assert hardened.stream_faults_injected > 0
    # The acceptance criterion: within 10% relative of the baseline.
    assert (hardened.detection_probability
            >= 0.9 * baseline.detection_probability)
    assert hardened.jam_coverage >= 0.9 * baseline.jam_coverage
    # Recovery did its job silently: no chunk was lost, no write failed.
    assert hardened.driver_health["write_failures"] == 0


@pytest.mark.chaos
def test_bench_chaos_bitflip_contrast(benchmark):
    """Bit flips: the unhardened jammer degrades, the hardened doesn't."""
    def _run():
        soft = run_scenario(ChaosScenario(
            name="unhardened", plan=_bitflip_plan(), hardened=False,
            n_frames=N_FRAMES))
        hard = run_scenario(ChaosScenario(
            name="hardened", plan=_bitflip_plan(), n_frames=N_FRAMES))
        return soft, hard

    soft, hard = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nChaos — bit-flip contrast (threshold + uptime registers)")
    for r in (soft, hard):
        print(f"{r.name:<10} det={r.detection_probability:.3f} "
              f"cov={r.jam_coverage:.3f} duty={r.tx_duty_cycle:.3f} "
              f"driver={r.driver_health}")

    # Verified writes catch and repair every flip...
    assert hard.detection_probability == 1.0
    assert hard.jam_coverage == 1.0
    assert hard.driver_health["recovered_writes"] > 0
    # ...while the fire-and-forget driver loses coverage to a
    # corrupted uptime monopolizing the transmit pipeline.
    assert soft.jam_coverage < 0.5
    assert soft.tx_duty_cycle > hard.tx_duty_cycle


@pytest.mark.chaos
def test_bench_chaos_drop_rate_sweep(benchmark):
    """Graceful degradation across write-drop rates: no cliffs."""
    rates = [0.0, 0.05, 0.15, 0.30]

    def _run():
        results = []
        for rate in rates:
            plan = FaultPlan(seed=99).drop_writes(rate) if rate else NO_FAULTS
            results.append(run_scenario(ChaosScenario(
                name=f"drop-{rate:.0%}", plan=plan, n_frames=N_FRAMES)))
        return results

    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nChaos — hardened jammer vs register-write drop rate")
    for r in results:
        print(f"{r.name:<10} det={r.detection_probability:.3f} "
              f"cov={r.jam_coverage:.3f} "
              f"retries={r.driver_health.get('retries', 0)}")

    # Verified writes make drops invisible: detection stays pinned at
    # every rate rather than cliffing once drops beat the rewrites.
    for r in results:
        assert r.detection_probability >= 0.9
        assert r.jam_coverage >= 0.9
    # The retry machinery scales with the drop rate (it is actually on).
    retries = [r.driver_health.get("retries", 0) for r in results]
    assert retries[0] == 0
    assert retries[-1] > retries[1]


@pytest.mark.chaos
def test_bench_chaos_watchdog_duty_bound(benchmark):
    """Uptime-register flips cannot run the duty cycle past the guard."""
    max_duty = 0.4

    def _plan():
        return FaultPlan(seed=11).bitflip_writes(
            0.5, addresses={regmap.REG_JAM_UPTIME, regmap.REG_CONTROL_FLAGS})

    def _run():
        unbounded = run_scenario(ChaosScenario(
            name="no-watchdog", plan=_plan(), hardened=False,
            n_frames=N_FRAMES))
        bounded = run_scenario(ChaosScenario(
            name="watchdog", plan=_plan(), hardened=False, n_frames=N_FRAMES,
            watchdog=WatchdogConfig(max_duty_cycle=max_duty,
                                    duty_window_samples=25_000)))
        return unbounded, bounded

    unbounded, bounded = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nChaos — watchdog duty-cycle guard under uptime bit flips")
    for r in (unbounded, bounded):
        trips = len(r.watchdog_trips)
        print(f"{r.name:<12} duty={r.tx_duty_cycle:.3f} "
              f"det={r.detection_probability:.3f} trips={trips}")

    # Without the guard a flipped high bit in REG_JAM_UPTIME runs away.
    assert unbounded.tx_duty_cycle > max_duty
    # The guard holds the realized duty under the configured bound
    # (sliding-window accounting makes the bound conservative).
    assert bounded.tx_duty_cycle <= max_duty
    assert len(bounded.watchdog_trips) > 0
    # Detection is untouched — the guard gates only the transmit side.
    assert bounded.detection_probability == 1.0
