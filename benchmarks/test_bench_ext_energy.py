"""Extension — the power/energy/stealth accounting of §4.3.

The paper: the 0.1 ms reactive jammer "required 17 dB more
instantaneous power" than the continuous jammer, "however in this
case, the jamming burst only lasted for 0.1 ms", and reactive jammers
"disrupt the wireless networks in a more subtle fashion, and thus are
harder to detect".

This bench finds each personality's kill point (weakest TX power that
still zeroes the iperf link), then integrates transmit energy.  The
quantitative finding sharpens the paper's qualitative one: the
instantaneous-power premium and the duty-cycle saving almost exactly
cancel — mean radiated power is within ~1 dB across all three jammers
— so what reactive jamming actually buys is *stealth* (sub-percent
duty cycle; the paper's AP "always reported an excellent link
condition") and selectivity, not joules.
"""

from __future__ import annotations

from repro.experiments.energy_analysis import energy_comparison

DURATION_S = 0.2


def _run():
    return energy_comparison(duration_s=DURATION_S)


def test_bench_ext_energy_accounting(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nExtension — jammer power/energy/stealth at the kill point")
    print(f"{'personality':<17}{'kill SIR':>9}{'TX power':>10}{'duty':>9}"
          f"{'energy':>11}{'mean power':>12}")
    for p in points:
        print(f"{p.personality:<17}{p.kill_sir_db:>7.1f}dB"
              f"{p.jammer_tx_dbm:>7.1f}dBm{p.duty_cycle:>9.4f}"
              f"{p.energy_joules * 1e6:>9.2f}uJ{p.mean_power_dbm:>9.1f}dBm")
    print("instantaneous-power premium ~ duty-cycle saving: energy parity;")
    print("the reactive jammers' win is stealth (duty < 3 %), as the paper's")
    print("'harder to detect' framing suggests")

    by_name = {p.personality: p for p in points}
    cont = by_name["continuous"]
    long_up = by_name["reactive-0.1ms"]
    short_up = by_name["reactive-0.01ms"]

    # The paper's instantaneous-power ordering, ~17 dB and ~13 dB steps.
    assert long_up.jammer_tx_dbm - cont.jammer_tx_dbm > 10.0
    assert short_up.jammer_tx_dbm - long_up.jammer_tx_dbm > 6.0
    # Duty cycles: always-on vs bursts vs shorter bursts.
    assert cont.duty_cycle == 1.0
    assert long_up.duty_cycle < 0.05
    assert short_up.duty_cycle < long_up.duty_cycle
    # The tradeoff cancels: mean radiated powers within a few dB.
    powers = [p.mean_power_dbm for p in points]
    assert max(powers) - min(powers) < 5.0