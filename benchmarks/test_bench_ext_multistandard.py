"""Extension — multi-standard protocol-aware detection on one device.

The paper's abstract claims applicability "to a wide range of
preamble-based wireless communication schemes" and demonstrates
802.11g and 802.16e.  This bench runs ONE jammer instance against
frames of four standards — 802.11g OFDM, 802.11b DSSS, 802.16e OFDMA,
and the 802.15.4 baseline of Wilhelm et al. — swapping only the
correlator template and threshold over the register bus between runs,
and reports detection rate and jam latency for each.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.channel.combining import Transmission, mix_at_port
from repro.core.coeffs import (
    dsss_preamble_template,
    wifi_short_preamble_template,
    wimax_preamble_template,
    zigbee_preamble_template,
)
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.jammer import ReactiveJammer
from repro.core.presets import reactive_jammer
from repro.phy.wifi.dsss import DSSS_SAMPLE_RATE, build_dsss_ppdu
from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
from repro.phy.wifi.params import WIFI_SAMPLE_RATE
from repro.phy.wimax.frame import build_downlink_frame
from repro.phy.wimax.params import WIMAX_SAMPLE_RATE, WimaxConfig
from repro.phy.zigbee.frame import build_ppdu as build_zigbee_ppdu
from repro.phy.zigbee.params import ZIGBEE_SAMPLE_RATE

NOISE = 1e-4
SNR_DB = 15.0
N_FRAMES = 12
GAP_S = 1.2e-3


def _standard_setups(rng):
    """(name, frame factory, native rate, template, threshold)."""
    wimax_cfg = WimaxConfig()
    return [
        ("802.11g OFDM",
         lambda: build_ppdu(rng.integers(0, 256, 120, dtype=np.uint8)
                            .tobytes(), WifiFrameConfig()),
         WIFI_SAMPLE_RATE, wifi_short_preamble_template(), 25_000),
        ("802.11b DSSS",
         lambda: build_dsss_ppdu(rng.integers(0, 256, 40, dtype=np.uint8)
                                 .tobytes()),
         DSSS_SAMPLE_RATE, dsss_preamble_template(), 12_000),
        ("802.16e OFDMA",
         lambda: build_downlink_frame(wimax_cfg, rng)[:10_000],
         WIMAX_SAMPLE_RATE, wimax_preamble_template(), 9_000),
        ("802.15.4 O-QPSK",
         lambda: build_zigbee_ppdu(rng.integers(0, 256, 40, dtype=np.uint8)
                                   .tobytes()),
         ZIGBEE_SAMPLE_RATE, zigbee_preamble_template(), 25_000),
    ]


def _run():
    rng = np.random.default_rng(4)
    jammer = ReactiveJammer()
    first = True
    results = {}
    for name, factory, rate, template, threshold in _standard_setups(rng):
        transmissions = []
        starts = []
        for k in range(N_FRAMES):
            start = k * GAP_S + 100e-6
            starts.append(start)
            transmissions.append(Transmission(
                factory(), rate, start_time=start,
                power=units.db_to_linear(SNR_DB) * NOISE))
        rx = mix_at_port(transmissions, out_rate=units.BASEBAND_RATE,
                         duration=N_FRAMES * GAP_S, noise_power=NOISE,
                         rng=rng)
        config = DetectionConfig(template=template,
                                 xcorr_threshold=threshold)
        if first:
            jammer.configure(config,
                             JammingEventBuilder().on_correlation(),
                             reactive_jammer(1e-5))
            first = False
        else:
            # Run-time retarget: template + threshold over the bus.
            jammer.driver.set_correlator_template(template)
            jammer.driver.set_xcorr_threshold(threshold)
            jammer.reset()
        report = jammer.run(rx)
        detected = 0
        latencies = []
        for start in starts:
            bursts = [j.start / units.BASEBAND_RATE for j in report.jams
                      if start <= j.start / units.BASEBAND_RATE
                      < start + GAP_S - 100e-6]
            if bursts:
                detected += 1
                latencies.append(min(bursts) - start)
        results[name] = {
            "detection": detected / N_FRAMES,
            "mean_latency_us": float(np.mean(latencies)) * 1e6
            if latencies else float("nan"),
        }
    return results


def test_bench_ext_multistandard(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nExtension — one device, four standards (template swap only)")
    print(f"{'standard':<18}{'P(detect)':>10}{'jam latency':>14}")
    for name, r in results.items():
        print(f"{name:<18}{r['detection']:>10.2f}"
              f"{r['mean_latency_us']:>11.1f} us")

    for name, r in results.items():
        assert r["detection"] >= 0.9, name
    # Detection latency stays inside each standard's preamble.
    assert results["802.11g OFDM"]["mean_latency_us"] < 16.0
    assert results["802.11b DSSS"]["mean_latency_us"] < 144.0
    assert results["802.15.4 O-QPSK"]["mean_latency_us"] < 128.0
