"""Fig. 11 — packet reception ratio vs SIR at the access point.

Same runs as Fig. 10, read out as iperf's loss statistic.  The paper's
PRR cliffs: continuous ~33 dB, reactive 0.1 ms ~16 dB, reactive
0.01 ms ~3 dB, with 100 % PRR when the jammer is off.
"""

from __future__ import annotations

import os

from benchmarks.paper_reference import (
    FIG10_CONTINUOUS_ZERO_SIR,
    FIG10_REACTIVE_001MS_ZERO_SIR,
    FIG10_REACTIVE_01MS_ZERO_SIR,
)
from repro.experiments.wifi_jamming import WifiJammingTestbed

SIRS_DB = [45.0, 35.0, 30.0, 25.0, 20.0, 16.0, 12.0, 8.0, 4.0, 2.0, 0.0]
DURATION_S = 0.25

#: SweepRunner pool size (each grid point seeds itself, so the sweep
#: result is byte-identical for any worker count).
_WORKERS = max(1, min(4, len(os.sched_getaffinity(0))))


def _run():
    bed = WifiJammingTestbed(duration_s=DURATION_S)
    return bed.sweep(sir_values_db=SIRS_DB, workers=_WORKERS)


def test_bench_fig11_packet_reception_ratio(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    series: dict[str, dict[float | None, float]] = {}
    for point in points:
        series.setdefault(point.personality, {})[point.sir_at_ap_db] = \
            point.packet_reception_ratio

    print("\nFig. 11 — packet reception ratio (%) vs SIR at the AP")
    print("SIR(dB)          " + "".join(f"{s:>6.0f}" for s in SIRS_DB))
    for name in ("continuous", "reactive-0.1ms", "reactive-0.01ms"):
        row = "".join(f"{series[name][s] * 100:>6.0f}" for s in SIRS_DB)
        print(f"{name:<17}{row}")
    print(f"jammer off PRR: {series['off'][None]:.2%}")
    print(f"paper zero-PRR SIRs: continuous ~{FIG10_CONTINUOUS_ZERO_SIR:.0f}, "
          f"0.1ms ~{FIG10_REACTIVE_01MS_ZERO_SIR:.0f}, "
          f"0.01ms ~{FIG10_REACTIVE_001MS_ZERO_SIR:.0f} dB")

    assert series["off"][None] > 0.95

    def prr_cliff(name: str) -> float:
        dead = [s for s in SIRS_DB if series[name][s] < 0.02]
        return max(dead) if dead else float("-inf")

    cont = prr_cliff("continuous")
    r01 = prr_cliff("reactive-0.1ms")
    r001 = prr_cliff("reactive-0.01ms")
    assert abs(cont - FIG10_CONTINUOUS_ZERO_SIR) <= 5.0
    assert abs(r01 - FIG10_REACTIVE_01MS_ZERO_SIR) <= 5.0
    assert abs(r001 - FIG10_REACTIVE_001MS_ZERO_SIR) <= 3.0
    assert cont > r01 > r001
    # Above its cliff each reactive jammer leaves the link reliable —
    # the paper's point that reactive jamming is discreet.
    assert series["reactive-0.1ms"][25.0] > 0.9
    assert series["reactive-0.01ms"][8.0] > 0.9
