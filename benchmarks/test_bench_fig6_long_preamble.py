"""Fig. 6 — cross-correlation detection of WiFi long preambles.

Sweeps received SNR for pseudo-frames with a single long preamble and
for complete WiFi frames (two long preambles each), at the paper's two
false-alarm operating points (0.083 and 0.52 triggers/s).
"""

from __future__ import annotations

import os

from benchmarks.paper_reference import FIG6_FULL_PLATEAU, FIG6_SINGLE_PLATEAU
from repro.experiments.detection import long_preamble_curve

SNRS_DB = [-6.0, -3.0, -1.0, 0.0, 1.0, 3.0, 5.0, 8.0, 12.0]
N_FRAMES = 400

#: SweepRunner pool size: results are worker-count-independent, so the
#: sweep runs parallel where cores exist and serial where they don't.
_WORKERS = max(1, min(4, len(os.sched_getaffinity(0))))


def _run():
    return {
        "single fa=0.083": long_preamble_curve(
            SNRS_DB, n_frames=N_FRAMES, fa_per_second=0.083,
            full_frames=False, workers=_WORKERS),
        "single fa=0.52": long_preamble_curve(
            SNRS_DB, n_frames=N_FRAMES, fa_per_second=0.52,
            full_frames=False, workers=_WORKERS),
        "full   fa=0.083": long_preamble_curve(
            SNRS_DB, n_frames=N_FRAMES, fa_per_second=0.083,
            full_frames=True, workers=_WORKERS),
    }


def test_bench_fig6_long_preamble(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nFig. 6 — long-preamble detection probability vs SNR")
    header = "series            " + "".join(f"{s:>7.0f}" for s in SNRS_DB)
    print(header + "   (SNR dB)")
    for name, points in curves.items():
        row = "".join(f"{p.detection_probability:>7.2f}" for p in points)
        print(f"{name:<18}{row}")
    print(f"paper plateaus: single ~{FIG6_SINGLE_PLATEAU:.0%}, "
          f"full frames >={FIG6_FULL_PLATEAU:.0%} above 5 dB "
          "(our ideal front end saturates higher; see EXPERIMENTS.md)")

    single = {p.snr_db: p.detection_probability
              for p in curves["single fa=0.083"]}
    single_loose = {p.snr_db: p.detection_probability
                    for p in curves["single fa=0.52"]}
    full = {p.snr_db: p.detection_probability
            for p in curves["full   fa=0.083"]}

    # Shape checks (the paper's qualitative findings):
    # 1. detection grows with SNR and exceeds the paper's plateau.
    assert single[-6.0] < 0.1
    assert single[5.0] > FIG6_SINGLE_PLATEAU
    assert full[5.0] > FIG6_FULL_PLATEAU
    # 2. full frames (two preambles) beat single preambles at the knee.
    assert full[-1.0] >= single[-1.0]
    # 3. the lower false-alarm rate costs detection at the knee.
    assert single[-1.0] <= single_loose[-1.0]
