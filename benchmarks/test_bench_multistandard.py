"""Stacked multi-standard correlator bank vs serial single-bank runs.

The tentpole claim of the stacked-bank kernel: detecting K protocols
takes ONE pass over the received trace — one shared sign plane, one
dual-GEMM against the block-Toeplitz stack of all K coefficient banks
— instead of K full runs of the single-bank correlator.  All the
per-run work that does not scale with K (DDC, IQ16 quantization, sign
slicing, energy detection, per-chunk Python dispatch) is paid once
instead of four times, so the stacked pass beats four serial runs
even though it does the same correlation FLOPs.

The bench mixes 12 frames each of 802.11g OFDM, 802.11b DSSS,
802.16e OFDMA, and 802.15.4 O-QPSK into one 69 ms airtime trace, then
measures:

* **serial** — four :class:`repro.core.jammer.ReactiveJammer` runs,
  one per protocol template (the pre-stacked workflow);
* **stacked** — one jammer configured with four
  :class:`repro.core.detection.ProtocolBank` entries, one run.

Identity is gated before speed: every bank's detection-time list must
be byte-identical to its serial counterpart, and each protocol must
actually fire on the mixed trace.  The wall-clock floor is
``MIN_STACKED_SPEEDUP``; the record lands in
``BENCH_multistandard.json`` at the repository root (a CI artifact).

Programming (template quantization, register writes) happens outside
the timed region: the comparison is detection passes over the trace,
not host configuration, which both workflows pay once up front.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import units
from repro.channel.combining import Transmission, mix_at_port
from repro.core.coeffs import (
    dsss_preamble_template,
    wifi_short_preamble_template,
    wimax_preamble_template,
    zigbee_preamble_template,
)
from repro.core.detection import DetectionConfig, ProtocolBank
from repro.core.events import JammingEventBuilder
from repro.core.jammer import ReactiveJammer
from repro.core.presets import reactive_jammer
from repro.phy.wifi.dsss import DSSS_SAMPLE_RATE, build_dsss_ppdu
from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
from repro.phy.wifi.params import WIFI_SAMPLE_RATE
from repro.phy.wimax.frame import build_downlink_frame
from repro.phy.wimax.params import WIMAX_SAMPLE_RATE, WimaxConfig
from repro.phy.zigbee.frame import build_ppdu as build_zigbee_ppdu
from repro.phy.zigbee.params import ZIGBEE_SAMPLE_RATE

#: Wall-clock floor: one stacked pass vs four serial single-bank runs.
MIN_STACKED_SPEEDUP = 2.0

NOISE = 1e-4
SNR_DB = 15.0
N_FRAMES = 12
GAP_S = 1.2e-3
#: Small enough that per-chunk fixed cost is a visible fraction of a
#: run — the realistic streaming regime the stacked pass amortizes.
CHUNK = 4096
REPEATS = 2


def _standard_setups(rng):
    """(protocol, frame factory, native rate, template, threshold)."""
    wimax_cfg = WimaxConfig()
    # DSSS and ZigBee payloads use the same spreading sequences as
    # their preambles, so every payload symbol re-crosses the
    # threshold; short payloads keep the event streams representative
    # without drowning the run in per-event bookkeeping.
    return [
        ("wifi",
         lambda: build_ppdu(rng.integers(0, 256, 120, dtype=np.uint8)
                            .tobytes(), WifiFrameConfig()),
         WIFI_SAMPLE_RATE, wifi_short_preamble_template(), 12_000),
        ("dsss",
         lambda: build_dsss_ppdu(rng.integers(0, 256, 4, dtype=np.uint8)
                                 .tobytes()),
         DSSS_SAMPLE_RATE, dsss_preamble_template(), 13_000),
        ("wimax",
         lambda: build_downlink_frame(wimax_cfg, rng)[:10_000],
         WIMAX_SAMPLE_RATE, wimax_preamble_template(), 9_000),
        ("zigbee",
         lambda: build_zigbee_ppdu(rng.integers(0, 256, 4, dtype=np.uint8)
                                   .tobytes()),
         ZIGBEE_SAMPLE_RATE, zigbee_preamble_template(), 42_000),
    ]


def _mixed_trace(rng, setups):
    """Interleaved frames of all four standards on one timeline."""
    transmissions = []
    slot = 0
    for _ in range(N_FRAMES):
        for _name, factory, rate, _template, _threshold in setups:
            transmissions.append(Transmission(
                factory(), rate, start_time=slot * GAP_S + 100e-6,
                power=units.db_to_linear(SNR_DB) * NOISE))
            slot += 1
    return mix_at_port(transmissions, out_rate=units.BASEBAND_RATE,
                       duration=slot * GAP_S, noise_power=NOISE, rng=rng)


def _best_of(repeats, fn):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter_ns()
        result = fn()
        elapsed = time.perf_counter_ns() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.mark.perf
def test_bench_stacked_bank_vs_serial(multistandard_record):
    rng = np.random.default_rng(4)
    setups = _standard_setups(rng)
    rx = _mixed_trace(rng, setups)
    events = JammingEventBuilder().on_correlation()
    personality = reactive_jammer(1e-5)

    # Program every jammer up front; the timed region is detection
    # passes only.  reset() restores the data path (clock, histories,
    # trigger carries) between repeats without touching registers.
    serial_jammers = []
    for _name, _factory, _rate, template, threshold in setups:
        jammer = ReactiveJammer()
        jammer.configure(DetectionConfig(template=template,
                                         xcorr_threshold=threshold),
                         events, personality)
        serial_jammers.append(jammer)
    stacked_jammer = ReactiveJammer()
    stacked_jammer.configure(
        DetectionConfig(banks=tuple(
            ProtocolBank(name, template, threshold)
            for name, _factory, _rate, template, threshold in setups)),
        events, personality)

    def one_run(jammer):
        jammer.reset()
        return jammer.run(rx, chunk_size=CHUNK)

    serial_ns = 0
    serial_times = {}
    for (name, *_rest), jammer in zip(setups, serial_jammers):
        elapsed, report = _best_of(REPEATS, lambda j=jammer: one_run(j))
        serial_ns += elapsed
        serial_times[name] = [d.time for d in report.detections
                              if d.source.name == "XCORR"]
    stacked_ns, stacked_report = _best_of(
        REPEATS, lambda: one_run(stacked_jammer))
    stacked_times = {
        name: [d.time for d in stacked_report.detections
               if d.protocol == name]
        for name, *_rest in setups
    }

    identical_counts = {
        name: serial_times[name] == stacked_times[name]
        for name in serial_times
    }
    speedup = serial_ns / stacked_ns
    record = {
        "samples": int(rx.size),
        "chunk_size": CHUNK,
        "serial_ns": serial_ns,
        "stacked_ns": stacked_ns,
        "speedup": speedup,
        "min_speedup": MIN_STACKED_SPEEDUP,
        "detections": {name: len(times)
                       for name, times in stacked_times.items()},
        "identical_counts": all(identical_counts.values()),
    }
    multistandard_record["stacked_bank_vs_serial"] = record

    print(f"\nstacked bank: 4 serial runs {serial_ns / 1e6:.1f} ms, "
          f"one stacked pass {stacked_ns / 1e6:.1f} ms "
          f"-> {speedup:.2f}x (floor {MIN_STACKED_SPEEDUP:.1f}x)")
    for name, times in stacked_times.items():
        print(f"  {name:<8}{len(times):>6} detections  "
              f"identical={identical_counts[name]}")

    # Identity gates before speed: a fast-but-wrong stacked pass must
    # fail loudly, and every protocol must actually fire on the trace.
    assert all(identical_counts.values()), identical_counts
    for name, times in stacked_times.items():
        assert times, f"protocol {name} never detected on the mixed trace"
    assert speedup >= MIN_STACKED_SPEEDUP, (
        f"stacked pass speedup {speedup:.2f}x under the "
        f"{MIN_STACKED_SPEEDUP:.1f}x floor"
    )
