"""Paper-reported reference values, used by the benches for the
side-by-side "paper vs measured" printouts recorded in EXPERIMENTS.md.
"""

# §3.1 timeline (seconds).
FIG5_TIMELINE = {
    "T_en_det": 1.28e-6,
    "T_xcorr_det": 2.56e-6,
    "T_init": 80e-9,
    "T_resp(energy)": 1.36e-6,
    "T_resp(xcorr)": 2.64e-6,
}

# Fig. 6: long preamble, FA 0.083/s. "slightly above 50 % for SNR over
# 5 dB" (single preamble), "over 75 % for SNR above 5 dB" (full frames).
FIG6_SINGLE_PLATEAU = 0.5
FIG6_FULL_PLATEAU = 0.75

# Fig. 7: short preambles, FA 0.059/s: "over 90 % at -3 dB, over 99 %
# above 3 dB".
FIG7_MINUS3DB = 0.90
FIG7_3DB = 0.99

# Fig. 8: energy differentiator at 10 dB threshold: no detection below
# -3 dB, multiple detections/frame between -3 and 8 dB, exactly one
# per frame above 10 dB.
FIG8_SINGLE_DETECTION_SNR = 10.0

# Table 1 insertion losses (dB), (input, output), None = isolated.
TABLE1 = {
    (1, 2): -51.0, (1, 3): -25.2, (1, 4): -38.4, (1, 5): -39.3,
    (2, 1): -51.0, (2, 3): -31.7, (2, 4): -32.0, (2, 5): -32.8,
    (3, 1): -25.2, (3, 2): -31.7, (3, 4): -19.1, (3, 5): -19.9,
    (4, 1): -38.4, (4, 2): -32.0, (4, 3): -19.1, (4, 5): None,
    (5, 1): -39.2, (5, 2): -32.8, (5, 3): -19.8, (5, 4): None,
}

# Figs. 10/11: SIR (dB at the AP) where each jammer drives the link to
# zero bandwidth / zero PRR, plus the unjammed ceiling.
FIG10_MAX_BANDWIDTH_MBPS = 29.0
FIG10_CONTINUOUS_ZERO_SIR = 33.85
FIG10_REACTIVE_01MS_ZERO_SIR = 15.94
FIG10_REACTIVE_001MS_ZERO_SIR = 2.79
FIG10_REACTIVE_01MS_HALF_SIR = 33.85  # "reduced bandwidth by half"

# Fig. 12: xcorr-only misses ~2/3 of WiMAX frames; combined = 100 %.
FIG12_XCORR_MISDETECTION = 2.0 / 3.0
FIG12_COMBINED_DETECTION = 1.0
