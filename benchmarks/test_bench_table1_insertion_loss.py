"""Table 1 — insertion losses of the 5-port interconnect network.

Re-measures the network model's port-to-port losses with the VNA-style
probe routine and prints the paper's table next to the measurement.
"""

from __future__ import annotations

import pytest

from benchmarks.paper_reference import TABLE1
from repro.experiments.table1 import format_table, measure_insertion_losses


def test_bench_table1_insertion_loss(benchmark):
    measured = benchmark.pedantic(measure_insertion_losses,
                                  rounds=3, iterations=1)

    print("\nTable 1 — measured insertion losses (dB)")
    print(format_table(measured))

    for (src, dst), paper_loss in TABLE1.items():
        ours = measured[(src, dst)]
        if paper_loss is None:
            assert ours is None, f"ports {src}->{dst} should be isolated"
        else:
            assert ours == pytest.approx(paper_loss, abs=0.05), \
                f"ports {src}->{dst}"
