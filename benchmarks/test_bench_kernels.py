"""Kernel perf benchmarks (CI perf-smoke job).

Measures the fused/batched :mod:`repro.kernels` datapath against a
faithful replica of the seed model — the four-pass ``np.correlate``
streaming correlator and the per-frame trial loop it powered — and
enforces the speedups on top of byte-identity:

* **fused streaming metric** — the block-Toeplitz GEMM kernel vs the
  seed's four correlation passes on large noise chunks, floor
  ``MIN_FUSED_SPEEDUP``;
* **batched trial engine** — the chained batch kernel running a full
  Fig. 6 (full-frame long preamble) trial vs the seed streaming loop
  over the same frames, floor ``MIN_BATCHED_SPEEDUP``;
* **numba parity** — when the optional JIT backend is importable it
  must match the numpy reference byte-for-byte and not be slower
  (skipped otherwise).

Identity is asserted unconditionally; every record lands in
``BENCH_kernels.json`` at the repository root (a CI artifact).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.core.coeffs import wifi_long_preamble_template
from repro.experiments.detection import (
    _CurveTrialSpec,
    _count_frames_looped,
    _xcorr_trial,
    threshold_for_false_alarm_rate,
)
from repro.hw.cross_correlator import CrossCorrelator, quantize_coefficients
from repro.kernels import BackendUnavailable, get_backend, prepare_coefficients

#: Wall-clock floor for the fused metric vs the seed's four passes.
MIN_FUSED_SPEEDUP = 2.0

#: Wall-clock floor for the batched trial vs the seed streaming loop.
MIN_BATCHED_SPEEDUP = 3.0

#: Fig. 6 workload: full WiFi frames, the paper's headline curve.
TRIAL_FRAMES = 100
TRIAL_SNR_DB = 0.0
TRIAL_SEED = 20140818


class _SeedCorrelator:
    """The seed model's correlator datapath, kept verbatim as the
    benchmark baseline (four ``np.correlate`` passes per chunk over an
    int64 [history | chunk] window)."""

    def __init__(self, coeffs_i, coeffs_q, threshold):
        self._coeffs_i = np.asarray(coeffs_i, dtype=np.int64)
        self._coeffs_q = np.asarray(coeffs_q, dtype=np.int64)
        self._threshold = int(threshold)
        history = self._coeffs_i.size - 1
        self._history_i = np.zeros(history, dtype=np.int64)
        self._history_q = np.zeros(history, dtype=np.int64)

    def metric(self, samples):
        samples = np.asarray(samples)
        sign_i = np.where(np.real(samples) < 0, -1, 1).astype(np.int64)
        sign_q = np.where(np.imag(samples) < 0, -1, 1).astype(np.int64)
        full_i = np.concatenate([self._history_i, sign_i])
        full_q = np.concatenate([self._history_q, sign_q])
        corr_re = (np.correlate(full_i, self._coeffs_i, mode="valid")
                   + np.correlate(full_q, self._coeffs_q, mode="valid"))
        corr_im = (np.correlate(full_q, self._coeffs_i, mode="valid")
                   - np.correlate(full_i, self._coeffs_q, mode="valid"))
        self._history_i = full_i[samples.size:]
        self._history_q = full_q[samples.size:]
        return corr_re ** 2 + corr_im ** 2

    def process(self, samples):
        return self.metric(samples) > self._threshold


def _paper_bank():
    ci, cq = quantize_coefficients(wifi_long_preamble_template())
    threshold = threshold_for_false_alarm_rate(ci, cq, 0.083)
    return ci, cq, threshold


def _best_of(repeats, fn):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter_ns()
        result = fn()
        elapsed = time.perf_counter_ns() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.mark.perf
def test_bench_fused_metric_vs_seed(kernels_record):
    ci, cq, threshold = _paper_bank()
    rng = np.random.default_rng(11)
    chunks = [awgn(1 << 15, 1.0, rng) for _ in range(8)]

    def run_seed():
        seed = _SeedCorrelator(ci, cq, threshold)
        return [seed.metric(chunk) for chunk in chunks]

    def run_fused():
        fused = CrossCorrelator(ci, cq, threshold=threshold)
        return [fused.metric(chunk) for chunk in chunks]

    run_seed(), run_fused()  # warm allocators and BLAS
    seed_ns, seed_out = _best_of(3, run_seed)
    fused_ns, fused_out = _best_of(3, run_fused)

    for expected, got in zip(seed_out, fused_out):
        np.testing.assert_array_equal(got, expected)

    speedup = seed_ns / fused_ns
    samples = sum(chunk.size for chunk in chunks)
    print(f"\nKernels — fused metric ({samples} samples): "
          f"seed {seed_ns / 1e6:.1f} ms, fused {fused_ns / 1e6:.1f} ms "
          f"-> {speedup:.2f}x")
    kernels_record["fused_metric_vs_seed"] = {
        "samples": samples,
        "backend": get_backend().name,
        "seed_ns": seed_ns,
        "fused_ns": fused_ns,
        "speedup": speedup,
        "byte_identical": True,
        "min_speedup": MIN_FUSED_SPEEDUP,
    }
    assert speedup >= MIN_FUSED_SPEEDUP, (
        f"fused metric is only {speedup:.2f}x faster than the seed "
        f"four-pass path (floor {MIN_FUSED_SPEEDUP}x)"
    )


@pytest.mark.perf
def test_bench_batched_trial_vs_seed_loop(kernels_record):
    ci, cq, threshold = _paper_bank()
    spec = _CurveTrialSpec(frame_kind="full", snr_db=TRIAL_SNR_DB,
                           n_frames=TRIAL_FRAMES, frame_seed=TRIAL_SEED,
                           coeffs_i=ci, coeffs_q=cq, threshold=threshold)

    def run_seed_loop():
        seed = _SeedCorrelator(ci, cq, threshold)
        return _count_frames_looped(spec, seed.process,
                                    np.random.default_rng(TRIAL_SEED))

    def run_batched():
        return _xcorr_trial(spec, np.random.default_rng(TRIAL_SEED))

    run_seed_loop(), run_batched()  # warm the frame-arrival cache
    seed_ns, seed_counts = _best_of(5, run_seed_loop)
    batched_ns, batched_counts = _best_of(5, run_batched)

    assert batched_counts == seed_counts, \
        "batched trial must reproduce the seed loop's counts exactly"

    speedup = seed_ns / batched_ns
    print(f"\nKernels — Fig. 6 trial ({TRIAL_FRAMES} full frames): "
          f"seed loop {seed_ns / 1e6:.1f} ms, "
          f"batched {batched_ns / 1e6:.1f} ms -> {speedup:.2f}x")
    kernels_record["batched_trial_vs_seed_loop"] = {
        "n_frames": TRIAL_FRAMES,
        "snr_db": TRIAL_SNR_DB,
        "backend": get_backend().name,
        "seed_ns": seed_ns,
        "batched_ns": batched_ns,
        "speedup": speedup,
        "counts": list(batched_counts),
        "identical_counts": True,
        "min_speedup": MIN_BATCHED_SPEEDUP,
    }
    assert speedup >= MIN_BATCHED_SPEEDUP, (
        f"batched trial is only {speedup:.2f}x faster than the seed "
        f"streaming loop (floor {MIN_BATCHED_SPEEDUP}x)"
    )


@pytest.mark.perf
def test_bench_numba_backend_vs_numpy(kernels_record):
    try:
        numba = get_backend("numba")
    except BackendUnavailable:
        pytest.skip("numba is not installed")
    numpy_ref = get_backend("numpy")

    ci, cq, _threshold = _paper_bank()
    prepared = prepare_coefficients(ci, cq)
    rng = np.random.default_rng(13)
    pairs = prepared.history_pairs
    plane = rng.choice(np.array([-1, 1], dtype=np.int8),
                       size=2 * (pairs + (1 << 16)))

    numba.xcorr_metric(plane, prepared)  # JIT warm-up compile
    numpy_ns, ref_out = _best_of(5, lambda: numpy_ref.xcorr_metric(
        plane, prepared))
    numba_ns, jit_out = _best_of(5, lambda: numba.xcorr_metric(
        plane, prepared))

    np.testing.assert_array_equal(jit_out, ref_out)

    speedup = numpy_ns / numba_ns
    print(f"\nKernels — numba backend: numpy {numpy_ns / 1e6:.2f} ms, "
          f"numba {numba_ns / 1e6:.2f} ms -> {speedup:.2f}x")
    kernels_record["numba_vs_numpy"] = {
        "samples": plane.size // 2 - pairs,
        "numpy_ns": numpy_ns,
        "numba_ns": numba_ns,
        "speedup": speedup,
        "byte_identical": True,
    }
    assert numba_ns <= numpy_ns, (
        f"numba backend is slower than the numpy reference "
        f"({numba_ns / 1e6:.2f} ms vs {numpy_ns / 1e6:.2f} ms)"
    )
