"""Defense-tournament benchmark — detection quality and determinism.

The acceptance contract for :mod:`repro.defense` (see
docs/defense.md), measured on canned Fig. 10-style scenarios:

* **detection floor** — on the deterministic always-jam policy the ML
  detector reaches AUC >= 0.9 on both the reactive and the constant
  scenario, and the rule-based baseline stays a usable detector
  (AUC >= 0.75) rather than a coin flip;
* **detectability tradeoff** — the randomized ``p=0.5`` policy's AUC
  is *strictly below* the always-jam AUC for both detectors (the
  An & Weber effect the subsystem exists to measure), and the ML
  detector stays at or above the rule-based baseline on the
  randomized reactive scenario;
* **byte-identity** — the full tournament JSON is identical between
  ``workers=1`` and ``workers=2`` runs of the same seed.

Results land in ``BENCH_defense.json`` via the session fixture; the
CI ``perf-smoke`` job uploads it as an artifact.  Run via the ``perf``
marker: ``python -m pytest benchmarks -m perf``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.defense import (
    ALWAYS_JAM,
    DefenseScenario,
    randomized_policy,
    run_tournament,
)

SEED = 7
N_TRIALS = 4
POLICIES = [ALWAYS_JAM, randomized_policy(0.5), randomized_policy(0.1)]


@pytest.mark.perf
def test_bench_detection_quality(defense_record):
    """AUC floors, the p=0.5 detectability drop, and byte-identity."""
    t0 = time.perf_counter()
    reactive = run_tournament(policies=POLICIES,
                              scenario=DefenseScenario(),
                              n_trials=N_TRIALS, seed=SEED, workers=1)
    reactive_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    constant = run_tournament(policies=[ALWAYS_JAM],
                              scenario=DefenseScenario(kind="constant"),
                              n_trials=N_TRIALS, seed=SEED)
    constant_s = time.perf_counter() - t0

    # -- detection floors on the deterministic jammer ------------------
    ml_reactive = reactive.auc_for("always", "logistic")
    rule_reactive = reactive.auc_for("always", "xu-rule")
    ml_constant = constant.auc_for("always", "logistic")
    rule_constant = constant.auc_for("always", "xu-rule")
    assert ml_reactive >= 0.9
    assert ml_constant >= 0.9
    assert rule_reactive >= 0.75
    assert rule_constant >= 0.75

    # -- the detectability tradeoff ------------------------------------
    ml_half = reactive.auc_for("p0.5", "logistic")
    rule_half = reactive.auc_for("p0.5", "xu-rule")
    assert ml_half < ml_reactive
    assert rule_half < rule_reactive
    # Degradation continues as p falls further.
    assert reactive.auc_for("p0.1", "logistic") < ml_half
    assert reactive.auc_for("p0.1", "xu-rule") < rule_half
    # The ML model dominates the baseline where randomization bites.
    assert ml_half > rule_half

    # -- byte-identity across worker counts ----------------------------
    t0 = time.perf_counter()
    parallel = run_tournament(policies=POLICIES,
                              scenario=DefenseScenario(),
                              n_trials=N_TRIALS, seed=SEED, workers=2)
    parallel_s = time.perf_counter() - t0
    serial_json = json.dumps(reactive.to_dict(), sort_keys=True)
    assert serial_json == json.dumps(parallel.to_dict(), sort_keys=True)

    defense_record["tournament"] = {
        "seed": SEED,
        "n_trials": N_TRIALS,
        "reactive_s": round(reactive_s, 3),
        "constant_s": round(constant_s, 3),
        "parallel_s": round(parallel_s, 3),
        "byte_identical_workers": True,
        "auc": {
            "reactive": {cell.policy + "/" + cell.detector:
                         round(cell.auc, 4) for cell in reactive.cells},
            "constant": {cell.policy + "/" + cell.detector:
                         round(cell.auc, 4) for cell in constant.cells},
        },
        "efficiency_curve": [
            {key: (round(value, 4) if isinstance(value, float) else value)
             for key, value in row.items()}
            for row in reactive.curve_for("logistic")
        ],
    }
