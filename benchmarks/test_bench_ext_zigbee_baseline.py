"""Extension — the 802.15.4 baseline (Wilhelm et al., WiSec 2011).

The paper's related work: "only a single study, by Wilhelm et al., was
found to perform reactive jamming using SDRs on standard-compliant
networks in real time ... capable of operating in low-rate,
Zigbee-based 802.15.4 networks.  The primary contribution of our paper
is a reactive jamming platform with significantly faster RF response
time."

This bench runs the framework against 802.15.4 traffic (the baseline's
scenario) and prints the reaction-margin table across all three
standards, quantifying why the low-rate case is easy and what the
faster response buys.
"""

from __future__ import annotations

from repro.experiments.zigbee_jamming import (
    response_margin_table,
    run_experiment,
)


def _run():
    return run_experiment(n_frames=12), response_margin_table()


def test_bench_ext_zigbee_baseline(benchmark):
    result, margins = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nExtension — 802.15.4 reactive jamming (the Wilhelm et al. baseline)")
    print(f"frames detected            : {result.detection_rate:.0%}")
    print(f"jammed before the SFD      : {result.pre_sfd_jam_rate:.0%}")
    print(f"mean pre-SFD margin        : "
          f"{result.mean_response_margin_s * 1e6:.1f} us")
    print("\nreaction margin (sync structure duration - 2.64 us response):")
    for name, margin in margins.items():
        print(f"  {name:<22}{margin * 1e6:>9.1f} us")

    # The baseline scenario is trivially jammed by this platform.
    assert result.detection_rate == 1.0
    assert result.pre_sfd_jam_rate == 1.0
    # The margins quantify the paper's motivation: low-rate 802.15.4
    # leaves ~10x the reaction margin of 802.11g.
    assert margins["802.15.4 (250 kb/s)"] > 8 * margins["802.11g (54 Mb/s)"]
    assert all(m > 0 for m in margins.values())
