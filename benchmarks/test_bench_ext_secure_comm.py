"""Extension — jamming-based secure communication (paper §1).

The paper anticipates the platform being used "to prototype several
classes of jamming-based secure communication schemes" and cites iJam
(Gollakota & Katabi) and ally-friendly jamming (Shen et al.).  This
bench runs both on the framework and reports the security metric each
scheme lives on:

* iJam: legitimate-receiver BER vs eavesdropper BER, plus the dummy
  padding required — which the paper notes must cover the receiver's
  "decoding and jamming response delays" and which this framework's
  2.64 us response compresses to under 4 us;
* friendly jamming: authorized vs unauthorized BER and the achieved
  cancellation depth of the key-seeded jamming signal.
"""

from __future__ import annotations

import numpy as np

from repro.apps.friendly_jamming import FriendlyJammingLink
from repro.apps.ijam import IjamLink


def _run():
    rng = np.random.default_rng(21)
    ijam = IjamLink()
    ijam_bits = rng.integers(
        0, 2, 48 * ijam.modulation.bits_per_symbol * 12).astype(np.uint8)
    ijam_result = ijam.run(ijam_bits, rng)

    friendly = FriendlyJammingLink()
    fj_bits = rng.integers(
        0, 2, 48 * friendly.modulation.bits_per_symbol * 16).astype(np.uint8)
    fj_result = friendly.run(fj_bits, rng)
    return ijam_result, fj_result


def test_bench_ext_secure_communication(benchmark):
    ijam, friendly = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nExtension — jamming-based secure communication schemes")
    print("iJam (receiver self-jams one copy of each repeated sample):")
    print(f"  legitimate receiver BER : {ijam.receiver_ber:8.4f}")
    print(f"  eavesdropper BER        : {ijam.eavesdropper_ber:8.4f}")
    print(f"  required dummy padding  : {ijam.padding_s * 1e6:8.2f} us "
          "(covers the 2.64 us jam response + margin)")
    print("friendly jamming (key-seeded continuous WGN):")
    print(f"  authorized BER          : {friendly.authorized_ber:8.4f}")
    print(f"  unauthorized BER        : {friendly.unauthorized_ber:8.4f}")
    print(f"  jam cancellation depth  : {friendly.residual_jam_db:8.1f} dB")

    # iJam: secrecy without hurting the legitimate link.
    assert ijam.receiver_ber == 0.0
    assert ijam.eavesdropper_ber > 0.05
    assert ijam.padding_s < 5e-6
    # Friendly jamming: the key separates the two populations.
    assert friendly.authorized_ber < 0.01
    assert friendly.unauthorized_ber > 0.1
    assert friendly.residual_jam_db < -20.0
