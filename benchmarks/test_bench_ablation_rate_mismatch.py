"""Ablation — the 20/25 MSPS sampling-rate mismatch (DESIGN.md).

The paper blames its reduced long-preamble detection on "the sampling
rate mismatch between the correlator and the RF signal".  This bench
quantifies the effect by comparing three template choices against the
same received frames:

* **resampled**: the code converted to 25 MSPS and truncated to the
  64-sample window (our default, the mismatch-aware host),
* **native**: the 64 code samples at 20 MSPS loaded verbatim, so the
  coefficient grid drifts 20 % per sample against the signal (the
  worst-case naive host),
* and the same comparison for the short-preamble template, whose short
  cyclic code tolerates the mismatch.
"""

from __future__ import annotations

import numpy as np

from repro.core.coeffs import (
    wifi_long_preamble_template,
    wifi_short_preamble_template,
)
from repro.experiments.detection import _detection_curve

SNRS_DB = [0.0, 3.0, 6.0, 12.0]
N_FRAMES = 250


def _run():
    out = {}
    for label, template, kind in (
        ("long/resampled", wifi_long_preamble_template(True), "single_long"),
        ("long/native", wifi_long_preamble_template(False), "single_long"),
        ("short/resampled", wifi_short_preamble_template(True), "full"),
        ("short/native", wifi_short_preamble_template(False), "full"),
    ):
        out[label] = _detection_curve(template, kind, SNRS_DB, N_FRAMES,
                                      fa_per_second=0.083, seed=99)
    return out


def test_bench_ablation_rate_mismatch(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nAblation — correlator template vs the 20/25 MSPS mismatch")
    print("template            " + "".join(f"{s:>7.0f}" for s in SNRS_DB)
          + "   (SNR dB)")
    for label, points in curves.items():
        row = "".join(f"{p.detection_probability:>7.2f}" for p in points)
        print(f"{label:<20}{row}")

    final = {label: points[-1].detection_probability
             for label, points in curves.items()}
    knee = {label: points[0].detection_probability
            for label, points in curves.items()}
    # The mismatch-aware (resampled) templates detect essentially
    # everything at high SNR; the naive native-rate templates collapse
    # completely — the full-strength version of the impairment the
    # paper describes.
    assert final["long/resampled"] > 0.9
    assert final["short/resampled"] > 0.9
    assert final["long/native"] < 0.2
    assert final["short/native"] < 0.2
    # At the knee the short template's repeating code out-detects the
    # truncated long code — the paper's Fig. 7 > Fig. 6 ordering.
    assert knee["short/resampled"] > knee["long/resampled"]
