"""Fig. 7 — cross-correlation detection of full WiFi frames using the
short-preamble template (FA 0.059/s).

The ten-fold cyclic repetition of the 0.8 us short code makes this the
jammer's strongest WiFi detection mode: the paper reports >90 % at
-3 dB SNR and >99 % above 3 dB.
"""

from __future__ import annotations

import os

from benchmarks.paper_reference import FIG7_3DB, FIG7_MINUS3DB
from repro.experiments.detection import short_preamble_curve

SNRS_DB = [-9.0, -6.0, -3.0, 0.0, 3.0, 6.0, 9.0]
N_FRAMES = 400

#: SweepRunner pool size (results are worker-count-independent).
_WORKERS = max(1, min(4, len(os.sched_getaffinity(0))))


def _run():
    return short_preamble_curve(SNRS_DB, n_frames=N_FRAMES,
                                fa_per_second=0.059, workers=_WORKERS)


def test_bench_fig7_short_preamble(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nFig. 7 — short-preamble detection of full WiFi frames")
    print("SNR(dB)  " + "".join(f"{p.snr_db:>7.0f}" for p in points))
    print("P(detect)" + "".join(
        f"{p.detection_probability:>7.2f}" for p in points))
    print(f"paper: >{FIG7_MINUS3DB:.0%} at -3 dB, >{FIG7_3DB:.0%} above 3 dB")

    by_snr = {p.snr_db: p.detection_probability for p in points}
    # Monotone ramp.
    probs = [p.detection_probability for p in points]
    assert all(a <= b + 0.05 for a, b in zip(probs, probs[1:]))
    # The paper's operating claims (our clean front end meets them with
    # margin at 0/3 dB; the -3 dB point is within a few dB of the knee).
    assert by_snr[3.0] > FIG7_3DB
    assert by_snr[0.0] > FIG7_MINUS3DB
    # Far below the noise floor nothing triggers.
    assert by_snr[-9.0] < 0.2
