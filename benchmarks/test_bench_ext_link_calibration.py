"""Extension — cross-validating the MAC-plane link model.

Runs real frames + real jam bursts through the real receiver and
compares frame-survival against the semi-analytic model that powers
the Figs. 10/11 simulation.  Two properties are asserted:

1. **decision agreement where pure physics decides** — clean frames
   survive and overwhelming bursts kill on both planes;
2. **conservatism** — the model never reports *more* link health than
   the waveform measures.  Its two pessimisms are deliberate and
   documented: the hard-decision union bound gives away the soft
   Viterbi decoder's ~2 dB, and the AGC-capture margin models consumer
   receivers that the ideal software receiver does not emulate.
"""

from __future__ import annotations

from repro.experiments.link_calibration import run_calibration

N_TRIALS = 25


def _run():
    return run_calibration(n_trials=N_TRIALS)


def test_bench_ext_link_calibration(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nExtension — MAC-plane link model vs waveform-level receiver")
    print(f"{'rate':<9}{'SIR':>7}{'burst':>16}{'model':>8}{'measured':>10}"
          f"{'agree':>7}")
    for p in points:
        burst = f"{p.burst_start_us:.0f}+{p.burst_len_us:.0f}us"
        print(f"{p.rate.name:<9}{p.sir_db:>+7.1f}{burst:>16}"
              f"{p.model_success:>8.2f}{p.measured_success:>10.2f}"
              f"{'yes' if p.decisions_agree else 'NO':>7}")
    print("model pessimism at the two 'NO' rows is deliberate: hard-decision")
    print("union bound vs the soft Viterbi decoder, and the AGC-capture")
    print("margin calibrated for consumer receivers (see EXPERIMENTS.md)")

    # Physics-dominated points agree on both planes.
    for p in points:
        trivially_clean = p.model_success > 0.9
        trivially_dead = p.model_success < 0.1 and p.sir_db <= 0.0
        if trivially_clean or trivially_dead:
            assert p.decisions_agree, p
    # The model is conservative everywhere: it never reports more link
    # health than the waveform measurement (binomial noise allowance).
    for p in points:
        assert p.model_success <= p.measured_success + 0.15, p
