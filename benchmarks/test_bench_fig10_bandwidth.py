"""Fig. 10 — iperf UDP bandwidth vs SIR at the access point.

Runs the 5-port-testbed iperf sweep for the paper's four settings:
jammer off, continuous, reactive 0.1 ms uptime, reactive 0.01 ms
uptime.  The paper's qualitative result: the continuous jammer kills
the link at very low power (SIR ~34 dB, via carrier-sense denial);
the 0.1 ms reactive jammer needs ~17 dB more instantaneous power
(dead at SIR ~16 dB); the 0.01 ms jammer another ~13 dB (dead at
SIR ~3 dB); and the unjammed ceiling is ~29 Mbps.

Simulated interval per point is shorter than the paper's 60 s — the
DCF statistics converge within ~0.25 s of simulated traffic.
"""

from __future__ import annotations

from benchmarks.paper_reference import (
    FIG10_CONTINUOUS_ZERO_SIR,
    FIG10_MAX_BANDWIDTH_MBPS,
    FIG10_REACTIVE_001MS_ZERO_SIR,
    FIG10_REACTIVE_01MS_ZERO_SIR,
)
from repro.experiments.wifi_jamming import WifiJammingTestbed

SIRS_DB = [45.0, 40.0, 35.0, 30.0, 25.0, 20.0, 16.0, 12.0, 8.0, 4.0, 2.0, 0.0]
DURATION_S = 0.25


def _run():
    bed = WifiJammingTestbed(duration_s=DURATION_S)
    return bed.sweep(sir_values_db=SIRS_DB)


def _series(points):
    series: dict[str, dict[float | None, float]] = {}
    for point in points:
        series.setdefault(point.personality, {})[point.sir_at_ap_db] = \
            point.bandwidth_kbps
    return series


def test_bench_fig10_udp_bandwidth(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    series = _series(points)

    print("\nFig. 10 — UDP bandwidth (Mbps) vs SIR at the AP")
    print("SIR(dB)          " + "".join(f"{s:>7.0f}" for s in SIRS_DB))
    for name in ("continuous", "reactive-0.1ms", "reactive-0.01ms"):
        row = "".join(f"{series[name][s] / 1e3:>7.1f}" for s in SIRS_DB)
        print(f"{name:<17}{row}")
    off = series["off"][None] / 1e3
    print(f"jammer off: {off:.1f} Mbps "
          f"(paper ceiling ~{FIG10_MAX_BANDWIDTH_MBPS:.0f} Mbps)")
    print(f"paper zero-bandwidth SIRs: continuous {FIG10_CONTINUOUS_ZERO_SIR}, "
          f"0.1ms {FIG10_REACTIVE_01MS_ZERO_SIR}, "
          f"0.01ms {FIG10_REACTIVE_001MS_ZERO_SIR} dB")

    def zero_sir(name: str) -> float:
        """Highest SIR at which the link is effectively dead."""
        dead = [s for s in SIRS_DB if series[name][s] < 500.0]
        return max(dead) if dead else float("-inf")

    # Ceiling within a few Mbps of the paper's 29.
    assert abs(off - FIG10_MAX_BANDWIDTH_MBPS) < 4.0
    # The three cliffs land near the paper's, preserving the ordering
    # and the rough dB separations.
    cont, r01, r001 = (zero_sir("continuous"), zero_sir("reactive-0.1ms"),
                       zero_sir("reactive-0.01ms"))
    assert abs(cont - FIG10_CONTINUOUS_ZERO_SIR) <= 5.0
    assert abs(r01 - FIG10_REACTIVE_01MS_ZERO_SIR) <= 5.0
    assert abs(r001 - FIG10_REACTIVE_001MS_ZERO_SIR) <= 3.0
    assert cont > r01 > r001
    # At high SIR every jammer leaves the link near the ceiling.
    for name in ("reactive-0.1ms", "reactive-0.01ms"):
        assert series[name][45.0] / 1e3 > 0.8 * off
