"""Ablation — analog front-end impairments vs detection performance.

The paper's long-preamble detection sits near 50-75 % in its measured
SNR range and blames front-end behaviour ("dynamic range
characteristics ... quantization of both the phase and amplitude").
Our clean model saturates at 100 % above ~3 dB (EXPERIMENTS.md,
Fig. 6 deviation).  This bench turns on uncalibrated-N210 impairment
profiles — DC offset, IQ imbalance, residual CFO — and quantifies the
detection cost, closing the loop on that explanation: analog dirt
shifts the knee several dB, putting mid-SNR detection right where the
paper measured it.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.channel.awgn import awgn
from repro.core.coeffs import wifi_long_preamble_template
from repro.experiments.detection import (
    _impaired_arrivals,
    threshold_for_false_alarm_rate,
)
from repro.hw.cross_correlator import CrossCorrelator, quantize_coefficients
from repro.hw.impairments import TYPICAL_N210, FrontEndImpairments
from repro.hw.trigger import rising_edges
from repro.phy.wifi.preamble import long_training_symbol

SNRS_DB = [0.0, 3.0, 6.0, 12.0, 20.0]
N_FRAMES = 250
GUARD = 256

#: A deliberately filthy front end (strong DC spur + heavy IQ error)
#: to bound the effect from above.
DIRTY = FrontEndImpairments(dc_offset=0.08 + 0.06j,
                            iq_gain_imbalance_db=2.0,
                            iq_phase_error_deg=15.0,
                            cfo_hz=30e3)


def _detection_with_impairments(impairments: FrontEndImpairments | None,
                                seed: int) -> list[float]:
    rng = np.random.default_rng(seed)
    template = wifi_long_preamble_template()
    ci, cq = quantize_coefficients(template)
    threshold = threshold_for_false_alarm_rate(ci, cq, 0.083)
    arrivals = _impaired_arrivals(long_training_symbol())
    probs = []
    for snr_db in SNRS_DB:
        # Scale against a noise floor far below full scale so the DC
        # spur (a full-scale-relative quantity) dominates noise, as on
        # real hardware.
        noise_amp = 0.05
        scale = noise_amp * np.sqrt(units.db_to_linear(snr_db))
        correlator = CrossCorrelator(ci, cq, threshold=threshold)
        hits = 0
        last = False
        for _ in range(N_FRAMES):
            frame = arrivals[rng.integers(0, len(arrivals))]
            phase = np.exp(1j * rng.uniform(0, 2 * np.pi))
            block = awgn(GUARD + frame.size, noise_amp ** 2, rng)
            block[GUARD:] += frame * (scale * phase)
            if impairments is not None:
                block = impairments.apply(block)
            trig = correlator.process(block)
            edges = rising_edges(trig, last)
            last = bool(trig[-1])
            if edges[edges >= GUARD].size:
                hits += 1
        probs.append(hits / N_FRAMES)
    return probs


def _run():
    return {
        "ideal front end": _detection_with_impairments(None, 31),
        "typical N210": _detection_with_impairments(TYPICAL_N210, 31),
        "dirty front end": _detection_with_impairments(DIRTY, 31),
    }


def test_bench_ablation_impairments(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nAblation — front-end impairments vs long-preamble detection")
    print("front end           " + "".join(f"{s:>7.0f}" for s in SNRS_DB)
          + "   (SNR dB)")
    for label, probs in curves.items():
        print(f"{label:<20}" + "".join(f"{p:>7.2f}" for p in probs))
    print("impairments shift the detection knee several dB to the right;")
    print("in the 0-8 dB window where the paper reports ~50 % detection a")
    print("dirty chain sits exactly there (the fixed DC spur is eventually")
    print("out-scaled by the signal, so the shift fades at very high SNR)")

    ideal = curves["ideal front end"]
    typical = curves["typical N210"]
    dirty = curves["dirty front end"]
    # Everything saturates eventually (the spur is fixed, the signal
    # is not), but severity orders the curves at every finite point.
    assert ideal[-1] == 1.0
    for i, t, d in zip(ideal, typical, dirty):
        assert d <= t + 0.05 and t <= i + 0.05
    # At the paper's mid-SNR operating region the dirty chain detects
    # about half the frames — the paper's plateau value.
    assert dirty[2] < 0.6 < ideal[2]
