"""Fig. 5 / §3.1 — reactive jamming timelines.

Regenerates the paper's latency budget both analytically (from the
hardware model's constants) and by end-to-end measurement on the data
path, and checks they agree with the paper's numbers exactly.
"""

from __future__ import annotations

import pytest

from benchmarks.paper_reference import FIG5_TIMELINE
from repro.experiments.timelines import jamming_timelines, measure_response_time


def _run() -> dict[str, float]:
    analytic = jamming_timelines().as_dict()
    measured = measure_response_time()
    analytic["measured T_xcorr_det"] = measured.detection_latency
    analytic["measured T_init"] = measured.rf_response_latency
    analytic["measured T_resp(xcorr)"] = measured.total
    return analytic


def test_bench_fig5_timelines(benchmark):
    result = benchmark.pedantic(_run, rounds=3, iterations=1)

    print("\nFig. 5 / Section 3.1 — reactive jamming timeline")
    print(f"{'component':<24}{'paper':>12}{'ours':>12}")
    for key, paper_value in FIG5_TIMELINE.items():
        ours = result[key]
        print(f"{key:<24}{paper_value * 1e6:>10.2f}us{ours * 1e6:>10.2f}us")
    for key in ("measured T_xcorr_det", "measured T_init",
                "measured T_resp(xcorr)"):
        print(f"{key:<24}{'-':>12}{result[key] * 1e6:>10.3f}us")

    # The budget must match the paper exactly — these are the headline
    # claims (80 ns RF response, <=1.36/2.64 us system response).
    assert result["T_en_det"] == pytest.approx(1.28e-6)
    assert result["T_xcorr_det"] == pytest.approx(2.56e-6)
    assert result["T_init"] == pytest.approx(80e-9)
    assert result["T_resp(energy)"] == pytest.approx(1.36e-6)
    assert result["T_resp(xcorr)"] == pytest.approx(2.64e-6)
    # And the data path actually realizes it.
    assert result["measured T_resp(xcorr)"] == pytest.approx(2.64e-6)
