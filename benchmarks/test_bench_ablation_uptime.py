"""Ablation — jammer uptime sweep (DESIGN.md).

The paper evaluates two reactive uptimes (0.1 ms and 0.01 ms).  This
bench sweeps the uptime across four decades at two fixed SIRs and
reports the iperf bandwidth, exposing the energy/stealth trade the
paper discusses: longer bursts disrupt at weaker relative power, while
shorter bursts must be overwhelming to matter.
"""

from __future__ import annotations

from repro.core.presets import reactive_jammer
from repro.experiments.wifi_jamming import WifiJammingTestbed

UPTIMES_S = [4e-6, 1e-5, 4e-5, 1e-4, 4e-4]
SIRS_DB = [20.0, 8.0]
DURATION_S = 0.2


def _run():
    bed = WifiJammingTestbed(duration_s=DURATION_S)
    table: dict[float, dict[float, float]] = {}
    for sir_db in SIRS_DB:
        table[sir_db] = {}
        for uptime in UPTIMES_S:
            point = bed.run_point(reactive_jammer(uptime), sir_db)
            table[sir_db][uptime] = point.report.bandwidth_mbps
    return table


def test_bench_ablation_uptime(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nAblation — reactive jammer uptime vs UDP bandwidth (Mbps)")
    print("uptime           " + "".join(f"{u * 1e6:>9.0f}us" for u in UPTIMES_S))
    for sir_db, row in table.items():
        print(f"SIR {sir_db:>4.0f} dB      " + "".join(
            f"{row[u]:>11.1f}" for u in UPTIMES_S))

    # At moderate SIR (20 dB) only long bursts bite: bandwidth is a
    # non-increasing function of uptime.
    at20 = [table[20.0][u] for u in UPTIMES_S]
    assert at20[0] > 25.0
    assert all(a >= b - 1.0 for a, b in zip(at20, at20[1:]))
    # At strong jamming (8 dB SIR) the 0.1 ms burst already kills the
    # link while the shortest burst still leaves it mostly alive.
    assert table[8.0][1e-4] < 1.0
    assert table[8.0][4e-6] > 20.0
