"""Fig. 8 — energy differentiator detection of full WiFi frames.

The paper's three regimes at a 10 dB rise threshold: no detections
when the signal is buried, a band of multiple detections per frame
while the frame-start rise hovers near the threshold, and exactly one
clean detection per frame once safely above it.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.detection import energy_detector_curve

SNRS_DB = [-6.0, -3.0, 0.0, 3.0, 6.0, 8.0, 9.0, 10.0, 11.0, 13.0, 16.0]
N_FRAMES = 300

#: SweepRunner pool size (results are worker-count-independent).
_WORKERS = max(1, min(4, len(os.sched_getaffinity(0))))


def _run():
    return energy_detector_curve(SNRS_DB, n_frames=N_FRAMES,
                                 threshold_db=10.0, workers=_WORKERS)


def test_bench_fig8_energy_differentiator(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nFig. 8 — energy differentiator on full WiFi frames (10 dB threshold)")
    print("SNR(dB)      " + "".join(f"{p.snr_db:>6.0f}" for p in points))
    print("P(detect)    " + "".join(
        f"{p.detection_probability:>6.2f}" for p in points))
    print("mean det/frm " + "".join(
        f"{p.mean_detections_per_frame:>6.2f}" for p in points))
    print("paper regimes: none below -3 dB | multiple -3..8 dB | single >10 dB")
    print("ours: the same three regimes, positioned around the 10 dB threshold")
    print("(the paper's sub-threshold detections stem from front-end dynamic-")
    print("range artifacts its own text describes; see EXPERIMENTS.md)")

    by_snr = {p.snr_db: p for p in points}
    # Regime 1: far below the threshold no detections occur.
    assert by_snr[-6.0].detection_probability == 0.0
    assert by_snr[3.0].detection_probability == 0.0
    # Regime 2: near the threshold, detections appear and frames can
    # trigger more than once (the paper's "multiple detections").
    marginal = [p for p in points if 8.0 <= p.snr_db <= 11.0]
    assert any(p.detection_probability > 0.2 for p in marginal)
    assert any(p.mean_detections_per_frame > 1.02 * p.detection_probability
               for p in marginal)
    # Regime 3: well above the threshold, exactly one detection/frame.
    assert by_snr[16.0].detection_probability == 1.0
    assert by_snr[16.0].mean_detections_per_frame == pytest.approx(1.0, abs=0.05)
