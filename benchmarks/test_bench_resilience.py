"""Chaos-sweep harness — the job layer under injected worker faults.

The acceptance contract for :mod:`repro.runtime.jobs` (see
docs/resilient_sweeps.md): a Fig. 6 detection curve whose workers are
killed mid-sweep must finish anyway and match the uninterrupted serial
``workers=1`` reference bit-for-bit, and an interrupted checkpointed
sweep must resume by re-executing only the shards the first run never
completed.  Two arms:

* **crash arm** — a 2-worker Fig. 6 sweep with two seeded
  ``os._exit`` kills (real ``BrokenProcessPool`` crashes, not mocked
  exceptions); the supervisor recycles the pool, retries the victims,
  and the curve is byte-identical to the serial reference;
* **resume arm** — a serial checkpointed sweep is killed after K
  shards by a poison shard that exhausts its retry budget; the resumed
  run replays exactly K shards from the journal (checkpoint-hit count
  asserted) and the finished curve is byte-identical to an
  uninterrupted run.

Results land in ``BENCH_resilience.json`` via the session fixture; the
CI ``chaos-sweep`` job uploads it as an artifact.  Run via the
``chaos`` marker: ``python -m pytest benchmarks -m chaos``.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import WorkerCrashError
from repro.experiments.detection import long_preamble_curve
from repro.faults.workers import WorkerFaultInjector, WorkerFaultPlan
from repro.runtime.jobs import ResilienceConfig, last_sweep_health

SNRS_DB = [-6.0, -3.0, 0.0, 3.0]
N_FRAMES = 200  # 4 batches per SNR -> 16 trial specs


def _curve(**kwargs):
    return long_preamble_curve(SNRS_DB, n_frames=N_FRAMES,
                               full_frames=False, **kwargs)


def _curve_fingerprint(points) -> list[tuple[float, float, float, int]]:
    return [(p.snr_db, p.detection_probability,
             p.mean_detections_per_frame, p.n_frames) for p in points]


@pytest.mark.chaos
def test_bench_crash_identity(resilience_record):
    """Two real worker kills mid-sweep; curve byte-identical to serial."""
    t0 = time.perf_counter()
    reference = _curve(workers=1)
    serial_s = time.perf_counter() - t0

    # Kill the workers running shards 0 and 1 on their first attempt:
    # each os._exit(137) takes the whole fork pool down, so the
    # supervisor sees BrokenProcessPool twice and recycles twice.
    plan = WorkerFaultPlan(seed=42).kill_shards([0, 1])
    t0 = time.perf_counter()
    survived = _curve(workers=2,
                      resilience=ResilienceConfig(max_attempts=3,
                                                  quarantine_limit=0),
                      fault_injector=WorkerFaultInjector(plan))
    chaos_s = time.perf_counter() - t0
    health = last_sweep_health()

    print("\nChaos sweep — crash arm (2 injected worker kills)")
    print(health.summary())

    # The faults actually flowed: at least the two seeded kills (pool
    # breakage charges collateral shards too, so >= not ==).
    assert health.crashes >= 2
    assert health.retries >= 2
    # Nothing quarantined, nothing missing...
    assert health.ok
    assert health.completed_tasks == health.total_tasks
    # ...and the curve survived the crashes bit-for-bit.
    assert _curve_fingerprint(survived) == _curve_fingerprint(reference)

    resilience_record["crash_arm"] = {
        "injected_kills": 2,
        "crashes_observed": health.crashes,
        "retries": health.retries,
        "identical_to_serial": True,
        "serial_seconds": serial_s,
        "chaos_seconds": chaos_s,
        "health": health.to_dict(),
    }


@pytest.mark.chaos
def test_bench_checkpoint_resume(resilience_record, tmp_path):
    """Kill after K shards; resume replays exactly K from the journal."""
    reference = _curve(workers=1)
    journal = tmp_path / "sweep.ckpt.jsonl"

    # A poison shard that dies on every attempt exhausts the retry
    # budget and aborts the sweep — the serial analogue of yanking the
    # power cord partway through.  Shards before it complete and land
    # in the journal first.
    poison = WorkerFaultPlan(seed=7).kill_shards([2], attempts=(0, 1, 2))
    with pytest.raises(WorkerCrashError):
        _curve(workers=1,
               resilience=ResilienceConfig(max_attempts=3,
                                           quarantine_limit=0,
                                           checkpoint_path=journal),
               fault_injector=WorkerFaultInjector(poison))
    interrupted = last_sweep_health()
    completed_before_kill = interrupted.completed_shards
    total_shards = interrupted.total_shards

    print("\nChaos sweep — resume arm (interrupted run)")
    print(interrupted.summary())

    # The interruption left real durable progress behind.
    assert 0 < completed_before_kill < total_shards
    assert journal.exists()

    t0 = time.perf_counter()
    resumed = _curve(workers=1,
                     resilience=ResilienceConfig(
                         max_attempts=3, quarantine_limit=0,
                         checkpoint_path=journal))
    resume_s = time.perf_counter() - t0
    health = last_sweep_health()

    print("Chaos sweep — resume arm (resumed run)")
    print(health.summary())

    # Exactly the shards the first run finished replay from the
    # journal; only the remainder executes live.
    assert health.checkpoint_hits == completed_before_kill
    assert health.completed_shards == total_shards
    assert health.ok
    # The stitched-together curve is bit-for-bit the uninterrupted one.
    assert _curve_fingerprint(resumed) == _curve_fingerprint(reference)

    resilience_record["resume_arm"] = {
        "total_shards": total_shards,
        "completed_before_kill": completed_before_kill,
        "checkpoint_hits_on_resume": health.checkpoint_hits,
        "shards_reexecuted": total_shards - health.checkpoint_hits,
        "identical_to_uninterrupted": True,
        "resume_seconds": resume_s,
        "health": health.to_dict(),
    }
