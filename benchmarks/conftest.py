"""Benchmark-suite fixtures.

``telemetry_record`` and ``runtime_record`` collect per-test perf
records; at session end everything collected is written to
``BENCH_telemetry.json`` / ``BENCH_runtime.json`` at the repository
root, where the CI perf-smoke job uploads them as artifacts.  Each
file is only written when at least one contributing benchmark ran, so
partial invocations leave no stray output.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

#: Where the perf records land (repository root).
_REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_TELEMETRY_PATH = _REPO_ROOT / "BENCH_telemetry.json"
BENCH_RUNTIME_PATH = _REPO_ROOT / "BENCH_runtime.json"
BENCH_KERNELS_PATH = _REPO_ROOT / "BENCH_kernels.json"
BENCH_RESILIENCE_PATH = _REPO_ROOT / "BENCH_resilience.json"
BENCH_DEFENSE_PATH = _REPO_ROOT / "BENCH_defense.json"
BENCH_MULTISTANDARD_PATH = _REPO_ROOT / "BENCH_multistandard.json"


def _record_fixture(path: Path):
    record: dict[str, object] = {}
    yield record
    if record:
        path.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


@pytest.fixture(scope="session")
def telemetry_record():
    """A dict the telemetry benchmarks drop their results into."""
    yield from _record_fixture(BENCH_TELEMETRY_PATH)


@pytest.fixture(scope="session")
def runtime_record():
    """A dict the runtime benchmarks drop their results into."""
    yield from _record_fixture(BENCH_RUNTIME_PATH)


@pytest.fixture(scope="session")
def kernels_record():
    """A dict the kernel benchmarks drop their results into."""
    yield from _record_fixture(BENCH_KERNELS_PATH)


@pytest.fixture(scope="session")
def resilience_record():
    """A dict the chaos-sweep benchmarks drop their results into."""
    yield from _record_fixture(BENCH_RESILIENCE_PATH)


@pytest.fixture(scope="session")
def defense_record():
    """A dict the defense-tournament benchmarks drop their results into."""
    yield from _record_fixture(BENCH_DEFENSE_PATH)


@pytest.fixture(scope="session")
def multistandard_record():
    """A dict the stacked-bank benchmarks drop their results into."""
    yield from _record_fixture(BENCH_MULTISTANDARD_PATH)
