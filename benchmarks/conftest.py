"""Benchmark-suite fixtures.

``telemetry_record`` collects per-test perf records; at session end
everything collected is written to ``BENCH_telemetry.json`` at the
repository root, where the CI perf-smoke job uploads it as an
artifact.  The file is only written when at least one telemetry
benchmark ran, so chaos-only invocations leave no stray output.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

#: Where the perf record lands (repository root).
BENCH_TELEMETRY_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_telemetry.json"


@pytest.fixture(scope="session")
def telemetry_record():
    """A dict the telemetry benchmarks drop their results into."""
    record: dict[str, object] = {}
    yield record
    if record:
        BENCH_TELEMETRY_PATH.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
