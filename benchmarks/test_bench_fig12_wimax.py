"""Fig. 12 — reactive jamming of WiMAX downlink frames.

Reproduces both §5 findings on a simulated Airspan-style broadcast:
the 64-sample correlator alone (2.56 us window against the ~25 us
preamble code) misses about 2/3 of the frames, while combining it with
the energy differentiator detects 100 % with a one-to-one jam-to-frame
correspondence — the scope trace of Fig. 12.
"""

from __future__ import annotations

import numpy as np

from benchmarks.paper_reference import (
    FIG12_COMBINED_DETECTION,
    FIG12_XCORR_MISDETECTION,
)
from repro import units
from repro.experiments.wimax_jamming import run_experiment

N_FRAMES = 24


def _run():
    return run_experiment(n_frames=N_FRAMES)


def test_bench_fig12_wimax_jamming(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    xcorr = results["xcorr_only"]
    combined = results["combined"]

    print("\nFig. 12 — WiMAX downlink reactive jamming")
    print(f"{'scheme':<14}{'detected':>10}{'missed':>10}{'bursts':>8}")
    for r in (xcorr, combined):
        print(f"{r.detection_scheme:<14}{r.detection_rate:>9.0%}"
              f"{r.misdetection_rate:>9.0%}{r.jam_bursts:>8}")
    print(f"paper: xcorr-only misses ~{FIG12_XCORR_MISDETECTION:.0%}; "
          f"combined detects {FIG12_COMBINED_DETECTION:.0%} "
          "with one burst per frame")

    # Scope-trace check: during the combined run, every downlink frame
    # has jamming energy shortly after its start.
    frame_samples = int(0.005 * units.BASEBAND_RATE)
    for k in range(N_FRAMES):
        window = combined.tx_trace[k * frame_samples:
                                   k * frame_samples + 3000]
        assert np.any(np.abs(window) > 0), f"frame {k} not jammed"

    # The paper's quantitative findings (~2/3 missed; the partial-
    # window peaks straddle the threshold so the rate varies by run).
    assert 0.4 <= xcorr.misdetection_rate <= 0.85
    assert combined.detection_rate == FIG12_COMBINED_DETECTION
    assert combined.jam_bursts == N_FRAMES  # one-to-one correspondence
