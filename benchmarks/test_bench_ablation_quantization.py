"""Ablation — sign-bit slicing and 3-bit coefficients (DESIGN.md).

The hardware correlator throws away everything but the sign of each
I/Q sample and quantizes its template to 3-bit signed coefficients
(paper Fig. 3).  This bench measures what that costs against an ideal
full-precision normalized correlator on the same frames, at matched
false-alarm rates.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.channel.awgn import awgn
from repro.core.coeffs import wifi_long_preamble_template
from repro.dsp.measure import normalized_cross_correlation
from repro.experiments.detection import (
    _impaired_arrivals,
    threshold_for_false_alarm_rate,
)
from repro.hw.cross_correlator import CrossCorrelator, quantize_coefficients
from repro.phy.wifi.preamble import long_training_symbol

SNRS_DB = [-6.0, -3.0, 0.0, 3.0]
N_FRAMES = 250
GUARD = 256


def _float_threshold(template: np.ndarray, fa_per_second: float,
                     rng: np.random.Generator) -> float:
    """Empirical FA threshold for the float correlator on noise."""
    noise = awgn(400_000, 1.0, rng)
    corr = normalized_cross_correlation(noise, template)
    # Pick the quantile whose exceedance rate matches the FA target.
    exceed_prob = fa_per_second / units.BASEBAND_RATE
    return float(np.quantile(corr, 1.0 - max(exceed_prob, 2e-6)))


def _run():
    rng = np.random.default_rng(7)
    template = wifi_long_preamble_template()
    ci, cq = quantize_coefficients(template)
    hw_threshold = threshold_for_false_alarm_rate(ci, cq, 0.083)
    float_threshold = _float_threshold(template, 0.083, rng)
    arrivals = _impaired_arrivals(long_training_symbol())

    results = {"hardware (1-bit in, 3-bit coeff)": [],
               "ideal float correlator": []}
    for snr_db in SNRS_DB:
        scale = np.sqrt(units.db_to_linear(snr_db))
        hw_hits = float_hits = 0
        correlator = CrossCorrelator(ci, cq, threshold=hw_threshold)
        for _ in range(N_FRAMES):
            frame = arrivals[rng.integers(0, len(arrivals))]
            phase = np.exp(1j * rng.uniform(0, 2 * np.pi))
            block = awgn(GUARD + frame.size, 1.0, rng)
            block[GUARD:] += frame * (scale * phase)
            if correlator.process(block)[GUARD:].any():
                hw_hits += 1
            corr = normalized_cross_correlation(block, template)
            if np.any(corr[GUARD:] > float_threshold):
                float_hits += 1
        results["hardware (1-bit in, 3-bit coeff)"].append(hw_hits / N_FRAMES)
        results["ideal float correlator"].append(float_hits / N_FRAMES)
    return results


def test_bench_ablation_quantization(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nAblation — detection loss from sign-bit/3-bit quantization")
    print("correlator                        " + "".join(
        f"{s:>7.0f}" for s in SNRS_DB) + "   (SNR dB)")
    for label, probs in results.items():
        print(f"{label:<34}" + "".join(f"{p:>7.2f}" for p in probs))

    hw = results["hardware (1-bit in, 3-bit coeff)"]
    ideal = results["ideal float correlator"]
    # The ideal correlator dominates at every SNR (quantization always
    # costs), but the hardware correlator still reaches its plateau.
    for h, f in zip(hw, ideal):
        assert h <= f + 0.05
    assert hw[-1] > 0.9
