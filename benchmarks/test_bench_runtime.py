"""Runtime perf benchmarks (CI perf-smoke job).

Two guarantees of :mod:`repro.runtime` are enforced here rather than
in tier-1:

* **parallel sweep speedup** — a 4-worker Fig. 6 detection sweep must
  return byte-identical curve values to the serial path, and (given
  at least 4 usable cores) finish at least ``MIN_SPEEDUP`` times
  faster in wall-clock terms;
* **warm artifact cache** — rebuilding the PPDU / preamble-template /
  quantized-coefficient artifacts with a warm cache must be at least
  ``MIN_CACHE_SPEEDUP`` times faster than the cold build, with
  hit/miss counters exposed through the telemetry metrics registry.

Everything measured lands in ``BENCH_runtime.json`` at the repository
root (uploaded as a CI artifact).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.coeffs import (
    wifi_long_preamble_template,
    wifi_short_preamble_template,
)
from repro.experiments.detection import long_preamble_curve
from repro.hw.cross_correlator import quantize_coefficients
from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
from repro.runtime.cache import DEFAULT_CACHE
from repro.telemetry import Telemetry

#: The Fig. 6 grid the speedup is measured on (single-long pseudo
#: frames: the cheapest per-frame work, i.e. the hardest speedup case
#: after the paper's own curve).
SNRS_DB = [-6.0, -3.0, 0.0, 3.0]
N_FRAMES = 1000
SWEEP_WORKERS = 4

#: Wall-clock floor for the 4-worker sweep vs the serial reference.
MIN_SPEEDUP = 2.5

#: Wall-clock floor for warm-vs-cold artifact builds.
MIN_CACHE_SPEEDUP = 10.0

_USABLE_CORES = len(os.sched_getaffinity(0))


def _fig6(workers: int):
    return long_preamble_curve(SNRS_DB, n_frames=N_FRAMES,
                               full_frames=False, workers=workers)


@pytest.mark.perf
def test_bench_runtime_sweep_speedup(runtime_record):
    # Warm the artifact cache so both paths measure sweep work, not
    # first-build work (the fork start method shares the warm cache
    # with every worker).
    _fig6(workers=1)

    start = time.perf_counter_ns()
    serial = _fig6(workers=1)
    serial_ns = time.perf_counter_ns() - start

    start = time.perf_counter_ns()
    parallel = _fig6(workers=SWEEP_WORKERS)
    parallel_ns = time.perf_counter_ns() - start

    assert parallel == serial, \
        "parallel sweep must be byte-identical to the serial reference"

    speedup = serial_ns / parallel_ns
    print(f"\nRuntime — Fig. 6 sweep: serial {serial_ns / 1e6:.0f} ms, "
          f"{SWEEP_WORKERS} workers {parallel_ns / 1e6:.0f} ms "
          f"-> {speedup:.2f}x ({_USABLE_CORES} usable cores)")
    runtime_record["sweep_speedup"] = {
        "snrs_db": SNRS_DB,
        "n_frames": N_FRAMES,
        "workers": SWEEP_WORKERS,
        "usable_cores": _USABLE_CORES,
        "serial_ns": serial_ns,
        "parallel_ns": parallel_ns,
        "speedup": speedup,
        "byte_identical": True,
        "min_speedup": MIN_SPEEDUP,
        "speedup_enforced": _USABLE_CORES >= SWEEP_WORKERS,
    }
    if _USABLE_CORES >= SWEEP_WORKERS:
        assert speedup >= MIN_SPEEDUP, (
            f"{SWEEP_WORKERS}-worker sweep is only {speedup:.2f}x faster "
            f"(floor {MIN_SPEEDUP}x)"
        )


def _build_artifacts() -> int:
    """One full artifact-build pass; returns a consumption checksum."""
    rng = np.random.default_rng(7)
    psdu = rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
    ppdu = build_ppdu(psdu, WifiFrameConfig())
    long_template = wifi_long_preamble_template()
    short_template = wifi_short_preamble_template()
    ci, cq = quantize_coefficients(long_template)
    return ppdu.size + long_template.size + short_template.size \
        + ci.size + cq.size


@pytest.mark.perf
def test_bench_runtime_cache_warm_vs_cold(runtime_record):
    telemetry = Telemetry()
    DEFAULT_CACHE.attach_metrics(telemetry.metrics)
    try:
        DEFAULT_CACHE.clear()
        hits0, misses0 = DEFAULT_CACHE.hits, DEFAULT_CACHE.misses

        start = time.perf_counter_ns()
        checksum_cold = _build_artifacts()
        cold_ns = time.perf_counter_ns() - start
        misses = DEFAULT_CACHE.misses - misses0

        warm_ns = min(_timed_build(checksum_cold) for _ in range(5))
        hits = DEFAULT_CACHE.hits - hits0
        snapshot = telemetry.metrics.snapshot()["counters"]
    finally:
        DEFAULT_CACHE.attach_metrics(None)

    speedup = cold_ns / warm_ns
    print(f"\nRuntime — artifact cache: cold {cold_ns / 1e6:.2f} ms, "
          f"warm {warm_ns / 1e6:.3f} ms -> {speedup:.0f}x "
          f"({hits} hits / {misses} misses)")
    runtime_record["cache_warm_vs_cold"] = {
        "cold_ns": cold_ns,
        "warm_ns": warm_ns,
        "speedup": speedup,
        "min_speedup": MIN_CACHE_SPEEDUP,
        "hits": hits,
        "misses": misses,
        "telemetry_counters": {
            name: value for name, value in snapshot.items()
            if name.startswith("runtime.cache.")
        },
    }
    assert hits > 0 and misses > 0
    assert speedup >= MIN_CACHE_SPEEDUP, (
        f"warm cache is only {speedup:.1f}x faster than cold "
        f"(floor {MIN_CACHE_SPEEDUP}x)"
    )


def _timed_build(expected_checksum: int) -> int:
    start = time.perf_counter_ns()
    checksum = _build_artifacts()
    elapsed = time.perf_counter_ns() - start
    assert checksum == expected_checksum
    return elapsed
