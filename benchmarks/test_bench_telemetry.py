"""Telemetry perf benchmarks (CI perf-smoke job).

Two guarantees are enforced here rather than in tier-1:

* **closed-loop Fig. 5** — a fully traced jammer run over a WiFi
  short-preamble capture must pass the latency-budget checker, and
  its trace/metrics digest is recorded to ``BENCH_telemetry.json``;
* **disabled-telemetry overhead** — running with
  ``Telemetry(enabled=False)`` must stay within 2% of running with no
  telemetry at all (the null-tracer probe points must be free).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import units
from repro.channel.combining import Transmission, mix_at_port
from repro.core.coeffs import wifi_short_preamble_template
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.jammer import ReactiveJammer
from repro.core.presets import reactive_jammer
from repro.telemetry import Telemetry

#: Injected WiFi frame starts (samples at 25 MSPS).
FRAME_STARTS = [2500, 15000, 27500]

#: Allowed slowdown of the disabled-telemetry path vs no telemetry.
MAX_DISABLED_OVERHEAD = 0.02


def _wifi_capture() -> np.ndarray:
    from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
    from repro.phy.wifi.params import WIFI_SAMPLE_RATE

    rng = np.random.default_rng(99)
    noise = 1e-4
    power = units.db_to_linear(15.0) * noise
    psdu = rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
    frames = [Transmission(build_ppdu(psdu, WifiFrameConfig()),
                           WIFI_SAMPLE_RATE, start / units.BASEBAND_RATE,
                           power)
              for start in FRAME_STARTS]
    return mix_at_port(frames, units.BASEBAND_RATE, 1.6e-3,
                       noise_power=noise, rng=rng)


def _configured_jammer(telemetry: Telemetry | None) -> ReactiveJammer:
    jammer = ReactiveJammer(telemetry=telemetry)
    jammer.configure(
        detection=DetectionConfig(template=wifi_short_preamble_template(),
                                  xcorr_threshold=20000),
        events=JammingEventBuilder().on_correlation(),
        personality=reactive_jammer(1e-5),
    )
    return jammer


@pytest.mark.perf
def test_bench_telemetry_fig5(benchmark, telemetry_record):
    rx = _wifi_capture()

    def _run():
        telemetry = Telemetry()
        report = _configured_jammer(telemetry).run(rx, chunk_size=8192)
        return telemetry, report

    telemetry, report = benchmark.pedantic(_run, rounds=3, iterations=1)
    budget = telemetry.budget_report(signal_starts=FRAME_STARTS)

    print("\nTelemetry — traced Fig. 5 closed loop")
    print(budget.summary())
    assert budget.ok, budget.summary()
    assert len(report.jams) == len(FRAME_STARTS)

    snapshot = telemetry.metrics.snapshot()
    telemetry_record["fig5"] = {
        "events_retained": len(telemetry.events()),
        "budget_checks": [
            {"name": check.name, "measured_ns": check.measured_ns,
             "budget_ns": check.budget_ns, "ok": check.ok}
            for check in budget.checks
        ],
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "host_histograms": {
            name: {"count": hist["count"], "mean_ns": hist["mean"]}
            for name, hist in snapshot["histograms"].items()
            if name.startswith("host.")
        },
    }


@pytest.mark.perf
def test_bench_telemetry_disabled_overhead(telemetry_record):
    rx = _wifi_capture()
    baseline = _configured_jammer(None)
    disabled = _configured_jammer(Telemetry.disabled())
    # Warm both paths (numpy buffers, code paths) before timing.
    baseline.run(rx, chunk_size=8192)
    disabled.run(rx, chunk_size=8192)

    baseline_ns: list[int] = []
    disabled_ns: list[int] = []
    for _ in range(9):  # interleaved so drift hits both paths equally
        start = time.perf_counter_ns()
        baseline.run(rx, chunk_size=8192)
        baseline_ns.append(time.perf_counter_ns() - start)
        start = time.perf_counter_ns()
        disabled.run(rx, chunk_size=8192)
        disabled_ns.append(time.perf_counter_ns() - start)

    # Paired per-round ratios: the two runs of one round are adjacent
    # in time, so background load cancels within each pair, and the
    # median pair is immune to a few noisy rounds — aggregate minima
    # or means are not, and flake on busy runners.
    ratios = sorted(d / b for b, d in zip(baseline_ns, disabled_ns))
    overhead = ratios[len(ratios) // 2] - 1.0
    best_baseline = min(baseline_ns)
    best_disabled = min(disabled_ns)
    print(f"\nTelemetry — disabled-path overhead: {overhead * 100:+.2f}% "
          f"(median paired ratio; best baseline "
          f"{best_baseline / 1e6:.2f} ms, "
          f"best disabled {best_disabled / 1e6:.2f} ms)")
    telemetry_record["disabled_overhead"] = {
        "baseline_ns": best_baseline,
        "disabled_ns": best_disabled,
        "overhead_fraction": overhead,
        "limit_fraction": MAX_DISABLED_OVERHEAD,
    }
    assert overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled telemetry costs {overhead * 100:.2f}% "
        f"(limit {MAX_DISABLED_OVERHEAD * 100:.0f}%)"
    )
