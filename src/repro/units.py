"""Unit conversions used throughout the framework.

The paper mixes several unit systems: RF power in dB/dBm, time in
nanoseconds through seconds, and durations expressed in baseband samples
(25 MSPS) or FPGA clock cycles (100 MHz).  This module centralizes the
conversions so that magic constants appear exactly once.
"""

from __future__ import annotations

import math

import numpy as np

#: USRP N210 FPGA clock frequency used by the paper's design (Hz).
FPGA_CLOCK_HZ = 100_000_000

#: Baseband complex sampling rate of the custom DSP core (samples/s).
BASEBAND_RATE = 25_000_000

#: FPGA clock cycles per baseband sample (100 MHz / 25 MSPS).
CLOCKS_PER_SAMPLE = FPGA_CLOCK_HZ // BASEBAND_RATE

#: Duration of one baseband sample in seconds (40 ns).
SAMPLE_PERIOD = 1.0 / BASEBAND_RATE

#: Duration of one FPGA clock cycle in seconds (10 ns).
CLOCK_PERIOD = 1.0 / FPGA_CLOCK_HZ


def db_to_linear(db: float) -> float:
    """Convert a power ratio in dB to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(linear: float) -> float:
    """Convert a linear power ratio to dB.

    Raises :class:`ValueError` for non-positive ratios, which have no
    dB representation.
    """
    if linear <= 0.0:
        raise ValueError(f"cannot express non-positive ratio {linear!r} in dB")
    return 10.0 * math.log10(linear)


def db_to_amplitude(db: float) -> float:
    """Convert a power ratio in dB to a voltage (amplitude) ratio."""
    return 10.0 ** (db / 20.0)


def amplitude_to_db(amplitude: float) -> float:
    """Convert a voltage (amplitude) ratio to a power ratio in dB."""
    if amplitude <= 0.0:
        raise ValueError(f"cannot express non-positive amplitude {amplitude!r} in dB")
    return 20.0 * math.log10(amplitude)


def dbm_to_watts(dbm: float) -> float:
    """Convert dBm to watts."""
    return 10.0 ** (dbm / 10.0) * 1e-3


def watts_to_dbm(watts: float) -> float:
    """Convert watts to dBm."""
    if watts <= 0.0:
        raise ValueError(f"cannot express non-positive power {watts!r} in dBm")
    return 10.0 * math.log10(watts / 1e-3)


def samples_to_seconds(n_samples: int, sample_rate: float = BASEBAND_RATE) -> float:
    """Duration in seconds of ``n_samples`` at ``sample_rate``."""
    if sample_rate <= 0:
        raise ValueError("sample_rate must be positive")
    return n_samples / sample_rate


def seconds_to_samples(seconds: float, sample_rate: float = BASEBAND_RATE) -> int:
    """Number of whole samples spanning ``seconds`` at ``sample_rate``.

    Rounds to the nearest sample; hardware durations are quantized to
    the sample clock.
    """
    if sample_rate <= 0:
        raise ValueError("sample_rate must be positive")
    return int(round(seconds * sample_rate))


def samples_to_clocks(n_samples: int) -> int:
    """FPGA clock cycles spanned by ``n_samples`` baseband samples."""
    return n_samples * CLOCKS_PER_SAMPLE


def clocks_to_seconds(n_clocks: int) -> float:
    """Duration in seconds of ``n_clocks`` FPGA clock cycles."""
    return n_clocks * CLOCK_PERIOD


def signal_power(samples: np.ndarray) -> float:
    """Mean power of a complex baseband signal (|x|^2 average).

    Returns 0.0 for an empty array, which is the natural identity for
    downstream SNR bookkeeping (an absent signal carries no power).
    """
    if samples.size == 0:
        return 0.0
    return float(np.mean(np.abs(samples) ** 2))


def signal_power_db(samples: np.ndarray) -> float:
    """Mean power of a complex baseband signal in dB relative to 1.0."""
    return linear_to_db(signal_power(samples))


def snr_scale(signal: np.ndarray, snr_db: float, noise_power: float = 1.0) -> np.ndarray:
    """Scale ``signal`` so its mean power is ``snr_db`` above ``noise_power``.

    This is how the detection experiments sweep received SNR: the noise
    floor is held constant and the transmit amplitude is adjusted.
    """
    current = signal_power(signal)
    if current == 0.0:
        raise ValueError("cannot scale an all-zero signal to a target SNR")
    target = noise_power * db_to_linear(snr_db)
    return signal * math.sqrt(target / current)
