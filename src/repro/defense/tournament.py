"""Attack-vs-detect tournaments over the Fig. 10/11 harness.

One *trial* plays both chairs of the game on the wired 5-port
testbed: a clean iperf interval (victim network only) and a jammed
interval (same network plus a policy-gated reactive jammer), each
observed by a :class:`~repro.defense.features.LinkTraceRecorder` at
the access point.  The windows of the clean interval are labelled 0,
the jammed interval's 1, and the resulting dataset is what every
detector is trained and ROC-scored on.

A *tournament* sweeps a (policy x detector) grid: the policy axis
rides :func:`repro.runtime.jobs.resilient_sweep` — trials are seeded
by grid position, so results are byte-identical for any worker count
and across checkpoint resumes — and the detector axis is evaluated on
the gathered windows with seeded fits.  The output is the An & Weber
curve this whole subsystem exists to measure: per-policy jamming
efficiency (disruption bought per unit of transmitted airtime)
against per-detector AUC (how visible the policy is from the victim's
chair).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.presets import continuous_jammer, reactive_jammer
from repro.defense.detectors import Detector, default_detectors
from repro.defense.features import FEATURE_NAMES, LinkTraceRecorder
from repro.defense.policies import (
    ALWAYS_JAM,
    JamPolicy,
    RandomizedJammerNode,
)
from repro.defense.roc import RocCurve, roc_curve
from repro.errors import ConfigurationError
from repro.experiments.wifi_jamming import WifiJammingTestbed
from repro.mac.iperf import UdpBandwidthTest
from repro.mac.medium import Medium
from repro.mac.nodes import AccessPoint, JammerNode, Station
from repro.mac.simkernel import SimKernel
from repro.runtime.jobs import (
    STRICT_RESILIENCE,
    ResilienceConfig,
    resilient_sweep,
)

if TYPE_CHECKING:
    from repro.faults.workers import WorkerFaultInjector
    from repro.telemetry.session import Telemetry

#: Telemetry counter names folded into an attached MetricsRegistry.
RUNS_COUNTER = "defense.tournament.runs"
TRIALS_COUNTER = "defense.tournament.trials"
WINDOWS_COUNTER = "defense.tournament.windows"
CELLS_COUNTER = "defense.tournament.cells"

#: Seed-sequence domain tag for detector-fit substreams (keeps fits
#: decoupled from the trial streams resilient_sweep hands out).
_FIT_DOMAIN = 0xDEF1


@dataclass(frozen=True)
class DefenseScenario:
    """A Fig. 10-style victim network for one tournament.

    Attributes:
        kind: ``"reactive"`` (policy-gated burst jammer) or
            ``"constant"`` (always-on carrier; only the deterministic
            :data:`~repro.defense.policies.ALWAYS_JAM` policy applies).
        sir_db: Signal-to-jammer ratio at the AP, as the paper sweeps.
        uptime_s: Reactive burst length after each trigger.
        duration_s: Length of each observed iperf interval.
        window_s: Feature-window length the trace is cut into.
        offered_mbps: Offered UDP load.  Deliberately light (a few
            frames per window) — sparse traffic is where randomized
            policies actually hide, which is the regime the
            detectability tradeoff is about.
        cca_sample_interval_s: CCA sampling period of the monitor.
    """

    kind: str = "reactive"
    sir_db: float = 10.0
    uptime_s: float = 1e-4
    duration_s: float = 0.24
    window_s: float = 0.01
    offered_mbps: float = 1.0
    cca_sample_interval_s: float = 5e-4

    def __post_init__(self) -> None:
        if self.kind not in ("reactive", "constant"):
            raise ConfigurationError(
                f"unknown scenario kind {self.kind!r} (reactive|constant)")
        if self.duration_s < self.window_s:
            raise ConfigurationError(
                "duration_s must cover at least one window")

    @property
    def windows_per_run(self) -> int:
        """Feature windows each observed interval yields."""
        return int(self.duration_s / self.window_s + 0.5)


@dataclass(frozen=True)
class TrialObservation:
    """What one (clean, jammed) interval pair contributed.

    ``features`` rows follow :data:`~repro.defense.features.FEATURE_NAMES`;
    ``labels`` is 0 for clean-interval windows, 1 for jammed.
    """

    features: np.ndarray
    labels: np.ndarray
    clean_prr: float
    jammed_prr: float
    jam_airtime_s: float
    jam_bursts: int
    triggers_seen: int
    duration_s: float


def _observe_interval(scenario: DefenseScenario,
                      policy: JamPolicy | None,
                      rng: np.random.Generator
                      ) -> tuple[list, float, float, int, int]:
    """One iperf interval; returns (windows, prr, airtime, bursts, triggers)."""
    bed = WifiJammingTestbed(duration_s=scenario.duration_s)
    kernel = SimKernel()
    medium = Medium(bed.path_loss_db)
    ap = AccessPoint("ap", kernel, medium, rng, tx_power_dbm=bed.ap_tx_dbm)
    client = Station("client", kernel, medium, ap, rng,
                     tx_power_dbm=bed.client_tx_dbm)
    recorder = LinkTraceRecorder(
        kernel, medium, ap,
        cca_sample_interval_s=scenario.cca_sample_interval_s)
    recorder.start(scenario.duration_s)
    airtime = 0.0
    bursts = 0
    triggers = 0
    jammer: JammerNode | None = None
    if policy is not None:
        jam_tx_dbm = bed.jammer_tx_for_sir(scenario.sir_db)
        if scenario.kind == "constant":
            if policy.randomized:
                raise ConfigurationError(
                    "constant-jammer scenarios take only the "
                    "deterministic ALWAYS_JAM policy")
            jammer = JammerNode("jammer", kernel, medium,
                                continuous_jammer(), tx_power_dbm=jam_tx_dbm)
        else:
            jammer = RandomizedJammerNode(
                "jammer", kernel, medium,
                reactive_jammer(scenario.uptime_s),
                tx_power_dbm=jam_tx_dbm, policy=policy, rng=rng)
        jammer.start(scenario.duration_s)
    report = UdpBandwidthTest(
        kernel, client, ap,
        offered_mbps=scenario.offered_mbps).run(scenario.duration_s)
    if isinstance(jammer, RandomizedJammerNode):
        airtime = jammer.jam_airtime_s
        bursts = jammer.bursts
        triggers = jammer.gate.triggers_seen
    elif jammer is not None:
        airtime = scenario.duration_s
        bursts = jammer.bursts
    windows = recorder.windows(scenario.window_s)
    return windows, report.packet_reception_ratio, airtime, bursts, triggers


def run_trial(scenario: DefenseScenario, policy: JamPolicy,
              rng: np.random.Generator) -> TrialObservation:
    """One clean + one jammed interval under one policy.

    Pure function of ``(scenario, policy, rng)`` — the tournament's
    byte-identity across workers and resumes rests on randomness
    entering only through ``rng``.
    """
    clean_windows, clean_prr, _a, _b, _t = _observe_interval(
        scenario, None, rng)
    jam_windows, jam_prr, airtime, bursts, triggers = _observe_interval(
        scenario, policy, rng)
    features = np.stack([w.vector() for w in clean_windows + jam_windows])
    labels = np.concatenate([
        np.zeros(len(clean_windows), dtype=np.int64),
        np.ones(len(jam_windows), dtype=np.int64),
    ])
    return TrialObservation(
        features=features, labels=labels,
        clean_prr=clean_prr, jammed_prr=jam_prr,
        jam_airtime_s=airtime, jam_bursts=bursts,
        triggers_seen=triggers, duration_s=scenario.duration_s,
    )


def _tournament_trial(spec: tuple[DefenseScenario, JamPolicy],
                      rng: np.random.Generator) -> TrialObservation:
    """Module-level picklable trial task for the sweep pool."""
    scenario, policy = spec
    return run_trial(scenario, policy, rng)


# ---------------------------------------------------------------------------
# Results


@dataclass(frozen=True)
class TournamentCell:
    """One (policy, detector) grid cell's detection outcome."""

    policy: str
    detector: str
    auc: float
    train_windows: int
    test_windows: int

    def to_dict(self) -> dict:
        return {
            "policy": self.policy, "detector": self.detector,
            "auc": self.auc, "train_windows": self.train_windows,
            "test_windows": self.test_windows,
        }


@dataclass(frozen=True)
class PolicyOutcome:
    """One policy's jamming-efficiency bookkeeping across its trials."""

    policy: str
    jam_probability: float
    clean_prr: float
    jammed_prr: float
    #: Fractional PRR degradation the jammer bought.
    disruption: float
    #: Transmitted jam airtime over observed time.
    jam_duty: float
    #: Disruption per unit duty — An & Weber's efficiency axis.
    efficiency: float
    jam_bursts: int
    triggers_seen: int

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "jam_probability": self.jam_probability,
            "clean_prr": self.clean_prr, "jammed_prr": self.jammed_prr,
            "disruption": self.disruption, "jam_duty": self.jam_duty,
            "efficiency": self.efficiency, "jam_bursts": self.jam_bursts,
            "triggers_seen": self.triggers_seen,
        }


@dataclass
class TournamentResult:
    """Everything one tournament measured."""

    scenario: DefenseScenario
    seed: int
    n_trials: int
    cells: list[TournamentCell] = field(default_factory=list)
    outcomes: list[PolicyOutcome] = field(default_factory=list)
    curves: dict[tuple[str, str], RocCurve] = field(default_factory=dict)

    def auc_for(self, policy: str, detector: str) -> float:
        """The AUC of one grid cell."""
        for cell in self.cells:
            if cell.policy == policy and cell.detector == detector:
                return cell.auc
        raise ConfigurationError(
            f"no tournament cell ({policy!r}, {detector!r})")

    def outcome_for(self, policy: str) -> PolicyOutcome:
        """The efficiency bookkeeping of one policy."""
        for outcome in self.outcomes:
            if outcome.policy == policy:
                return outcome
        raise ConfigurationError(f"no tournament policy {policy!r}")

    def curve_for(self, detector: str) -> list[dict]:
        """The efficiency-vs-AUC curve of one detector, policy by policy."""
        rows = []
        for outcome in self.outcomes:
            rows.append({
                "policy": outcome.policy,
                "jam_probability": outcome.jam_probability,
                "disruption": outcome.disruption,
                "jam_duty": outcome.jam_duty,
                "efficiency": outcome.efficiency,
                "auc": self.auc_for(outcome.policy, detector),
            })
        return rows

    @property
    def detectors(self) -> list[str]:
        """Detector names, in evaluation order."""
        seen: list[str] = []
        for cell in self.cells:
            if cell.detector not in seen:
                seen.append(cell.detector)
        return seen

    def to_dict(self) -> dict:
        """JSON-compatible form (perf records, report embedding)."""
        return {
            "scenario": {
                "kind": self.scenario.kind,
                "sir_db": self.scenario.sir_db,
                "uptime_s": self.scenario.uptime_s,
                "duration_s": self.scenario.duration_s,
                "window_s": self.scenario.window_s,
                "offered_mbps": self.scenario.offered_mbps,
            },
            "seed": self.seed,
            "n_trials": self.n_trials,
            "cells": [cell.to_dict() for cell in self.cells],
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }

    def table(self) -> str:
        """Console-friendly text table: one row per policy."""
        detectors = self.detectors
        header = (f"{'policy':<12}{'duty':>8}{'disrupt':>9}{'effic':>8}"
                  + "".join(f"{'auc:' + name:>14}" for name in detectors))
        lines = [header, "-" * len(header)]
        for outcome in self.outcomes:
            row = (f"{outcome.policy:<12}{outcome.jam_duty:>8.4f}"
                   f"{outcome.disruption:>9.3f}{outcome.efficiency:>8.1f}")
            for name in detectors:
                row += f"{self.auc_for(outcome.policy, name):>14.3f}"
            lines.append(row)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The tournament


def _policy_outcome(policy: JamPolicy,
                    observations: list[TrialObservation]) -> PolicyOutcome:
    """Aggregate one policy's efficiency numbers over its trials."""
    clean_prr = float(np.mean([o.clean_prr for o in observations]))
    jammed_prr = float(np.mean([o.jammed_prr for o in observations]))
    total_airtime = float(sum(o.jam_airtime_s for o in observations))
    total_time = float(sum(o.duration_s for o in observations))
    disruption = 0.0
    if clean_prr > 0.0:
        disruption = max(0.0, (clean_prr - jammed_prr) / clean_prr)
    duty = total_airtime / total_time if total_time > 0 else 0.0
    efficiency = disruption / duty if duty > 0 else 0.0
    return PolicyOutcome(
        policy=policy.name, jam_probability=policy.jam_probability,
        clean_prr=clean_prr, jammed_prr=jammed_prr,
        disruption=disruption, jam_duty=duty, efficiency=efficiency,
        jam_bursts=sum(o.jam_bursts for o in observations),
        triggers_seen=sum(o.triggers_seen for o in observations),
    )


def _split_train_test(features: np.ndarray, labels: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray,
                                 np.ndarray, np.ndarray]:
    """Deterministic interleaved split: even windows train, odd test."""
    idx = np.arange(features.shape[0])
    train = idx % 2 == 0
    return (features[train], labels[train],
            features[~train], labels[~train])


def run_tournament(policies: list[JamPolicy] | None = None,
                   detectors: list[Detector] | None = None,
                   scenario: DefenseScenario | None = None,
                   n_trials: int = 4, seed: int = 1, workers: int = 1,
                   telemetry: "Telemetry | None" = None,
                   resilience: "ResilienceConfig | None" = None,
                   fault_injector: "WorkerFaultInjector | None" = None
                   ) -> TournamentResult:
    """Sweep a (policy x detector) grid and score every pairing.

    The policy axis fans out through the fault-tolerant job layer —
    trials are seeded by grid position, detector fits by
    ``(seed, policy, detector)`` — so the full result is
    byte-identical for any ``workers`` count and across
    checkpoint resumes.
    """
    if n_trials < 1:
        raise ConfigurationError("n_trials must be >= 1")
    scenario = scenario if scenario is not None else DefenseScenario()
    policies = policies if policies is not None else [ALWAYS_JAM]
    detectors = detectors if detectors is not None else default_detectors()
    if not policies:
        raise ConfigurationError("at least one policy is required")
    if not detectors:
        raise ConfigurationError("at least one detector is required")
    points = [(scenario, policy) for policy in policies]
    groups = resilient_sweep(
        _tournament_trial, points, trials=n_trials, workers=workers,
        seed_root=seed, telemetry=telemetry,
        config=resilience if resilience is not None else STRICT_RESILIENCE,
        fault_injector=fault_injector)

    result = TournamentResult(scenario=scenario, seed=seed,
                              n_trials=n_trials)
    total_windows = 0
    for policy_index, (policy, observations) in enumerate(
            zip(policies, groups)):
        features = np.concatenate([o.features for o in observations])
        labels = np.concatenate([o.labels for o in observations])
        total_windows += labels.size
        train_x, train_y, test_x, test_y = _split_train_test(features,
                                                             labels)
        result.outcomes.append(_policy_outcome(policy, observations))
        for detector_index, detector in enumerate(detectors):
            fit_rng = np.random.default_rng(
                [seed, _FIT_DOMAIN, policy_index, detector_index])
            detector.fit(train_x, train_y, fit_rng)
            curve = roc_curve(detector.score(test_x), test_y)
            result.curves[(policy.name, detector.name)] = curve
            result.cells.append(TournamentCell(
                policy=policy.name, detector=detector.name,
                auc=curve.auc, train_windows=int(train_y.size),
                test_windows=int(test_y.size)))
    if telemetry is not None:
        metrics = telemetry.metrics
        metrics.counter(RUNS_COUNTER).inc()
        metrics.counter(TRIALS_COUNTER).inc(len(policies) * n_trials)
        metrics.counter(WINDOWS_COUNTER).inc(total_windows)
        metrics.counter(CELLS_COUNTER).inc(len(result.cells))
    return result


#: Sanity re-export so ``feature_matrix``-shaped consumers can assert
#: the tournament and the extractor agree on the layout.
N_FEATURES = len(FEATURE_NAMES)
