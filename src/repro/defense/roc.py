"""ROC analysis for jamming detectors.

A detector emits one scalar score per observation window, higher =
more jam-like; sweeping a decision threshold over those scores traces
the receiver operating characteristic.  This module computes the full
curve (one operating point per distinct score value, ties collapsed),
its area (trapezoidal — with tied scores this equals the
Mann-Whitney U statistic, so the AUC is invariant under any strictly
order-preserving transform of the scores), and threshold selection
against a false-positive budget.

Degenerate inputs — every window the same class — have no defined
ROC; they raise :class:`~repro.errors.ConfigurationError` rather than
dividing by zero, and the tournament treats them as a configuration
mistake (a scenario that produced no clean or no jammed windows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RocCurve:
    """One detector's full threshold sweep.

    ``thresholds`` are the distinct score values in descending order;
    operating point ``i`` classifies "jammed" when
    ``score >= thresholds[i]``.  The arrays carry a leading
    ``(fpr=0, tpr=0)`` anchor (threshold ``+inf``) and end at
    ``(1, 1)``; both rates are non-decreasing along the sweep.
    """

    thresholds: np.ndarray
    fpr: np.ndarray
    tpr: np.ndarray
    auc: float
    positives: int
    negatives: int

    def operating_point(self, max_fpr: float) -> tuple[float, float, float]:
        """The ``(threshold, fpr, tpr)`` maximizing TPR within an FP budget.

        Picks the highest-TPR point whose false-positive rate does not
        exceed ``max_fpr``; the ``(0, 0)`` anchor guarantees one exists.
        """
        if not 0.0 <= max_fpr <= 1.0:
            raise ConfigurationError("max_fpr must be in [0, 1]")
        allowed = np.flatnonzero(self.fpr <= max_fpr)
        best = allowed[np.argmax(self.tpr[allowed])]
        return (float(self.thresholds[best]), float(self.fpr[best]),
                float(self.tpr[best]))

    def to_dict(self) -> dict:
        """JSON-compatible form for perf records and reports."""
        return {
            "thresholds": [float(t) for t in self.thresholds],
            "fpr": [float(f) for f in self.fpr],
            "tpr": [float(t) for t in self.tpr],
            "auc": float(self.auc),
            "positives": int(self.positives),
            "negatives": int(self.negatives),
        }


def roc_curve(scores: np.ndarray, labels: np.ndarray) -> RocCurve:
    """Sweep every distinct score as a threshold.

    ``labels`` are 0 (clean) / 1 (jammed).  Requires at least one
    window of each class.
    """
    s = np.asarray(scores, dtype=np.float64).ravel()
    y = np.asarray(labels).ravel()
    if s.shape != y.shape:
        raise ConfigurationError("scores and labels must have equal length")
    if s.size == 0:
        raise ConfigurationError("cannot build an ROC from zero windows")
    if not np.all(np.isfinite(s)):
        raise ConfigurationError("scores must be finite")
    positive = y != 0
    n_pos = int(np.count_nonzero(positive))
    n_neg = int(y.size - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise ConfigurationError(
            f"ROC needs both classes; got {n_pos} jammed and {n_neg} "
            "clean windows"
        )
    order = np.argsort(-s, kind="stable")
    sorted_scores = s[order]
    sorted_pos = positive[order].astype(np.int64)
    tp = np.cumsum(sorted_pos)
    fp = np.cumsum(1 - sorted_pos)
    # Collapse tied scores: an operating point exists only where the
    # score actually drops, otherwise the "threshold" between tied
    # values is not realizable.
    distinct = np.flatnonzero(np.diff(sorted_scores) != 0.0)
    last = np.concatenate((distinct, [s.size - 1]))
    tpr = np.concatenate(([0.0], tp[last] / n_pos))
    fpr = np.concatenate(([0.0], fp[last] / n_neg))
    thresholds = np.concatenate(([np.inf], sorted_scores[last]))
    return RocCurve(
        thresholds=thresholds, fpr=fpr, tpr=tpr,
        auc=float(np.trapezoid(tpr, fpr)),
        positives=n_pos, negatives=n_neg,
    )


def auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC (ties credited 1/2, Mann-Whitney)."""
    return roc_curve(scores, labels).auc
