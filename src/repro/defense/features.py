"""Victim-side link features for jamming detection.

JamShield (PAPERS.md) shows over-the-air jamming is best detected by a
classifier over *link* features rather than a single rule; this module
turns the raw observations a monitoring access point already makes —
per-frame ``(time, rssi, success)`` events and periodic CCA busy
samples — into fixed-length windowed feature vectors:

* packet reception ratio (PRR) and frame counts,
* inter-arrival-time statistics (mean, coefficient of variation),
* mean / spread of received signal strength,
* channel-busy fraction plus busy-run (burst-length) statistics —
  the histogram dimension that separates a constant jammer (one
  endless run) from a reactive one (many short runs),
* the Xu-et-al *consistency* product: losses at high signal strength.

The scalar helpers at the top (:func:`delivery_ratio`,
:func:`busy_fraction`, :func:`mean_rssi_dbm`) are the single source of
truth for that arithmetic — :mod:`repro.apps.jamming_detector`
delegates to them, so the rule-based classifier and the ML feature
path can never drift apart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.mac.medium import Medium
    from repro.mac.nodes import AccessPoint
    from repro.mac.simkernel import SimKernel

#: Feature-vector layout, in :meth:`WindowFeatures.vector` order.
FEATURE_NAMES: tuple[str, ...] = (
    "prr",
    "frames_seen",
    "mean_rssi_dbm",
    "rssi_spread_db",
    "iat_mean_s",
    "iat_cv",
    "busy_fraction",
    "busy_run_mean_s",
    "busy_run_max_s",
    "inconsistency",
)

#: RSSI placeholder for windows with no observed frames: the noise
#: floor of the MAC-plane medium, so "nothing heard" sits at the low
#: end of the scale instead of at ``-inf``.
NO_FRAME_RSSI_DBM = -95.0

#: RSSI pivot of the consistency feature (matches the rule-based
#: classifier's default high-signal threshold).
CONSISTENCY_RSSI_DBM = -75.0

#: Logistic width (dB) of the consistency feature's RSSI gate.
CONSISTENCY_RSSI_SCALE_DB = 4.0


# ---------------------------------------------------------------------------
# Scalar link arithmetic (shared with repro.apps.jamming_detector)


def delivery_ratio(delivered: int, seen: int) -> float:
    """Delivered over observed frames; a silent link counts as perfect."""
    if seen == 0:
        return 1.0
    return delivered / seen


def busy_fraction(hits: int, samples: int) -> float:
    """Fraction of CCA samples that reported busy (0 with no samples)."""
    if samples == 0:
        return 0.0
    return hits / samples


def mean_rssi_dbm(rssi_sum_dbm: float, seen: int) -> float:
    """Mean RSSI of observed frames (``-inf`` with none observed)."""
    if seen == 0:
        return float("-inf")
    return rssi_sum_dbm / seen


def busy_runs(busy: np.ndarray) -> np.ndarray:
    """Lengths (in samples) of each consecutive busy run.

    ``busy`` is a boolean CCA sample sequence; the return value is the
    empirical busy-burst-length histogram's raw data.
    """
    flags = np.asarray(busy, dtype=bool)
    if flags.size == 0:
        return np.zeros(0, dtype=np.int64)
    edges = np.diff(flags.astype(np.int8))
    starts = np.flatnonzero(edges == 1) + 1
    ends = np.flatnonzero(edges == -1) + 1
    if flags[0]:
        starts = np.concatenate(([0], starts))
    if flags[-1]:
        ends = np.concatenate((ends, [flags.size]))
    return (ends - starts).astype(np.int64)


# ---------------------------------------------------------------------------
# Windowed features


@dataclass(frozen=True)
class WindowFeatures:
    """One observation window's feature vector, with provenance."""

    start_s: float
    duration_s: float
    frames_seen: int
    frames_delivered: int
    prr: float
    mean_rssi_dbm: float
    rssi_spread_db: float
    iat_mean_s: float
    iat_cv: float
    busy_fraction: float
    busy_run_mean_s: float
    busy_run_max_s: float
    inconsistency: float

    def vector(self) -> np.ndarray:
        """The feature vector in :data:`FEATURE_NAMES` order."""
        return np.array([getattr(self, name) for name in FEATURE_NAMES],
                        dtype=np.float64)


def _consistency_score(prr: float, rssi_dbm: float) -> float:
    """The Xu-et-al inconsistency: losses *at high signal strength*.

    A smooth product of loss fraction and an RSSI sigmoid centred on
    :data:`CONSISTENCY_RSSI_DBM` — near zero for healthy links and for
    weak links whose losses the channel explains, near the loss
    fraction when strong frames are dying.
    """
    if not math.isfinite(rssi_dbm):
        return 0.0
    gate = 1.0 / (1.0 + math.exp(
        -(rssi_dbm - CONSISTENCY_RSSI_DBM) / CONSISTENCY_RSSI_SCALE_DB))
    return (1.0 - prr) * gate


def extract_windows(frames: list[tuple[float, float, bool]],
                    busy: list[tuple[float, bool]],
                    duration_s: float, window_s: float,
                    start_s: float = 0.0) -> list[WindowFeatures]:
    """Cut a raw link trace into fixed windows of features.

    ``frames`` holds ``(time, rssi_dbm, delivered)`` per observed data
    frame; ``busy`` holds ``(time, is_busy)`` per CCA sample.  Windows
    tile ``[start_s, start_s + duration_s)``; a trailing partial
    window shorter than half ``window_s`` is dropped (its statistics
    would be noise).
    """
    if window_s <= 0:
        raise ConfigurationError("window_s must be positive")
    if duration_s < window_s:
        raise ConfigurationError("duration_s must cover at least one window")
    n_windows = int(duration_s / window_s + 0.5)
    frame_times = np.array([t for t, _r, _d in frames], dtype=np.float64)
    windows: list[WindowFeatures] = []
    for w in range(n_windows):
        lo = start_s + w * window_s
        hi = lo + window_s
        in_window = [(t, r, d) for t, r, d in frames if lo <= t < hi]
        seen = len(in_window)
        delivered = sum(1 for _t, _r, d in in_window if d)
        prr = delivery_ratio(delivered, seen)
        if seen:
            rssi = np.array([r for _t, r, _d in in_window])
            rssi_mean = float(rssi.mean())
            rssi_spread = float(rssi.std())
        else:
            rssi_mean = NO_FRAME_RSSI_DBM
            rssi_spread = 0.0
        # Inter-arrival statistics; a window with < 2 frames has no
        # arrival process to speak of, so it reports the window length
        # (the censoring bound) with zero variation.
        times = frame_times[(frame_times >= lo) & (frame_times < hi)]
        if times.size >= 2:
            iat = np.diff(np.sort(times))
            iat_mean = float(iat.mean())
            iat_cv = float(iat.std() / iat.mean()) if iat.mean() > 0 else 0.0
        else:
            iat_mean = window_s
            iat_cv = 0.0
        samples = [flag for t, flag in busy if lo <= t < hi]
        hits = sum(1 for flag in samples if flag)
        frac = busy_fraction(hits, len(samples))
        runs = busy_runs(np.array(samples, dtype=bool))
        sample_s = window_s / len(samples) if samples else 0.0
        run_mean_s = float(runs.mean()) * sample_s if runs.size else 0.0
        run_max_s = float(runs.max()) * sample_s if runs.size else 0.0
        windows.append(WindowFeatures(
            start_s=lo, duration_s=window_s,
            frames_seen=seen, frames_delivered=delivered, prr=prr,
            mean_rssi_dbm=rssi_mean, rssi_spread_db=rssi_spread,
            iat_mean_s=iat_mean, iat_cv=iat_cv,
            busy_fraction=frac, busy_run_mean_s=run_mean_s,
            busy_run_max_s=run_max_s,
            inconsistency=_consistency_score(prr, rssi_mean),
        ))
    return windows


def feature_matrix(windows: list[WindowFeatures]) -> np.ndarray:
    """Stack window vectors into an ``(n_windows, n_features)`` matrix."""
    if not windows:
        return np.zeros((0, len(FEATURE_NAMES)), dtype=np.float64)
    return np.stack([w.vector() for w in windows])


class LinkTraceRecorder:
    """Raw victim-side trace capture at a monitoring access point.

    Attaches to the AP's per-frame monitor hook and schedules periodic
    CCA sampling on the kernel — the same two observables
    :class:`repro.apps.jamming_detector.JammingDetector` aggregates,
    kept raw here so they can be windowed afterwards::

        recorder = LinkTraceRecorder(kernel, medium, ap)
        recorder.start(duration_s)
        ... run traffic ...
        windows = recorder.windows(window_s=0.02)
    """

    def __init__(self, kernel: "SimKernel", medium: "Medium",
                 ap: "AccessPoint",
                 cca_sample_interval_s: float = 5e-4) -> None:
        if cca_sample_interval_s <= 0:
            raise ConfigurationError(
                "cca_sample_interval_s must be positive")
        self._kernel = kernel
        self._medium = medium
        self._ap = ap
        self._cca_interval_s = cca_sample_interval_s
        self._start_s = 0.0
        self._stop_at = 0.0
        self.frames: list[tuple[float, float, bool]] = []
        self.busy: list[tuple[float, bool]] = []
        ap.monitor = self._on_frame

    def _on_frame(self, rssi_dbm: float | None, success: bool,
                  time_s: float) -> None:
        if rssi_dbm is None:
            return
        self.frames.append((time_s, rssi_dbm, success))

    def start(self, duration_s: float) -> None:
        """Begin CCA sampling for ``duration_s`` from the current time."""
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        self._start_s = self._kernel.now
        self._stop_at = self._kernel.now + duration_s
        self._kernel.schedule(self._cca_interval_s, self._sample_cca)

    def _sample_cca(self) -> None:
        if self._kernel.now > self._stop_at:
            return
        self.busy.append((self._kernel.now,
                          self._medium.is_busy(self._ap.name,
                                               self._kernel.now)))
        self._kernel.schedule(self._cca_interval_s, self._sample_cca)

    @property
    def duration_s(self) -> float:
        """Length of the recorded observation interval."""
        return self._stop_at - self._start_s

    def windows(self, window_s: float) -> list[WindowFeatures]:
        """The recorded trace cut into feature windows."""
        return extract_windows(self.frames, self.busy, self.duration_s,
                               window_s, start_s=self._start_s)
