"""Jammer-side randomized policies: efficiency vs detectability.

An & Weber (PAPERS.md) formalize what a carrier-sense monitor can and
cannot see of a *random* reactive jammer: jamming every packet
maximizes disruption but lights up every victim-side statistic, while
jamming each trigger with probability ``p < 1`` (plus duty jitter and
randomized holdoffs) pulls the victim's observed feature distribution
back toward the clean one at the cost of letting traffic through.

A :class:`JamPolicy` is the pure value object; a :class:`PolicyGate`
binds it to one seeded generator and answers the three questions the
trigger/TX gate asks — *fire at all?  for how long?  then hold off
how long?* — so the same gate logic layers onto any jammer plane.
:class:`RandomizedJammerNode` is that layering on the MAC-plane
:class:`~repro.mac.nodes.JammerNode` the Fig. 10/11 harness uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import units
from repro.core.presets import JammerPersonality
from repro.errors import ConfigurationError
from repro.mac.medium import Emission, Medium
from repro.mac.nodes import JammerNode
from repro.mac.simkernel import SimKernel


@dataclass(frozen=True)
class JamPolicy:
    """A randomized response policy on top of a reactive personality.

    Attributes:
        name: Label used in tournament tables and telemetry.
        jam_probability: Bernoulli ``p`` that an eligible trigger
            actually fires a burst (1.0 = the deterministic jammer).
        duty_jitter: Fractional burst-length jitter; each fired burst's
            uptime is scaled by a uniform draw from
            ``[1 - j, 1 + j]``.  0 keeps the personality's uptime.
        off_period_s: Mean of an exponential holdoff sampled after
            each burst, during which further triggers are ignored.
            0 disables the holdoff.
    """

    name: str
    jam_probability: float = 1.0
    duty_jitter: float = 0.0
    off_period_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.jam_probability <= 1.0:
            raise ConfigurationError("jam_probability must be in (0, 1]")
        if not 0.0 <= self.duty_jitter < 1.0:
            raise ConfigurationError("duty_jitter must be in [0, 1)")
        if self.off_period_s < 0.0:
            raise ConfigurationError("off_period_s must be >= 0")

    @property
    def randomized(self) -> bool:
        """Whether any decision of this policy involves randomness."""
        return (self.jam_probability < 1.0 or self.duty_jitter > 0.0
                or self.off_period_s > 0.0)

    def describe(self) -> str:
        """One-line summary for console tables."""
        parts = [f"p={self.jam_probability:g}"]
        if self.duty_jitter:
            parts.append(f"jitter={self.duty_jitter:g}")
        if self.off_period_s:
            parts.append(f"off={self.off_period_s * 1e3:g}ms")
        return " ".join(parts)


#: The deterministic reference policy: every trigger fires a burst.
ALWAYS_JAM = JamPolicy(name="always", jam_probability=1.0)


def randomized_policy(jam_probability: float, duty_jitter: float = 0.0,
                      off_period_s: float = 0.0) -> JamPolicy:
    """A named randomized policy (``p0.5`` style labels)."""
    name = f"p{jam_probability:g}"
    if duty_jitter:
        name += f"-j{duty_jitter:g}"
    if off_period_s:
        name += f"-off{off_period_s * 1e3:g}ms"
    return JamPolicy(name=name, jam_probability=jam_probability,
                     duty_jitter=duty_jitter, off_period_s=off_period_s)


class PolicyGate:
    """One seeded decision stream for one policy instance.

    Pure given ``(policy, rng)``: the gate draws from the supplied
    generator only, and only when the policy is actually randomized in
    that dimension — ``ALWAYS_JAM`` consumes zero draws, so layering
    the gate onto a deterministic jammer changes nothing downstream.
    """

    def __init__(self, policy: JamPolicy, rng: np.random.Generator) -> None:
        self.policy = policy
        self._rng = rng
        self.triggers_seen = 0
        self.triggers_fired = 0
        self.triggers_suppressed = 0

    def should_fire(self) -> bool:
        """Bernoulli(``p``) gate decision for one eligible trigger."""
        self.triggers_seen += 1
        fire = self.policy.jam_probability >= 1.0 \
            or self._rng.random() < self.policy.jam_probability
        if fire:
            self.triggers_fired += 1
        else:
            self.triggers_suppressed += 1
        return fire

    def uptime_s(self, base_uptime_s: float) -> float:
        """The burst length for one fired trigger, jitter applied."""
        jitter = self.policy.duty_jitter
        if jitter <= 0.0:
            return base_uptime_s
        scale = 1.0 + jitter * (2.0 * self._rng.random() - 1.0)
        return base_uptime_s * scale

    def holdoff_s(self) -> float:
        """Exponential off-period sampled after one burst."""
        mean = self.policy.off_period_s
        if mean <= 0.0:
            return 0.0
        return -mean * math.log(1.0 - self._rng.random())


class RandomizedJammerNode(JammerNode):
    """A MAC-plane reactive jammer whose TX gate consults a policy.

    Identical trigger path to :class:`~repro.mac.nodes.JammerNode`
    (frame-start listener, sensitivity check, busy-until lockout), but
    every eligible trigger is filtered through a :class:`PolicyGate`:
    suppressed with probability ``1 - p``, fired with jittered uptime,
    then locked out for the burst plus a sampled holdoff.  Continuous
    personalities are rejected — randomizing an always-on carrier is
    meaningless.
    """

    def __init__(self, name: str, kernel: SimKernel, medium: Medium,
                 personality: JammerPersonality, tx_power_dbm: float,
                 policy: JamPolicy, rng: np.random.Generator,
                 response_time_s: float | None = None,
                 sensitivity_dbm: float = -80.0) -> None:
        if personality.continuous:
            raise ConfigurationError(
                "randomized policies apply to reactive personalities only")
        super().__init__(name, kernel, medium, personality, tx_power_dbm,
                         response_time_s=response_time_s,
                         sensitivity_dbm=sensitivity_dbm)
        self.gate = PolicyGate(policy, rng)
        #: Total transmitted jam airtime (jitter included), seconds.
        self.jam_airtime_s = 0.0

    def _on_frame_start(self, emission: Emission) -> None:
        if emission.src == self.name:
            return
        power = self._medium.rx_power_dbm(emission, self.name)
        if power is None or power < self._sensitivity_dbm:
            return
        now = emission.start
        if now < self._busy_until:
            return
        if not self.gate.should_fire():
            return
        delay_s = units.samples_to_seconds(self.personality.delay_samples)
        burst_start = now + self._response_time_s + delay_s
        burst_len = self.gate.uptime_s(self.personality.uptime_seconds)
        self._busy_until = burst_start + burst_len + self.gate.holdoff_s()
        self._medium.emit_jam(self.name, burst_start, burst_len,
                              self.tx_power_dbm)
        self.bursts += 1
        self.jam_airtime_s += burst_len
