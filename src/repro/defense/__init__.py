"""repro.defense — the victim's chair: ML jamming detection.

The paper closes by positioning the testbed as "an effective tool for
studying and developing countermeasures"; this package closes that
loop from the defender's side and arms the attacker's side against it:

* :mod:`repro.defense.features` — windowed feature extraction (PRR,
  inter-arrival statistics, busy-time histograms, RSSI consistency)
  from the victim-side MAC traces the simulator already produces.
  Also the single source of truth for the delivery-ratio /
  busy-fraction arithmetic the rule-based detector shares.
* :mod:`repro.defense.detectors` — detection models behind one
  :class:`~repro.defense.detectors.Detector` protocol: an online
  numpy-only logistic-regression classifier (seeded SGD) and the
  Xu-et-al consistency check recast as a graded baseline.
* :mod:`repro.defense.roc` — threshold sweeps, AUC, operating points.
* :mod:`repro.defense.policies` — jammer-side *randomized* reactive
  policies (jam probability ``p``, duty jitter, off-period sampling)
  that trade efficiency against detectability (An & Weber).
* :mod:`repro.defense.tournament` — attack-vs-detect tournaments:
  (policy x detector) grids swept through the fault-tolerant job
  layer, emitting deterministic efficiency-vs-AUC curves.
"""

from __future__ import annotations

from repro.defense.detectors import (
    Detector,
    OnlineLogisticDetector,
    RuleBasedDetector,
    default_detectors,
)
from repro.defense.features import (
    FEATURE_NAMES,
    LinkTraceRecorder,
    WindowFeatures,
    busy_fraction,
    busy_runs,
    delivery_ratio,
    extract_windows,
    feature_matrix,
    mean_rssi_dbm,
)
from repro.defense.policies import (
    ALWAYS_JAM,
    JamPolicy,
    PolicyGate,
    RandomizedJammerNode,
    randomized_policy,
)
from repro.defense.roc import RocCurve, auc, roc_curve
from repro.defense.tournament import (
    DefenseScenario,
    TournamentCell,
    TournamentResult,
    TrialObservation,
    run_tournament,
    run_trial,
)

__all__ = [
    "ALWAYS_JAM",
    "DefenseScenario",
    "Detector",
    "FEATURE_NAMES",
    "JamPolicy",
    "LinkTraceRecorder",
    "OnlineLogisticDetector",
    "PolicyGate",
    "RandomizedJammerNode",
    "RocCurve",
    "RuleBasedDetector",
    "TournamentCell",
    "TournamentResult",
    "TrialObservation",
    "WindowFeatures",
    "auc",
    "busy_fraction",
    "busy_runs",
    "default_detectors",
    "delivery_ratio",
    "extract_windows",
    "feature_matrix",
    "mean_rssi_dbm",
    "randomized_policy",
    "roc_curve",
    "run_tournament",
    "run_trial",
]
