"""Jamming detectors over windowed link features.

Two models behind one :class:`Detector` protocol:

* :class:`OnlineLogisticDetector` — an online logistic-regression
  classifier trained by seeded stochastic gradient descent.  Pure
  numpy (the container has no sklearn and must not grow one), with
  per-feature standardization fitted from the training split and L2
  regularization.  The randomness of the epoch shuffles enters only
  through the caller-supplied generator, so a fit is a pure function
  of ``(X, y, rng)`` — the tournament's byte-identity guarantee rests
  on that.
* :class:`RuleBasedDetector` — the Xu, Trappe, Zhang & Wood
  consistency check (the paper's reference [15], already shipped as
  :class:`repro.apps.jamming_detector.JammingDetector`) recast as a
  *graded* score so it can be swept through an ROC like any other
  model.  It is the baseline the ML detector has to beat.

Scores are "higher = more jam-like" for every detector, which is all
:mod:`repro.defense.roc` assumes.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.defense.features import FEATURE_NAMES
from repro.errors import ConfigurationError

_IDX = {name: i for i, name in enumerate(FEATURE_NAMES)}


@runtime_checkable
class Detector(Protocol):
    """What the tournament requires of a detection model."""

    name: str

    def fit(self, features: np.ndarray, labels: np.ndarray,
            rng: np.random.Generator) -> None:
        """Train on windows (rows) and 0/1 labels."""

    def score(self, features: np.ndarray) -> np.ndarray:
        """Per-window jam scores, higher = more jam-like."""


class OnlineLogisticDetector:
    """Seeded-SGD logistic regression on standardized features."""

    name = "logistic"

    def __init__(self, learning_rate: float = 0.15, epochs: int = 60,
                 l2: float = 1e-3) -> None:
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if l2 < 0:
            raise ConfigurationError("l2 must be >= 0")
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.l2 = float(l2)
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self._weights: np.ndarray | None = None
        self._bias = 0.0

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._weights is not None

    def _standardize(self, features: np.ndarray) -> np.ndarray:
        assert self._mean is not None and self._scale is not None
        return (features - self._mean) / self._scale

    def fit(self, features: np.ndarray, labels: np.ndarray,
            rng: np.random.Generator) -> None:
        """One pass of seeded SGD per epoch over shuffled windows."""
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ConfigurationError(
                "features must be (n_windows, n_features) matching labels")
        if X.shape[0] == 0:
            raise ConfigurationError("cannot fit on an empty window set")
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0  # constant features carry no signal
        self._scale = scale
        Z = self._standardize(X)
        w = np.zeros(Z.shape[1], dtype=np.float64)
        b = 0.0
        lr = self.learning_rate
        for _epoch in range(self.epochs):
            order = rng.permutation(Z.shape[0])
            for i in order:
                z = Z[i]
                p = 1.0 / (1.0 + np.exp(-(z @ w + b)))
                grad = p - y[i]
                w -= lr * (grad * z + self.l2 * w)
                b -= lr * grad
        self._weights = w
        self._bias = b

    def score(self, features: np.ndarray) -> np.ndarray:
        """P(jammed) per window under the fitted model."""
        if self._weights is None:
            raise ConfigurationError("fit() must be called before score()")
        Z = self._standardize(np.asarray(features, dtype=np.float64))
        return 1.0 / (1.0 + np.exp(-(Z @ self._weights + self._bias)))


class RuleBasedDetector:
    """The Xu-et-al consistency check as a graded jam score.

    Mirrors :meth:`repro.apps.jamming_detector.JammingDetector.classify`
    window-by-window, but instead of a categorical verdict it emits a
    score built from the same three observables (PRR, mean RSSI, busy
    fraction): near zero for healthy and channel-explained losses,
    the loss fraction for a consistency violation, the busy fraction
    for a pinned medium.  ``fit`` is a no-op — the thresholds *are*
    the model — which is exactly what makes it the baseline.
    """

    name = "xu-rule"

    def __init__(self, pdr_threshold: float = 0.6,
                 rssi_threshold_dbm: float = -75.0,
                 busy_threshold: float = 0.9) -> None:
        if not 0.0 < pdr_threshold < 1.0:
            raise ConfigurationError("pdr_threshold must be in (0, 1)")
        if not 0.0 < busy_threshold <= 1.0:
            raise ConfigurationError("busy_threshold must be in (0, 1]")
        self.pdr_threshold = float(pdr_threshold)
        self.rssi_threshold_dbm = float(rssi_threshold_dbm)
        self.busy_threshold = float(busy_threshold)

    def fit(self, features: np.ndarray, labels: np.ndarray,
            rng: np.random.Generator) -> None:
        """Nothing to learn: the thresholds are the model."""
        del features, labels, rng

    def score(self, features: np.ndarray) -> np.ndarray:
        X = np.asarray(features, dtype=np.float64)
        frames = X[:, _IDX["frames_seen"]]
        prr = X[:, _IDX["prr"]]
        rssi = X[:, _IDX["mean_rssi_dbm"]]
        busy = X[:, _IDX["busy_fraction"]]
        scores = np.zeros(X.shape[0], dtype=np.float64)
        # No traffic observed: only a pinned-busy medium is suspicious
        # (the constant jammer silencing the client entirely).
        silent = frames == 0
        scores[silent] = np.where(busy[silent] > self.busy_threshold,
                                  busy[silent], 0.0)
        # Traffic observed: healthy and channel-explained losses score
        # ~0; losses at high RSSI (the consistency violation) score
        # the loss fraction; a pinned medium dominates either way.
        active = ~silent
        loss = 1.0 - prr
        violation = (prr < self.pdr_threshold) \
            & (rssi >= self.rssi_threshold_dbm)
        scores[active] = np.where(violation[active], loss[active], 0.0)
        pinned = active & (busy > self.busy_threshold)
        scores[pinned] = np.maximum(scores[pinned], busy[pinned])
        return scores


def default_detectors() -> list[Detector]:
    """The tournament's default field: the ML model and its baseline."""
    return [OnlineLogisticDetector(), RuleBasedDetector()]
