"""Table 1: insertion losses of the 5-port network.

The paper characterizes its splitter network with a VNA; our bench
re-measures the model's port-to-port losses with the probe-tone
routine and prints the same 5x5 table.
"""

from __future__ import annotations

from repro.channel.splitter import NUM_PORTS, FivePortNetwork


def measure_insertion_losses(network: FivePortNetwork | None = None,
                             ) -> dict[tuple[int, int], float | None]:
    """VNA-style measurement of every port pair."""
    network = network if network is not None else FivePortNetwork()
    return network.vna_characterize()


def format_table(measured: dict[tuple[int, int], float | None]) -> str:
    """Render the measurement as the paper's Table 1 layout."""
    header = "In\\Out " + " ".join(f"{p:>9d}" for p in range(1, NUM_PORTS + 1))
    lines = [header]
    for src in range(1, NUM_PORTS + 1):
        cells = []
        for dst in range(1, NUM_PORTS + 1):
            if src == dst:
                cells.append(f"{'-':>9}")
                continue
            loss = measured.get((src, dst))
            cells.append(f"{'-':>9}" if loss is None
                         else f"{loss:.1f}dB".rjust(9))
        lines.append(f"{src:>6d} " + " ".join(cells))
    return "\n".join(lines)
