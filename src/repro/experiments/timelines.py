"""Fig. 5 / §3.1: the reactive jamming timeline.

Two complementary measurements:

* :func:`jamming_timelines` — the analytic budget derived from the
  hardware model's constants (what §3.1 tabulates), and
* :func:`measure_response_time` — an end-to-end measurement on the
  waveform plane: transmit a known preamble, find the first jamming
  sample, and report the observed trigger-to-RF latency.  This is the
  cross-check that the model's constants are what the data path
  actually does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.channel.awgn import awgn
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.jammer import ReactiveJammer
from repro.core.presets import reactive_jammer
from repro.core.timeline import JammingTimeline, timeline_for
from repro.errors import SimulationError
from repro.hw.register_map import CORRELATOR_LENGTH
from repro.hw.trigger import TriggerSource


def jamming_timelines() -> JammingTimeline:
    """The analytic latency budget of the default configuration."""
    return timeline_for()


@dataclass(frozen=True)
class MeasuredResponse:
    """End-to-end response measured on the waveform plane (seconds)."""

    detection_latency: float
    rf_response_latency: float

    @property
    def total(self) -> float:
        """Signal-start to first jamming RF sample."""
        return self.detection_latency + self.rf_response_latency


def measure_response_time(seed: int = 5) -> MeasuredResponse:
    """Measure T_xcorr_det and T_init on the actual data path.

    Injects a 64-sample preamble into noise, runs the jammer, and
    reads the detection and first-TX timestamps off the event records.
    """
    rng = np.random.default_rng(seed)
    template = np.exp(1j * rng.uniform(0, 2 * np.pi, CORRELATOR_LENGTH))
    preamble_start = 1000
    rx = awgn(4000, 1e-6, rng)
    rx[preamble_start:preamble_start + CORRELATOR_LENGTH] += 0.5 * template

    jammer = ReactiveJammer()
    jammer.configure(
        detection=DetectionConfig(template=template, xcorr_threshold=30_000),
        events=JammingEventBuilder().on_correlation(),
        personality=reactive_jammer(uptime_seconds=1e-5),
    )
    report = jammer.run(rx)
    xcorr_hits = report.detections_by_source(TriggerSource.XCORR)
    if not xcorr_hits or not report.jams:
        raise SimulationError("the calibration preamble was not detected")
    detection = xcorr_hits[0].time
    jam = report.jams[0]
    return MeasuredResponse(
        detection_latency=units.samples_to_seconds(
            detection - preamble_start + 1
        ),
        rf_response_latency=units.samples_to_seconds(jam.start - detection),
    )
