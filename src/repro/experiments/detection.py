"""Detection-performance characterization (paper Figs. 6, 7, 8).

Methodology mirrors paper §3.2:

* a second USRP transmits WiFi frames (complete frames, or
  pseudo-frames carrying a single preamble) over a wired link,
* the received SNR is set by scaling the transmit amplitude against a
  fixed noise floor and "measured independently",
* for a chosen false-alarm rate, the correlator threshold is derived
  from the trigger statistics of a 50-ohm-terminated (noise-only)
  receiver, and
* the probability of detection is the fraction of frames that produce
  at least one trigger.

False-alarm calibration: on sign-sliced white noise the correlator's
real and imaginary accumulators are sums of 128 independent +-c terms,
hence Gaussian with variance E = sum(cI^2 + cQ^2); the squared metric
is then exponential with mean 2E and the per-sample exceedance of a
threshold T is exp(-T / (2E)).  Setting the expected trigger rate
``P * sample_rate`` equal to the target false-alarm rate gives a
closed-form threshold, which :func:`measured_false_alarm_rate` checks
empirically (tests do this at measurable rates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import units
from repro.channel.awgn import awgn
from repro.core.coeffs import (
    wifi_long_preamble_template,
    wifi_short_preamble_template,
)
from repro.dsp.resample import resample
from repro.errors import ConfigurationError
from repro.hw.cross_correlator import CrossCorrelator, quantize_coefficients
from repro.hw.energy_differentiator import (
    DEFAULT_DELAY,
    DEFAULT_WINDOW,
    EnergyDifferentiator,
)
from repro.hw.trigger import rising_edges
from repro.kernels import (
    energy_detect_batch,
    prepare_coefficients,
    xcorr_detect_batch,
)
from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
from repro.phy.wifi.params import WIFI_SAMPLE_RATE, WifiRate
from repro.phy.wifi.preamble import long_preamble, long_training_symbol, short_preamble
from repro.runtime.cache import cached_artifact
from repro.runtime.jobs import (
    STRICT_RESILIENCE,
    ResilienceConfig,
    resilient_sweep,
)

if TYPE_CHECKING:
    from repro.faults.workers import WorkerFaultInjector
    from repro.telemetry.session import Telemetry

#: The paper's frame pacing: 130 frames per second, 10,000 frames.
PAPER_FRAME_RATE = 130
PAPER_FRAME_COUNT = 10_000

#: Gap of noise-only samples inserted before each frame (warm-up for
#: the streaming blocks and separation between detection windows).
GUARD_SAMPLES = 512

#: Frames folded into one sweep trial.  Each trial is one schedulable
#: unit of the :mod:`repro.runtime.sweep` grid, so this sets the
#: load-balancing granularity of a parallel curve run.
FRAMES_PER_TRIAL = 50

#: Seed-sequence spice decorrelating the frame-synthesis generator
#: from the per-trial noise generators that share the same user seed.
_FRAME_SEED_KEY = 0xF4A3


@dataclass(frozen=True)
class DetectionPoint:
    """One point of a detection-probability curve."""

    snr_db: float
    detection_probability: float
    mean_detections_per_frame: float
    n_frames: int


def coefficient_energy(coeffs_i: np.ndarray, coeffs_q: np.ndarray) -> float:
    """E = sum(cI^2 + cQ^2), the accumulator variance on sign noise."""
    return float(np.sum(np.asarray(coeffs_i, dtype=np.float64) ** 2)
                 + np.sum(np.asarray(coeffs_q, dtype=np.float64) ** 2))


def threshold_for_false_alarm_rate(coeffs_i: np.ndarray, coeffs_q: np.ndarray,
                                   fa_per_second: float,
                                   sample_rate: float = units.BASEBAND_RATE) -> int:
    """Correlator threshold achieving the target false-alarm rate.

    Uses the exponential-tail model described in the module docstring.
    """
    if fa_per_second <= 0:
        raise ConfigurationError("fa_per_second must be positive")
    if fa_per_second >= sample_rate:
        raise ConfigurationError("false-alarm rate above the sample rate")
    energy = coefficient_energy(coeffs_i, coeffs_q)
    if energy == 0:
        raise ConfigurationError("zero-energy coefficient banks")
    threshold = 2.0 * energy * math.log(sample_rate / fa_per_second)
    return int(round(threshold))


#: Row width the noise-only calibration folds its chunks into.
_FA_ROW_SAMPLES = 1 << 13


def measured_false_alarm_rate(correlator: CrossCorrelator, duration_s: float,
                              rng: np.random.Generator,
                              chunk_samples: int = 1 << 18) -> float:
    """Empirical triggers/second on a noise-only (terminated) input.

    The noise is drawn in ``chunk_samples`` pieces (the RNG draw order
    is part of the seeded contract) but each chunk runs through the
    chained batch kernel as a ``rows x _FA_ROW_SAMPLES`` block, with
    the sign history and last-trigger state carried across chunks —
    byte-identical to streaming the same noise through
    ``correlator.process`` from reset state.
    """
    total_samples = int(duration_s * units.BASEBAND_RATE)
    prepared = correlator.prepared_coefficients
    threshold = correlator.threshold
    backend = correlator.backend
    triggers = 0
    history = None
    last = False
    remaining = total_samples
    while remaining > 0:
        n = min(chunk_samples, remaining)
        n_rows = -(-n // _FA_ROW_SAMPLES)
        blocks = np.zeros((n_rows, _FA_ROW_SAMPLES), dtype=np.complex128)
        awgn(n, 1.0, rng, out=blocks.reshape(-1)[:n])
        lengths = np.full(n_rows, _FA_ROW_SAMPLES, dtype=np.int64)
        lengths[-1] = n - _FA_ROW_SAMPLES * (n_rows - 1)
        result = xcorr_detect_batch(blocks, lengths, prepared, threshold,
                                    history=history, last=last,
                                    backend=backend)
        triggers += int(result.edge_plane.sum())
        history = result.history
        last = result.last
        remaining -= n
    return triggers / duration_s


def _frame_waveforms(kind: str, rng: np.random.Generator) -> np.ndarray:
    """One test waveform at 20 MSPS for the requested frame kind."""
    if kind == "full":
        psdu = rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
        return build_ppdu(psdu, WifiFrameConfig(rate=WifiRate.MBPS_54))
    if kind == "single_long":
        symbol = long_training_symbol()
        return symbol / np.sqrt(np.mean(np.abs(symbol) ** 2))
    if kind == "single_short":
        stf = short_preamble()[:16]
        return stf / np.sqrt(np.mean(np.abs(stf) ** 2))
    raise ConfigurationError(f"unknown frame kind {kind!r}")


def _impaired_arrivals(base_frame_20: np.ndarray,
                       ) -> list[np.ndarray]:
    """The frame as the jammer receives it, at quarter-sample offsets.

    Real TX and RX sample grids are unaligned, so each over-the-air
    frame lands at a random fractional delay.  We realize delays on a
    quarter-sample grid by upsampling 20 -> 100 MSPS and decimating by
    4 at each of the four phases.
    """
    up100 = resample(base_frame_20, WIFI_SAMPLE_RATE, units.FPGA_CLOCK_HZ)
    arrivals = []
    for offset in range(4):
        sig = up100[offset::4]
        power = np.mean(np.abs(sig) ** 2)
        arrivals.append(sig / np.sqrt(power))
    return arrivals


@cached_artifact
def _frame_arrivals(frame_kind: str, seed: int) -> tuple[np.ndarray, ...]:
    """The four quarter-sample arrivals of one deterministic test frame.

    Memoized by ``(frame_kind, seed)``: every trial of a sweep — and
    every worker process — shares one synthesized frame instead of
    rebuilding the PPDU and running the 20->100->25 MSPS resampling
    chain per trial.  The frame generator is decorrelated from the
    per-trial noise generators by :data:`_FRAME_SEED_KEY`.
    """
    rng = np.random.default_rng([seed, _FRAME_SEED_KEY])
    return tuple(_impaired_arrivals(_frame_waveforms(frame_kind, rng)))


@dataclass(frozen=True, eq=False)
class _CurveTrialSpec:
    """Picklable description of one detection-curve trial batch."""

    frame_kind: str
    snr_db: float
    n_frames: int
    frame_seed: int
    #: Correlator trials carry the quantized banks and threshold;
    #: energy trials carry the rise threshold instead.
    coeffs_i: np.ndarray | None = None
    coeffs_q: np.ndarray | None = None
    threshold: int = 0
    energy_threshold_db: float | None = None


def _count_frames(spec: _CurveTrialSpec, rng: np.random.Generator
                  ) -> tuple[int, int]:
    """Batched frame engine: (frames detected, total in-frame triggers).

    Synthesizes every frame of the trial into one ``(rows, width)``
    block matrix — preserving the RNG draw order of the streaming loop
    exactly — and runs a single chained batch-kernel call over it.
    Per-frame counts are byte-identical to feeding the frames one by
    one through the streaming detectors (the chained edge extraction
    can differ from the per-frame loop only at column 0 of a row,
    which lies inside the guard gap and is excluded from the in-frame
    window).  :func:`_count_frames_looped` keeps the streaming
    reference alive for the identity tests and benchmarks.
    """
    arrivals = _frame_arrivals(spec.frame_kind, spec.frame_seed)
    scale = np.sqrt(units.db_to_linear(spec.snr_db))
    energy_mode = spec.energy_threshold_db is not None
    warmup = 4 * DEFAULT_DELAY if energy_mode else 0
    n_rows = spec.n_frames + (1 if warmup else 0)
    width = GUARD_SAMPLES + max(a.size for a in arrivals)
    blocks = np.zeros((n_rows, width), dtype=np.complex128)
    lengths = np.empty(n_rows, dtype=np.int64)
    row = 0
    if warmup:
        # The looped engine warms the energy detector on noise before
        # the first frame; the batched path keeps that draw as row 0
        # and discards its edges below.
        awgn(warmup, 1.0, rng, out=blocks[0, :warmup])
        lengths[0] = warmup
        row = 1
    for _ in range(spec.n_frames):
        frame_25 = arrivals[rng.integers(0, len(arrivals))]
        if energy_mode:
            factor = scale
        else:
            # The sign-slicing correlator has 90-degree phase
            # resolution, so each frame gets a random carrier phase.
            factor = scale * np.exp(1j * rng.uniform(0.0, 2.0 * np.pi))
        size = GUARD_SAMPLES + frame_25.size
        segment = blocks[row, :size]
        awgn(size, 1.0, rng, out=segment)
        segment[GUARD_SAMPLES:] += frame_25 * factor
        lengths[row] = size
        row += 1
    if energy_mode:
        threshold = units.db_to_linear(spec.energy_threshold_db)
        result = energy_detect_batch(blocks, lengths,
                                     DEFAULT_WINDOW, DEFAULT_DELAY,
                                     threshold, threshold)
        edge_plane = result.edge_high
    else:
        prepared = prepare_coefficients(spec.coeffs_i, spec.coeffs_q)
        result = xcorr_detect_batch(blocks, lengths, prepared,
                                    spec.threshold)
        edge_plane = result.edge_plane
    frame_rows = edge_plane[1:] if warmup else edge_plane
    in_frame = frame_rows[:, GUARD_SAMPLES:]
    per_frame = in_frame.sum(axis=1)
    return int((per_frame > 0).sum()), int(per_frame.sum())


def _count_frames_looped(spec: _CurveTrialSpec, detector_process,
                         rng: np.random.Generator, warmup: int = 0
                         ) -> tuple[int, int]:
    """Streaming reference frame loop (one detector call per frame)."""
    arrivals = _frame_arrivals(spec.frame_kind, spec.frame_seed)
    scale = np.sqrt(units.db_to_linear(spec.snr_db))
    if warmup:
        detector_process(awgn(warmup, 1.0, rng))
    detected = 0
    detections_total = 0
    last = False
    for _ in range(spec.n_frames):
        frame_25 = arrivals[rng.integers(0, len(arrivals))]
        if spec.energy_threshold_db is None:
            factor = scale * np.exp(1j * rng.uniform(0.0, 2.0 * np.pi))
        else:
            factor = scale
        block = awgn(GUARD_SAMPLES + frame_25.size, 1.0, rng)
        block[GUARD_SAMPLES:] += frame_25 * factor
        trig = detector_process(block)
        edges = rising_edges(trig, last)
        last = bool(trig[-1])
        in_frame = edges[edges >= GUARD_SAMPLES]
        detections_total += in_frame.size
        if in_frame.size:
            detected += 1
    return detected, detections_total


def _xcorr_trial(spec: _CurveTrialSpec, rng: np.random.Generator
                 ) -> tuple[int, int]:
    """One correlator trial batch (a SweepRunner task)."""
    return _count_frames(spec, rng)


def _energy_trial(spec: _CurveTrialSpec, rng: np.random.Generator
                  ) -> tuple[int, int]:
    """One energy-differentiator trial batch (a SweepRunner task)."""
    return _count_frames(spec, rng)


def _xcorr_trial_looped(spec: _CurveTrialSpec, rng: np.random.Generator
                        ) -> tuple[int, int]:
    """Streaming-reference correlator trial (identity tests, benchmarks)."""
    correlator = CrossCorrelator(spec.coeffs_i, spec.coeffs_q,
                                 threshold=spec.threshold)
    return _count_frames_looped(spec, correlator.process, rng)


def _energy_trial_looped(spec: _CurveTrialSpec, rng: np.random.Generator
                         ) -> tuple[int, int]:
    """Streaming-reference energy trial (identity tests, benchmarks)."""
    detector = EnergyDifferentiator(
        threshold_high_db=spec.energy_threshold_db,
        threshold_low_db=spec.energy_threshold_db)

    def process(block: np.ndarray) -> np.ndarray:
        trig_high, _trig_low = detector.process(block)
        return trig_high

    # Warm the detector so the cold-start rise is consumed.
    return _count_frames_looped(spec, process, rng,
                                warmup=4 * detector.delay)


def _trial_batches(n_frames: int) -> list[int]:
    """Split a point's frame budget into per-trial batch sizes."""
    full, rest = divmod(n_frames, FRAMES_PER_TRIAL)
    return [FRAMES_PER_TRIAL] * full + ([rest] if rest else [])


def _merge_points(snrs_db: list[float], specs: list[_CurveTrialSpec],
                  outcomes: list[list[tuple[int, int]]]
                  ) -> list[DetectionPoint]:
    """Fold per-trial (detected, triggers) counts back into curve points."""
    detected = {snr: 0 for snr in snrs_db}
    triggers = {snr: 0 for snr in snrs_db}
    frames = {snr: 0 for snr in snrs_db}
    for spec, (result,) in zip(specs, outcomes):
        detected[spec.snr_db] += result[0]
        triggers[spec.snr_db] += result[1]
        frames[spec.snr_db] += spec.n_frames
    return [
        DetectionPoint(
            snr_db=snr,
            detection_probability=detected[snr] / frames[snr],
            mean_detections_per_frame=triggers[snr] / frames[snr],
            n_frames=frames[snr],
        )
        for snr in snrs_db
    ]


def _detection_curve(template: np.ndarray, frame_kind: str,
                     snrs_db: list[float], n_frames: int,
                     fa_per_second: float, seed: int,
                     workers: int = 1,
                     telemetry: "Telemetry | None" = None,
                     resilience: "ResilienceConfig | None" = None,
                     fault_injector: "WorkerFaultInjector | None" = None
                     ) -> list[DetectionPoint]:
    """Shared sweep engine for the correlator characterizations.

    The (SNR x trial-batch) grid runs through the fault-tolerant job
    layer (:func:`repro.runtime.jobs.resilient_sweep`): every trial
    draws its noise and impairments from ``default_rng(seed +
    trial_index)``, so the curve is byte-identical for any ``workers``
    count — and for any number of worker crashes, hangs, retries, or
    checkpoint resumes the run survives along the way.  The default
    policy (:data:`~repro.runtime.jobs.STRICT_RESILIENCE`) retries
    failed shards but never quarantines: a curve with holes is not a
    result.
    """
    coeffs_i, coeffs_q = quantize_coefficients(template)
    threshold = threshold_for_false_alarm_rate(coeffs_i, coeffs_q,
                                               fa_per_second)
    specs = [
        _CurveTrialSpec(frame_kind=frame_kind, snr_db=snr_db,
                        n_frames=batch, frame_seed=seed,
                        coeffs_i=coeffs_i, coeffs_q=coeffs_q,
                        threshold=threshold)
        for snr_db in snrs_db
        for batch in _trial_batches(n_frames)
    ]
    outcomes = resilient_sweep(
        _xcorr_trial, specs, workers=workers, seed_root=seed,
        telemetry=telemetry,
        config=resilience if resilience is not None else STRICT_RESILIENCE,
        fault_injector=fault_injector)
    return _merge_points(snrs_db, specs, outcomes)


def long_preamble_curve(snrs_db: list[float], n_frames: int = 500,
                        fa_per_second: float = 0.083,
                        full_frames: bool = True,
                        seed: int = 20140818,
                        workers: int = 1,
                        telemetry: "Telemetry | None" = None,
                        resilience: "ResilienceConfig | None" = None,
                        fault_injector: "WorkerFaultInjector | None" = None
                        ) -> list[DetectionPoint]:
    """Fig. 6: long-preamble detection vs SNR.

    ``full_frames=False`` sends pseudo-frames carrying a single long
    training symbol, the paper's harder case.
    """
    kind = "full" if full_frames else "single_long"
    return _detection_curve(wifi_long_preamble_template(), kind, snrs_db,
                            n_frames, fa_per_second, seed,
                            workers=workers, telemetry=telemetry,
                            resilience=resilience,
                            fault_injector=fault_injector)


def short_preamble_curve(snrs_db: list[float], n_frames: int = 500,
                         fa_per_second: float = 0.059,
                         seed: int = 20140819,
                         workers: int = 1,
                         telemetry: "Telemetry | None" = None,
                         resilience: "ResilienceConfig | None" = None,
                         fault_injector: "WorkerFaultInjector | None" = None
                         ) -> list[DetectionPoint]:
    """Fig. 7: short-preamble detection of full WiFi frames vs SNR."""
    return _detection_curve(wifi_short_preamble_template(), "full", snrs_db,
                            n_frames, fa_per_second, seed,
                            workers=workers, telemetry=telemetry,
                            resilience=resilience,
                            fault_injector=fault_injector)


def roc_curve(template: np.ndarray, snr_db: float,
              fa_rates_per_s: list[float], n_frames: int = 300,
              frame_kind: str = "single_long",
              seed: int = 20140821,
              workers: int = 1,
              telemetry: "Telemetry | None" = None,
              resilience: "ResilienceConfig | None" = None
              ) -> list[tuple[float, float]]:
    """Receiver operating characteristic at a fixed SNR.

    Sweeps the false-alarm operating point (the paper evaluates two:
    0.083 and 0.52 triggers/s) and returns ``(fa_per_s, Pd)`` pairs.
    The trade is monotone: admitting more false alarms buys detection.
    Every operating point replays the same seeded trials, so only the
    threshold varies between the returned pairs.
    """
    points = []
    for fa in fa_rates_per_s:
        curve = _detection_curve(template, frame_kind, [snr_db], n_frames,
                                 fa, seed, workers=workers,
                                 telemetry=telemetry, resilience=resilience)
        points.append((fa, curve[0].detection_probability))
    return points


def energy_detector_curve(snrs_db: list[float], n_frames: int = 500,
                          threshold_db: float = 10.0,
                          seed: int = 20140820,
                          workers: int = 1,
                          telemetry: "Telemetry | None" = None,
                          resilience: "ResilienceConfig | None" = None,
                          fault_injector: "WorkerFaultInjector | None" = None
                          ) -> list[DetectionPoint]:
    """Fig. 8: energy differentiator on full WiFi frames vs SNR.

    Reports both detection probability and the mean detections per
    frame — the paper highlights the multiple-detection regime between
    -3 and 8 dB SNR.  Runs on the same sweep grid as the correlator
    curves, so the result is independent of ``workers``.
    """
    specs = [
        _CurveTrialSpec(frame_kind="full", snr_db=snr_db,
                        n_frames=batch, frame_seed=seed,
                        energy_threshold_db=threshold_db)
        for snr_db in snrs_db
        for batch in _trial_batches(n_frames)
    ]
    outcomes = resilient_sweep(
        _energy_trial, specs, workers=workers, seed_root=seed,
        telemetry=telemetry,
        config=resilience if resilience is not None else STRICT_RESILIENCE,
        fault_injector=fault_injector)
    return _merge_points(snrs_db, specs, outcomes)
