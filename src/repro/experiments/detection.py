"""Detection-performance characterization (paper Figs. 6, 7, 8).

Methodology mirrors paper §3.2:

* a second USRP transmits WiFi frames (complete frames, or
  pseudo-frames carrying a single preamble) over a wired link,
* the received SNR is set by scaling the transmit amplitude against a
  fixed noise floor and "measured independently",
* for a chosen false-alarm rate, the correlator threshold is derived
  from the trigger statistics of a 50-ohm-terminated (noise-only)
  receiver, and
* the probability of detection is the fraction of frames that produce
  at least one trigger.

False-alarm calibration: on sign-sliced white noise the correlator's
real and imaginary accumulators are sums of 128 independent +-c terms,
hence Gaussian with variance E = sum(cI^2 + cQ^2); the squared metric
is then exponential with mean 2E and the per-sample exceedance of a
threshold T is exp(-T / (2E)).  Setting the expected trigger rate
``P * sample_rate`` equal to the target false-alarm rate gives a
closed-form threshold, which :func:`measured_false_alarm_rate` checks
empirically (tests do this at measurable rates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import units
from repro.channel.awgn import awgn
from repro.core.coeffs import (
    wifi_long_preamble_template,
    wifi_short_preamble_template,
)
from repro.dsp.resample import resample
from repro.errors import ConfigurationError
from repro.hw.cross_correlator import CrossCorrelator, quantize_coefficients
from repro.hw.energy_differentiator import EnergyDifferentiator
from repro.hw.trigger import rising_edges
from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
from repro.phy.wifi.params import WIFI_SAMPLE_RATE, WifiRate
from repro.phy.wifi.preamble import long_preamble, long_training_symbol, short_preamble

#: The paper's frame pacing: 130 frames per second, 10,000 frames.
PAPER_FRAME_RATE = 130
PAPER_FRAME_COUNT = 10_000

#: Gap of noise-only samples inserted before each frame (warm-up for
#: the streaming blocks and separation between detection windows).
GUARD_SAMPLES = 512


@dataclass(frozen=True)
class DetectionPoint:
    """One point of a detection-probability curve."""

    snr_db: float
    detection_probability: float
    mean_detections_per_frame: float
    n_frames: int


def coefficient_energy(coeffs_i: np.ndarray, coeffs_q: np.ndarray) -> float:
    """E = sum(cI^2 + cQ^2), the accumulator variance on sign noise."""
    return float(np.sum(np.asarray(coeffs_i, dtype=np.float64) ** 2)
                 + np.sum(np.asarray(coeffs_q, dtype=np.float64) ** 2))


def threshold_for_false_alarm_rate(coeffs_i: np.ndarray, coeffs_q: np.ndarray,
                                   fa_per_second: float,
                                   sample_rate: float = units.BASEBAND_RATE) -> int:
    """Correlator threshold achieving the target false-alarm rate.

    Uses the exponential-tail model described in the module docstring.
    """
    if fa_per_second <= 0:
        raise ConfigurationError("fa_per_second must be positive")
    if fa_per_second >= sample_rate:
        raise ConfigurationError("false-alarm rate above the sample rate")
    energy = coefficient_energy(coeffs_i, coeffs_q)
    if energy == 0:
        raise ConfigurationError("zero-energy coefficient banks")
    threshold = 2.0 * energy * math.log(sample_rate / fa_per_second)
    return int(round(threshold))


def measured_false_alarm_rate(correlator: CrossCorrelator, duration_s: float,
                              rng: np.random.Generator,
                              chunk_samples: int = 1 << 18) -> float:
    """Empirical triggers/second on a noise-only (terminated) input."""
    total_samples = int(duration_s * units.BASEBAND_RATE)
    triggers = 0
    last = False
    remaining = total_samples
    while remaining > 0:
        n = min(chunk_samples, remaining)
        noise = awgn(n, 1.0, rng)
        trig = correlator.process(noise)
        triggers += rising_edges(trig, last).size
        last = bool(trig[-1])
        remaining -= n
    return triggers / duration_s


def _frame_waveforms(kind: str, rng: np.random.Generator) -> np.ndarray:
    """One test waveform at 20 MSPS for the requested frame kind."""
    if kind == "full":
        psdu = rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
        return build_ppdu(psdu, WifiFrameConfig(rate=WifiRate.MBPS_54))
    if kind == "single_long":
        symbol = long_training_symbol()
        return symbol / np.sqrt(np.mean(np.abs(symbol) ** 2))
    if kind == "single_short":
        stf = short_preamble()[:16]
        return stf / np.sqrt(np.mean(np.abs(stf) ** 2))
    raise ConfigurationError(f"unknown frame kind {kind!r}")


def _impaired_arrivals(base_frame_20: np.ndarray,
                       ) -> list[np.ndarray]:
    """The frame as the jammer receives it, at quarter-sample offsets.

    Real TX and RX sample grids are unaligned, so each over-the-air
    frame lands at a random fractional delay.  We realize delays on a
    quarter-sample grid by upsampling 20 -> 100 MSPS and decimating by
    4 at each of the four phases.
    """
    up100 = resample(base_frame_20, WIFI_SAMPLE_RATE, units.FPGA_CLOCK_HZ)
    arrivals = []
    for offset in range(4):
        sig = up100[offset::4]
        power = np.mean(np.abs(sig) ** 2)
        arrivals.append(sig / np.sqrt(power))
    return arrivals


def _detection_curve(template: np.ndarray, frame_kind: str,
                     snrs_db: list[float], n_frames: int,
                     fa_per_second: float, seed: int) -> list[DetectionPoint]:
    """Shared sweep engine for the correlator characterizations.

    Each frame arrives with a random carrier phase (the sign-slicing
    correlator has 90-degree phase resolution, so phase matters) and a
    random fractional timing offset against the receiver sample grid.
    """
    coeffs_i, coeffs_q = quantize_coefficients(template)
    threshold = threshold_for_false_alarm_rate(coeffs_i, coeffs_q,
                                               fa_per_second)
    rng = np.random.default_rng(seed)
    base_frame = _frame_waveforms(frame_kind, rng)
    arrivals = _impaired_arrivals(base_frame)
    points: list[DetectionPoint] = []
    for snr_db in snrs_db:
        correlator = CrossCorrelator(coeffs_i, coeffs_q, threshold=threshold)
        scale = np.sqrt(units.db_to_linear(snr_db))
        detected = 0
        detections_total = 0
        last = False
        for _ in range(n_frames):
            frame_25 = arrivals[rng.integers(0, len(arrivals))]
            phase = np.exp(1j * rng.uniform(0.0, 2.0 * np.pi))
            block = awgn(GUARD_SAMPLES + frame_25.size, 1.0, rng)
            block[GUARD_SAMPLES:] += frame_25 * (scale * phase)
            trig = correlator.process(block)
            edges = rising_edges(trig, last)
            last = bool(trig[-1])
            in_frame = edges[edges >= GUARD_SAMPLES]
            detections_total += in_frame.size
            if in_frame.size:
                detected += 1
        points.append(DetectionPoint(
            snr_db=snr_db,
            detection_probability=detected / n_frames,
            mean_detections_per_frame=detections_total / n_frames,
            n_frames=n_frames,
        ))
    return points


def long_preamble_curve(snrs_db: list[float], n_frames: int = 500,
                        fa_per_second: float = 0.083,
                        full_frames: bool = True,
                        seed: int = 20140818) -> list[DetectionPoint]:
    """Fig. 6: long-preamble detection vs SNR.

    ``full_frames=False`` sends pseudo-frames carrying a single long
    training symbol, the paper's harder case.
    """
    kind = "full" if full_frames else "single_long"
    return _detection_curve(wifi_long_preamble_template(), kind, snrs_db,
                            n_frames, fa_per_second, seed)


def short_preamble_curve(snrs_db: list[float], n_frames: int = 500,
                         fa_per_second: float = 0.059,
                         seed: int = 20140819) -> list[DetectionPoint]:
    """Fig. 7: short-preamble detection of full WiFi frames vs SNR."""
    return _detection_curve(wifi_short_preamble_template(), "full", snrs_db,
                            n_frames, fa_per_second, seed)


def roc_curve(template: np.ndarray, snr_db: float,
              fa_rates_per_s: list[float], n_frames: int = 300,
              frame_kind: str = "single_long",
              seed: int = 20140821) -> list[tuple[float, float]]:
    """Receiver operating characteristic at a fixed SNR.

    Sweeps the false-alarm operating point (the paper evaluates two:
    0.083 and 0.52 triggers/s) and returns ``(fa_per_s, Pd)`` pairs.
    The trade is monotone: admitting more false alarms buys detection.
    """
    points = []
    for fa in fa_rates_per_s:
        curve = _detection_curve(template, frame_kind, [snr_db], n_frames,
                                 fa, seed)
        points.append((fa, curve[0].detection_probability))
    return points


def energy_detector_curve(snrs_db: list[float], n_frames: int = 500,
                          threshold_db: float = 10.0,
                          seed: int = 20140820) -> list[DetectionPoint]:
    """Fig. 8: energy differentiator on full WiFi frames vs SNR.

    Reports both detection probability and the mean detections per
    frame — the paper highlights the multiple-detection regime between
    -3 and 8 dB SNR.
    """
    rng = np.random.default_rng(seed)
    frame = _frame_waveforms("full", rng)
    arrivals = _impaired_arrivals(frame)
    points: list[DetectionPoint] = []
    for snr_db in snrs_db:
        detector = EnergyDifferentiator(threshold_high_db=threshold_db,
                                        threshold_low_db=threshold_db)
        scale = np.sqrt(units.db_to_linear(snr_db))
        detected = 0
        detections_total = 0
        last = False
        # Warm the detector so the cold-start rise is consumed.
        detector.process(awgn(4 * detector.delay, 1.0, rng))
        for _ in range(n_frames):
            frame_25 = arrivals[rng.integers(0, len(arrivals))]
            block = awgn(GUARD_SAMPLES + frame_25.size, 1.0, rng)
            block[GUARD_SAMPLES:] += frame_25 * scale
            trig_high, _trig_low = detector.process(block)
            edges = rising_edges(trig_high, last)
            last = bool(trig_high[-1])
            in_frame = edges[edges >= GUARD_SAMPLES]
            detections_total += in_frame.size
            if in_frame.size:
                detected += 1
        points.append(DetectionPoint(
            snr_db=snr_db,
            detection_probability=detected / n_frames,
            mean_detections_per_frame=detections_total / n_frames,
            n_frames=n_frames,
        ))
    return points
