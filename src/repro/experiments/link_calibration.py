"""Cross-validation of the MAC-plane link model against the waveform.

The network experiments (Figs. 10/11) run on a semi-analytic SINR->PER
model (:mod:`repro.phy.wifi.per_model` + the jam-anatomy rules in
:mod:`repro.mac.medium`).  This harness closes the loop: it generates
*actual* 802.11g frames, hits them with *actual* jam bursts from the
hardware model, decodes them with the *actual* receiver, and compares
the measured frame-failure rates against the model's predictions at
the same operating points.

The claim being validated is not point-wise numeric equality (the
analytic model deliberately abstracts the receiver) but decision
agreement: where the model says "frames die", frames die at the
waveform level, and where it says "frames survive", they survive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.channel.awgn import awgn

from repro.errors import DecodeError
from repro.mac.frames import FrameKind, MacFrame
from repro.mac.medium import Medium
from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
from repro.phy.wifi.params import WIFI_SAMPLE_RATE, WifiRate
from repro.phy.wifi.receiver import WifiReceiver


@dataclass(frozen=True)
class CalibrationPoint:
    """One operating point's model-vs-waveform comparison."""

    rate: WifiRate
    sir_db: float
    burst_start_us: float
    burst_len_us: float
    model_success: float
    measured_success: float
    n_trials: int

    @property
    def decisions_agree(self) -> bool:
        """Both planes on the same side of the 50 % line (or both mid)."""
        model_dead = self.model_success < 0.5
        measured_dead = self.measured_success < 0.5
        return model_dead == measured_dead


def _model_prediction(rate: WifiRate, psdu_bytes: int, sir_db: float,
                      burst_start_us: float, burst_len_us: float,
                      snr_db: float) -> float:
    """The MAC plane's success probability for this operating point."""
    noise_floor = -95.0
    s_dbm = noise_floor + snr_db
    j_dbm = s_dbm - sir_db
    medium = Medium(
        lambda src, dst: 0.0 if src != dst else None,
        noise_floor_dbm=noise_floor,
    )
    frame = MacFrame(FrameKind.DATA, "tx", "rx", psdu_bytes, rate)
    emission = medium.emit_frame("tx", frame, 0.0, tx_power_dbm=s_dbm)
    medium.emit_jam("jam", burst_start_us * 1e-6, burst_len_us * 1e-6,
                    tx_power_dbm=j_dbm)
    return medium.frame_success_probability(emission, "rx")


def _measured_success(rate: WifiRate, psdu_bytes: int, sir_db: float,
                      burst_start_us: float, burst_len_us: float,
                      snr_db: float, n_trials: int,
                      rng: np.random.Generator) -> float:
    """Waveform-level failure measurement with the real receiver."""
    receiver = WifiReceiver()
    noise_power = units.db_to_linear(-snr_db)
    jam_power = units.db_to_linear(-sir_db)
    successes = 0
    for _ in range(n_trials):
        psdu = rng.integers(0, 256, psdu_bytes, dtype=np.uint8).tobytes()
        frame = build_ppdu(psdu, WifiFrameConfig(rate=rate))
        capture = frame + awgn(frame.size, noise_power, rng)
        start = int(burst_start_us * 1e-6 * WIFI_SAMPLE_RATE)
        length = int(burst_len_us * 1e-6 * WIFI_SAMPLE_RATE)
        stop = min(start + length, capture.size)
        if stop > start:
            capture[start:stop] += awgn(stop - start, jam_power, rng)
        try:
            result = receiver.receive(capture)
            if result.psdu == psdu:
                successes += 1
        except DecodeError:
            pass
    return successes / n_trials


def run_calibration(n_trials: int = 25, snr_db: float = 30.0,
                    psdu_bytes: int = 200,
                    seed: int = 77) -> list[CalibrationPoint]:
    """Compare both planes across a grid of operating points.

    The grid covers the regimes the MAC model distinguishes: clean
    frames, weak bursts over data, strong bursts over data, and
    bursts over the preamble.
    """
    rng = np.random.default_rng(seed)
    grid = [
        # (rate, SIR dB, burst start us, burst length us)
        (WifiRate.MBPS_12, 40.0, 30.0, 40.0),   # weak data burst: survive
        (WifiRate.MBPS_12, 0.0, 30.0, 40.0),    # strong data burst: die
        (WifiRate.MBPS_54, 18.0, 30.0, 40.0),   # 64-QAM under mid burst
        (WifiRate.MBPS_12, -6.0, 4.0, 12.0),    # preamble destroyed
        (WifiRate.MBPS_12, 30.0, 4.0, 12.0),    # preamble brushed: survive
        (WifiRate.MBPS_6, 8.0, 30.0, 200.0),    # robust rate, long burst
    ]
    points = []
    for rate, sir_db, start_us, len_us in grid:
        model = _model_prediction(rate, psdu_bytes, sir_db, start_us,
                                  len_us, snr_db)
        measured = _measured_success(rate, psdu_bytes, sir_db, start_us,
                                     len_us, snr_db, n_trials, rng)
        points.append(CalibrationPoint(
            rate=rate, sir_db=sir_db, burst_start_us=start_us,
            burst_len_us=len_us, model_success=model,
            measured_success=measured, n_trials=n_trials,
        ))
    return points
