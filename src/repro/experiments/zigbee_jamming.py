"""Baseline: reactive jamming of 802.15.4 (Zigbee) traffic.

Wilhelm et al. (WiSec 2011) — the paper's only real-time prior art —
demonstrated SDR reactive jamming against low-rate 802.15.4 networks;
the paper's contribution is doing the same against high-speed WiFi and
WiMAX.  This harness runs the *same framework* against 802.15.4
traffic to quantify why the low-rate case is easy:

* at 250 kb/s the preamble alone lasts 128 us, so the jammer's 2.64 us
  response leaves a ~125 us margin — the burst lands before the SFD
  and the receiver never achieves frame synchronization;
* detection is near-certain because the 32-chip code repeats eight
  times within every preamble.

The result table compares the jam-before-SFD margin across all three
standards, which is the quantitative version of the paper's "reactive
jammers have not been considered a serious threat ... due to the
implementation challenges in meeting strict real-time constraints ...
of high-speed wireless networks".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.channel.combining import Transmission, mix_at_port
from repro.core.coeffs import zigbee_preamble_template
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.jammer import ReactiveJammer
from repro.core.presets import reactive_jammer
from repro.errors import ConfigurationError
from repro.phy.zigbee.frame import (
    build_ppdu,
    ppdu_duration_s,
    preamble_duration_s,
)
from repro.phy.zigbee.params import ZIGBEE_SAMPLE_RATE


@dataclass(frozen=True)
class ZigbeeJammingResult:
    """Outcome of the 802.15.4 baseline experiment."""

    n_frames: int
    frames_detected: int
    frames_jammed_before_sfd: int
    mean_response_margin_s: float

    @property
    def detection_rate(self) -> float:
        """Fraction of frames detected at all."""
        return self.frames_detected / self.n_frames

    @property
    def pre_sfd_jam_rate(self) -> float:
        """Fraction of frames whose burst began before the SFD."""
        return self.frames_jammed_before_sfd / self.n_frames


def run_experiment(n_frames: int = 20, snr_db: float = 10.0,
                   psdu_bytes: int = 60, noise_floor: float = 1e-4,
                   xcorr_threshold: int = 25_000,
                   seed: int = 154) -> ZigbeeJammingResult:
    """Jam a stream of 802.15.4 frames and report the timing margins."""
    if n_frames < 1:
        raise ConfigurationError("n_frames must be >= 1")
    rng = np.random.default_rng(seed)
    frame_gap_s = 2e-3  # frames every 2 ms
    duration = n_frames * frame_gap_s
    transmissions = []
    starts = []
    for k in range(n_frames):
        psdu = rng.integers(0, 256, psdu_bytes, dtype=np.uint8).tobytes()
        start = k * frame_gap_s + 100e-6
        starts.append(start)
        transmissions.append(Transmission(
            build_ppdu(psdu), ZIGBEE_SAMPLE_RATE, start_time=start,
            power=units.db_to_linear(snr_db) * noise_floor,
        ))
    rx = mix_at_port(transmissions, out_rate=units.BASEBAND_RATE,
                     duration=duration, noise_power=noise_floor, rng=rng)

    jammer = ReactiveJammer()
    jammer.configure(
        detection=DetectionConfig(template=zigbee_preamble_template(),
                                  xcorr_threshold=xcorr_threshold),
        events=JammingEventBuilder().on_correlation(),
        personality=reactive_jammer(uptime_seconds=1e-4),
    )
    report = jammer.run(rx)

    sfd_offset = preamble_duration_s()
    detected = 0
    before_sfd = 0
    margins = []
    for start in starts:
        window_lo = start
        window_hi = start + ppdu_duration_s(psdu_bytes)
        bursts = [j for j in report.jams
                  if window_lo <= j.start / units.BASEBAND_RATE < window_hi]
        if not bursts:
            continue
        detected += 1
        first = min(b.start for b in bursts) / units.BASEBAND_RATE
        margin = (start + sfd_offset) - first
        if margin > 0:
            before_sfd += 1
            margins.append(margin)
    return ZigbeeJammingResult(
        n_frames=n_frames,
        frames_detected=detected,
        frames_jammed_before_sfd=before_sfd,
        mean_response_margin_s=float(np.mean(margins)) if margins else 0.0,
    )


def response_margin_table() -> dict[str, float]:
    """Jam-before-payload margins across the three standards.

    The margin is (time until the critical sync structure completes)
    minus (the jammer's cross-correlation response time).  Positive
    means the burst lands before the receiver finishes synchronizing.
    """
    t_resp = 2.64e-6
    from repro.phy.wimax.params import WIMAX_OFDM, WIMAX_SAMPLE_RATE

    return {
        "802.15.4 (250 kb/s)": preamble_duration_s() - t_resp,
        "802.11g (54 Mb/s)": 16e-6 - t_resp,
        "802.16e (10 MHz DL)": (WIMAX_OFDM.symbol_length
                                / WIMAX_SAMPLE_RATE) - t_resp,
    }
