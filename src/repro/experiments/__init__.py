"""Experiment harnesses — one per table/figure in the paper.

Each module exposes functions that regenerate the corresponding
result; the ``benchmarks/`` directory wraps them in pytest-benchmark
targets that print the same rows/series the paper reports.

============  ======================================================
Paper item    Module / entry point
============  ======================================================
Fig. 5        :func:`repro.experiments.timelines.jamming_timelines`
Fig. 6        :func:`repro.experiments.detection.long_preamble_curve`
Fig. 7        :func:`repro.experiments.detection.short_preamble_curve`
Fig. 8        :func:`repro.experiments.detection.energy_detector_curve`
Table 1       :func:`repro.experiments.table1.measure_insertion_losses`
Fig. 10/11    :func:`repro.experiments.wifi_jamming.sweep`
Fig. 12       :func:`repro.experiments.wimax_jamming.run_experiment`
============  ======================================================

Beyond the paper's own evaluation:

* :mod:`repro.experiments.zigbee_jamming` — the Wilhelm et al.
  802.15.4 baseline and the cross-standard reaction-margin table.
* :mod:`repro.experiments.link_calibration` — cross-validation of the
  MAC-plane link model against the waveform-level receiver.
* :mod:`repro.experiments.energy_analysis` — §4.3's power/energy/
  stealth accounting at each personality's kill point.
"""

from __future__ import annotations

from repro.experiments.detection import (
    DetectionPoint,
    energy_detector_curve,
    long_preamble_curve,
    short_preamble_curve,
    threshold_for_false_alarm_rate,
)
from repro.experiments.table1 import measure_insertion_losses
from repro.experiments.timelines import jamming_timelines
from repro.experiments.wifi_jamming import JammingSweepPoint, WifiJammingTestbed
from repro.experiments.wimax_jamming import WimaxJammingResult, run_experiment

__all__ = [
    "DetectionPoint",
    "energy_detector_curve",
    "long_preamble_curve",
    "short_preamble_curve",
    "threshold_for_false_alarm_rate",
    "measure_insertion_losses",
    "jamming_timelines",
    "JammingSweepPoint",
    "WifiJammingTestbed",
    "WimaxJammingResult",
    "run_experiment",
]
