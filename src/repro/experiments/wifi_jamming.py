"""WiFi network validation (paper §4, Figs. 10 and 11).

Recreates the experimental setup of Fig. 9 on the MAC plane: a
Linksys-class AP on port 1, a wireless client on port 2, and the
jammer transmitting on port 4 / receiving on port 5 of the 5-port
network, all path losses from Table 1.  Each sweep point runs an
iperf UDP bandwidth test at a jammer transmit power chosen to realize
the target SIR at the access point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.channel.splitter import FivePortNetwork
from repro.core.presets import JammerPersonality, paper_personalities
from repro.errors import ConfigurationError
from repro.mac.iperf import IperfReport, UdpBandwidthTest
from repro.mac.medium import Medium
from repro.mac.nodes import AccessPoint, JammerNode, Station
from repro.mac.simkernel import SimKernel
from repro.runtime.jobs import (
    STRICT_RESILIENCE,
    ResilienceConfig,
    resilient_sweep,
)

if TYPE_CHECKING:
    from repro.faults.workers import WorkerFaultInjector
    from repro.telemetry.session import Telemetry

#: Node-name to network-port assignment (paper Fig. 9).  The jammer
#: transmits on port 4 and listens on port 5.
DEFAULT_PORTS = {"ap": 1, "client": 2, "scope": 3}
JAMMER_TX_PORT = 4
JAMMER_RX_PORT = 5

#: The paper's SIR sweep range (dB at the access point), descending as
#: plotted ("the jamming power increases from left to right").
PAPER_SIR_SWEEP_DB = [45.0, 40.0, 35.0, 33.85, 30.0, 25.0, 20.0,
                      15.94, 12.0, 8.0, 4.0, 2.79, 0.0]


@dataclass(frozen=True)
class JammingSweepPoint:
    """One (personality, SIR) operating point's iperf results."""

    personality: str
    sir_at_ap_db: float | None
    jammer_tx_dbm: float | None
    report: IperfReport
    connection_lost: bool = False

    @property
    def bandwidth_kbps(self) -> float:
        """Fig. 10's y-value."""
        return self.report.bandwidth_kbps

    @property
    def packet_reception_ratio(self) -> float:
        """Fig. 11's y-value."""
        return self.report.packet_reception_ratio


@dataclass
class WifiJammingTestbed:
    """The wired 5-port testbed with its power bookkeeping.

    Attributes:
        network: The splitter network (Table 1 by default).
        client_tx_dbm: Client transmit power (a 2014 laptop radio).
        ap_tx_dbm: AP transmit power (the WRT54GL runs hotter).
        duration_s: iperf interval per point (the paper uses 60 s;
            tests and benches shrink this — the statistics converge in
            well under a second of simulated traffic).
    """

    network: FivePortNetwork = field(default_factory=FivePortNetwork)
    client_tx_dbm: float = 14.0
    ap_tx_dbm: float = 20.0
    duration_s: float = 1.0
    #: Enable AP beacons + client association tracking; reproduces the
    #: paper's "connection to the access point was lost" observation.
    beacons: bool = False
    beacon_interval_s: float = 0.02
    beacon_loss_count: int = 4

    def path_loss_db(self, src: str, dst: str) -> float | None:
        """Path loss between named nodes through the 5-port network."""
        src_port = JAMMER_TX_PORT if src == "jammer" else DEFAULT_PORTS.get(src)
        dst_port = JAMMER_RX_PORT if dst == "jammer" else DEFAULT_PORTS.get(dst)
        if src_port is None or dst_port is None:
            return None
        return self.network.loss_db(src_port, dst_port)

    # ------------------------------------------------------------------
    # Power arithmetic

    def client_power_at_ap_dbm(self) -> float:
        """Received power of client frames at the AP."""
        loss = self.path_loss_db("client", "ap")
        if loss is None:
            raise ConfigurationError("client and AP are isolated")
        return self.client_tx_dbm + loss

    def jammer_tx_for_sir(self, sir_db: float) -> float:
        """Jammer TX power realizing a target SIR at the AP.

        SIR is defined as the paper measures it: client signal power
        at the AP over jammer power at the AP during a burst.
        """
        jam_loss = self.path_loss_db("jammer", "ap")
        if jam_loss is None:
            raise ConfigurationError("jammer TX and AP are isolated")
        return self.client_power_at_ap_dbm() - sir_db - jam_loss

    # ------------------------------------------------------------------
    # Runs

    def run_point(self, personality: JammerPersonality | None,
                  sir_db: float | None, seed: int = 1) -> JammingSweepPoint:
        """One iperf interval under one jammer setting."""
        if (personality is None) != (sir_db is None):
            raise ConfigurationError(
                "personality and sir_db must both be set or both be None"
            )
        rng = np.random.default_rng(seed)
        kernel = SimKernel()
        medium = Medium(self.path_loss_db)
        ap = AccessPoint("ap", kernel, medium, rng,
                         tx_power_dbm=self.ap_tx_dbm)
        client = Station("client", kernel, medium, ap, rng,
                         tx_power_dbm=self.client_tx_dbm)
        if self.beacons:
            ap.register_station(client)
            ap.start_beacons(self.beacon_interval_s)
            client.track_beacons(
                self.beacon_loss_count * self.beacon_interval_s)
        jam_tx_dbm: float | None = None
        if personality is not None and sir_db is not None:
            jam_tx_dbm = self.jammer_tx_for_sir(sir_db)
            jammer = JammerNode("jammer", kernel, medium, personality,
                                tx_power_dbm=jam_tx_dbm)
            jammer.start(self.duration_s)
        test = UdpBandwidthTest(kernel, client, ap)
        report = test.run(self.duration_s)
        return JammingSweepPoint(
            personality=personality.name if personality else "off",
            sir_at_ap_db=sir_db, jammer_tx_dbm=jam_tx_dbm, report=report,
            connection_lost=client.connection_losses > 0,
        )

    def sweep(self, sir_values_db: list[float] | None = None,
              personalities: list[JammerPersonality] | None = None,
              seed: int = 1, workers: int = 1,
              telemetry: "Telemetry | None" = None,
              resilience: "ResilienceConfig | None" = None,
              fault_injector: "WorkerFaultInjector | None" = None
              ) -> list[JammingSweepPoint]:
        """Figs. 10/11: the full personality x SIR grid plus jammer-off.

        Every grid point already seeds its own generator inside
        :meth:`run_point`, so fanning the grid out over ``workers``
        processes returns byte-identical results to the serial run —
        the grid rides the fault-tolerant job layer
        (:func:`repro.runtime.jobs.resilient_sweep`), so a crashed or
        hung worker costs a retry, not the sweep, and a checkpointed
        run resumes from its completed shards.
        """
        sir_values_db = sir_values_db if sir_values_db is not None \
            else PAPER_SIR_SWEEP_DB
        personalities = personalities if personalities is not None \
            else paper_personalities()
        grid: list[tuple[WifiJammingTestbed,
                         JammerPersonality | None, float | None, int]] = [
            (self, None, None, seed)
        ]
        grid.extend((self, personality, sir_db, seed)
                    for personality in personalities
                    for sir_db in sir_values_db)
        groups = resilient_sweep(
            _sweep_point_task, grid, workers=workers, seed_root=seed,
            telemetry=telemetry,
            config=resilience if resilience is not None
            else STRICT_RESILIENCE,
            fault_injector=fault_injector)
        return [group[0] for group in groups]


def _sweep_point_task(spec: tuple[WifiJammingTestbed,
                                  JammerPersonality | None,
                                  float | None, int],
                      rng: np.random.Generator) -> JammingSweepPoint:
    """One grid point as a picklable SweepRunner task.

    The sweep-provided ``rng`` is deliberately unused: ``run_point``
    seeds itself from the user-facing ``seed``, which keeps the
    parallel sweep byte-identical to the historical serial loop.
    """
    del rng
    testbed, personality, sir_db, seed = spec
    return testbed.run_point(personality, sir_db, seed=seed)
