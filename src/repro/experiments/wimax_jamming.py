"""WiMAX downlink validation (paper §5, Fig. 12).

The Airspan base station broadcasts 5 ms TDD frames; the jammer
watches the downlink at 25 MSPS.  The paper reports two findings:

* cross-correlation alone (a 64-sample window against the ~25 us
  preamble code) misses about 2/3 of the frames, and
* combining the cross-correlator with the energy differentiator
  detects 100 % of downlink frames, with one jam burst per frame
  (the scope trace of Fig. 12).

This harness reproduces both: it runs the jammer hardware model over
a multi-frame downlink capture in each detection configuration and
reports per-frame detection and jam bookkeeping plus the time-domain
traces an oscilloscope would show.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.channel.combining import Transmission, mix_at_port
from repro.core.coeffs import wimax_preamble_template
from repro.core.detection import DetectionConfig
from repro.core.jammer import JammingReport, ReactiveJammer
from repro.core.presets import reactive_jammer
from repro.errors import ConfigurationError
from repro.hw.trigger import TriggerMode, TriggerSource
from repro.phy.wimax.frame import downlink_stream
from repro.phy.wimax.params import (
    FRAME_DURATION_S,
    WIMAX_OFDM,
    WIMAX_SAMPLE_RATE,
    WimaxConfig,
)

#: Correlator threshold realizing the paper's §5 operating point: just
#: above the median partial-window correlation peak at the reference
#: SNR, so noise in each window decides detection (~1/3 detected).
#: The paper does not publish its threshold; this constant is the one
#: fitted quantity in the Fig. 12 reproduction (see EXPERIMENTS.md).
PAPER_OPERATING_THRESHOLD = 11_950


@dataclass(frozen=True)
class WimaxJammingResult:
    """Per-configuration outcome of the WiMAX experiment."""

    detection_scheme: str
    n_frames: int
    frames_detected: int
    jam_bursts: int
    rx_trace: np.ndarray
    tx_trace: np.ndarray

    @property
    def detection_rate(self) -> float:
        """Fraction of downlink frames that produced a jam burst."""
        return self.frames_detected / self.n_frames

    @property
    def misdetection_rate(self) -> float:
        """Fraction of downlink frames missed."""
        return 1.0 - self.detection_rate


def _frames_hit(report: JammingReport, n_frames: int) -> int:
    """Count frames whose *preamble region* triggered a jam burst.

    The paper's misdetection figure is about preamble detection, so
    triggers elsewhere in the frame (spurious data-region hits) do not
    count a frame as detected.
    """
    frame_samples = FRAME_DURATION_S * units.BASEBAND_RATE
    preamble_samples = (WIMAX_OFDM.symbol_length / WIMAX_SAMPLE_RATE
                        * units.BASEBAND_RATE)
    hit: set[int] = set()
    for jam in report.jams:
        index = int(jam.trigger_time // frame_samples)
        offset = jam.trigger_time - index * frame_samples
        if 0 <= index < n_frames and offset <= preamble_samples + 64:
            hit.add(index)
    return len(hit)


def run_experiment(n_frames: int = 20, snr_db: float = 12.0,
                   xcorr_threshold: int | None = None,
                   energy_threshold_db: float = 10.0,
                   cell_id: int = 1, segment: int = 0,
                   noise_floor: float = 1e-4,
                   seed: int = 16) -> dict[str, WimaxJammingResult]:
    """Run both detection schemes over the same downlink broadcast.

    Returns results keyed by ``"xcorr_only"`` and ``"combined"``.

    Because the 64-sample window covers only ~10 % of the 25 us
    preamble code, the partial correlation peaks cluster barely above
    the noise-calibrated trigger level, and detection becomes a coin
    toss on the noise in each window — the paper's operating condition
    ("insufficient correlation time leads to a misdetection rate of
    about 2/3 of the packets").  The paper does not report its chosen
    threshold; ``xcorr_threshold=None`` selects the operating point
    that reproduces the reported misdetection rate (the mechanism —
    marginal partial-window peaks — is the model's own).

    ``noise_floor`` keeps the composite inside the 16-bit data path's
    full scale, as a sane RX gain setting would.
    """
    if n_frames < 1:
        raise ConfigurationError("n_frames must be >= 1")
    rng = np.random.default_rng(seed)
    config = WimaxConfig(cell_id=cell_id, segment=segment)
    broadcast = downlink_stream(config, n_frames, rng)
    duration = n_frames * FRAME_DURATION_S
    rx = mix_at_port(
        [Transmission(broadcast, WIMAX_SAMPLE_RATE, start_time=0.0,
                      power=units.db_to_linear(snr_db) * noise_floor)],
        out_rate=units.BASEBAND_RATE, duration=duration,
        noise_power=noise_floor, rng=rng,
    )

    template = wimax_preamble_template(cell_id=cell_id, segment=segment)
    if xcorr_threshold is None:
        xcorr_threshold = PAPER_OPERATING_THRESHOLD
    detection = DetectionConfig(
        template=template,
        xcorr_threshold=xcorr_threshold,
        energy_high_db=energy_threshold_db,
        energy_low_db=energy_threshold_db,
    )
    personality = reactive_jammer(uptime_seconds=1e-4)

    results: dict[str, WimaxJammingResult] = {}
    for scheme, stages, mode in (
        ("xcorr_only", [TriggerSource.XCORR], TriggerMode.SEQUENCE),
        ("combined", [TriggerSource.XCORR, TriggerSource.ENERGY_HIGH],
         TriggerMode.ANY),
    ):
        jammer = ReactiveJammer()
        jammer.configure(detection=detection,
                         events=_builder(stages, mode),
                         personality=personality)
        report = jammer.run(rx)
        results[scheme] = WimaxJammingResult(
            detection_scheme=scheme,
            n_frames=n_frames,
            frames_detected=_frames_hit(report, n_frames),
            jam_bursts=len(report.jams),
            rx_trace=rx,
            tx_trace=report.tx,
        )
    return results


def _builder(stages: list[TriggerSource], mode: TriggerMode):
    """An event builder for an explicit stage list."""
    from repro.core.events import JammingEventBuilder

    builder = JammingEventBuilder(stages=list(stages))
    builder.mode = mode
    return builder
