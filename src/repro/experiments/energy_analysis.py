"""Energy analysis of the three jammer personalities (paper §4.3).

"While the results indicate that higher instantaneous jamming powers
are required to perform reactive jamming operations, it is important
to note that the actual energy requirements are considerably lower.
Only a short reactive jamming burst is required to disable the
wireless link."

This harness quantifies that argument: for each personality, it finds
the weakest transmit power that still drives the iperf link to zero
bandwidth, runs one interval there, and integrates transmit energy =
power x airtime.  The continuous jammer wins on instantaneous power;
the reactive jammers win on energy by orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.core.presets import JammerPersonality, paper_personalities
from repro.errors import ConfigurationError
from repro.experiments.wifi_jamming import WifiJammingTestbed
from repro.mac.iperf import UdpBandwidthTest
from repro.mac.medium import Medium
from repro.mac.nodes import AccessPoint, JammerNode, Station
from repro.mac.simkernel import SimKernel


@dataclass(frozen=True)
class EnergyPoint:
    """Energy accounting for one personality at its kill point."""

    personality: str
    kill_sir_db: float
    jammer_tx_dbm: float
    airtime_s: float
    duration_s: float
    energy_joules: float

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the jammer transmitted."""
        return self.airtime_s / self.duration_s

    @property
    def mean_power_dbm(self) -> float:
        """Average radiated power over the interval."""
        watts = self.energy_joules / self.duration_s
        return units.watts_to_dbm(max(watts, 1e-30))


def _run_with_airtime(bed: WifiJammingTestbed,
                      personality: JammerPersonality,
                      sir_db: float, seed: int = 1):
    """One iperf interval, returning (report, jam airtime, tx dbm)."""
    rng = np.random.default_rng(seed)
    kernel = SimKernel()
    medium = Medium(bed.path_loss_db)
    ap = AccessPoint("ap", kernel, medium, rng, tx_power_dbm=bed.ap_tx_dbm)
    client = Station("client", kernel, medium, ap, rng,
                     tx_power_dbm=bed.client_tx_dbm)
    jam_tx_dbm = bed.jammer_tx_for_sir(sir_db)
    jammer = JammerNode("jammer", kernel, medium, personality,
                        tx_power_dbm=jam_tx_dbm)
    jammer.start(bed.duration_s)
    report = UdpBandwidthTest(kernel, client, ap).run(bed.duration_s)
    if personality.continuous:
        airtime = bed.duration_s
    else:
        airtime = jammer.bursts * personality.uptime_seconds
    return report, airtime, jam_tx_dbm


def find_kill_sir(bed: WifiJammingTestbed, personality: JammerPersonality,
                  sir_grid_db: list[float] | None = None,
                  threshold_kbps: float = 500.0) -> float:
    """The highest SIR (weakest jammer) that still kills the link."""
    grid = sir_grid_db if sir_grid_db is not None else [
        36.0, 32.0, 28.0, 24.0, 20.0, 16.0, 12.0, 8.0, 4.0, 2.0, 0.0]
    for sir_db in grid:
        report, _airtime, _tx = _run_with_airtime(bed, personality, sir_db)
        if report.bandwidth_kbps < threshold_kbps:
            return sir_db
    raise ConfigurationError(
        f"{personality.name} cannot kill the link on this grid"
    )


def energy_comparison(duration_s: float = 0.25) -> list[EnergyPoint]:
    """§4.3's power-vs-energy table at each personality's kill point."""
    bed = WifiJammingTestbed(duration_s=duration_s)
    points = []
    for personality in paper_personalities():
        kill_sir = find_kill_sir(bed, personality)
        _report, airtime, jam_tx_dbm = _run_with_airtime(
            bed, personality, kill_sir)
        energy = units.dbm_to_watts(jam_tx_dbm) * airtime
        points.append(EnergyPoint(
            personality=personality.name, kill_sir_db=kill_sir,
            jammer_tx_dbm=jam_tx_dbm, airtime_s=airtime,
            duration_s=duration_s, energy_joules=energy,
        ))
    return points
