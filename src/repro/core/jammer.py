"""The reactive jammer facade — the framework's main entry point.

Composes a :class:`repro.hw.usrp.UsrpN210` (with the custom core), a
detection configuration, an event definition, and a response
personality into one object that can be pointed at received signal:

    >>> jammer = ReactiveJammer()
    >>> jammer.configure(
    ...     detection=DetectionConfig(template=wifi_short_preamble_template(),
    ...                               xcorr_threshold=30000),
    ...     events=JammingEventBuilder().on_correlation(),
    ...     personality=reactive_jammer(1e-4),
    ... )
    >>> report = jammer.run(rx_waveform)

Everything is reconfigurable at run time through register writes, as
the paper emphasizes ("on-the-fly jamming personalities ... with a
small latency equivalent to the latency of the UHD user setting bus").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.presets import JammerPersonality
from repro.errors import ConfigurationError
from repro.hw.dsp_core import DetectionEvent, JamEvent
from repro.hw.trigger import TriggerSource
from repro.hw.uhd import UhdDriver
from repro.hw.usrp import SbxFrontend, UsrpN210


@dataclass
class JammingReport:
    """Everything observed during one run of the jammer."""

    tx: np.ndarray
    detections: list[DetectionEvent] = field(default_factory=list)
    jams: list[JamEvent] = field(default_factory=list)
    sample_rate: float = units.BASEBAND_RATE

    @property
    def detection_times(self) -> list[float]:
        """Detection instants in seconds."""
        return [d.time / self.sample_rate for d in self.detections]

    def detections_by_source(self, source: TriggerSource) -> list[DetectionEvent]:
        """Detections from one detector block."""
        return [d for d in self.detections if d.source == source]

    @property
    def jam_spans_seconds(self) -> list[tuple[float, float]]:
        """Jam bursts as (start, end) in seconds."""
        return [(j.start / self.sample_rate, j.end / self.sample_rate)
                for j in self.jams]

    @property
    def total_jam_airtime(self) -> float:
        """Total transmitted jamming time in seconds."""
        return sum(end - start for start, end in self.jam_spans_seconds)


class ReactiveJammer:
    """The real-time protocol-aware reactive jammer."""

    def __init__(self, device: UsrpN210 | None = None) -> None:
        self.device = device if device is not None else UsrpN210()
        self.driver = UhdDriver(self.device)
        self._configured = False

    @property
    def frontend(self) -> SbxFrontend:
        """RF front end, for tuning and gain control."""
        return self.device.frontend

    def configure(self, detection: DetectionConfig,
                  events: JammingEventBuilder,
                  personality: JammerPersonality) -> None:
        """Program detection, event combination, and response."""
        if detection.template is not None:
            self.driver.set_correlator_template(detection.template)
        elif any(s is TriggerSource.XCORR for s in events.stages):
            raise ConfigurationError(
                "event definition uses the correlator but no template is set"
            )
        self.driver.set_xcorr_threshold(detection.xcorr_threshold)
        self.driver.set_energy_thresholds(detection.energy_high_db,
                                          detection.energy_low_db)
        events.program(self.driver)
        self.apply_personality(personality)
        self._configured = True

    def apply_personality(self, personality: JammerPersonality) -> None:
        """Swap the response personality at run time (paper §4.3)."""
        self.driver.set_jam_waveform(personality.waveform,
                                     personality.wgn_seed)
        if not personality.continuous:
            self.driver.set_jam_uptime(personality.uptime_samples)
            self.driver.set_jam_delay(personality.delay_samples)
        self.driver.set_control(jammer_enabled=True,
                                continuous=personality.continuous)
        self._personality = personality

    def disable(self) -> None:
        """Stop transmitting (detection keeps running)."""
        self.driver.set_control(jammer_enabled=False, continuous=False)

    def run(self, rx_signal: np.ndarray, chunk_size: int = 1 << 16) -> JammingReport:
        """Feed a received waveform through the jammer.

        ``rx_signal`` is complex baseband at the jammer's 25 MSPS input
        rate (use :mod:`repro.channel.combining` to build it from
        transmitters at other rates).
        """
        if not self._configured:
            raise ConfigurationError("configure() must be called before run()")
        out = self.device.run(rx_signal, chunk_size=chunk_size)
        return JammingReport(tx=out.tx, detections=out.detections,
                             jams=out.jams)

    def reset(self) -> None:
        """Reset the data path (configuration registers survive)."""
        self.device.core.reset()
        self.device.ddc.reset()
