"""The reactive jammer facade — the framework's main entry point.

Composes a :class:`repro.hw.usrp.UsrpN210` (with the custom core), a
detection configuration, an event definition, and a response
personality into one object that can be pointed at received signal:

    >>> jammer = ReactiveJammer()
    >>> jammer.configure(
    ...     detection=DetectionConfig(template=wifi_short_preamble_template(),
    ...                               xcorr_threshold=30000),
    ...     events=JammingEventBuilder().on_correlation(),
    ...     personality=reactive_jammer(1e-4),
    ... )
    >>> report = jammer.run(rx_waveform)

Everything is reconfigurable at run time through register writes, as
the paper emphasizes ("on-the-fly jamming personalities ... with a
small latency equivalent to the latency of the UHD user setting bus").
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import units
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.presets import JammerPersonality
from repro.errors import ConfigurationError, StreamError
from repro.hw.dsp_core import DetectionEvent, JamEvent
from repro.hw.trigger import TriggerSource
from repro.hw.tx_controller import JamWaveform
from repro.hw.uhd import UhdDriver
from repro.hw.usrp import SbxFrontend, UsrpN210
from repro.hw.watchdog import Watchdog, WatchdogTrip
from repro.telemetry.session import Telemetry
from repro.telemetry.tracer import CAT_RUN

if TYPE_CHECKING:  # repro.faults imports repro.hw; avoid the cycle.
    from repro.faults.stream import StreamFaultInjector


class DegradationPolicy(enum.Enum):
    """What :meth:`ReactiveJammer.run` does when a chunk fails.

    FAIL_FAST re-raises the first streaming error (the historical
    behaviour — correct for offline analysis, where a lost chunk means
    a broken experiment).  SKIP_AND_LOG drops the failing chunk,
    substitutes silence on the transmit side, keeps the absolute
    timeline aligned, and records the failure in the
    :class:`HealthReport` — what a deployed jammer must do, since an
    RX overrun is not a reason to stop jamming.
    """

    FAIL_FAST = "fail-fast"
    SKIP_AND_LOG = "skip-and-log"


@dataclass
class HealthReport:
    """Structured account of everything that went wrong (and was survived).

    Attached to :class:`JammingReport` by :meth:`ReactiveJammer.run`.
    """

    chunks_processed: int = 0
    chunks_skipped: int = 0
    samples_skipped: int = 0
    stream_errors: list[str] = field(default_factory=list)
    #: :class:`repro.hw.uhd.DriverHealth` counters at end of run.
    driver: dict[str, int] = field(default_factory=dict)
    #: Register addresses repaired by scrub passes during the run.
    scrub_repairs: list[int] = field(default_factory=list)
    watchdog_trips: list[WatchdogTrip] = field(default_factory=list)
    #: Telemetry metrics snapshot (empty without a telemetry bundle).
    metrics: dict = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """Whether the run needed any recovery or intervention."""
        return bool(self.chunks_skipped or self.scrub_repairs
                    or self.watchdog_trips
                    or self.driver.get("retries", 0)
                    or self.driver.get("write_failures", 0))

    def to_dict(self) -> dict:
        """A JSON-compatible dict of the report."""
        return {
            "chunks_processed": self.chunks_processed,
            "chunks_skipped": self.chunks_skipped,
            "samples_skipped": self.samples_skipped,
            "stream_errors": list(self.stream_errors),
            "driver": dict(self.driver),
            "scrub_repairs": list(self.scrub_repairs),
            "watchdog_trips": [
                {"time": t.time, "reason": t.reason, "detail": t.detail}
                for t in self.watchdog_trips
            ],
            "metrics": self.metrics,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HealthReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            chunks_processed=data.get("chunks_processed", 0),
            chunks_skipped=data.get("chunks_skipped", 0),
            samples_skipped=data.get("samples_skipped", 0),
            stream_errors=list(data.get("stream_errors", [])),
            driver=dict(data.get("driver", {})),
            scrub_repairs=list(data.get("scrub_repairs", [])),
            watchdog_trips=[
                WatchdogTrip(time=t["time"], reason=t["reason"],
                             detail=t["detail"])
                for t in data.get("watchdog_trips", [])
            ],
            metrics=dict(data.get("metrics", {})),
        )

    def to_json(self, indent: int | None = None) -> str:
        """The report serialized as JSON."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "HealthReport":
        """Rebuild a report from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


@dataclass
class JammingReport:
    """Everything observed during one run of the jammer."""

    tx: np.ndarray
    detections: list[DetectionEvent] = field(default_factory=list)
    jams: list[JamEvent] = field(default_factory=list)
    sample_rate: float = units.BASEBAND_RATE
    health: HealthReport = field(default_factory=HealthReport)

    @property
    def detection_times(self) -> list[float]:
        """Detection instants in seconds."""
        return [d.time / self.sample_rate for d in self.detections]

    def detections_by_source(self, source: TriggerSource) -> list[DetectionEvent]:
        """Detections from one detector block."""
        return [d for d in self.detections if d.source == source]

    def detections_by_protocol(self, protocol: str) -> list[DetectionEvent]:
        """Detections attributed to one stacked correlator bank."""
        return [d for d in self.detections if d.protocol == protocol]

    @property
    def protocol_counts(self) -> dict[str, int]:
        """Detections per protocol label (stacked-bank runs only)."""
        counts: dict[str, int] = {}
        for d in self.detections:
            if d.protocol is not None:
                counts[d.protocol] = counts.get(d.protocol, 0) + 1
        return counts

    @property
    def jam_spans_seconds(self) -> list[tuple[float, float]]:
        """Jam bursts as (start, end) in seconds."""
        return [(j.start / self.sample_rate, j.end / self.sample_rate)
                for j in self.jams]

    @property
    def total_jam_airtime(self) -> float:
        """Total transmitted jamming time in seconds."""
        return sum(end - start for start, end in self.jam_spans_seconds)

    def to_dict(self, include_tx: bool = False) -> dict:
        """A JSON-compatible dict of the report.

        The transmit waveform is omitted by default (it dominates the
        payload size); ``include_tx`` serializes it as parallel
        ``tx_re``/``tx_im`` lists.
        """
        data: dict = {
            "sample_rate": self.sample_rate,
            "detections": [
                {"time": d.time, "source": d.source.name}
                if d.protocol is None else
                {"time": d.time, "source": d.source.name,
                 "protocol": d.protocol}
                for d in self.detections
            ],
            "jams": [
                {"trigger_time": j.trigger_time, "start": j.start,
                 "end": j.end, "waveform": j.waveform.name}
                for j in self.jams
            ],
            "health": self.health.to_dict(),
        }
        if include_tx:
            data["tx_re"] = self.tx.real.tolist()
            data["tx_im"] = self.tx.imag.tolist()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "JammingReport":
        """Rebuild a report from :meth:`to_dict` output."""
        if "tx_re" in data:
            tx = (np.asarray(data["tx_re"], dtype=np.float64)
                  + 1j * np.asarray(data["tx_im"], dtype=np.float64))
        else:
            tx = np.zeros(0, dtype=np.complex128)
        return cls(
            tx=tx,
            detections=[
                DetectionEvent(time=d["time"],
                               source=TriggerSource[d["source"]],
                               protocol=d.get("protocol"))
                for d in data.get("detections", [])
            ],
            jams=[
                JamEvent(trigger_time=j["trigger_time"], start=j["start"],
                         end=j["end"], waveform=JamWaveform[j["waveform"]])
                for j in data.get("jams", [])
            ],
            sample_rate=data.get("sample_rate", units.BASEBAND_RATE),
            health=HealthReport.from_dict(data.get("health", {})),
        )

    def to_json(self, include_tx: bool = False,
                indent: int | None = None) -> str:
        """The report serialized as JSON."""
        return json.dumps(self.to_dict(include_tx=include_tx), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "JammingReport":
        """Rebuild a report from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


class ReactiveJammer:
    """The real-time protocol-aware reactive jammer."""

    def __init__(self, device: UsrpN210 | None = None, *,
                 watchdog: Watchdog | None = None,
                 stream_faults: "StreamFaultInjector | None" = None,
                 verify_writes: bool = True,
                 telemetry: Telemetry | None = None) -> None:
        if device is not None and (watchdog is not None
                                   or stream_faults is not None):
            raise ConfigurationError(
                "watchdog/stream_faults are wired at device construction; "
                "pass them to UsrpN210 when supplying your own device"
            )
        self.device = device if device is not None else UsrpN210(
            watchdog=watchdog, stream_faults=stream_faults)
        self.driver = UhdDriver(self.device, verify_writes=verify_writes)
        #: Opt-in observability bundle (``None`` leaves every probe
        #: point at its null default).
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.attach(self.device, self.driver)
        self._configured = False

    @property
    def frontend(self) -> SbxFrontend:
        """RF front end, for tuning and gain control."""
        return self.device.frontend

    def configure(self, detection: DetectionConfig,
                  events: JammingEventBuilder,
                  personality: JammerPersonality) -> None:
        """Program detection, event combination, and response.

        With ``detection.banks`` set, the stacked multi-standard
        correlator is programmed through
        :meth:`repro.hw.uhd.UhdDriver.set_correlator_banks`, whose
        write order is atomic against stale thresholds: every per-bank
        threshold register is written (readback-verified) while the
        bank count is parked at zero, and only the final count write
        enables the correlator stage — the same discipline
        :meth:`~repro.hw.uhd.UhdDriver.set_trigger_stages` applies to
        the trigger window.
        """
        if detection.banks is not None:
            self.driver.set_correlator_banks(
                [bank.template for bank in detection.banks],
                [bank.threshold for bank in detection.banks],
                labels=[bank.name for bank in detection.banks],
            )
        else:
            if self.device.core.bank_count:
                self.driver.set_bank_count(0)
            if detection.template is not None:
                self.driver.set_correlator_template(detection.template)
            elif any(s is TriggerSource.XCORR for s in events.stages):
                raise ConfigurationError(
                    "event definition uses the correlator but no template "
                    "is set"
                )
        self.driver.set_xcorr_threshold(detection.xcorr_threshold)
        self.driver.set_energy_thresholds(detection.energy_high_db,
                                          detection.energy_low_db)
        events.program(self.driver)
        self.apply_personality(personality)
        self._configured = True

    def apply_personality(self, personality: JammerPersonality) -> None:
        """Swap the response personality at run time (paper §4.3)."""
        self.driver.set_jam_waveform(personality.waveform,
                                     personality.wgn_seed)
        if not personality.continuous:
            self.driver.set_jam_uptime(personality.uptime_samples)
            self.driver.set_jam_delay(personality.delay_samples)
        self.driver.set_control(jammer_enabled=True,
                                continuous=personality.continuous)
        self._personality = personality

    def disable(self) -> None:
        """Stop transmitting (detection keeps running)."""
        self.driver.set_control(jammer_enabled=False, continuous=False)

    def run(self, rx_signal: np.ndarray, chunk_size: int = 1 << 16,
            degradation: DegradationPolicy = DegradationPolicy.FAIL_FAST,
            scrub_every_chunks: int = 0) -> JammingReport:
        """Feed a received waveform through the jammer.

        ``rx_signal`` is complex baseband at the jammer's 25 MSPS input
        rate (use :mod:`repro.channel.combining` to build it from
        transmitters at other rates).

        ``degradation`` selects per-chunk error recovery: under
        SKIP_AND_LOG a chunk whose processing raises
        :class:`~repro.errors.StreamError` is dropped (silence is
        transmitted for its span, the device timeline is advanced with
        ``skip``) and the failure is logged in the report's
        :class:`HealthReport`.  ``scrub_every_chunks > 0`` runs the
        driver's shadow-map :meth:`~repro.hw.uhd.UhdDriver.scrub`
        repair pass every that many chunks.
        """
        if not self._configured:
            raise ConfigurationError("configure() must be called before run()")
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        if scrub_every_chunks < 0:
            raise ConfigurationError("scrub_every_chunks must be >= 0")
        rx_signal = np.asarray(rx_signal, dtype=np.complex128)
        tel = self.telemetry if (self.telemetry is not None
                                 and self.telemetry.enabled) else None
        run_start_ns = tel.timebase.host_now_ns() if tel is not None else 0
        health = HealthReport()
        tx_parts: list[np.ndarray] = []
        detections: list[DetectionEvent] = []
        jams: list[JamEvent] = []
        for index, start in enumerate(range(0, rx_signal.size, chunk_size)):
            chunk = rx_signal[start:start + chunk_size]
            chunk_clock = self.device.core.clock if tel is not None else 0
            try:
                out = self.device.process(chunk)
            except StreamError as exc:
                if degradation is DegradationPolicy.FAIL_FAST:
                    raise
                health.chunks_skipped += 1
                health.samples_skipped += chunk.size
                health.stream_errors.append(str(exc))
                self.device.skip(chunk.size)
                tx_parts.append(np.zeros(chunk.size, dtype=np.complex128))
                if tel is not None:
                    tel.tracer.instant("run.chunk_skipped", CAT_RUN,
                                       chunk_clock, index=index,
                                       error=str(exc))
            else:
                health.chunks_processed += 1
                tx_parts.append(out.tx)
                detections.extend(out.detections)
                jams.extend(out.jams)
                if tel is not None:
                    tel.tracer.span("run.chunk", CAT_RUN, chunk_clock,
                                    self.device.core.clock, index=index,
                                    detections=len(out.detections),
                                    jams=len(out.jams))
            if scrub_every_chunks and (index + 1) % scrub_every_chunks == 0:
                health.scrub_repairs.extend(self.driver.scrub())
        health.driver = self.driver.health.snapshot()
        watchdog = self.device.core.watchdog
        if watchdog is not None:
            health.watchdog_trips = list(watchdog.trips)
        if tel is not None:
            self._record_run_metrics(tel, health, detections, jams,
                                     rx_signal.size, run_start_ns)
            health.metrics = tel.metrics.snapshot()
        tx = np.concatenate(tx_parts) if tx_parts \
            else np.zeros(0, dtype=np.complex128)
        return JammingReport(tx=tx, detections=detections, jams=jams,
                             health=health)

    def _record_run_metrics(self, tel: Telemetry, health: HealthReport,
                            detections: list[DetectionEvent],
                            jams: list[JamEvent], total_samples: int,
                            run_start_ns: int) -> None:
        """Fold one run's outcomes into the metrics registry."""
        elapsed_ns = tel.timebase.host_now_ns() - run_start_ns
        metrics = tel.metrics
        metrics.counter("run.chunks").inc(health.chunks_processed)
        metrics.counter("run.chunks_skipped").inc(health.chunks_skipped)
        metrics.counter("run.samples").inc(total_samples)
        metrics.counter("run.detections").inc(len(detections))
        metrics.counter("run.jams").inc(len(jams))
        metrics.counter("driver.write_retries").inc(
            health.driver.get("retries", 0))
        jam_samples = sum(j.end - j.start for j in jams)
        if total_samples:
            metrics.gauge("run.jam_duty_cycle").set(
                jam_samples / total_samples)
        if elapsed_ns > 0:
            # samples/ns is numerically Gsamples/s; x1000 -> Msamples/s.
            metrics.gauge("run.throughput_msps").set(
                total_samples * 1e3 / elapsed_ns)
        response = metrics.histogram("latency.response_ns")
        for jam in jams:
            response.observe(
                tel.timebase.sample_to_ns(jam.start - jam.trigger_time))

    def reset(self) -> None:
        """Reset the data path (configuration registers survive)."""
        self.device.core.reset()
        self.device.ddc.reset()
