"""The reactive jammer facade — the framework's main entry point.

Composes a :class:`repro.hw.usrp.UsrpN210` (with the custom core), a
detection configuration, an event definition, and a response
personality into one object that can be pointed at received signal:

    >>> jammer = ReactiveJammer()
    >>> jammer.configure(
    ...     detection=DetectionConfig(template=wifi_short_preamble_template(),
    ...                               xcorr_threshold=30000),
    ...     events=JammingEventBuilder().on_correlation(),
    ...     personality=reactive_jammer(1e-4),
    ... )
    >>> report = jammer.run(rx_waveform)

Everything is reconfigurable at run time through register writes, as
the paper emphasizes ("on-the-fly jamming personalities ... with a
small latency equivalent to the latency of the UHD user setting bus").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import units
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.presets import JammerPersonality
from repro.errors import ConfigurationError, StreamError
from repro.hw.dsp_core import DetectionEvent, JamEvent
from repro.hw.trigger import TriggerSource
from repro.hw.uhd import UhdDriver
from repro.hw.usrp import SbxFrontend, UsrpN210
from repro.hw.watchdog import Watchdog, WatchdogTrip

if TYPE_CHECKING:  # repro.faults imports repro.hw; avoid the cycle.
    from repro.faults.stream import StreamFaultInjector


class DegradationPolicy(enum.Enum):
    """What :meth:`ReactiveJammer.run` does when a chunk fails.

    FAIL_FAST re-raises the first streaming error (the historical
    behaviour — correct for offline analysis, where a lost chunk means
    a broken experiment).  SKIP_AND_LOG drops the failing chunk,
    substitutes silence on the transmit side, keeps the absolute
    timeline aligned, and records the failure in the
    :class:`HealthReport` — what a deployed jammer must do, since an
    RX overrun is not a reason to stop jamming.
    """

    FAIL_FAST = "fail-fast"
    SKIP_AND_LOG = "skip-and-log"


@dataclass
class HealthReport:
    """Structured account of everything that went wrong (and was survived).

    Attached to :class:`JammingReport` by :meth:`ReactiveJammer.run`.
    """

    chunks_processed: int = 0
    chunks_skipped: int = 0
    samples_skipped: int = 0
    stream_errors: list[str] = field(default_factory=list)
    #: :class:`repro.hw.uhd.DriverHealth` counters at end of run.
    driver: dict[str, int] = field(default_factory=dict)
    #: Register addresses repaired by scrub passes during the run.
    scrub_repairs: list[int] = field(default_factory=list)
    watchdog_trips: list[WatchdogTrip] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Whether the run needed any recovery or intervention."""
        return bool(self.chunks_skipped or self.scrub_repairs
                    or self.watchdog_trips
                    or self.driver.get("retries", 0)
                    or self.driver.get("write_failures", 0))


@dataclass
class JammingReport:
    """Everything observed during one run of the jammer."""

    tx: np.ndarray
    detections: list[DetectionEvent] = field(default_factory=list)
    jams: list[JamEvent] = field(default_factory=list)
    sample_rate: float = units.BASEBAND_RATE
    health: HealthReport = field(default_factory=HealthReport)

    @property
    def detection_times(self) -> list[float]:
        """Detection instants in seconds."""
        return [d.time / self.sample_rate for d in self.detections]

    def detections_by_source(self, source: TriggerSource) -> list[DetectionEvent]:
        """Detections from one detector block."""
        return [d for d in self.detections if d.source == source]

    @property
    def jam_spans_seconds(self) -> list[tuple[float, float]]:
        """Jam bursts as (start, end) in seconds."""
        return [(j.start / self.sample_rate, j.end / self.sample_rate)
                for j in self.jams]

    @property
    def total_jam_airtime(self) -> float:
        """Total transmitted jamming time in seconds."""
        return sum(end - start for start, end in self.jam_spans_seconds)


class ReactiveJammer:
    """The real-time protocol-aware reactive jammer."""

    def __init__(self, device: UsrpN210 | None = None, *,
                 watchdog: Watchdog | None = None,
                 stream_faults: "StreamFaultInjector | None" = None,
                 verify_writes: bool = True) -> None:
        if device is not None and (watchdog is not None
                                   or stream_faults is not None):
            raise ConfigurationError(
                "watchdog/stream_faults are wired at device construction; "
                "pass them to UsrpN210 when supplying your own device"
            )
        self.device = device if device is not None else UsrpN210(
            watchdog=watchdog, stream_faults=stream_faults)
        self.driver = UhdDriver(self.device, verify_writes=verify_writes)
        self._configured = False

    @property
    def frontend(self) -> SbxFrontend:
        """RF front end, for tuning and gain control."""
        return self.device.frontend

    def configure(self, detection: DetectionConfig,
                  events: JammingEventBuilder,
                  personality: JammerPersonality) -> None:
        """Program detection, event combination, and response."""
        if detection.template is not None:
            self.driver.set_correlator_template(detection.template)
        elif any(s is TriggerSource.XCORR for s in events.stages):
            raise ConfigurationError(
                "event definition uses the correlator but no template is set"
            )
        self.driver.set_xcorr_threshold(detection.xcorr_threshold)
        self.driver.set_energy_thresholds(detection.energy_high_db,
                                          detection.energy_low_db)
        events.program(self.driver)
        self.apply_personality(personality)
        self._configured = True

    def apply_personality(self, personality: JammerPersonality) -> None:
        """Swap the response personality at run time (paper §4.3)."""
        self.driver.set_jam_waveform(personality.waveform,
                                     personality.wgn_seed)
        if not personality.continuous:
            self.driver.set_jam_uptime(personality.uptime_samples)
            self.driver.set_jam_delay(personality.delay_samples)
        self.driver.set_control(jammer_enabled=True,
                                continuous=personality.continuous)
        self._personality = personality

    def disable(self) -> None:
        """Stop transmitting (detection keeps running)."""
        self.driver.set_control(jammer_enabled=False, continuous=False)

    def run(self, rx_signal: np.ndarray, chunk_size: int = 1 << 16,
            degradation: DegradationPolicy = DegradationPolicy.FAIL_FAST,
            scrub_every_chunks: int = 0) -> JammingReport:
        """Feed a received waveform through the jammer.

        ``rx_signal`` is complex baseband at the jammer's 25 MSPS input
        rate (use :mod:`repro.channel.combining` to build it from
        transmitters at other rates).

        ``degradation`` selects per-chunk error recovery: under
        SKIP_AND_LOG a chunk whose processing raises
        :class:`~repro.errors.StreamError` is dropped (silence is
        transmitted for its span, the device timeline is advanced with
        ``skip``) and the failure is logged in the report's
        :class:`HealthReport`.  ``scrub_every_chunks > 0`` runs the
        driver's shadow-map :meth:`~repro.hw.uhd.UhdDriver.scrub`
        repair pass every that many chunks.
        """
        if not self._configured:
            raise ConfigurationError("configure() must be called before run()")
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        if scrub_every_chunks < 0:
            raise ConfigurationError("scrub_every_chunks must be >= 0")
        rx_signal = np.asarray(rx_signal, dtype=np.complex128)
        health = HealthReport()
        tx_parts: list[np.ndarray] = []
        detections: list[DetectionEvent] = []
        jams: list[JamEvent] = []
        for index, start in enumerate(range(0, rx_signal.size, chunk_size)):
            chunk = rx_signal[start:start + chunk_size]
            try:
                out = self.device.process(chunk)
            except StreamError as exc:
                if degradation is DegradationPolicy.FAIL_FAST:
                    raise
                health.chunks_skipped += 1
                health.samples_skipped += chunk.size
                health.stream_errors.append(str(exc))
                self.device.skip(chunk.size)
                tx_parts.append(np.zeros(chunk.size, dtype=np.complex128))
            else:
                health.chunks_processed += 1
                tx_parts.append(out.tx)
                detections.extend(out.detections)
                jams.extend(out.jams)
            if scrub_every_chunks and (index + 1) % scrub_every_chunks == 0:
                health.scrub_repairs.extend(self.driver.scrub())
        health.driver = self.driver.health.snapshot()
        watchdog = self.device.core.watchdog
        if watchdog is not None:
            health.watchdog_trips = list(watchdog.trips)
        tx = np.concatenate(tx_parts) if tx_parts \
            else np.zeros(0, dtype=np.complex128)
        return JammingReport(tx=tx, detections=detections, jams=jams,
                             health=health)

    def reset(self) -> None:
        """Reset the data path (configuration registers survive)."""
        self.device.core.reset()
        self.device.ddc.reset()
