"""Offline generation of cross-correlator templates (paper §2.3).

"These coefficients are generated offline on the host based on
knowledge of the wireless standards' preambles or inferred from the
low-entropy portions of the samples of incoming signals."

All templates are 64 complex samples **at the jammer's 25 MSPS data
path rate**.  For WiFi this bakes in the paper's central impairment:
the standard's preambles live at 20 MSPS, so the 64-sample window at
25 MSPS covers only the first 2.56 us of the 3.2 us long-preamble
code.  For WiMAX the 25 us preamble code dwarfs the window entirely.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.dsp.measure import sliding_energy
from repro.dsp.resample import resample
from repro.errors import ConfigurationError
from repro.hw.register_map import CORRELATOR_LENGTH
from repro.phy.wifi.params import WIFI_SAMPLE_RATE
from repro.phy.wifi.preamble import (
    LONG_GUARD,
    long_training_symbol,
    short_preamble,
)
from repro.phy.wimax.params import WIMAX_SAMPLE_RATE
from repro.phy.wimax.preamble import preamble_symbol
from repro.runtime.cache import cached_artifact


def _window64(samples: np.ndarray, offset: int = 0) -> np.ndarray:
    if samples.size < offset + CORRELATOR_LENGTH:
        raise ConfigurationError(
            f"waveform too short for a {CORRELATOR_LENGTH}-sample template"
        )
    return samples[offset:offset + CORRELATOR_LENGTH].copy()


@cached_artifact
def wifi_long_preamble_template(resampled: bool = True) -> np.ndarray:
    """The 64-coefficient template for the WiFi long training symbol.

    With ``resampled=True`` (default) the 20 MSPS code is converted
    to the correlator's 25 MSPS and truncated to its first 64 samples,
    realizing the paper's "orthogonal code that is 3.2 us long is
    being correlated across its first 2.56 us".

    ``resampled=False`` is the ablation bracketing the paper's analog
    reality from below: the native-rate samples loaded verbatim, so
    the coefficient spacing drifts against the signal by 20 % per
    sample and the correlation collapses — the full-strength version
    of the "sampling rate mismatch between the correlator and the RF
    signal" the paper blames for its reduced detection rates.
    """
    lts = long_training_symbol()
    if not resampled:
        return lts.copy()
    at_25 = resample(lts, WIFI_SAMPLE_RATE, units.BASEBAND_RATE)
    return _window64(at_25)


@cached_artifact
def wifi_short_preamble_template(resampled: bool = True) -> np.ndarray:
    """The 64-coefficient template for the WiFi short training field.

    With ``resampled=True`` (default) the first 64 samples of the STF
    at 25 MSPS — 3.2 repetitions of the 0.8 us code.  Because the code
    is short and cyclically repeated ten times per frame, alignments
    against the stream recur throughout the STF, which is why
    short-preamble detection is so much stronger (paper Fig. 7 vs
    Fig. 6).  ``resampled=False`` tiles the native-rate 16-sample code
    four times (the degraded ablation).
    """
    stf = short_preamble()
    if not resampled:
        return stf[:64].copy()
    at_25 = resample(stf, WIFI_SAMPLE_RATE, units.BASEBAND_RATE)
    return _window64(at_25)


@cached_artifact
def wimax_preamble_template(cell_id: int = 1, segment: int = 0,
                            resampled: bool = True) -> np.ndarray:
    """64 samples of the 802.16e downlink preamble.

    The default follows the paper's description for WiMAX: "the 25 us
    orthogonal code in the preamble is being correlated across its
    first 2.56 us" — the code resampled to the jammer's 25 MSPS with
    only the first 64 samples (after the cyclic prefix) retained.  The
    window covers ~10 % of the code, the source of the ~2/3
    misdetection rate in paper §5.  ``resampled=False`` loads the
    native 11.4 MHz samples instead (a further-degraded ablation).
    """
    symbol = preamble_symbol(cell_id=cell_id, segment=segment)
    if not resampled:
        return _window64(symbol, offset=128)
    at_25 = resample(symbol, WIMAX_SAMPLE_RATE, units.BASEBAND_RATE)
    cp_at_25 = int(round(128 * units.BASEBAND_RATE / WIMAX_SAMPLE_RATE))
    return _window64(at_25, offset=cp_at_25)


@cached_artifact
def dsss_preamble_template() -> np.ndarray:
    """64 samples of the 802.11b long DSSS preamble, at 25 MSPS.

    One DBPSK SYNC bit is 11 Barker chips = 1 us = 25 samples at the
    jammer's rate, so the window spans ~2.5 bits of the scrambled SYNC
    field; the 144 us preamble provides dozens of recurrences.
    """
    from repro.phy.wifi.dsss import DSSS_SAMPLE_RATE, long_preamble_waveform

    preamble = long_preamble_waveform()
    at_25 = resample(preamble, DSSS_SAMPLE_RATE, units.BASEBAND_RATE)
    return _window64(at_25)


@cached_artifact
def zigbee_preamble_template() -> np.ndarray:
    """64 samples of the 802.15.4 preamble, at 25 MSPS.

    The preamble repeats the symbol-0 chip sequence (32 chips = 16 us)
    eight times, so the 2.56 us window covers ~5 chips of a code that
    recurs throughout the 128 us preamble — ample correlation
    opportunities, which is why low-rate reactive jamming (Wilhelm et
    al., the paper's baseline) is the easy case.
    """
    from repro.phy.zigbee.frame import preamble_waveform
    from repro.phy.zigbee.params import ZIGBEE_SAMPLE_RATE

    preamble = preamble_waveform()
    at_25 = resample(preamble, ZIGBEE_SAMPLE_RATE, units.BASEBAND_RATE)
    return _window64(at_25)


def infer_template_from_capture(capture: np.ndarray,
                                min_energy_fraction: float = 0.5) -> np.ndarray:
    """Infer a 64-sample template from a captured signal.

    Implements the paper's fallback when no standard preamble is known:
    find the most *self-similar* (low-entropy) 64-sample window — the
    one whose lag-autocorrelation against the rest of the capture is
    strongest — restricted to windows carrying appreciable energy.
    """
    capture = np.asarray(capture, dtype=np.complex128)
    if capture.size < 2 * CORRELATOR_LENGTH:
        raise ConfigurationError(
            "need at least 128 samples to infer a template"
        )
    window = CORRELATOR_LENGTH
    energies = sliding_energy(capture, window)[window - 1:]
    floor = float(np.max(energies)) * min_energy_fraction
    best_score = -1.0
    best_start = 0
    # Score each candidate window by its correlation with the window
    # one code-length later (periodic preambles repeat themselves).
    for start in range(0, capture.size - 2 * window + 1):
        if energies[start] < floor:
            continue
        a = capture[start:start + window]
        b = capture[start + window:start + 2 * window]
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0:
            continue
        score = float(np.abs(np.vdot(a, b)) / denom)
        if score > best_score:
            best_score = score
            best_start = start
    if best_score < 0:
        raise ConfigurationError("no energetic window found in the capture")
    return capture[best_start:best_start + window].copy()
