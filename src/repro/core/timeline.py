"""Reactive jamming timeline analysis (paper §3.1 and Fig. 5).

Derives the latency budget from the hardware model's own constants —
not from hard-coded paper numbers — so the Fig. 5 benchmark genuinely
measures the implementation:

* ``T_en_det``: worst-case energy-high detection time — the moving-sum
  window must fill (32 samples = 128 clocks = 1.28 us).
* ``T_xcorr_det``: cross-correlation detection time — exactly the
  64-sample window (2.56 us).
* ``T_init``: trigger-to-RF time — 8 clock cycles (80 ns).
* ``T_resp``: detection + init (+ user delay).
* ``T_jam``: the selected uptime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.hw.energy_differentiator import EnergyDifferentiator
from repro.hw.register_map import CORRELATOR_LENGTH
from repro.hw.tx_controller import INIT_LATENCY_CLOCKS, TransmitController


@dataclass(frozen=True)
class JammingTimeline:
    """The latency budget of one jammer configuration (seconds)."""

    t_en_det: float
    t_xcorr_det: float
    t_init: float
    t_jam: float
    t_delay: float

    @property
    def t_resp_energy(self) -> float:
        """Worst-case response time using energy detection."""
        return self.t_en_det + self.t_init + self.t_delay

    @property
    def t_resp_xcorr(self) -> float:
        """Response time using cross-correlation detection."""
        return self.t_xcorr_det + self.t_init + self.t_delay

    def as_dict(self) -> dict[str, float]:
        """All timeline components, for report printing."""
        return {
            "T_en_det": self.t_en_det,
            "T_xcorr_det": self.t_xcorr_det,
            "T_init": self.t_init,
            "T_delay": self.t_delay,
            "T_jam": self.t_jam,
            "T_resp(energy)": self.t_resp_energy,
            "T_resp(xcorr)": self.t_resp_xcorr,
        }


def timeline_for(energy: EnergyDifferentiator | None = None,
                 tx: TransmitController | None = None) -> JammingTimeline:
    """Compute the timeline from live block configurations.

    With no arguments, uses the default hardware configuration (the
    paper's numbers).
    """
    energy = energy if energy is not None else EnergyDifferentiator()
    tx = tx if tx is not None else TransmitController()
    return JammingTimeline(
        t_en_det=units.samples_to_seconds(energy.window),
        t_xcorr_det=units.samples_to_seconds(CORRELATOR_LENGTH),
        t_init=units.clocks_to_seconds(INIT_LATENCY_CLOCKS),
        t_jam=units.samples_to_seconds(tx.uptime_samples),
        t_delay=units.samples_to_seconds(tx.delay_samples),
    )
