"""Jammer personalities (paper §4.3).

The WiFi validation compares three jammers realized on one hardware
instantiation without reprogramming the FPGA:

* a **continuous** jammer,
* a **reactive** jammer with 0.1 ms uptime after trigger,
* a **reactive** jammer with 0.01 ms uptime after trigger.

A :class:`JammerPersonality` is a response-side value object; combined
with a :class:`repro.core.detection.DetectionConfig` it fully
parameterizes a :class:`repro.core.jammer.ReactiveJammer`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import ConfigurationError
from repro.hw.tx_controller import MAX_UPTIME_SAMPLES, JamWaveform

#: The paper's two reactive uptimes.
REACTIVE_UPTIME_LONG_S = 1e-4    # 0.1 ms
REACTIVE_UPTIME_SHORT_S = 1e-5   # 0.01 ms


@dataclass(frozen=True)
class JammerPersonality:
    """How the jammer responds once triggered.

    Attributes:
        name: Human-readable label used in experiment reports.
        continuous: True for an always-on jammer (triggers ignored).
        uptime_samples: Burst length after trigger (reactive only).
        delay_samples: Extra trigger-to-burst delay ("surgical" mode).
        waveform: Jamming waveform preset.
        wgn_seed: Seed for the hardware WGN generator.
    """

    name: str
    continuous: bool = False
    uptime_samples: int = 2500
    delay_samples: int = 0
    waveform: JamWaveform = JamWaveform.WGN
    wgn_seed: int = 0x5EED

    def __post_init__(self) -> None:
        if not self.continuous and not 1 <= self.uptime_samples <= MAX_UPTIME_SAMPLES:
            raise ConfigurationError(
                f"uptime {self.uptime_samples} outside "
                f"[1, {MAX_UPTIME_SAMPLES}] samples"
            )
        if self.delay_samples < 0:
            raise ConfigurationError("delay_samples must be non-negative")

    @property
    def uptime_seconds(self) -> float:
        """Burst duration in seconds."""
        return units.samples_to_seconds(self.uptime_samples)


def continuous_jammer(waveform: JamWaveform = JamWaveform.WGN,
                      wgn_seed: int = 0x5EED) -> JammerPersonality:
    """The always-on jammer the paper uses as its power baseline."""
    return JammerPersonality(
        name="continuous", continuous=True,
        waveform=waveform, wgn_seed=wgn_seed,
    )


def reactive_jammer(uptime_seconds: float, delay_seconds: float = 0.0,
                    waveform: JamWaveform = JamWaveform.WGN,
                    wgn_seed: int = 0x5EED) -> JammerPersonality:
    """A reactive jammer with the given burst uptime (and delay)."""
    uptime = units.seconds_to_samples(uptime_seconds)
    if uptime < 1:
        raise ConfigurationError(
            f"uptime {uptime_seconds} s is below one sample period "
            f"({units.SAMPLE_PERIOD} s)"
        )
    label = f"reactive-{uptime_seconds * 1e3:g}ms"
    return JammerPersonality(
        name=label, continuous=False, uptime_samples=uptime,
        delay_samples=units.seconds_to_samples(delay_seconds),
        waveform=waveform, wgn_seed=wgn_seed,
    )


def paper_personalities() -> list[JammerPersonality]:
    """The three jammers of Figs. 10/11, in the paper's order."""
    return [
        continuous_jammer(),
        reactive_jammer(REACTIVE_UPTIME_LONG_S),
        reactive_jammer(REACTIVE_UPTIME_SHORT_S),
    ]
