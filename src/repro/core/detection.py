"""Detection configuration records.

A :class:`DetectionConfig` bundles everything the host programs into
the detection half of the custom core: the correlator template and
threshold, and the energy differentiator thresholds.  It is a plain
value object; :class:`repro.core.jammer.ReactiveJammer` translates it
into register writes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.cross_correlator import METRIC_MAX
from repro.hw.energy_differentiator import THRESHOLD_MAX_DB, THRESHOLD_MIN_DB
from repro.hw.register_map import CORRELATOR_LENGTH


@dataclass
class DetectionConfig:
    """What the detection subsystem should look for.

    Attributes:
        template: 64 complex samples at 25 MSPS for the correlator, or
            None to leave the correlator unprogrammed (energy-only).
        xcorr_threshold: Metric threshold for the correlator trigger.
        energy_high_db: Energy-rise threshold in dB (3..30).
        energy_low_db: Energy-fall threshold in dB (3..30).
    """

    template: np.ndarray | None = None
    xcorr_threshold: int = METRIC_MAX
    energy_high_db: float = 10.0
    energy_low_db: float = 10.0

    def __post_init__(self) -> None:
        if self.template is not None:
            self.template = np.asarray(self.template, dtype=np.complex128)
            if self.template.size != CORRELATOR_LENGTH:
                raise ConfigurationError(
                    f"template must have {CORRELATOR_LENGTH} samples"
                )
        if not 0 <= self.xcorr_threshold <= 0xFFFF_FFFF:
            raise ConfigurationError("xcorr_threshold must fit 32 bits")
        for name, value in (("energy_high_db", self.energy_high_db),
                            ("energy_low_db", self.energy_low_db)):
            if not THRESHOLD_MIN_DB <= value <= THRESHOLD_MAX_DB:
                raise ConfigurationError(
                    f"{name}={value} outside "
                    f"[{THRESHOLD_MIN_DB}, {THRESHOLD_MAX_DB}] dB"
                )

    @staticmethod
    def xcorr_threshold_fraction(fraction: float) -> int:
        """A correlator threshold as a fraction of the perfect-match metric.

        A clean sign-match of a full-scale template scores roughly
        ``2 * (sum|cI| + sum|cQ|)^2 / 2``; expressing thresholds as a
        fraction of :data:`METRIC_MAX` keeps them hardware-portable.
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("fraction must be in (0, 1]")
        return int(METRIC_MAX * fraction)
