"""Detection configuration records.

A :class:`DetectionConfig` bundles everything the host programs into
the detection half of the custom core: the correlator template and
threshold, and the energy differentiator thresholds.  It is a plain
value object; :class:`repro.core.jammer.ReactiveJammer` translates it
into register writes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.cross_correlator import METRIC_MAX
from repro.hw.energy_differentiator import THRESHOLD_MAX_DB, THRESHOLD_MIN_DB
from repro.hw.register_map import CORRELATOR_LENGTH, MAX_BANKS


@dataclass
class ProtocolBank:
    """One protocol's entry in a multi-standard detection config.

    Attributes:
        name: Protocol label stamped onto detections from this bank
            (the ``which_protocol`` telemetry dimension).
        template: 64 complex samples at 25 MSPS for the correlator.
        threshold: Metric threshold for this bank's trigger.
    """

    name: str
    template: np.ndarray
    threshold: int = METRIC_MAX

    def __post_init__(self) -> None:
        self.name = str(self.name)
        if not self.name:
            raise ConfigurationError("protocol bank name must be non-empty")
        self.template = np.asarray(self.template, dtype=np.complex128)
        if self.template.size != CORRELATOR_LENGTH:
            raise ConfigurationError(
                f"template must have {CORRELATOR_LENGTH} samples"
            )
        if not 0 <= self.threshold <= 0xFFFF_FFFF:
            raise ConfigurationError("threshold must fit 32 bits")


@dataclass
class DetectionConfig:
    """What the detection subsystem should look for.

    Attributes:
        template: 64 complex samples at 25 MSPS for the correlator, or
            None to leave the correlator unprogrammed (energy-only).
        xcorr_threshold: Metric threshold for the correlator trigger.
        energy_high_db: Energy-rise threshold in dB (3..30).
        energy_low_db: Energy-fall threshold in dB (3..30).
        banks: Up to :data:`~repro.hw.register_map.MAX_BANKS`
            :class:`ProtocolBank` entries for multi-standard stacked
            detection, or None for the legacy single correlator.
            Mutually exclusive with ``template`` (each bank carries
            its own template and threshold).
    """

    template: np.ndarray | None = None
    xcorr_threshold: int = METRIC_MAX
    energy_high_db: float = 10.0
    energy_low_db: float = 10.0
    banks: tuple[ProtocolBank, ...] | None = None

    def __post_init__(self) -> None:
        if self.banks is not None:
            if self.template is not None:
                raise ConfigurationError(
                    "template and banks are mutually exclusive; put the "
                    "template in a ProtocolBank"
                )
            self.banks = tuple(self.banks)
            for bank in self.banks:
                if not isinstance(bank, ProtocolBank):
                    raise ConfigurationError(
                        "banks must be ProtocolBank instances"
                    )
            if not 1 <= len(self.banks) <= MAX_BANKS:
                raise ConfigurationError(
                    f"banks must hold 1..{MAX_BANKS} entries, "
                    f"got {len(self.banks)}"
                )
        if self.template is not None:
            self.template = np.asarray(self.template, dtype=np.complex128)
            if self.template.size != CORRELATOR_LENGTH:
                raise ConfigurationError(
                    f"template must have {CORRELATOR_LENGTH} samples"
                )
        if not 0 <= self.xcorr_threshold <= 0xFFFF_FFFF:
            raise ConfigurationError("xcorr_threshold must fit 32 bits")
        for name, value in (("energy_high_db", self.energy_high_db),
                            ("energy_low_db", self.energy_low_db)):
            if not THRESHOLD_MIN_DB <= value <= THRESHOLD_MAX_DB:
                raise ConfigurationError(
                    f"{name}={value} outside "
                    f"[{THRESHOLD_MIN_DB}, {THRESHOLD_MAX_DB}] dB"
                )

    @staticmethod
    def xcorr_threshold_fraction(fraction: float) -> int:
        """A correlator threshold as a fraction of the perfect-match metric.

        A clean sign-match of a full-scale template scores roughly
        ``2 * (sum|cI| + sum|cQ|)^2 / 2``; expressing thresholds as a
        fraction of :data:`METRIC_MAX` keeps them hardware-portable.
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("fraction must be in (0, 1]")
        return int(METRIC_MAX * fraction)
