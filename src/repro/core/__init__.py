"""The reactive jamming framework — the paper's primary contribution.

This package is the public face of the library: it composes the
hardware model (:mod:`repro.hw`), the PHY waveform generators
(:mod:`repro.phy`), and the channel plumbing (:mod:`repro.channel`)
into the workflow the paper demonstrates:

1. generate correlator coefficients offline from a known preamble or a
   captured signal (:mod:`repro.core.coeffs`),
2. describe what to detect (:mod:`repro.core.detection`) and how to
   combine detections into jam triggers (:mod:`repro.core.events`),
3. pick a jamming response — waveform, uptime, delay — or one of the
   paper's personalities (:mod:`repro.core.presets`),
4. run the jammer against received signal (:mod:`repro.core.jammer`)
   and analyze its timing (:mod:`repro.core.timeline`).
"""

from __future__ import annotations

from repro.core.coeffs import (
    dsss_preamble_template,
    infer_template_from_capture,
    wifi_long_preamble_template,
    wifi_short_preamble_template,
    wimax_preamble_template,
    zigbee_preamble_template,
)
from repro.core.detection import DetectionConfig, ProtocolBank
from repro.core.events import JammingEventBuilder
from repro.core.jammer import JammingReport, ReactiveJammer
from repro.core.presets import (
    JammerPersonality,
    continuous_jammer,
    reactive_jammer,
    REACTIVE_UPTIME_LONG_S,
    REACTIVE_UPTIME_SHORT_S,
)
from repro.core.timeline import JammingTimeline, timeline_for

__all__ = [
    "dsss_preamble_template",
    "infer_template_from_capture",
    "wifi_long_preamble_template",
    "wifi_short_preamble_template",
    "wimax_preamble_template",
    "zigbee_preamble_template",
    "DetectionConfig",
    "ProtocolBank",
    "JammingEventBuilder",
    "JammingReport",
    "ReactiveJammer",
    "JammerPersonality",
    "continuous_jammer",
    "reactive_jammer",
    "REACTIVE_UPTIME_LONG_S",
    "REACTIVE_UPTIME_SHORT_S",
    "JammingTimeline",
    "timeline_for",
]
