"""Save and restore complete jammer configurations.

The paper's platform is "extremely flexible and programmable to adapt
quickly on the fly"; operators accumulate working configurations.
A profile snapshots everything the host programs over the register
bus — correlator coefficients, thresholds, the trigger definition, and
the jamming response — as a plain JSON-able dict, and restoring one is
nothing but register writes (no FPGA reprogramming, as §4.3 stresses).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.trigger import TriggerMode, TriggerSource
from repro.hw.tx_controller import JamWaveform
from repro.hw.uhd import UhdDriver
from repro.hw.usrp import UsrpN210

#: Schema version for forward compatibility.
PROFILE_VERSION = 1


def snapshot_profile(device: UsrpN210, name: str = "unnamed") -> dict:
    """Capture the device's current configuration as a profile dict."""
    core = device.core
    coeffs_i, coeffs_q = core.correlator.coefficients
    return {
        "version": PROFILE_VERSION,
        "name": name,
        "frontend": {
            "center_freq_hz": device.frontend.center_freq_hz,
            "tx_gain_db": device.frontend.tx_gain_db,
            "rx_gain_db": device.frontend.rx_gain_db,
        },
        "detection": {
            "coeffs_i": [int(c) for c in coeffs_i],
            "coeffs_q": [int(c) for c in coeffs_q],
            "xcorr_threshold": core.correlator.threshold,
            "energy_high_db": core.energy.threshold_high_db,
            "energy_low_db": core.energy.threshold_low_db,
        },
        "trigger": {
            "sources": [s.source.name for s in core.fsm.stages],
            "window_samples": core.fsm.window_samples,
            "mode": core.fsm.mode.name,
        },
        "response": {
            "waveform": core.tx.waveform.name,
            "uptime_samples": core.tx.uptime_samples,
            "delay_samples": core.tx.delay_samples,
            "replay_length": core.tx.replay_length,
            "wgn_seed": core.tx.wgn_seed,
            "jammer_enabled": core.jammer_enabled,
            "continuous": core.continuous,
            "antenna_bits": core.antenna_bits,
        },
    }


def apply_profile(device: UsrpN210, profile: dict) -> int:
    """Program a device from a profile; returns the register writes used.

    Raises :class:`ConfigurationError` on malformed profiles.
    """
    try:
        version = profile["version"]
        if version != PROFILE_VERSION:
            raise ConfigurationError(
                f"unsupported profile version {version}"
            )
        driver = UhdDriver(device)
        before = driver.register_writes()

        fe = profile["frontend"]
        device.frontend.tune(fe["center_freq_hz"])
        device.frontend.set_tx_gain(fe["tx_gain_db"])
        device.frontend.set_rx_gain(fe["rx_gain_db"])

        det = profile["detection"]
        driver.set_correlator_coefficients(
            np.array(det["coeffs_i"], dtype=np.int64),
            np.array(det["coeffs_q"], dtype=np.int64),
        )
        driver.set_xcorr_threshold(det["xcorr_threshold"])
        driver.set_energy_thresholds(det["energy_high_db"],
                                     det["energy_low_db"])

        trig = profile["trigger"]
        sources = [TriggerSource[name] for name in trig["sources"]]
        mode = TriggerMode[trig["mode"]]
        driver.set_trigger_stages(sources, trig["window_samples"],
                                  mode=mode)

        resp = profile["response"]
        driver.set_jam_waveform(JamWaveform[resp["waveform"]],
                                wgn_seed=resp["wgn_seed"])
        driver.set_jam_uptime(resp["uptime_samples"])
        driver.set_jam_delay(resp["delay_samples"])
        driver.set_replay_length(resp["replay_length"])
        driver.set_control(jammer_enabled=resp["jammer_enabled"],
                           continuous=resp["continuous"],
                           antenna_bits=resp["antenna_bits"])
        return driver.register_writes() - before
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed profile: {exc}") from exc


def save_profile(device: UsrpN210, path: str | Path,
                 name: str | None = None) -> None:
    """Snapshot the device and write the profile to a JSON file."""
    path = Path(path)
    profile = snapshot_profile(device, name=name or path.stem)
    path.write_text(json.dumps(profile, indent=2))


def load_profile(device: UsrpN210, path: str | Path) -> int:
    """Read a JSON profile and program the device from it."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such profile file: {path}")
    try:
        profile = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"profile is not valid JSON: {exc}") from exc
    return apply_profile(device, profile)
