"""The jamming event builder (paper §2.4-2.5).

The paper's GUI "acts as a reactive jamming event builder, where users
can specifically control detection types and desired jamming reactions
during run time."  This is the headless equivalent: a fluent builder
that accumulates up to three trigger stages and a combination window,
then programs the hardware FSM through the driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.errors import ConfigurationError
from repro.hw.trigger import TriggerMode, TriggerSource, TriggerStateMachine
from repro.hw.uhd import UhdDriver


@dataclass
class JammingEventBuilder:
    """Composable description of what constitutes a jam-worthy event."""

    stages: list[TriggerSource] = field(default_factory=list)
    window_samples: int = 0
    mode: TriggerMode = TriggerMode.SEQUENCE

    def on_correlation(self) -> "JammingEventBuilder":
        """Add a cross-correlator (protocol-aware) stage."""
        return self._add(TriggerSource.XCORR)

    def on_energy_rise(self) -> "JammingEventBuilder":
        """Add an energy-high (any-RF-activity) stage."""
        return self._add(TriggerSource.ENERGY_HIGH)

    def on_energy_fall(self) -> "JammingEventBuilder":
        """Add an energy-low (transmission-ended) stage."""
        return self._add(TriggerSource.ENERGY_LOW)

    def _add(self, source: TriggerSource) -> "JammingEventBuilder":
        if len(self.stages) >= TriggerStateMachine.MAX_STAGES:
            raise ConfigurationError(
                f"the hardware FSM supports at most "
                f"{TriggerStateMachine.MAX_STAGES} stages"
            )
        self.stages.append(source)
        return self

    def within(self, seconds: float) -> "JammingEventBuilder":
        """Require all stages to occur within ``seconds``."""
        if seconds <= 0:
            raise ConfigurationError("the combination window must be positive")
        self.window_samples = units.seconds_to_samples(seconds)
        return self

    def within_samples(self, samples: int) -> "JammingEventBuilder":
        """Require all stages to occur within ``samples`` samples."""
        if samples < 1:
            raise ConfigurationError("the combination window must be >= 1")
        self.window_samples = int(samples)
        return self

    def any_of(self) -> "JammingEventBuilder":
        """Fire on whichever stage triggers first (OR combination)."""
        self.mode = TriggerMode.ANY
        return self

    def validate(self) -> None:
        """Check internal consistency before programming hardware."""
        if not self.stages:
            raise ConfigurationError("at least one trigger stage is required")
        if (len(self.stages) > 1 and self.window_samples < 1
                and self.mode is TriggerMode.SEQUENCE):
            raise ConfigurationError(
                "multi-stage events need a combination window (use .within)"
            )

    def program(self, driver: UhdDriver) -> None:
        """Write the event definition to the hardware FSM."""
        self.validate()
        driver.set_trigger_stages(list(self.stages), self.window_samples,
                                  mode=self.mode)
