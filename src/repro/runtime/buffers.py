"""Grow-only scratch buffers for the streaming hot path.

The streaming blocks process arbitrary chunks, and the naive way to
assemble ``[history | chunk]`` windows is ``np.concatenate`` — a fresh
allocation (and a dtype cast, for the sign-bit correlator) on every
chunk.  At benchmark chunk rates that allocation churn is a measurable
fraction of the wall time.  A :class:`ScratchBuffer` keeps one
reusable array per call site: it grows monotonically to the largest
request seen and hands back views, so a steady-state chunk loop
allocates nothing.

Views returned by :meth:`ScratchBuffer.view` alias the underlying
storage, so they are only valid until the next ``view`` call on the
same buffer — exactly the within-one-``process``-call lifetime the
streaming blocks need.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class ScratchBuffer:
    """One reusable, monotonically-growing scratch array.

    Attributes:
        dtype: Element type of the backing storage (fixed at creation).
        grows: Number of times the backing storage was (re)allocated —
            a steady-state chunk loop should stop growing after the
            first few chunks, and tests assert exactly that.
    """

    def __init__(self, dtype: np.dtype | type) -> None:
        self.dtype = np.dtype(dtype)
        self._storage = np.empty(0, dtype=self.dtype)
        self.grows = 0

    @property
    def capacity(self) -> int:
        """Current backing-storage size in elements."""
        return self._storage.size

    def view(self, n: int) -> np.ndarray:
        """A length-``n`` view over the scratch storage (uninitialized).

        Grows the backing array if ``n`` exceeds the current capacity;
        otherwise no allocation happens.  The contents are whatever the
        previous use left behind — callers must overwrite every element
        they read.
        """
        if n < 0:
            raise ConfigurationError("scratch view length must be >= 0")
        if n > self._storage.size:
            self._storage = np.empty(n, dtype=self.dtype)
            self.grows += 1
        return self._storage[:n]
