"""Process-pool fan-out for embarrassingly-parallel trial grids.

The evaluation sweeps — detection probability over SNR (Figs. 6-8),
iperf statistics over SIR (Figs. 10-11) — are grids of independent
trials.  :class:`SweepRunner` fans a grid out over a process pool with
three guarantees the experiments rely on:

* **Determinism.** Every trial gets its own generator,
  ``numpy.random.default_rng(seed_root + trial_index)``, where the
  trial index is the task's position in the flattened
  ``points x trials`` grid.  Seeds depend only on grid position, never
  on scheduling, so ``workers=N`` is byte-identical to the serial
  ``workers=1`` path (floats round-trip exactly through pickle).
* **Ordered gathering.** Results come back grouped by point, trials in
  order, regardless of completion order.
* **Bounded IPC.** Tasks are submitted in chunks so a 10,000-trial
  grid does not pay 10,000 pickle round-trips.

Trial functions must be module-level callables (the pool pickles them
by reference) and should be pure functions of ``(point, rng)``.

This module is the repo's one pool-policy choke point: repro-lint
RJ008 flags ``ProcessPoolExecutor``/``multiprocessing`` construction
anywhere else under ``src/``.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ConfigurationError, WorkerCrashError

if TYPE_CHECKING:  # telemetry never imports runtime; one-way dependency
    from repro.telemetry.session import Telemetry

#: Chunks submitted per worker when no explicit chunk size is given —
#: enough slack for load balancing, few enough for cheap IPC.
CHUNKS_PER_WORKER = 4

#: Counter/gauge names folded into an attached MetricsRegistry.
TASKS_COUNTER = "runtime.sweep.tasks"
CHUNKS_COUNTER = "runtime.sweep.chunks"
SWEEPS_COUNTER = "runtime.sweep.runs"
WORKERS_GAUGE = "runtime.sweep.workers"


@dataclass(frozen=True)
class _Task:
    """One (point, trial) cell of the flattened sweep grid."""

    index: int
    point: Any
    seed: int


def build_tasks(points: Sequence[Any], trials: int,
                seed_root: int) -> list[_Task]:
    """Flatten a ``points x trials`` grid into seeded tasks.

    This is the one place the seeding discipline is written down:
    trial ``(p, t)`` draws from ``default_rng(seed_root + p*trials +
    t)``.  Both the plain runner and the fault-tolerant job layer
    (:mod:`repro.runtime.jobs`) build their grids here so the two are
    byte-identical by construction.
    """
    return [
        _Task(index=point_index * trials + trial,
              point=point,
              seed=seed_root + point_index * trials + trial)
        for point_index, point in enumerate(points)
        for trial in range(trials)
    ]


def _run_chunk(fn: Callable[[Any, np.random.Generator], Any],
               tasks: Sequence[_Task]) -> list[tuple[int, Any]]:
    """Worker-side execution of one chunk of tasks, results indexed."""
    return [(task.index, fn(task.point, np.random.default_rng(task.seed)))
            for task in tasks]


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, inherits warm caches), else default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        return multiprocessing.get_context()


class SweepRunner:
    """Deterministic fan-out engine for trial grids.

    Attributes:
        workers: Pool size; ``1`` runs serially in-process (the
            reference path the parallel one must match byte-for-byte).
        seed_root: Base of the per-trial seeding discipline.
        chunk_size: Tasks per pool submission; ``None`` derives one
            from the grid size and worker count.
        telemetry: Optional :class:`repro.telemetry.session.Telemetry`
            bundle; when given, task/chunk counters and the worker
            gauge are folded into its metrics registry.
        progress: Optional ``callback(done, total)`` invoked after
            every completed task (serial) or chunk (parallel).
    """

    def __init__(self, workers: int = 1, seed_root: int = 0,
                 chunk_size: int | None = None,
                 telemetry: "Telemetry | None" = None,
                 progress: Callable[[int, int], None] | None = None) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        self.workers = int(workers)
        self.seed_root = int(seed_root)
        self.chunk_size = chunk_size
        self.telemetry = telemetry
        self.progress = progress

    # ------------------------------------------------------------------

    def _chunked(self, tasks: list[_Task]) -> list[list[_Task]]:
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(tasks)
                                    / (self.workers * CHUNKS_PER_WORKER)))
        return [tasks[i:i + size] for i in range(0, len(tasks), size)]

    def _record(self, tasks: int, chunks: int, elapsed_s: float) -> None:
        if self.telemetry is None:
            return
        metrics = self.telemetry.metrics
        metrics.counter(SWEEPS_COUNTER).inc()
        metrics.counter(TASKS_COUNTER).inc(tasks)
        metrics.counter(CHUNKS_COUNTER).inc(chunks)
        metrics.gauge(WORKERS_GAUGE).set(self.workers)
        metrics.histogram("runtime.sweep.run_seconds",
                          bounds=(0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)
                          ).observe(elapsed_s)

    def sweep(self, fn: Callable[[Any, np.random.Generator], Any],
              points: Iterable[Any], trials: int = 1) -> list[list[Any]]:
        """Run ``fn(point, rng)`` for every (point, trial) cell.

        Returns one list per point holding its ``trials`` results in
        trial order.  A trial that raises aborts the whole sweep and
        re-raises in the caller.
        """
        if trials < 1:
            raise ConfigurationError("trials must be >= 1")
        point_list = list(points)
        tasks = build_tasks(point_list, trials, self.seed_root)
        start = time.perf_counter()
        if not tasks:
            self._record(0, 0, time.perf_counter() - start)
            return []
        chunks = self._chunked(tasks)
        results: list[Any] = [None] * len(tasks)
        if self.workers == 1:
            done = 0
            for task in tasks:
                results[task.index] = fn(
                    task.point, np.random.default_rng(task.seed))
                done += 1
                if self.progress is not None:
                    self.progress(done, len(tasks))
        else:
            self._gather(fn, chunks, results, len(tasks))
        self._record(len(tasks), len(chunks), time.perf_counter() - start)
        return [results[p * trials:(p + 1) * trials]
                for p in range(len(point_list))]

    def _gather(self, fn: Callable[[Any, np.random.Generator], Any],
                chunks: list[list[_Task]], results: list[Any],
                total: int) -> None:
        """Fan chunks out over the pool and place results by index."""
        done = 0
        with ProcessPoolExecutor(max_workers=self.workers,
                                 mp_context=_pool_context()) as pool:
            pending = {pool.submit(_run_chunk, fn, chunk): chunk
                       for chunk in chunks}
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    chunk = pending.pop(future)
                    try:
                        rows = future.result()
                    except BrokenProcessPool as exc:
                        # Every still-pending chunk was lost with the
                        # pool; name all in-flight trial indices so the
                        # caller knows what was running when it died.
                        in_flight = tuple(sorted(
                            task.index for lost in (chunk, *pending.values())
                            for task in lost))
                        raise WorkerCrashError(
                            "sweep worker process died; trial indices "
                            f"{list(in_flight)} were in flight (use "
                            "repro.runtime.jobs for a sweep that retries "
                            "and resumes instead of aborting)",
                            trial_indices=in_flight) from exc
                    for index, value in rows:
                        results[index] = value
                        done += 1
                    if self.progress is not None:
                        self.progress(done, total)


def sweep(fn: Callable[[Any, np.random.Generator], Any],
          points: Iterable[Any], trials: int = 1, workers: int = 1,
          seed_root: int = 0, chunk_size: int | None = None,
          telemetry: "Telemetry | None" = None,
          progress: Callable[[int, int], None] | None = None
          ) -> list[list[Any]]:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    runner = SweepRunner(workers=workers, seed_root=seed_root,
                         chunk_size=chunk_size, telemetry=telemetry,
                         progress=progress)
    return runner.sweep(fn, points, trials)
