"""Content-addressed in-process cache for deterministic artifacts.

Every experiment and benchmark rebuilds the same PPDUs, preambles,
quantized coefficient banks, and resampled templates on every call —
all deterministic functions of a small config.  This module memoizes
them behind a content-addressed key: the hash of the fully-qualified
builder name plus a canonical encoding of its arguments (dataclass
configs hash field-by-field, arrays hash their dtype/shape/bytes), so
two call sites asking for the same artifact share one build.

Cached artifacts are **frozen**: ndarrays come back with
``writeable=False`` and are shared between all callers.  A consumer
that needs to mutate one must copy it — attempting an in-place write
raises immediately rather than silently corrupting every other
consumer's view of the artifact.

The cache is in-process and unbounded; ``clear()`` empties it (the
benchmarks use this to measure cold-vs-warm build times).  Hit/miss
counters are kept locally and, when a
:class:`repro.telemetry.metrics.MetricsRegistry` is attached, folded
into it as ``runtime.cache.hits`` / ``runtime.cache.misses``.
"""

from __future__ import annotations

import enum
import functools
import hashlib
import threading
from collections.abc import Callable, Iterator
from dataclasses import fields, is_dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # telemetry does not import runtime; keep it that way
    from repro.telemetry.metrics import MetricsRegistry

#: Metric names the cache folds its counters into when attached.
HITS_COUNTER = "runtime.cache.hits"
MISSES_COUNTER = "runtime.cache.misses"


def _tokens(value: Any) -> Iterator[bytes]:
    """Canonical byte tokens for one key component.

    Each branch emits a type tag before the payload so that, e.g.,
    ``1`` and ``1.0`` and ``True`` produce distinct keys.
    """
    if value is None:
        yield b"N"
    elif isinstance(value, bool):
        yield b"B1" if value else b"B0"
    elif isinstance(value, int):
        yield b"I" + str(value).encode()
    elif isinstance(value, float):
        yield b"F" + value.hex().encode()
    elif isinstance(value, complex):
        yield b"C" + value.real.hex().encode() + b"," + value.imag.hex().encode()
    elif isinstance(value, str):
        yield b"S" + value.encode()
    elif isinstance(value, (bytes, bytearray)):
        yield b"Y" + bytes(value)
    elif isinstance(value, enum.Enum):
        yield b"E" + type(value).__qualname__.encode() + b"." + value.name.encode()
    elif isinstance(value, Fraction):
        yield b"Q" + str(value).encode()
    elif isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        yield (b"A" + array.dtype.str.encode()
               + b"(" + ",".join(map(str, array.shape)).encode() + b")")
        yield array.tobytes()
    elif isinstance(value, np.generic):
        yield from _tokens(value.item())
    elif is_dataclass(value) and not isinstance(value, type):
        yield b"D" + type(value).__qualname__.encode()
        for field in fields(value):
            yield b"." + field.name.encode()
            yield from _tokens(getattr(value, field.name))
    elif isinstance(value, (tuple, list)):
        yield b"T(" if isinstance(value, tuple) else b"L("
        for item in value:
            yield from _tokens(item)
        yield b")"
    elif isinstance(value, dict):
        yield b"M("
        for key in sorted(value, key=repr):
            yield from _tokens(key)
            yield b"="
            yield from _tokens(value[key])
        yield b")"
    else:
        raise ConfigurationError(
            f"cannot derive a content-addressed key from {type(value).__name__}; "
            "cache keys must be built from scalars, strings, bytes, enums, "
            "arrays, dataclasses, and containers of those"
        )


def cache_key(*parts: Any) -> str:
    """SHA-256 content address of an artifact's identity.

    ``parts`` is typically ``(module, qualname, args, kwargs)``; any
    nesting of the types :func:`_tokens` understands works.
    """
    digest = hashlib.sha256()
    for part in parts:
        for token in _tokens(part):
            digest.update(token)
            digest.update(b"\x00")
    return digest.hexdigest()


def freeze_artifact(value: Any) -> Any:
    """Make an artifact safe to share: mark every ndarray read-only.

    Containers (tuples/lists) are frozen element-wise; lists become
    tuples so the container itself is immutable too.  Non-array leaves
    pass through unchanged.
    """
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
        return value
    if isinstance(value, (tuple, list)):
        return tuple(freeze_artifact(item) for item in value)
    return value


class ArtifactCache:
    """Content-addressed store with hit/miss accounting.

    Thread-safe for concurrent lookups; builders may run more than
    once under a race, but the first stored value wins so every caller
    sees one canonical artifact.
    """

    def __init__(self) -> None:
        self._store: dict[str, Any] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._metrics: "MetricsRegistry | None" = None

    def attach_metrics(self, registry: "MetricsRegistry | None") -> None:
        """Fold hit/miss counters into a telemetry registry (or detach).

        The backlog accumulated before attachment is folded in so the
        registry's counters always equal the cache's own totals.
        """
        with self._lock:
            self._metrics = registry
            if registry is not None:
                registry.counter(HITS_COUNTER).inc(self.hits)
                registry.counter(MISSES_COUNTER).inc(self.misses)

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """The artifact under ``key``, building (and freezing) on miss."""
        with self._lock:
            if key in self._store:
                self.hits += 1
                if self._metrics is not None:
                    self._metrics.counter(HITS_COUNTER).inc()
                return self._store[key]
        value = freeze_artifact(builder())
        with self._lock:
            value = self._store.setdefault(key, value)
            self.misses += 1
            if self._metrics is not None:
                self._metrics.counter(MISSES_COUNTER).inc()
        return value

    def clear(self) -> None:
        """Drop every stored artifact (counters keep accumulating)."""
        with self._lock:
            self._store.clear()

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict:
        """Counters and occupancy as one plain dict."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._store),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
            }


#: The process-wide cache every ``@cached_artifact`` builder shares.
DEFAULT_CACHE = ArtifactCache()


def cached_artifact(fn: Callable) -> Callable:
    """Memoize a deterministic artifact builder in :data:`DEFAULT_CACHE`.

    The key is the builder's fully-qualified name plus its arguments,
    so equal configs share one (frozen) artifact across all call
    sites, processes forked after warm-up, and repeated sweeps.  Only
    apply this to pure functions of their arguments.
    """

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        key = cache_key(fn.__module__, fn.__qualname__, args,
                        tuple(sorted(kwargs.items())))
        return DEFAULT_CACHE.get_or_build(key, lambda: fn(*args, **kwargs))

    return wrapper
