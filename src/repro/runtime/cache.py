"""Content-addressed in-process cache for deterministic artifacts.

Every experiment and benchmark rebuilds the same PPDUs, preambles,
quantized coefficient banks, and resampled templates on every call —
all deterministic functions of a small config.  This module memoizes
them behind a content-addressed key: the hash of the fully-qualified
builder name plus a canonical encoding of its arguments (dataclass
configs hash field-by-field, arrays hash their dtype/shape/bytes), so
two call sites asking for the same artifact share one build.

Cached artifacts are **frozen**: ndarrays come back with
``writeable=False`` and are shared between all callers.  A consumer
that needs to mutate one must copy it — attempting an in-place write
raises immediately rather than silently corrupting every other
consumer's view of the artifact.

The cache is in-process and LRU-bounded (``max_entries``; the default
bound is far above any real working set, so eviction is a safety
valve, not a tuning knob); ``clear()`` empties it (the benchmarks use
this to measure cold-vs-warm build times).  A stored entry is
fingerprinted at insert time and re-validated on every hit: an entry
that comes back structurally wrong — an array that lost its read-only
freeze, changed dtype/shape, or whose container was truncated (the
signature of a half-written artifact from a killed worker) — is
treated as a **miss**: logged, dropped, and rebuilt instead of
poisoning every later consumer.  Hit/miss/eviction/corruption
counters are kept locally and, when a
:class:`repro.telemetry.metrics.MetricsRegistry` is attached, folded
into it as ``runtime.cache.hits`` / ``runtime.cache.misses`` /
``runtime.cache.evictions`` / ``runtime.cache.corrupt``.
"""

from __future__ import annotations

import enum
import functools
import hashlib
import logging
import threading
from collections.abc import Callable, Iterator
from dataclasses import fields, is_dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # telemetry does not import runtime; keep it that way
    from repro.telemetry.metrics import MetricsRegistry

_log = logging.getLogger(__name__)

#: Metric names the cache folds its counters into when attached.
HITS_COUNTER = "runtime.cache.hits"
MISSES_COUNTER = "runtime.cache.misses"
EVICTIONS_COUNTER = "runtime.cache.evictions"
CORRUPT_COUNTER = "runtime.cache.corrupt"

#: Default LRU bound: generous against the repo's real artifact count
#: (tens of entries) while still bounding a pathological producer.
DEFAULT_MAX_ENTRIES = 1024


def _tokens(value: Any) -> Iterator[bytes]:
    """Canonical byte tokens for one key component.

    Each branch emits a type tag before the payload so that, e.g.,
    ``1`` and ``1.0`` and ``True`` produce distinct keys.
    """
    if value is None:
        yield b"N"
    elif isinstance(value, bool):
        yield b"B1" if value else b"B0"
    elif isinstance(value, int):
        yield b"I" + str(value).encode()
    elif isinstance(value, float):
        yield b"F" + value.hex().encode()
    elif isinstance(value, complex):
        yield b"C" + value.real.hex().encode() + b"," + value.imag.hex().encode()
    elif isinstance(value, str):
        yield b"S" + value.encode()
    elif isinstance(value, (bytes, bytearray)):
        yield b"Y" + bytes(value)
    elif isinstance(value, enum.Enum):
        yield b"E" + type(value).__qualname__.encode() + b"." + value.name.encode()
    elif isinstance(value, Fraction):
        yield b"Q" + str(value).encode()
    elif isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        yield (b"A" + array.dtype.str.encode()
               + b"(" + ",".join(map(str, array.shape)).encode() + b")")
        yield array.tobytes()
    elif isinstance(value, np.generic):
        yield from _tokens(value.item())
    elif is_dataclass(value) and not isinstance(value, type):
        yield b"D" + type(value).__qualname__.encode()
        for field in fields(value):
            yield b"." + field.name.encode()
            yield from _tokens(getattr(value, field.name))
    elif isinstance(value, (tuple, list)):
        yield b"T(" if isinstance(value, tuple) else b"L("
        for item in value:
            yield from _tokens(item)
        yield b")"
    elif isinstance(value, dict):
        yield b"M("
        for key in sorted(value, key=repr):
            yield from _tokens(key)
            yield b"="
            yield from _tokens(value[key])
        yield b")"
    else:
        raise ConfigurationError(
            f"cannot derive a content-addressed key from {type(value).__name__}; "
            "cache keys must be built from scalars, strings, bytes, enums, "
            "arrays, dataclasses, and containers of those"
        )


def cache_key(*parts: Any) -> str:
    """SHA-256 content address of an artifact's identity.

    ``parts`` is typically ``(module, qualname, args, kwargs)``; any
    nesting of the types :func:`_tokens` understands works.
    """
    digest = hashlib.sha256()
    for part in parts:
        for token in _tokens(part):
            digest.update(token)
            digest.update(b"\x00")
    return digest.hexdigest()


def freeze_artifact(value: Any) -> Any:
    """Make an artifact safe to share: mark every ndarray read-only.

    Containers (tuples/lists) are frozen element-wise; lists become
    tuples so the container itself is immutable too.  Non-array leaves
    pass through unchanged.
    """
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
        return value
    if isinstance(value, (tuple, list)):
        return tuple(freeze_artifact(item) for item in value)
    return value


def _fingerprint(value: Any) -> Any:
    """Structural fingerprint of a frozen artifact.

    Captures, per ndarray leaf, ``(dtype, shape)`` plus the read-only
    flag, and per container its length — cheap to recompute on every
    hit (no byte hashing), yet enough to catch the corruption modes a
    killed or misbehaving producer leaves behind: truncated containers,
    reshaped/retyped arrays, and arrays whose write-protection was
    stripped (the precondition for silent mutation).
    """
    if isinstance(value, np.ndarray):
        return ("A", value.dtype.str, value.shape,
                bool(value.flags.writeable))
    if isinstance(value, tuple):
        return ("T", len(value), tuple(_fingerprint(v) for v in value))
    return ("V",)


class ArtifactCache:
    """Content-addressed LRU store with hit/miss/corruption accounting.

    Thread-safe for concurrent lookups; builders may run more than
    once under a race, but the first stored value wins so every caller
    sees one canonical artifact.
    """

    def __init__(self, max_entries: int | None = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries is not None and max_entries < 1:
            raise ConfigurationError("max_entries must be >= 1 (or None)")
        self.max_entries = max_entries
        #: key -> (value, fingerprint); dict order is LRU order.
        self._store: dict[str, tuple[Any, Any]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt = 0
        self._metrics: "MetricsRegistry | None" = None

    def attach_metrics(self, registry: "MetricsRegistry | None") -> None:
        """Fold the cache counters into a telemetry registry (or detach).

        The backlog accumulated before attachment is folded in so the
        registry's counters always equal the cache's own totals.
        """
        with self._lock:
            self._metrics = registry
            if registry is not None:
                registry.counter(HITS_COUNTER).inc(self.hits)
                registry.counter(MISSES_COUNTER).inc(self.misses)
                registry.counter(EVICTIONS_COUNTER).inc(self.evictions)
                registry.counter(CORRUPT_COUNTER).inc(self.corrupt)

    def _count(self, name: str, counter: str) -> None:
        """Bump a local counter and its mirrored metric (lock held)."""
        setattr(self, name, getattr(self, name) + 1)
        if self._metrics is not None:
            self._metrics.counter(counter).inc()

    def _lookup(self, key: str) -> tuple[bool, Any]:
        """One locked probe: (hit, value); corrupt entries become misses."""
        with self._lock:
            entry = self._store.get(key)
            if entry is not None:
                value, stamp = entry
                try:
                    intact = _fingerprint(value) == stamp
                except Exception:  # unreadable entry == corrupt entry
                    intact = False
                if intact:
                    # Touch for LRU: re-insert at the fresh end.
                    del self._store[key]
                    self._store[key] = entry
                    self._count("hits", HITS_COUNTER)
                    return True, value
                del self._store[key]
                self._count("corrupt", CORRUPT_COUNTER)
                _log.warning(
                    "artifact cache entry %s failed validation; "
                    "treating as a miss and rebuilding", key[:16])
            return False, None

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """The artifact under ``key``, building (and freezing) on miss.

        An entry that fails its stored-fingerprint validation — e.g. a
        half-written artifact left behind by a killed worker — is
        dropped and rebuilt rather than returned or raised.
        """
        hit, value = self._lookup(key)
        if hit:
            return value
        value = freeze_artifact(builder())
        with self._lock:
            if key in self._store:
                value = self._store[key][0]
            else:
                self._store[key] = (value, _fingerprint(value))
                if self.max_entries is not None:
                    while len(self._store) > self.max_entries:
                        oldest = next(iter(self._store))
                        del self._store[oldest]
                        self._count("evictions", EVICTIONS_COUNTER)
            self._count("misses", MISSES_COUNTER)
        return value

    def clear(self) -> None:
        """Drop every stored artifact (counters keep accumulating)."""
        with self._lock:
            self._store.clear()

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict:
        """Counters and occupancy as one plain dict."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._store),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "corrupt": self.corrupt,
                "hit_rate": self.hits / total if total else 0.0,
            }


#: The process-wide cache every ``@cached_artifact`` builder shares.
DEFAULT_CACHE = ArtifactCache()


def cached_artifact(fn: Callable) -> Callable:
    """Memoize a deterministic artifact builder in :data:`DEFAULT_CACHE`.

    The key is the builder's fully-qualified name plus its arguments,
    so equal configs share one (frozen) artifact across all call
    sites, processes forked after warm-up, and repeated sweeps.  Only
    apply this to pure functions of their arguments.
    """

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        key = cache_key(fn.__module__, fn.__qualname__, args,
                        tuple(sorted(kwargs.items())))
        return DEFAULT_CACHE.get_or_build(key, lambda: fn(*args, **kwargs))

    return wrapper
