"""Execution runtime: parallel sweeps, artifact caching, buffer reuse.

The paper's evaluation is Monte-Carlo heavy — 10,000 frames per SNR
point for the detection curves, repeated iperf trials for the link
experiments — and the reproduction needs the same sweeps to finish in
benchmark time.  This package owns the three mechanisms that make
that possible without touching the science:

* :mod:`repro.runtime.sweep` — a process-pool fan-out engine for
  embarrassingly-parallel trial grids with deterministic per-trial
  seeding (``workers=1`` is byte-identical to ``workers=N``);
* :mod:`repro.runtime.cache` — a content-addressed in-process cache
  for expensive deterministic artifacts (PPDUs, preambles, quantized
  coefficient banks, resampled templates);
* :mod:`repro.runtime.buffers` — grow-only scratch buffers the
  streaming hot path reuses across chunks instead of reallocating;
* :mod:`repro.runtime.jobs` — the fault-tolerant job layer over the
  sweep engine: content-addressed shards, a durable
  :class:`ShardCheckpoint` journal for crash-resumable sweeps, a
  :class:`WorkerSupervisor` with crash/hang detection and seeded
  retry/backoff, quarantine for poison shards, and a
  :class:`SweepHealth` report folded into telemetry.

Pool policy lives here and only here: repro-lint rule RJ008 flags any
other module constructing ``ProcessPoolExecutor`` / ``multiprocessing``
primitives directly, the same single-choke-point discipline RJ006
applies to the register bus.
"""

from __future__ import annotations

from repro.runtime.buffers import ScratchBuffer
from repro.runtime.cache import (
    DEFAULT_CACHE,
    ArtifactCache,
    cache_key,
    cached_artifact,
    freeze_artifact,
)
from repro.runtime.jobs import (
    STRICT_RESILIENCE,
    ResilienceConfig,
    ResilientSweepRunner,
    ShardCheckpoint,
    SweepHealth,
    WorkerSupervisor,
    last_sweep_health,
    resilient_sweep,
    shard_key,
)
from repro.runtime.sweep import SweepRunner, sweep

__all__ = [
    "ArtifactCache",
    "DEFAULT_CACHE",
    "ResilienceConfig",
    "ResilientSweepRunner",
    "STRICT_RESILIENCE",
    "ScratchBuffer",
    "ShardCheckpoint",
    "SweepHealth",
    "SweepRunner",
    "WorkerSupervisor",
    "cache_key",
    "cached_artifact",
    "freeze_artifact",
    "last_sweep_health",
    "resilient_sweep",
    "shard_key",
    "sweep",
]
