"""Fault-tolerant job layer over the sweep engine.

:class:`~repro.runtime.sweep.SweepRunner` assumes a healthy host: one
crashed or hung worker aborts the whole sweep and loses every
completed trial.  The paper's evaluation campaigns (10,000-frame
detection curves, personality x SIR iperf grids) are long-running
measurement jobs that must survive flaky hosts, so this module wraps
the same deterministic grid in a supervised, checkpointed, resumable
execution layer:

* **Shards.**  The flattened ``points x trials`` grid is split into
  content-addressed shards — the unit of scheduling, retry, and
  checkpointing.  Shard keys are derived exactly like
  :func:`repro.runtime.cache.cache_key` artifacts, so a re-submitted
  or interrupted sweep recognizes its own completed work.
* **Checkpoints.**  With a :class:`ShardCheckpoint` journal attached,
  every completed shard's results are appended durably (JSONL, one
  fsynced line per shard, payload guarded by a SHA-256 digest).  A
  killed sweep re-run against the same journal replays completed
  shards from disk and executes only the remainder.  Corrupted or
  truncated journal entries are skipped and recomputed, never trusted.
* **Supervision.**  :class:`WorkerSupervisor` detects worker crashes
  (``BrokenProcessPool``) and hangs (per-shard deadlines checked
  against submission heartbeat timestamps), rebuilds the pool, and
  requeues the affected shards with seeded exponential backoff under a
  bounded per-shard attempt budget.  A shard that keeps failing is
  **quarantined** — reported in :class:`SweepHealth`, its trials left
  as ``None`` — instead of failing the sweep (configurable; the
  experiment wrappers demand complete results and set
  ``quarantine_limit=0``).
* **Backpressure.**  At most ``workers * max_inflight_per_worker``
  shards are submitted at a time, so a million-trial sweep never
  serializes its whole grid into the pool's call queue at once.

The invariant that makes this a correctness feature rather than
plumbing: trials are seeded by grid position
(:func:`repro.runtime.sweep.build_tasks`), so a re-executed shard
reproduces its results bit-for-bit.  A sweep that survives injected
worker kills, or is killed and resumed, returns **byte-identical**
results to the uninterrupted serial reference — the chaos benchmarks
(``benchmarks/test_bench_resilience.py``) assert exactly that.

Chaos testing hooks into :class:`repro.faults.workers.WorkerFaultInjector`:
pass one as ``fault_injector`` and its seeded kill/hang/slow plan is
enacted inside the workers.
"""

from __future__ import annotations

import base64
import hashlib
import json
import math
import os
import pickle
import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import CheckpointError, ConfigurationError, WorkerCrashError
from repro.runtime.cache import cache_key
from repro.runtime.sweep import (
    CHUNKS_PER_WORKER,
    _pool_context,
    _Task,
    build_tasks,
)

if TYPE_CHECKING:  # one-way dependencies: runtime never imports these
    from repro.faults.workers import WorkerFaultInjector
    from repro.telemetry.session import Telemetry

#: Metric names folded into an attached MetricsRegistry after each run.
RUNS_COUNTER = "runtime.jobs.runs"
SHARDS_COUNTER = "runtime.jobs.shards"
COMPLETED_COUNTER = "runtime.jobs.completed_shards"
RETRIES_COUNTER = "runtime.jobs.retries"
CRASHES_COUNTER = "runtime.jobs.crashes"
HANGS_COUNTER = "runtime.jobs.hangs"
QUARANTINED_COUNTER = "runtime.jobs.quarantined"
CHECKPOINT_HITS_COUNTER = "runtime.jobs.checkpoint_hits"

#: Seed-sequence domain tag for the backoff jitter substream (pacing
#: only — never touches trial RNGs, so results stay byte-identical).
_BACKOFF_DOMAIN = 0x4A0B

#: Poll granularity of the supervisor loop when it cannot block
#: indefinitely (backoff timers or shard deadlines are pending).
_POLL_S = 0.05


@dataclass(frozen=True)
class ResilienceConfig:
    """Retry/quarantine/checkpoint policy for one resilient sweep.

    Attributes:
        max_attempts: Per-shard execution budget (first try included).
        backoff_base_s: First-retry backoff delay; successive retries
            double it (seeded jitter in [0.5, 1.5) is applied so a
            crashed fleet does not stampede back in lockstep).
        backoff_cap_s: Upper bound the exponential backoff saturates
            at, however many attempts a shard has burned.
        shard_deadline_s: Hang detector: a shard whose heartbeat
            (submission timestamp) is older than this is declared hung
            and its pool recycled.  ``None`` disables hang detection.
        quarantine_limit: How many shards may be quarantined before
            the sweep fails with :class:`~repro.errors.WorkerCrashError`.
            ``None`` means unlimited (never fail the sweep); ``0``
            means any exhausted shard aborts — the right setting when
            partial results are useless.
        max_inflight_per_worker: Backpressure bound — at most
            ``workers * max_inflight_per_worker`` shards are inside
            the pool at once.
        checkpoint_path: Durable journal path; ``None`` disables
            checkpointing.
        resume: Whether an existing journal's completed shards are
            replayed (``False`` re-executes everything but still
            records fresh entries).
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    shard_deadline_s: float | None = None
    quarantine_limit: int | None = None
    max_inflight_per_worker: int = 2
    checkpoint_path: str | None = None
    resume: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base_s < 0.0 or self.backoff_cap_s < 0.0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.backoff_cap_s < self.backoff_base_s:
            raise ConfigurationError(
                "backoff_cap_s must be >= backoff_base_s")
        if self.shard_deadline_s is not None and self.shard_deadline_s <= 0:
            raise ConfigurationError("shard_deadline_s must be positive")
        if self.quarantine_limit is not None and self.quarantine_limit < 0:
            raise ConfigurationError("quarantine_limit must be >= 0 or None")
        if self.max_inflight_per_worker < 1:
            raise ConfigurationError("max_inflight_per_worker must be >= 1")


#: The policy the experiment wrappers use: retry like the default, but
#: never hand back a curve with holes in it.
STRICT_RESILIENCE = ResilienceConfig(quarantine_limit=0)


@dataclass
class SweepHealth:
    """Aggregated outcome report of one resilient sweep.

    ``shard_attempts`` maps shard index -> executions launched, for
    every shard that needed more than one (or never succeeded);
    healthy single-shot shards are omitted to keep the report small.
    """

    total_shards: int = 0
    total_tasks: int = 0
    completed_shards: int = 0
    completed_tasks: int = 0
    checkpoint_hits: int = 0
    retries: int = 0
    crashes: int = 0
    hangs: int = 0
    quarantined: list[int] = field(default_factory=list)
    shard_attempts: dict[int, int] = field(default_factory=dict)
    checkpoint_corrupt_entries: int = 0
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether every shard completed (from a worker or the journal)."""
        return not self.quarantined \
            and self.completed_shards == self.total_shards

    def to_dict(self) -> dict:
        """Plain-dict form for perf records and telemetry dumps."""
        return {
            "total_shards": self.total_shards,
            "total_tasks": self.total_tasks,
            "completed_shards": self.completed_shards,
            "completed_tasks": self.completed_tasks,
            "checkpoint_hits": self.checkpoint_hits,
            "retries": self.retries,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "quarantined": sorted(self.quarantined),
            "shard_attempts": {str(k): v
                               for k, v in sorted(self.shard_attempts.items())},
            "checkpoint_corrupt_entries": self.checkpoint_corrupt_entries,
            "elapsed_s": self.elapsed_s,
            "ok": self.ok,
        }

    def summary(self) -> str:
        """Console-friendly multi-line digest."""
        lines = [
            f"shards        : {self.completed_shards}/{self.total_shards} "
            f"completed ({self.checkpoint_hits} from checkpoint)",
            f"tasks         : {self.completed_tasks}/{self.total_tasks}",
            f"retries       : {self.retries}  "
            f"crashes: {self.crashes}  hangs: {self.hangs}",
            f"quarantined   : "
            + (", ".join(map(str, sorted(self.quarantined))) or "(none)"),
            f"elapsed       : {self.elapsed_s:.2f} s",
        ]
        if self.shard_attempts:
            worst = max(self.shard_attempts.values())
            lines.append(f"max attempts  : {worst} "
                         f"(on {len(self.shard_attempts)} retried shards)")
        if self.checkpoint_corrupt_entries:
            lines.append(f"journal       : "
                         f"{self.checkpoint_corrupt_entries} corrupt "
                         "entries skipped and recomputed")
        return "\n".join(lines)


@dataclass
class _Shard:
    """One schedulable unit: a contiguous slice of the task grid."""

    index: int
    tasks: list[_Task]
    key: str | None = None
    #: Failed executions so far (a successful run makes attempts+1 total).
    attempts: int = 0
    #: Heartbeat: monotonic timestamp of the last submission.
    submitted_at: float = 0.0
    #: Earliest monotonic time the next attempt may be submitted.
    eligible_at: float = 0.0

    @property
    def trial_indices(self) -> tuple[int, ...]:
        return tuple(task.index for task in self.tasks)


def shard_key(fn: Callable, tasks: Sequence[_Task]) -> str:
    """Content address of one shard of a sweep.

    Derived like :func:`repro.runtime.cache.cache_key` — the trial
    function's fully-qualified name plus every task's grid index,
    seed, and point.  Points the canonical tokenizer cannot encode
    (arbitrary objects) fall back to their pickle bytes, which is
    stable for the value-object points the experiments use.
    """
    identity = (fn.__module__, fn.__qualname__,
                [(task.index, task.seed, task.point) for task in tasks])
    try:
        return cache_key("repro.runtime.jobs/shard", identity)
    except ConfigurationError:
        payload = pickle.dumps(identity, protocol=4)
        return hashlib.sha256(b"repro.runtime.jobs/shard-pickle\x00"
                              + payload).hexdigest()


def _run_shard(fn: Callable[[Any, np.random.Generator], Any],
               tasks: Sequence[_Task], shard_index: int, attempt: int,
               injector: "WorkerFaultInjector | None"
               ) -> list[tuple[int, Any]]:
    """Worker-side shard execution (same seeding as ``_run_chunk``)."""
    if injector is not None:
        injector.apply(shard_index, attempt, in_worker=True)
    return [(task.index, fn(task.point, np.random.default_rng(task.seed)))
            for task in tasks]


# ---------------------------------------------------------------------------
# Durable checkpoint journal


class ShardCheckpoint:
    """Append-only JSONL journal of completed shards.

    One line per completed shard: shard key, trial indices, attempts,
    and the pickled result rows (base64) guarded by a SHA-256 digest.
    Loading tolerates torn writes — a truncated or corrupted trailing
    line (the signature of a sweep killed mid-append) is counted in
    :attr:`corrupt_entries` and skipped, so a bad entry costs one
    recompute, never a poisoned resume.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.corrupt_entries = 0
        self._entries: dict[str, list[tuple[int, Any]]] = {}
        if self.path.exists():
            self._load()
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="ascii")
        except OSError as exc:
            raise CheckpointError(
                f"cannot open checkpoint journal {self.path}: {exc}"
            ) from exc

    # -- loading -------------------------------------------------------

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="ascii", errors="replace")
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint journal {self.path}: {exc}"
            ) from exc
        for line in text.splitlines():
            if not line.strip():
                continue
            parsed = self._parse(line)
            if parsed is None:
                self.corrupt_entries += 1
            else:
                key, rows = parsed
                self._entries[key] = rows

    @staticmethod
    def _parse(line: str) -> tuple[str, list[tuple[int, Any]]] | None:
        """One journal line -> (key, rows), or None if it cannot be trusted."""
        try:
            obj = json.loads(line)
            key = obj["key"]
            payload = base64.b64decode(obj["payload"].encode("ascii"),
                                       validate=True)
            if hashlib.sha256(payload).hexdigest() != obj["sha256"]:
                return None
            rows = [(int(index), value)
                    for index, value in pickle.loads(payload)]
            if [row[0] for row in rows] != [int(i) for i in obj["indices"]]:
                return None
            return str(key), rows
        except Exception:
            return None

    # -- writing -------------------------------------------------------

    def record(self, key: str, shard_index: int, attempts: int,
               rows: list[tuple[int, Any]]) -> None:
        """Durably append one completed shard (flush + fsync)."""
        payload = pickle.dumps(rows, protocol=4)
        line = json.dumps({
            "key": key,
            "shard": int(shard_index),
            "indices": [int(row[0]) for row in rows],
            "attempts": int(attempts),
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": base64.b64encode(payload).decode("ascii"),
        }, sort_keys=True)
        try:
            self._file.write(line + "\n")
            self._file.flush()
            os.fsync(self._file.fileno())
        except OSError as exc:
            raise CheckpointError(
                f"cannot append to checkpoint journal {self.path}: {exc}"
            ) from exc
        self._entries[key] = rows

    # -- queries -------------------------------------------------------

    def get(self, key: str) -> list[tuple[int, Any]] | None:
        """The recorded rows for ``key``, or None if never completed."""
        return self._entries.get(key)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def close(self) -> None:
        """Close the journal file handle (entries stay queryable)."""
        self._file.close()

    def __enter__(self) -> "ShardCheckpoint":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Supervision


class WorkerSupervisor:
    """Supervised shard execution: crash/hang detection, retry, backoff.

    Owns the pool lifecycle.  A ``BrokenProcessPool`` (worker killed)
    or a missed shard deadline (worker hung) recycles the pool and
    requeues the affected shards; the shard that triggered the event
    is charged an attempt, in-flight bystanders are requeued free of
    charge.  Attempt budgets and quarantine come from the
    :class:`ResilienceConfig`; every event is tallied into the run's
    :class:`SweepHealth`.
    """

    def __init__(self, workers: int, config: ResilienceConfig,
                 seed_root: int = 0,
                 fault_injector: "WorkerFaultInjector | None" = None) -> None:
        self.workers = int(workers)
        self.config = config
        self.seed_root = int(seed_root)
        self.fault_injector = fault_injector

    # -- shared retry bookkeeping --------------------------------------

    def _backoff_s(self, shard: _Shard) -> float:
        """Seeded exponential backoff with jitter, capped.

        Pure function of ``(seed_root, shard.index, shard.attempts)``
        — deterministic pacing that never touches the trial RNGs.
        """
        cfg = self.config
        rng = np.random.default_rng(
            [self.seed_root, _BACKOFF_DOMAIN, shard.index, shard.attempts])
        delay = cfg.backoff_base_s * (2.0 ** max(0, shard.attempts - 1))
        return min(cfg.backoff_cap_s, delay) * (0.5 + rng.random())

    def _note_failure(self, shard: _Shard, health: SweepHealth,
                      requeue: Callable[[_Shard], None],
                      crash: bool = False, hang: bool = False) -> None:
        """Charge a failed attempt; requeue with backoff or quarantine."""
        shard.attempts += 1
        health.shard_attempts[shard.index] = shard.attempts
        if crash:
            health.crashes += 1
        if hang:
            health.hangs += 1
        if shard.attempts < self.config.max_attempts:
            health.retries += 1
            shard.eligible_at = time.monotonic() + self._backoff_s(shard)
            requeue(shard)
            return
        limit = self.config.quarantine_limit
        if limit is not None and len(health.quarantined) >= limit:
            raise WorkerCrashError(
                f"shard {shard.index} failed {shard.attempts} times "
                f"(budget {self.config.max_attempts}) and the quarantine "
                f"limit ({limit}) is exhausted; trial indices "
                f"{list(shard.trial_indices)} are unrecoverable",
                trial_indices=shard.trial_indices)
        health.quarantined.append(shard.index)

    # -- serial reference path -----------------------------------------

    def run_serial(self, fn: Callable[[Any, np.random.Generator], Any],
                   shards: Iterable[_Shard], health: SweepHealth,
                   on_done: Callable[[_Shard, list[tuple[int, Any]]], None]
                   ) -> None:
        """In-process execution with the same retry/quarantine policy.

        Injected KILL faults surface as
        :class:`~repro.errors.WorkerCrashError` raised by the injector
        (the process is spared) so the retry path is exercised without
        a pool.
        """
        queue = deque(shards)
        while queue:
            shard = queue.popleft()
            wait_s = shard.eligible_at - time.monotonic()
            if wait_s > 0:
                time.sleep(wait_s)
            shard.submitted_at = time.monotonic()
            try:
                if self.fault_injector is not None:
                    self.fault_injector.apply(shard.index, shard.attempts,
                                              in_worker=False)
                rows = [(task.index,
                         fn(task.point, np.random.default_rng(task.seed)))
                        for task in shard.tasks]
            except Exception as exc:
                crash = isinstance(exc, WorkerCrashError)
                if not crash and not self._retryable(exc):
                    raise
                self._note_failure(shard, health, queue.append, crash=crash)
                continue
            on_done(shard, rows)

    @staticmethod
    def _retryable(exc: Exception) -> bool:
        """Whether a serial in-process failure is worth retrying.

        Configuration mistakes fail identically every attempt; retrying
        them only delays the traceback.  Everything else (transient I/O,
        injected crashes, flaky native code) gets the retry budget.
        """
        return not isinstance(exc, ConfigurationError)

    # -- supervised pool path ------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers,
                                   mp_context=_pool_context())

    def _recycle_pool(self, pool: ProcessPoolExecutor
                      ) -> ProcessPoolExecutor:
        """Tear a broken/hung pool down hard and stand up a fresh one.

        Hung workers do not react to a polite shutdown, so any worker
        process still alive is terminated first; with the children
        dead the executor's shutdown returns promptly.
        """
        for process in list(getattr(pool, "_processes", {}).values() or []):
            try:
                process.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass
        return self._new_pool()

    def run_pooled(self, fn: Callable[[Any, np.random.Generator], Any],
                   shards: Iterable[_Shard], health: SweepHealth,
                   on_done: Callable[[_Shard, list[tuple[int, Any]]], None]
                   ) -> None:
        """Fan shards over a supervised pool until all complete."""
        cfg = self.config
        queue: deque[_Shard] = deque(shards)
        max_inflight = self.workers * cfg.max_inflight_per_worker
        pool = self._new_pool()
        pending: dict[Future, _Shard] = {}
        try:
            while queue or pending:
                self._submit_ready(fn, pool, queue, pending, max_inflight)
                if not pending:
                    # Everything runnable is backing off; nap until the
                    # soonest shard becomes eligible again.
                    soonest = min(shard.eligible_at for shard in queue)
                    time.sleep(min(max(soonest - time.monotonic(), 0.0),
                                   _POLL_S))
                    continue
                timeout = None if not queue and cfg.shard_deadline_s is None \
                    else _POLL_S
                finished, _ = wait(set(pending), timeout=timeout,
                                   return_when=FIRST_COMPLETED)
                pool_broken = False
                for future in finished:
                    shard = pending.pop(future)
                    try:
                        rows = future.result()
                    except BrokenProcessPool:
                        # The pool died under this shard (or it was in
                        # flight when a sibling died — every in-flight
                        # future fails at once, and the true victim
                        # cannot be told apart).  Charge them all.
                        pool_broken = True
                        self._note_failure(shard, health, queue.append,
                                           crash=True)
                    except Exception as exc:
                        if not self._retryable(exc):
                            raise
                        self._note_failure(shard, health, queue.append)
                    else:
                        on_done(shard, rows)
                if pool_broken:
                    self._requeue_victims(pending, queue)
                    pool = self._recycle_pool(pool)
                    continue
                hung = self._hung_shards(pending)
                if hung:
                    # A hung worker cannot be cancelled individually:
                    # recycle the whole pool, charging only the shards
                    # that actually missed their deadline.
                    for future in hung:
                        shard = pending.pop(future)
                        self._note_failure(shard, health, queue.append,
                                           hang=True)
                    self._requeue_victims(pending, queue)
                    pool = self._recycle_pool(pool)
        finally:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    def _submit_ready(self, fn: Callable[[Any, np.random.Generator], Any],
                      pool: ProcessPoolExecutor,
                      queue: deque[_Shard], pending: dict[Future, _Shard],
                      max_inflight: int) -> None:
        """Submit eligible shards up to the backpressure bound."""
        now = time.monotonic()
        for _ in range(len(queue)):
            if len(pending) >= max_inflight:
                return
            shard = queue.popleft()
            if shard.eligible_at > now:
                queue.append(shard)  # still backing off; rotate past it
                continue
            shard.submitted_at = now
            future = pool.submit(_run_shard, fn, shard.tasks, shard.index,
                                 shard.attempts, self.fault_injector)
            pending[future] = shard

    def _hung_shards(self, pending: dict[Future, _Shard]) -> list[Future]:
        """Futures whose shard heartbeat has outlived the deadline."""
        deadline = self.config.shard_deadline_s
        if deadline is None:
            return []
        now = time.monotonic()
        return [future for future, shard in pending.items()
                if now - shard.submitted_at > deadline]

    @staticmethod
    def _requeue_victims(pending: dict[Future, _Shard],
                         queue: deque[_Shard]) -> None:
        """Return in-flight bystanders to the queue without penalty."""
        for shard in pending.values():
            queue.append(shard)
        pending.clear()


# ---------------------------------------------------------------------------
# The runner


class ResilientSweepRunner:
    """Checkpointed, supervised, crash-resumable sweep execution.

    The drop-in hardened sibling of
    :class:`~repro.runtime.sweep.SweepRunner`: same grid semantics,
    same seeding discipline, same ``points x trials`` result shape,
    byte-identical results — plus shard checkpointing, worker
    supervision with retry/backoff, quarantine, and a
    :class:`SweepHealth` report on :attr:`health` after every run.
    """

    def __init__(self, workers: int = 1, seed_root: int = 0,
                 chunk_size: int | None = None,
                 telemetry: "Telemetry | None" = None,
                 progress: Callable[[int, int], None] | None = None,
                 config: ResilienceConfig | None = None,
                 fault_injector: "WorkerFaultInjector | None" = None) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        self.workers = int(workers)
        self.seed_root = int(seed_root)
        self.chunk_size = chunk_size
        self.telemetry = telemetry
        self.progress = progress
        self.config = config if config is not None else ResilienceConfig()
        self.fault_injector = fault_injector
        #: The last run's health report (None before the first run).
        self.health: SweepHealth | None = None

    # ------------------------------------------------------------------

    def _shards(self, tasks: list[_Task]) -> list[_Shard]:
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(tasks)
                                    / (self.workers * CHUNKS_PER_WORKER)))
        return [_Shard(index=shard_index, tasks=tasks[offset:offset + size])
                for shard_index, offset
                in enumerate(range(0, len(tasks), size))]

    def _record(self, health: SweepHealth) -> None:
        if self.telemetry is None:
            return
        metrics = self.telemetry.metrics
        metrics.counter(RUNS_COUNTER).inc()
        metrics.counter(SHARDS_COUNTER).inc(health.total_shards)
        metrics.counter(COMPLETED_COUNTER).inc(health.completed_shards)
        metrics.counter(RETRIES_COUNTER).inc(health.retries)
        metrics.counter(CRASHES_COUNTER).inc(health.crashes)
        metrics.counter(HANGS_COUNTER).inc(health.hangs)
        metrics.counter(QUARANTINED_COUNTER).inc(len(health.quarantined))
        metrics.counter(CHECKPOINT_HITS_COUNTER).inc(health.checkpoint_hits)
        metrics.gauge("runtime.jobs.workers").set(self.workers)
        metrics.histogram("runtime.jobs.run_seconds",
                          bounds=(0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)
                          ).observe(health.elapsed_s)

    def sweep(self, fn: Callable[[Any, np.random.Generator], Any],
              points: Iterable[Any], trials: int = 1) -> list[list[Any]]:
        """Run ``fn(point, rng)`` for every (point, trial) cell.

        Returns one list per point holding its ``trials`` results in
        trial order, byte-identical to
        :meth:`repro.runtime.sweep.SweepRunner.sweep` on the same
        grid.  Quarantined shards (if the config permits any) leave
        ``None`` in their cells; check :attr:`health`.
        """
        if trials < 1:
            raise ConfigurationError("trials must be >= 1")
        start = time.perf_counter()
        point_list = list(points)
        tasks = build_tasks(point_list, trials, self.seed_root)
        shards = self._shards(tasks)
        health = SweepHealth(total_shards=len(shards),
                             total_tasks=len(tasks))
        global _LAST_HEALTH
        self.health = health
        _LAST_HEALTH = health
        results: list[Any] = [None] * len(tasks)
        if not tasks:
            health.elapsed_s = time.perf_counter() - start
            self._record(health)
            return []

        checkpoint: ShardCheckpoint | None = None
        try:
            if self.config.checkpoint_path is not None:
                checkpoint = ShardCheckpoint(self.config.checkpoint_path)
                health.checkpoint_corrupt_entries = checkpoint.corrupt_entries
            todo = self._replay_checkpoint(fn, shards, checkpoint, results,
                                           health)

            def on_done(shard: _Shard,
                        rows: list[tuple[int, Any]]) -> None:
                self._complete(shard, rows, results, checkpoint, health)

            supervisor = WorkerSupervisor(self.workers, self.config,
                                          seed_root=self.seed_root,
                                          fault_injector=self.fault_injector)
            if self.workers == 1:
                supervisor.run_serial(fn, todo, health, on_done)
            else:
                supervisor.run_pooled(fn, todo, health, on_done)
        finally:
            if checkpoint is not None:
                checkpoint.close()
            health.elapsed_s = time.perf_counter() - start
            self._record(health)
        return [results[p * trials:(p + 1) * trials]
                for p in range(len(point_list))]

    def _replay_checkpoint(self, fn: Callable,
                           shards: list[_Shard],
                           checkpoint: ShardCheckpoint | None,
                           results: list[Any],
                           health: SweepHealth) -> list[_Shard]:
        """Fill results from the journal; return the shards still to run."""
        if checkpoint is None:
            return shards
        todo: list[_Shard] = []
        for shard in shards:
            shard.key = shard_key(fn, shard.tasks)
            rows = checkpoint.get(shard.key) if self.config.resume else None
            if rows is None or [row[0] for row in rows] \
                    != list(shard.trial_indices):
                todo.append(shard)
                continue
            for index, value in rows:
                results[index] = value
            health.checkpoint_hits += 1
            health.completed_shards += 1
            health.completed_tasks += len(rows)
            if self.progress is not None:
                self.progress(health.completed_tasks, health.total_tasks)
        return todo

    def _complete(self, shard: _Shard, rows: list[tuple[int, Any]],
                  results: list[Any], checkpoint: ShardCheckpoint | None,
                  health: SweepHealth) -> None:
        for index, value in rows:
            results[index] = value
        health.completed_shards += 1
        health.completed_tasks += len(rows)
        if shard.attempts:
            health.shard_attempts[shard.index] = shard.attempts + 1
        if checkpoint is not None:
            checkpoint.record(shard.key, shard.index, shard.attempts + 1,
                              rows)
        if self.progress is not None:
            self.progress(health.completed_tasks, health.total_tasks)


def resilient_sweep(fn: Callable[[Any, np.random.Generator], Any],
                    points: Iterable[Any], trials: int = 1,
                    workers: int = 1, seed_root: int = 0,
                    chunk_size: int | None = None,
                    telemetry: "Telemetry | None" = None,
                    progress: Callable[[int, int], None] | None = None,
                    config: ResilienceConfig | None = None,
                    fault_injector: "WorkerFaultInjector | None" = None
                    ) -> list[list[Any]]:
    """One-shot convenience wrapper around :class:`ResilientSweepRunner`."""
    runner = ResilientSweepRunner(workers=workers, seed_root=seed_root,
                                  chunk_size=chunk_size, telemetry=telemetry,
                                  progress=progress, config=config,
                                  fault_injector=fault_injector)
    return runner.sweep(fn, points, trials)


#: The most recent sweep's health report in this process, kept for
#: status views (the console's ``sweep status``).  Overwritten at the
#: start of every run, so a concurrent observer sees live counters.
_LAST_HEALTH: SweepHealth | None = None


def last_sweep_health() -> SweepHealth | None:
    """The health report of the most recent sweep in this process.

    ``None`` until the first :class:`ResilientSweepRunner` run starts.
    """
    return _LAST_HEALTH


__all__ = [
    "ResilienceConfig",
    "ResilientSweepRunner",
    "ShardCheckpoint",
    "STRICT_RESILIENCE",
    "SweepHealth",
    "WorkerSupervisor",
    "last_sweep_health",
    "resilient_sweep",
    "shard_key",
]
