"""The Telemetry bundle: one object carrying a whole session's plumbing.

A :class:`Telemetry` instance groups the timebase, the tracer, the
metrics registry, and the host profiler, and knows how to attach them
to a device/driver pair at the natural probe points.  This is what
user code passes to :class:`repro.core.jammer.ReactiveJammer` (or the
console) to opt in:

    >>> telemetry = Telemetry()
    >>> jammer = ReactiveJammer(telemetry=telemetry)
    >>> ...
    >>> telemetry.write_chrome_trace("run.trace.json")
    >>> print(telemetry.summary())

``Telemetry(enabled=False)`` builds the disabled bundle — null tracer,
no profiler — whose probe-point cost is a truthiness check per chunk;
the benchmark suite guards that this stays within noise of running
with no telemetry at all.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.telemetry.exporters import (
    text_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import HostProfiler
from repro.telemetry.timebase import Timebase
from repro.telemetry.tracer import (
    DEFAULT_CAPACITY,
    NULL_TRACER,
    InstantEvent,
    RingTracer,
    SpanEvent,
    Tracer,
)

if TYPE_CHECKING:  # avoid the import cycle telemetry -> hw -> telemetry
    from repro.hw.uhd import UhdDriver
    from repro.hw.usrp import UsrpN210
    from repro.telemetry.budget import BudgetReport, LatencyBudget


class Telemetry:
    """Tracer + metrics + profiler + timebase as one opt-in bundle."""

    def __init__(self, enabled: bool = True,
                 capacity: int = DEFAULT_CAPACITY,
                 timebase: Timebase | None = None) -> None:
        self.timebase = timebase if timebase is not None else Timebase()
        self.metrics = MetricsRegistry()
        self.tracer: Tracer = RingTracer(self.timebase, capacity) \
            if enabled else NULL_TRACER
        self.profiler: HostProfiler | None = HostProfiler(
            self.metrics, self.tracer, self.timebase) if enabled else None

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The null bundle: every probe point stays a no-op."""
        return cls(enabled=False)

    @property
    def enabled(self) -> bool:
        """Whether the bundle records anything at all."""
        return self.tracer.enabled

    # ------------------------------------------------------------------
    # Wiring

    def attach(self, device: "UsrpN210",
               driver: "UhdDriver | None" = None) -> None:
        """Wire this bundle into a device (and optionally its driver).

        Probe points covered: the DSP core's detectors / FSM / jam
        windows, the detector kernels' backend and throughput counters
        (``kernels.*``), the watchdog, the DDC/DUC host profiling
        scopes, and — when a driver is given — its register-write path.
        """
        device.core.tracer = self.tracer
        device.core.profiler = self.profiler
        device.profiler = self.profiler
        device.core.correlator.attach_metrics(self.metrics)
        device.core.banked.attach_metrics(self.metrics)
        device.core.attach_metrics(self.metrics)
        device.core.energy.attach_metrics(self.metrics)
        if device.core.watchdog is not None:
            device.core.watchdog.tracer = self.tracer
        if driver is not None:
            driver.tracer = self.tracer

    # ------------------------------------------------------------------
    # Views and exports

    def events(self) -> list[InstantEvent | SpanEvent]:
        """The retained trace events, oldest first."""
        return self.tracer.events()

    def summary(self) -> str:
        """The text digest of the trace and metrics."""
        dropped = getattr(self.tracer, "dropped", 0)
        return text_summary(self.events(), self.metrics, dropped=dropped)

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Export the trace in Chrome trace-event JSON."""
        return write_chrome_trace(self.events(), path)

    def write_jsonl(self, path: str | Path) -> Path:
        """Export the trace as newline-delimited JSON."""
        return write_jsonl(self.events(), path)

    def budget_report(self, signal_starts: list[int] | None = None,
                      budget: "LatencyBudget | None" = None) -> "BudgetReport":
        """Run the Fig. 5 latency-budget checker over the trace."""
        # Imported here: the budget checker pulls in the hardware model
        # (for the analytic timeline), which itself imports the tracer.
        from repro.telemetry.budget import LatencyBudget

        budget = budget if budget is not None else LatencyBudget()
        return budget.verify(self.events(), signal_starts=signal_starts)
