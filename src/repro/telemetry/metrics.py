"""Counters, gauges, and fixed-bucket histograms.

A deliberately small metrics model: three instrument types behind one
:class:`MetricsRegistry`, no labels, no background threads.  The
registry snapshot is a plain nested dict so it drops straight into
:meth:`repro.core.jammer.HealthReport.to_dict` and the benchmark
perf records.

Histograms use *fixed* bucket bounds chosen at creation: observation
is O(#buckets) with no allocation, which is what a per-chunk hot path
can afford.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence

from repro.errors import ConfigurationError

#: Default latency buckets in nanoseconds: covers 40 ns (one sample)
#: through 10 ms, roughly half-decade spaced.
DEFAULT_LATENCY_BUCKETS_NS: tuple[float, ...] = (
    40.0, 80.0, 160.0, 320.0, 640.0, 1_280.0, 2_560.0, 5_120.0,
    10_240.0, 102_400.0, 1_024_000.0, 10_240_000.0,
)


class Counter:
    """A monotonically increasing integer."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError("counters only move forward")
        self.value += amount


class Gauge:
    """A value that can move both ways (duty cycle, throughput)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max accumulators.

    ``bounds`` are the inclusive upper edges of the finite buckets; an
    implicit overflow bucket catches everything beyond the last edge.
    """

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ConfigurationError("histogram needs at least one bound")
        ordered = list(bounds)
        if ordered != sorted(ordered):
            raise ConfigurationError("histogram bounds must be ascending")
        self.name = name
        self.bounds = tuple(float(b) for b in ordered)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bucket edge).

        Returns the upper edge of the bucket containing the ``q``
        quantile, or ``max`` for observations in the overflow bucket —
        coarse by construction, but allocation-free and monotone.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max

    def snapshot(self) -> dict:
        """The histogram state as a plain dict."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class MetricsRegistry:
    """Get-or-create home for every metric in one telemetry session."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_NS
                  ) -> Histogram:
        """The histogram called ``name``, created on first use.

        Re-requesting an existing histogram with different bounds is a
        configuration bug and raises rather than silently re-bucketing.
        """
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        elif metric.bounds != tuple(float(b) for b in bounds):
            raise ConfigurationError(
                f"histogram {name!r} already exists with different bounds"
            )
        return metric

    def snapshot(self) -> dict:
        """Every metric as one nested plain dict."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self._histograms.items())},
        }

    def summary(self) -> str:
        """A console-friendly text rendering of the registry."""
        lines: list[str] = []
        for name, counter in sorted(self._counters.items()):
            lines.append(f"{name:<32}{counter.value:>14}")
        for name, gauge in sorted(self._gauges.items()):
            lines.append(f"{name:<32}{gauge.value:>14.4f}")
        for name, hist in sorted(self._histograms.items()):
            if hist.count:
                lines.append(
                    f"{name:<32}{hist.count:>8} obs  "
                    f"mean {hist.mean:,.0f}  min {hist.min:,.0f}  "
                    f"max {hist.max:,.0f}  p90 {hist.quantile(0.9):,.0f}"
                )
            else:
                lines.append(f"{name:<32}{0:>8} obs")
        return "\n".join(lines) if lines else "(no metrics recorded)"
