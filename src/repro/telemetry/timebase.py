"""The dual-domain timebase: sample clock <-> nanoseconds <-> host time.

The data path is indexed in baseband samples (25 MSPS, 40 ns each);
the FPGA fabric runs at 100 MHz (10 ns per cycle); the host observes
wall time.  Every trace event must be meaningful in all three domains,
so the :class:`Timebase` converts between them and stamps events with
both a sample index and nanoseconds on the sample clock.

Host wall time is kept strictly separate from the sample domain: the
sample clock is the simulation's own timeline (deterministic, exactly
reproducible), while host time measures how long the *model* takes to
run.  Mixing them is the bug class lint rule RJ007 exists to catch.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from repro import units
from repro.errors import ConfigurationError

#: Nanoseconds per second, spelled once.
NS_PER_S = 1_000_000_000


@dataclass(frozen=True)
class Stamp:
    """One instant in both domains: sample index and nanoseconds."""

    sample: int
    ns: float

    @property
    def seconds(self) -> float:
        """The nanosecond component as seconds."""
        return self.ns / NS_PER_S


class Timebase:
    """Converts between sample indices, FPGA clocks, and nanoseconds.

    Attributes:
        sample_rate: Baseband sample rate (samples/s).
        fpga_clock_hz: FPGA fabric clock (Hz).
        wall_clock_ns: Callable returning host wall time in integer
            nanoseconds; injectable so tests stay deterministic.
    """

    def __init__(self, sample_rate: float = units.BASEBAND_RATE,
                 fpga_clock_hz: float = units.FPGA_CLOCK_HZ,
                 wall_clock_ns: Callable[[], int] | None = None) -> None:
        if sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        if fpga_clock_hz <= 0:
            raise ConfigurationError("fpga_clock_hz must be positive")
        self.sample_rate = float(sample_rate)
        self.fpga_clock_hz = float(fpga_clock_hz)
        self.wall_clock_ns = wall_clock_ns if wall_clock_ns is not None \
            else time.perf_counter_ns

    # ------------------------------------------------------------------
    # Sample domain

    def sample_to_ns(self, sample_index: int | float) -> float:
        """Nanoseconds on the sample clock since sample 0."""
        return sample_index * (NS_PER_S / self.sample_rate)

    def ns_to_sample(self, ns: float) -> int:
        """Nearest sample index for a sample-clock time in ns."""
        return int(round(ns * self.sample_rate / NS_PER_S))

    def samples_to_clocks(self, n_samples: int) -> int:
        """FPGA clock cycles spanned by ``n_samples`` samples."""
        return int(round(n_samples * self.fpga_clock_hz / self.sample_rate))

    def clocks_to_ns(self, n_clocks: int | float) -> float:
        """Nanoseconds spanned by ``n_clocks`` FPGA clock cycles."""
        return n_clocks * (NS_PER_S / self.fpga_clock_hz)

    def stamp(self, sample_index: int) -> Stamp:
        """A dual-domain timestamp for one sample index."""
        return Stamp(sample=int(sample_index),
                     ns=self.sample_to_ns(sample_index))

    # ------------------------------------------------------------------
    # Host domain

    def host_now_ns(self) -> int:
        """Host wall time in nanoseconds (monotonic, arbitrary epoch)."""
        return self.wall_clock_ns()
