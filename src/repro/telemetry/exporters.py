"""Trace and metrics exporters: JSONL, Chrome trace-event, text.

Three consumers, three formats:

* **JSONL** — one JSON object per event, for ad-hoc ``jq``/pandas
  analysis and the benchmark perf records;
* **Chrome trace-event JSON** — loadable in Perfetto or
  ``chrome://tracing``; sample-domain events render on their own
  tracks with microsecond timestamps derived from the sample clock,
  host-profiled spans on a separate "host" track;
* **text summary** — the console's ``stats`` view.

The trace-event format reference: instant events use phase ``"i"``,
complete spans phase ``"X"`` with ``dur``; timestamps (``ts``) are in
microseconds.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import InstantEvent, SpanEvent

#: Nanoseconds per microsecond (trace-event ``ts`` is in µs).
_NS_PER_US = 1_000.0

#: Synthetic pid/tid layout for the trace viewer: one process, one
#: thread per category so tracks group naturally.
_TRACE_PID = 1


def event_to_dict(event: InstantEvent | SpanEvent) -> dict:
    """One event as a flat JSON-ready dict (the JSONL schema)."""
    if isinstance(event, InstantEvent):
        record = {
            "type": "instant",
            "name": event.name,
            "category": event.category,
            "sample": event.sample,
            "ns": event.ns,
            "host": event.host,
        }
    else:
        record = {
            "type": "span",
            "name": event.name,
            "category": event.category,
            "start_sample": event.start_sample,
            "end_sample": event.end_sample,
            "start_ns": event.start_ns,
            "end_ns": event.end_ns,
            "host": event.host,
        }
    if event.args:
        record["args"] = {key: _jsonable(value)
                          for key, value in event.args.items()}
    return record


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def events_to_jsonl(events: Iterable[InstantEvent | SpanEvent]) -> str:
    """The events as newline-delimited JSON."""
    return "\n".join(json.dumps(event_to_dict(event), sort_keys=True)
                     for event in events)


def write_jsonl(events: Iterable[InstantEvent | SpanEvent],
                path: str | Path) -> Path:
    """Write the JSONL export; returns the path written."""
    path = Path(path)
    text = events_to_jsonl(events)
    path.write_text(text + "\n" if text else "", encoding="utf-8")
    return path


def _tids(events: Sequence[InstantEvent | SpanEvent]) -> dict[str, int]:
    categories = sorted({event.category for event in events})
    return {category: index + 1 for index, category in enumerate(categories)}


def chrome_trace_events(events: Sequence[InstantEvent | SpanEvent]) -> list[dict]:
    """The events in Chrome trace-event form (``traceEvents`` list)."""
    tids = _tids(events)
    out: list[dict] = [
        {"ph": "M", "pid": _TRACE_PID, "tid": tid, "name": "thread_name",
         "args": {"name": category}}
        for category, tid in tids.items()
    ]
    for event in events:
        args = {key: _jsonable(value) for key, value in event.args.items()}
        if isinstance(event, InstantEvent):
            args.setdefault("sample", event.sample)
            out.append({
                "ph": "i", "s": "t",
                "name": event.name, "cat": event.category,
                "pid": _TRACE_PID, "tid": tids[event.category],
                "ts": event.ns / _NS_PER_US,
                "args": args,
            })
        else:
            if not event.host:
                args.setdefault("start_sample", event.start_sample)
                args.setdefault("end_sample", event.end_sample)
            out.append({
                "ph": "X",
                "name": event.name, "cat": event.category,
                "pid": _TRACE_PID, "tid": tids[event.category],
                "ts": event.start_ns / _NS_PER_US,
                "dur": event.duration_ns / _NS_PER_US,
                "args": args,
            })
    return out


def write_chrome_trace(events: Sequence[InstantEvent | SpanEvent],
                       path: str | Path) -> Path:
    """Write a Perfetto/chrome://tracing-loadable JSON trace file."""
    path = Path(path)
    document = {
        "traceEvents": chrome_trace_events(events),
        "displayTimeUnit": "ns",
    }
    path.write_text(json.dumps(document), encoding="utf-8")
    return path


def text_summary(events: Sequence[InstantEvent | SpanEvent],
                 metrics: MetricsRegistry | None = None,
                 dropped: int = 0) -> str:
    """A console-friendly digest of a trace (and optional metrics)."""
    lines = [f"trace: {len(events)} events retained"
             + (f" ({dropped} dropped by the ring bound)" if dropped else "")]
    by_name: dict[tuple[str, str], int] = {}
    for event in events:
        key = (event.category, event.name)
        by_name[key] = by_name.get(key, 0) + 1
    for (category, name), count in sorted(by_name.items()):
        lines.append(f"  {category}/{name:<28}{count:>10}")
    if metrics is not None:
        lines.append("metrics:")
        for line in metrics.summary().splitlines():
            lines.append(f"  {line}")
    return "\n".join(lines)
