"""Typed trace events and the bounded ring-buffer tracer.

Two event shapes cover every probe point in the framework:

* :class:`InstantEvent` — something happened at one instant (a
  detector fired, a register write landed, the watchdog tripped);
* :class:`SpanEvent` — something occupied an interval (a jam burst on
  the sample timeline, a profiled host-side code region).

Events carry time in **both** domains (see
:mod:`repro.telemetry.timebase`): ``sample``/``start_sample`` index
the deterministic sample clock (``-1`` for host-only events, which
have no sample-domain meaning), and ``ns``/``start_ns`` give
nanoseconds — sample-clock ns for data-path events, host wall-clock
ns for profiled regions (``host`` is True for the latter).

The default tracer everywhere is :data:`NULL_TRACER`: disabled,
allocation-free, and safe to call unconditionally.  Probe points on
per-sample-scaling paths additionally guard with ``tracer.enabled``
so a disabled tracer costs one attribute read per *chunk*, not per
event.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.telemetry.timebase import Timebase

#: Default ring capacity: enough for every event of a multi-millisecond
#: run while bounding memory under sustained load.
DEFAULT_CAPACITY = 65_536

# Event categories used by the built-in probe points.
CAT_DETECTOR = "detector"
CAT_FSM = "fsm"
CAT_TX = "tx"
CAT_WATCHDOG = "watchdog"
CAT_DRIVER = "driver"
CAT_RUN = "run"
CAT_HOST = "host"


@dataclass(frozen=True)
class InstantEvent:
    """A point event on the timeline."""

    name: str
    category: str
    sample: int
    ns: float
    host: bool = False
    args: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SpanEvent:
    """An interval event on the timeline (``end`` exclusive)."""

    name: str
    category: str
    start_sample: int
    end_sample: int
    start_ns: float
    end_ns: float
    host: bool = False
    args: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> float:
        """Span length in nanoseconds."""
        return self.end_ns - self.start_ns


class Tracer:
    """The tracer interface; the base class is the disabled tracer.

    ``enabled`` is False here and on :class:`NullTracer`, so probe
    points can guard loops with one attribute read and call the event
    methods unconditionally elsewhere.
    """

    enabled: bool = False

    def instant(self, name: str, category: str, sample: int,
                **args: object) -> None:
        """Record a point event at a sample index (no-op here)."""

    def span(self, name: str, category: str, start_sample: int,
             end_sample: int, **args: object) -> None:
        """Record an interval on the sample timeline (no-op here)."""

    def host_span(self, name: str, category: str, start_ns: int,
                  end_ns: int, **args: object) -> None:
        """Record a host wall-clock interval (no-op here)."""

    def events(self) -> list[InstantEvent | SpanEvent]:
        """The retained events, oldest first."""
        return []

    def clear(self) -> None:
        """Drop all retained events."""


class NullTracer(Tracer):
    """The explicit no-op tracer (identical to the base class)."""


#: The shared disabled tracer; safe to use as a default everywhere.
NULL_TRACER = NullTracer()


class RingTracer(Tracer):
    """A bounded tracer: keeps the most recent ``capacity`` events.

    Dropping the *oldest* events under overflow matches what a
    hardware trace buffer does and keeps the tail of a long run — the
    part a latency investigation usually needs — intact.

    Attributes:
        timebase: Converts sample indices to nanoseconds for stamping.
        emitted: Total events ever emitted (including dropped ones).
    """

    enabled = True

    def __init__(self, timebase: Timebase | None = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError("tracer capacity must be >= 1")
        self.timebase = timebase if timebase is not None else Timebase()
        self.capacity = int(capacity)
        self.emitted = 0
        self._events: deque[InstantEvent | SpanEvent] = deque(maxlen=capacity)

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound."""
        return self.emitted - len(self._events)

    def instant(self, name: str, category: str, sample: int,
                **args: object) -> None:
        self.emitted += 1
        self._events.append(InstantEvent(
            name=name, category=category, sample=int(sample),
            ns=self.timebase.sample_to_ns(sample), args=args,
        ))

    def span(self, name: str, category: str, start_sample: int,
             end_sample: int, **args: object) -> None:
        self.emitted += 1
        self._events.append(SpanEvent(
            name=name, category=category,
            start_sample=int(start_sample), end_sample=int(end_sample),
            start_ns=self.timebase.sample_to_ns(start_sample),
            end_ns=self.timebase.sample_to_ns(end_sample),
            args=args,
        ))

    def host_span(self, name: str, category: str, start_ns: int,
                  end_ns: int, **args: object) -> None:
        self.emitted += 1
        self._events.append(SpanEvent(
            name=name, category=category,
            start_sample=-1, end_sample=-1,
            start_ns=float(start_ns), end_ns=float(end_ns),
            host=True, args=args,
        ))

    def events(self) -> list[InstantEvent | SpanEvent]:
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    def iter_category(self, category: str) -> Iterator[InstantEvent | SpanEvent]:
        """Retained events of one category, oldest first."""
        return (event for event in self._events if event.category == category)
