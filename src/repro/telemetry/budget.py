"""The Fig. 5 latency-budget checker.

:func:`repro.core.timeline.timeline_for` derives the paper's §3.1
budget (energy detection <= 1.28 µs including window fill,
cross-correlation = 2.56 µs, trigger-to-RF = 80 ns) from the hardware
model's own constants.  :class:`LatencyBudget` closes the loop: it
takes a *measured* trace — the events the instrumented data path
actually emitted — and checks every realized latency against that
budget, flagging violations instead of trusting the constants.

Two latency families are checked:

* **detection latency** — signal start to detector firing, per
  detection source, requires the caller to say where its injected
  signals start (``signal_starts``);
* **response latency** — detector firing to first transmitted jam
  sample, read entirely off the trace (jam spans carry their trigger
  time), budgeted at T_init plus the configured jam delay.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro import units
from repro.core.timeline import JammingTimeline, timeline_for
from repro.telemetry.timebase import NS_PER_S
from repro.telemetry.tracer import (
    CAT_DETECTOR,
    CAT_TX,
    InstantEvent,
    SpanEvent,
)

#: Default slack: one baseband sample, the data path's time resolution.
DEFAULT_TOLERANCE_NS = units.SAMPLE_PERIOD * NS_PER_S

#: Detector-event names checked against their budget component.
_DETECTION_BUDGETS = {
    "detect.xcorr": "t_xcorr_det",
    "detect.energy_high": "t_en_det",
}


@dataclass(frozen=True)
class BudgetCheck:
    """One measured latency against one budget component."""

    name: str
    measured_ns: float
    budget_ns: float
    ok: bool
    detail: str = ""


@dataclass(frozen=True)
class BudgetReport:
    """Everything the checker verified for one trace."""

    checks: tuple[BudgetCheck, ...]

    @property
    def ok(self) -> bool:
        """Whether every check passed (and at least one ran)."""
        return bool(self.checks) and all(check.ok for check in self.checks)

    @property
    def violations(self) -> list[BudgetCheck]:
        """The failed checks."""
        return [check for check in self.checks if not check.ok]

    def summary(self) -> str:
        """Console-friendly pass/fail table."""
        if not self.checks:
            return "latency budget: no measurable events in the trace"
        lines = [f"latency budget: {len(self.checks)} checks, "
                 f"{len(self.violations)} violations"]
        for check in self.checks:
            verdict = "ok  " if check.ok else "FAIL"
            lines.append(
                f"  [{verdict}] {check.name:<24}"
                f"measured {check.measured_ns:>10.1f} ns   "
                f"budget {check.budget_ns:>10.1f} ns"
                + (f"   ({check.detail})" if check.detail else "")
            )
        return "\n".join(lines)


class LatencyBudget:
    """Compares measured trace latencies against the analytic budget."""

    def __init__(self, timeline: JammingTimeline | None = None,
                 tolerance_ns: float = DEFAULT_TOLERANCE_NS) -> None:
        self.timeline = timeline if timeline is not None else timeline_for()
        self.tolerance_ns = float(tolerance_ns)

    def _budget_ns(self, component: str) -> float:
        return getattr(self.timeline, component) * NS_PER_S

    def verify(self, events: Iterable[InstantEvent | SpanEvent],
               signal_starts: Sequence[int] | None = None) -> BudgetReport:
        """Check every measurable latency in ``events``.

        ``signal_starts`` lists the absolute sample indices where
        injected signals begin; with it, detection latencies are
        checked per signal (an undetected signal is a violation).
        Response (trigger-to-RF) latencies are always checked.
        """
        events = list(events)
        checks: list[BudgetCheck] = []
        checks.extend(self._check_responses(events))
        if signal_starts is not None:
            checks.extend(self._check_detections(events, signal_starts))
        return BudgetReport(checks=tuple(checks))

    # ------------------------------------------------------------------

    def _check_responses(self, events: list) -> list[BudgetCheck]:
        budget_ns = (self.timeline.t_init + self.timeline.t_delay) * NS_PER_S
        checks: list[BudgetCheck] = []
        for event in events:
            if not (isinstance(event, SpanEvent) and event.category == CAT_TX):
                continue
            trigger_sample = event.args.get("trigger_sample")
            if trigger_sample is None:
                continue
            trigger_ns = units.samples_to_seconds(trigger_sample) * NS_PER_S
            measured_ns = event.start_ns - trigger_ns
            checks.append(BudgetCheck(
                name="T_resp(trigger->RF)",
                measured_ns=measured_ns,
                budget_ns=budget_ns,
                ok=abs(measured_ns - budget_ns) <= self.tolerance_ns,
                detail=f"trigger sample {trigger_sample}",
            ))
        return checks

    def _check_detections(self, events: list,
                          signal_starts: Sequence[int]) -> list[BudgetCheck]:
        starts = sorted(int(s) for s in signal_starts)
        detections: dict[str, list[int]] = {name: []
                                            for name in _DETECTION_BUDGETS}
        for event in events:
            if (isinstance(event, InstantEvent)
                    and event.category == CAT_DETECTOR
                    and event.name in detections):
                detections[event.name].append(event.sample)
        checks: list[BudgetCheck] = []
        for name, samples in detections.items():
            if not samples:
                continue  # this detector was not part of the run
            budget_ns = self._budget_ns(_DETECTION_BUDGETS[name])
            for index, start in enumerate(starts):
                horizon = starts[index + 1] if index + 1 < len(starts) \
                    else None
                first = next(
                    (s for s in samples
                     if s >= start and (horizon is None or s < horizon)),
                    None,
                )
                if first is None:
                    checks.append(BudgetCheck(
                        name=name, measured_ns=float("inf"),
                        budget_ns=budget_ns, ok=False,
                        detail=f"signal at sample {start} never detected",
                    ))
                    continue
                # +1: a detection *at* sample n means n+1 samples have
                # been consumed since the signal's first sample.
                measured_ns = units.samples_to_seconds(
                    first - start + 1) * NS_PER_S
                checks.append(BudgetCheck(
                    name=name, measured_ns=measured_ns,
                    budget_ns=budget_ns,
                    ok=measured_ns <= budget_ns + self.tolerance_ns,
                    detail=f"signal at sample {start}",
                ))
        return checks
