"""Scoped host wall-time profiling for the hot numpy paths.

The sample-domain trace says *where on the signal timeline* things
happened; the host profiler says *how long the model took* to compute
them — the number the ROADMAP's "fast as the hardware allows" goal
optimizes.  A :class:`HostProfiler` wraps a code region in a
``with profiler.profile("xcorr"):`` scope and records the wall-clock
duration into a latency histogram (``host.<name>_ns``) and, when a
tracer is attached, a host-domain span event.

Probe points keep the profiler optional (``None`` by default) and
branch around the scope entirely when absent, so the disabled cost is
one ``is None`` test per chunk.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timebase import Timebase
from repro.telemetry.tracer import CAT_HOST, NULL_TRACER, Tracer


class HostProfiler:
    """Scoped wall-clock timers feeding a metrics registry + tracer."""

    def __init__(self, metrics: MetricsRegistry,
                 tracer: Tracer = NULL_TRACER,
                 timebase: Timebase | None = None) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.timebase = timebase if timebase is not None else Timebase()

    @contextmanager
    def profile(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``host.<name>_ns``.

        The duration is recorded even when the block raises — a slow
        failing path is still a slow path.
        """
        clock = self.timebase.wall_clock_ns
        start_ns = clock()
        try:
            yield
        finally:
            end_ns = clock()
            self.metrics.histogram(f"host.{name}_ns").observe(end_ns - start_ns)
            if self.tracer.enabled:
                self.tracer.host_span(name, CAT_HOST, start_ns, end_ns)
