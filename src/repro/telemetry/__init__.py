"""Sample-accurate tracing, metrics, and latency-budget observability.

The paper's headline claims are *timing* claims (§3.1, Fig. 5):
energy detection within 1.28 µs, cross-correlation in 2.56 µs, an
80 ns trigger-to-RF response.  This package is the instrumentation
layer that lets the reproduction measure those numbers on its own
data path instead of asserting them from constants:

* :mod:`repro.telemetry.timebase` — the dual-domain clock: every
  event carries a baseband sample index (25 MSPS) and nanoseconds,
  with the 100 MHz FPGA clock and host wall time as derived views.
* :mod:`repro.telemetry.tracer` — a bounded ring-buffer tracer with
  typed span/instant events, plus the zero-overhead null tracer that
  is the default everywhere.
* :mod:`repro.telemetry.metrics` — counters, gauges, and fixed-bucket
  histograms behind a :class:`MetricsRegistry`.
* :mod:`repro.telemetry.profiler` — scoped host wall-time timers for
  the hot numpy paths (correlator, energy differentiator, DDC/DUC).
* :mod:`repro.telemetry.exporters` — JSONL, Chrome trace-event format
  (loadable in Perfetto / chrome://tracing), and a text summary.
* :mod:`repro.telemetry.budget` — the Fig. 5 checker: measured trace
  latencies compared against :func:`repro.core.timeline.timeline_for`.

Telemetry is **opt-in**.  Construct a :class:`Telemetry` bundle and
hand it to :class:`repro.core.jammer.ReactiveJammer` (or attach it to
a device/driver pair yourself); without one, every probe point sees
the null tracer and the hot path pays only a truthiness check per
chunk, never per sample.
"""

from __future__ import annotations

from repro.telemetry.exporters import (
    chrome_trace_events,
    events_to_jsonl,
    text_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.profiler import HostProfiler
from repro.telemetry.session import Telemetry
from repro.telemetry.timebase import Stamp, Timebase
from repro.telemetry.tracer import (
    NULL_TRACER,
    InstantEvent,
    NullTracer,
    RingTracer,
    SpanEvent,
    Tracer,
)

# The budget checker imports repro.core.timeline (and through it the
# hardware model), while the hardware model imports the tracer from
# this package — so the budget names resolve lazily (PEP 562) to keep
# `repro.hw` importable without a cycle.
_LAZY_BUDGET_NAMES = ("BudgetCheck", "BudgetReport", "LatencyBudget")


def __getattr__(name: str):
    if name in _LAZY_BUDGET_NAMES:
        from repro.telemetry import budget

        return getattr(budget, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BudgetCheck",
    "BudgetReport",
    "LatencyBudget",
    "chrome_trace_events",
    "events_to_jsonl",
    "text_summary",
    "write_chrome_trace",
    "write_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "HostProfiler",
    "Telemetry",
    "Stamp",
    "Timebase",
    "NULL_TRACER",
    "InstantEvent",
    "NullTracer",
    "RingTracer",
    "SpanEvent",
    "Tracer",
]
