"""Exception hierarchy for the reactive jamming framework.

All library errors derive from :class:`ReproError` so applications can
catch framework failures with a single ``except`` clause while still
letting programming errors (``TypeError``, ``ValueError`` from NumPy,
etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or out-of-range values."""


class RegisterError(ConfigurationError):
    """An invalid access on the user register bus (bad address or width)."""


class StreamError(ReproError):
    """A streaming data-path violation (wrong dtype, shape, or sample rate)."""


class DecodeError(ReproError):
    """A PHY receiver failed to decode a frame (sync loss, bad CRC...)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class HardwareError(ReproError):
    """The modelled hardware was driven outside its legal operating range."""


class RegisterWriteError(HardwareError):
    """A verified register write could not be confirmed after retries.

    Raised by the hardened driver when readback keeps disagreeing with
    the intended value (or the core keeps rejecting the word) after the
    configured retry budget is exhausted — the control plane itself is
    failing, not the caller.
    """
