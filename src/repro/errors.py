"""Exception hierarchy for the reactive jamming framework.

All library errors derive from :class:`ReproError` so applications can
catch framework failures with a single ``except`` clause while still
letting programming errors (``TypeError``, ``ValueError`` from NumPy,
etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or out-of-range values."""


class RegisterError(ConfigurationError):
    """An invalid access on the user register bus (bad address or width)."""


class StreamError(ReproError):
    """A streaming data-path violation (wrong dtype, shape, or sample rate)."""


class DecodeError(ReproError):
    """A PHY receiver failed to decode a frame (sync loss, bad CRC...)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class HardwareError(ReproError):
    """The modelled hardware was driven outside its legal operating range."""


class RegisterWriteError(HardwareError):
    """A verified register write could not be confirmed after retries.

    Raised by the hardened driver when readback keeps disagreeing with
    the intended value (or the core keeps rejecting the word) after the
    configured retry budget is exhausted — the control plane itself is
    failing, not the caller.
    """


class WorkerCrashError(ReproError):
    """A sweep worker process died while trials were in flight.

    Wraps the raw ``concurrent.futures.process.BrokenProcessPool``
    (kept as ``__cause__``) with the context the pool error lacks:
    which flattened trial indices were being executed when the worker
    vanished.  The job layer uses the same type when a shard exhausts
    its retry budget and quarantine is not permitted.

    Attributes:
        trial_indices: Flattened ``points x trials`` grid indices that
            were in flight (or unrecoverable) when the crash surfaced.
    """

    def __init__(self, message: str,
                 trial_indices: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.trial_indices = tuple(int(i) for i in trial_indices)


class CheckpointError(ReproError):
    """A sweep checkpoint journal could not be created or written.

    Unreadable or corrupted *entries* inside an existing journal are
    tolerated (skipped and recomputed); this error is reserved for the
    journal file itself being unwritable — the durability contract of
    a resumable sweep cannot be met.
    """
