"""Linear-feedback shift registers and PN sequences.

Used by three standards-facing components:

* the 802.11 data scrambler (7-bit LFSR, x^7 + x^4 + 1),
* the 802.16e preamble PN sequences (one 284-value sequence per
  preamble carrier set),
* pseudorandom payload generation in the experiments.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import ConfigurationError


class Lfsr:
    """A Fibonacci linear-feedback shift register over GF(2).

    Taps are given as bit positions (1-based, as in polynomial
    exponents).  For example the 802.11 scrambler polynomial
    ``x^7 + x^4 + 1`` uses ``taps=(7, 4)`` with a 7-bit state.

    The register shifts once per emitted bit; the output bit is the XOR
    of the tapped positions (which is also fed back as the new LSB).
    """

    def __init__(self, taps: Iterable[int], state: int, n_bits: int) -> None:
        self._taps = tuple(sorted(set(int(t) for t in taps), reverse=True))
        if not self._taps:
            raise ConfigurationError("an LFSR needs at least one tap")
        if n_bits < 1:
            raise ConfigurationError("n_bits must be >= 1")
        if max(self._taps) > n_bits or min(self._taps) < 1:
            raise ConfigurationError(
                f"taps {self._taps} out of range for a {n_bits}-bit register"
            )
        if not 0 <= state < (1 << n_bits):
            raise ConfigurationError(f"state {state:#x} too wide for {n_bits} bits")
        if state == 0:
            raise ConfigurationError("the all-zero LFSR state is degenerate")
        self._n_bits = n_bits
        self._state = state

    @property
    def state(self) -> int:
        """Current register contents as an integer."""
        return self._state

    def step(self) -> int:
        """Advance one shift and return the emitted bit (0 or 1)."""
        out = 0
        for tap in self._taps:
            out ^= (self._state >> (tap - 1)) & 1
        self._state = ((self._state << 1) | out) & ((1 << self._n_bits) - 1)
        return out

    def bits(self, count: int) -> np.ndarray:
        """Emit ``count`` bits as a ``uint8`` array."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return np.array([self.step() for _ in range(count)], dtype=np.uint8)

    def period(self) -> int:
        """Length of the cycle starting from the current state.

        A maximal-length n-bit LFSR returns ``2**n - 1``.  This walks
        the register, so it is intended for test use on small registers.
        """
        start = self._state
        count = 0
        while True:
            self.step()
            count += 1
            if self._state == start:
                return count


def pn_sequence(length: int, seed: int, taps: Iterable[int] = (11, 9), n_bits: int = 11) -> np.ndarray:
    """Generate a +-1 PN sequence of ``length`` values.

    The default taps implement the maximal-length polynomial
    ``x^11 + x^9 + 1`` (period 2047), long enough to cover the 284-value
    WiMAX preamble modulation sequences without repetition.
    """
    lfsr = Lfsr(taps=taps, state=seed, n_bits=n_bits)
    bits = lfsr.bits(length)
    return (1 - 2 * bits.astype(np.int8)).astype(np.int8)


def random_bits(count: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random bits as ``uint8``, for payload generation."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return rng.integers(0, 2, size=count, dtype=np.uint8)
