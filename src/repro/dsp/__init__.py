"""Signal-processing primitives shared by the hardware model and PHYs.

This subpackage provides the numeric substrate that the rest of the
framework builds on:

* :mod:`repro.dsp.fixed_point` — Q-format quantization matching the
  16-bit I/Q data path of the USRP N210.
* :mod:`repro.dsp.filters` — FIR design and streaming filtering used by
  the DDC/DUC models.
* :mod:`repro.dsp.resample` — rational resampling; the 20 ↔ 25 MSPS
  mismatch between 802.11g and the USRP data path is central to the
  paper's detection results.
* :mod:`repro.dsp.ofdm` — a generic OFDM modulator/demodulator engine
  parameterized by FFT size, cyclic prefix, and subcarrier maps.
* :mod:`repro.dsp.sequences` — LFSR/PN sequence generators used by the
  WiMAX preamble and the scramblers.
* :mod:`repro.dsp.measure` — power, SNR, and correlation measurements.
"""

from __future__ import annotations

from repro.dsp.fixed_point import FixedPointFormat, quantize
from repro.dsp.filters import FirFilter, design_lowpass
from repro.dsp.resample import RationalResampler, resample
from repro.dsp.ofdm import OfdmParameters, ofdm_modulate, ofdm_demodulate
from repro.dsp.sequences import Lfsr, pn_sequence
from repro.dsp.measure import (
    estimate_snr_db,
    normalized_cross_correlation,
    papr_db,
    sliding_energy,
)

__all__ = [
    "FixedPointFormat",
    "quantize",
    "FirFilter",
    "design_lowpass",
    "RationalResampler",
    "resample",
    "OfdmParameters",
    "ofdm_modulate",
    "ofdm_demodulate",
    "Lfsr",
    "pn_sequence",
    "estimate_snr_db",
    "normalized_cross_correlation",
    "papr_db",
    "sliding_energy",
]
