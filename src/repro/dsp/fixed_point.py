"""Fixed-point quantization matching the FPGA data path.

The USRP N210 carries baseband I/Q as 16-bit signed integers.  The
paper's cross-correlator further reduces each sample to its sign bit and
stores coefficients as 3-bit signed values.  This module provides a
small Q-format abstraction so every block states its word width
explicitly instead of sprinkling ``np.clip`` calls around.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point format with ``total_bits`` including sign.

    ``fractional_bits`` positions the binary point: a float ``x`` is
    represented as the integer ``round(x * 2**fractional_bits)``,
    saturated to the representable range.

    Attributes:
        total_bits: Total word width, including the sign bit.
        fractional_bits: Number of fractional bits (may be 0).
    """

    total_bits: int
    fractional_bits: int = 0

    def __post_init__(self) -> None:
        if self.total_bits < 1:
            raise ConfigurationError("total_bits must be >= 1")
        if self.fractional_bits < 0:
            raise ConfigurationError("fractional_bits must be >= 0")
        if self.fractional_bits >= self.total_bits:
            raise ConfigurationError(
                "fractional_bits must leave at least the sign bit: "
                f"got {self.fractional_bits} of {self.total_bits}"
            )

    @property
    def max_int(self) -> int:
        """Largest representable integer value."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_int(self) -> int:
        """Smallest (most negative) representable integer value."""
        return -(1 << (self.total_bits - 1))

    @property
    def scale(self) -> int:
        """Integer units per 1.0 of real value."""
        return 1 << self.fractional_bits

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_int / self.scale

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_int / self.scale

    def to_int(self, values: np.ndarray) -> np.ndarray:
        """Quantize real ``values`` to integers with saturation."""
        scaled = np.round(np.asarray(values, dtype=np.float64) * self.scale)
        return np.clip(scaled, self.min_int, self.max_int).astype(np.int64)

    def to_float(self, ints: np.ndarray) -> np.ndarray:
        """Convert stored integers back to real values."""
        return np.asarray(ints, dtype=np.float64) / self.scale


#: The N210 RX/TX sample format: 16-bit signed, full-scale at +-1.0.
IQ16 = FixedPointFormat(total_bits=16, fractional_bits=15)

#: The cross-correlator coefficient format from the WARP reference core.
COEFF3 = FixedPointFormat(total_bits=3, fractional_bits=0)


def quantize(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Round-trip ``values`` through ``fmt`` (quantize, then re-scale).

    Complex inputs are quantized component-wise, mirroring independent
    I and Q hardware paths.
    """
    values = np.asarray(values)
    if np.iscomplexobj(values):
        real = fmt.to_float(fmt.to_int(values.real))
        imag = fmt.to_float(fmt.to_int(values.imag))
        return real + 1j * imag
    return fmt.to_float(fmt.to_int(values))


def quantize_iq16(values: np.ndarray) -> np.ndarray:
    """Quantize complex baseband to the N210's 16-bit I/Q format."""
    return quantize(values, IQ16)


def sign_bits(values: np.ndarray) -> np.ndarray:
    """Extract the sign bit of each real value as +-1 integers.

    The hardware slices the MSB of each 16-bit sample; a cleared MSB
    (value >= 0) maps to +1 and a set MSB (value < 0) maps to -1.  Zero
    therefore maps to +1, exactly as two's-complement hardware behaves.
    """
    values = np.asarray(values)
    if np.iscomplexobj(values):
        raise TypeError("sign_bits takes real input; use sign_bits_iq for complex")
    return np.where(values < 0, -1, 1).astype(np.int8)


def sign_bits_iq(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sign bits of I and Q components as two +-1 ``int8`` arrays."""
    values = np.asarray(values)
    i = np.where(np.real(values) < 0, -1, 1).astype(np.int8)
    q = np.where(np.imag(values) < 0, -1, 1).astype(np.int8)
    return i, q
