"""Signal measurement utilities: power, SNR, PAPR, correlation.

These are host-side (floating-point) reference measurements.  The
hardware blocks in :mod:`repro.hw` implement their own fixed-point
versions; tests compare the two.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.errors import StreamError
from repro.kernels.ops import convolve


def sliding_energy(samples: np.ndarray, window: int) -> np.ndarray:
    """Causal sliding-window energy of a complex signal.

    ``out[n]`` is the sum of ``|x|^2`` over the most recent ``window``
    samples ending at ``n`` (fewer at the start-up edge).
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    energy = np.abs(np.asarray(samples, dtype=np.complex128)) ** 2
    csum = np.cumsum(energy)
    out = csum.copy()
    out[window:] = csum[window:] - csum[:-window]
    return out


def estimate_snr_db(received: np.ndarray, noise_only: np.ndarray) -> float:
    """Estimate SNR from a received segment and a noise-only segment.

    The experiments measure SNR independently, as the paper does with a
    wired link: signal+noise power from the active segment, noise power
    from a quiet segment.
    """
    total = units.signal_power(received)
    noise = units.signal_power(noise_only)
    if noise <= 0:
        raise StreamError("noise-only segment has zero power; cannot estimate SNR")
    signal = max(total - noise, 0.0)
    if signal == 0.0:
        return float("-inf")
    return units.linear_to_db(signal / noise)


def papr_db(samples: np.ndarray) -> float:
    """Peak-to-average power ratio of a waveform, in dB."""
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.size == 0:
        raise StreamError("cannot compute PAPR of an empty signal")
    power = np.abs(samples) ** 2
    mean = float(np.mean(power))
    if mean == 0.0:
        raise StreamError("cannot compute PAPR of an all-zero signal")
    return units.linear_to_db(float(np.max(power)) / mean)


def normalized_cross_correlation(signal: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Sliding normalized cross-correlation magnitude in [0, 1].

    ``out[n]`` correlates ``template`` against the signal window ending
    at sample ``n`` (causal alignment, matching the hardware correlator
    whose output peaks when the last template sample arrives).  Windows
    with zero energy yield 0.
    """
    signal = np.asarray(signal, dtype=np.complex128)
    template = np.asarray(template, dtype=np.complex128)
    if template.size == 0 or signal.size < template.size:
        raise StreamError("signal must be at least as long as the template")
    t_norm = np.linalg.norm(template)
    if t_norm == 0:
        raise StreamError("template has zero energy")
    # Correlate: sum over template of conj(template) * signal window.
    corr = convolve(signal, np.conj(template[::-1]), mode="full")
    corr = corr[template.size - 1: signal.size]
    window_energy = sliding_energy(signal, template.size)[template.size - 1:]
    norms = np.sqrt(window_energy) * t_norm
    out = np.zeros_like(norms)
    nonzero = norms > 0
    out[nonzero] = np.abs(corr[nonzero]) / norms[nonzero]
    result = np.zeros(signal.size, dtype=np.float64)
    result[template.size - 1:] = np.clip(out, 0.0, 1.0)
    return result


def frequency_offset_estimate(samples: np.ndarray, repeat_length: int,
                              sample_rate: float) -> float:
    """Estimate CFO from a periodic training sequence (Moose estimator).

    Correlates the signal with itself delayed by one repetition; the
    phase of the correlation gives the frequency offset.  Used by the
    WiFi receiver on the short preamble.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.size < 2 * repeat_length:
        raise StreamError("need at least two repetitions to estimate CFO")
    a = samples[:-repeat_length]
    b = samples[repeat_length:]
    acc = np.vdot(a, b)
    if acc == 0:
        return 0.0
    phase = np.angle(acc)
    return float(phase * sample_rate / (2.0 * np.pi * repeat_length))
