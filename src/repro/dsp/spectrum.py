"""Spectral measurements: PSD, occupied bandwidth, band power.

Used to verify the framework's RF-domain claims: the jamming WGN
preset covers the full 25 MHz data-path bandwidth (paper §2.4's
"pseudorandom 25 MHz White Gaussian Noise signal"), OFDM waveforms
occupy their standard's subcarrier span, and the TDD gaps are silent.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, StreamError


def welch_psd(samples: np.ndarray, sample_rate: float,
              segment: int = 256) -> tuple[np.ndarray, np.ndarray]:
    """Welch power spectral density of complex baseband.

    Returns ``(freqs, psd)`` with frequencies spanning
    [-rate/2, rate/2) and PSD in power per Hz, ordered by frequency.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if sample_rate <= 0:
        raise ConfigurationError("sample_rate must be positive")
    if segment < 8:
        raise ConfigurationError("segment must be >= 8")
    if samples.size < segment:
        raise StreamError(
            f"need at least {segment} samples for a {segment}-point segment"
        )
    window = np.hanning(segment)
    scale = sample_rate * np.sum(window ** 2)
    n_segments = samples.size // segment
    acc = np.zeros(segment, dtype=np.float64)
    for k in range(n_segments):
        chunk = samples[k * segment:(k + 1) * segment] * window
        acc += np.abs(np.fft.fft(chunk)) ** 2
    psd = acc / (n_segments * scale)
    freqs = np.fft.fftfreq(segment, d=1.0 / sample_rate)
    order = np.argsort(freqs)
    return freqs[order], psd[order]


def occupied_bandwidth(samples: np.ndarray, sample_rate: float,
                       fraction: float = 0.99,
                       segment: int = 256) -> float:
    """The bandwidth containing ``fraction`` of total power (Hz).

    Computed symmetrically outward from the strongest bin, the usual
    x-dB/occupied-bandwidth style measurement.
    """
    if not 0.0 < fraction < 1.0:
        raise ConfigurationError("fraction must be in (0, 1)")
    freqs, psd = welch_psd(samples, sample_rate, segment)
    total = float(np.sum(psd))
    if total <= 0:
        raise StreamError("signal has no power")
    order = np.argsort(psd)[::-1]
    cumulative = np.cumsum(psd[order])
    needed = int(np.searchsorted(cumulative, fraction * total)) + 1
    occupied_bins = order[:needed]
    bin_width = sample_rate / psd.size
    return occupied_bins.size * bin_width


def band_power(samples: np.ndarray, sample_rate: float,
               f_low: float, f_high: float,
               segment: int = 256) -> float:
    """Total power within [f_low, f_high] (Hz, baseband-relative)."""
    if f_low >= f_high:
        raise ConfigurationError("f_low must be below f_high")
    freqs, psd = welch_psd(samples, sample_rate, segment)
    mask = (freqs >= f_low) & (freqs <= f_high)
    bin_width = sample_rate / psd.size
    return float(np.sum(psd[mask]) * bin_width)


def spectral_flatness_db(samples: np.ndarray, sample_rate: float,
                         segment: int = 256) -> float:
    """Peak-to-mean PSD ratio in dB (0 dB = perfectly flat).

    White noise measures within a few dB of flat; structured signals
    (OFDM with guard bands, spread spectrum) measure much higher.
    """
    _freqs, psd = welch_psd(samples, sample_rate, segment)
    mean = float(np.mean(psd))
    peak = float(np.max(psd))
    if mean <= 0:
        raise StreamError("signal has no power")
    return 10.0 * np.log10(peak / mean)
