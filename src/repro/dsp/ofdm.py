"""Generic OFDM modulation engine.

Both PHYs in the paper are OFDM-based: 802.11g uses a 64-point FFT at
20 MSPS and 802.16e OFDMA uses a 1024-point FFT at 11.4 MHz.  This
module implements the shared mechanics — subcarrier mapping, IFFT,
cyclic prefix — parameterized by an :class:`OfdmParameters` record, so
each standard's module only describes *which* subcarriers carry what.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, StreamError


@dataclass(frozen=True)
class OfdmParameters:
    """Static numerology of an OFDM system.

    Attributes:
        fft_size: Number of subcarriers in the (I)FFT.
        cp_length: Cyclic-prefix length in samples (0 allowed).
        sample_rate: Baseband sampling rate in Hz.
    """

    fft_size: int
    cp_length: int
    sample_rate: float

    def __post_init__(self) -> None:
        if self.fft_size < 2 or self.fft_size & (self.fft_size - 1):
            raise ConfigurationError(f"fft_size {self.fft_size} must be a power of two")
        if self.cp_length < 0 or self.cp_length >= self.fft_size:
            raise ConfigurationError("cp_length must be in [0, fft_size)")
        if self.sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")

    @property
    def symbol_length(self) -> int:
        """Total time-domain samples per OFDM symbol including CP."""
        return self.fft_size + self.cp_length

    @property
    def symbol_duration(self) -> float:
        """OFDM symbol duration in seconds including CP."""
        return self.symbol_length / self.sample_rate

    @property
    def subcarrier_spacing(self) -> float:
        """Subcarrier spacing in Hz."""
        return self.sample_rate / self.fft_size


def subcarriers_to_fft_bins(subcarriers: np.ndarray, fft_size: int) -> np.ndarray:
    """Map logical subcarrier indices (negative = below DC) to FFT bins.

    Subcarrier ``k`` in [-fft_size/2, fft_size/2) maps to FFT bin
    ``k mod fft_size``.
    """
    subcarriers = np.asarray(subcarriers, dtype=np.int64)
    half = fft_size // 2
    if np.any(subcarriers < -half) or np.any(subcarriers >= half):
        raise ConfigurationError("subcarrier index out of range for FFT size")
    return np.mod(subcarriers, fft_size)


def ofdm_modulate(params: OfdmParameters, subcarriers: np.ndarray,
                  values: np.ndarray) -> np.ndarray:
    """Build one time-domain OFDM symbol (CP prepended).

    Args:
        params: OFDM numerology.
        subcarriers: Logical subcarrier indices carrying ``values``.
        values: Complex constellation points, same length as
            ``subcarriers``; all other subcarriers are nulled.

    Returns:
        Complex time-domain samples of length ``params.symbol_length``.
        The IFFT is scaled by ``fft_size / sqrt(n_active)`` so the mean
        symbol power is ~1.0 regardless of how many carriers are active.
    """
    subcarriers = np.asarray(subcarriers)
    values = np.asarray(values, dtype=np.complex128)
    if subcarriers.shape != values.shape:
        raise StreamError("subcarriers and values must have matching shapes")
    if subcarriers.size == 0:
        raise StreamError("cannot modulate an OFDM symbol with no active carriers")
    bins = subcarriers_to_fft_bins(subcarriers, params.fft_size)
    if np.unique(bins).size != bins.size:
        raise StreamError("duplicate subcarrier assignment")
    freq = np.zeros(params.fft_size, dtype=np.complex128)
    freq[bins] = values
    time = np.fft.ifft(freq) * (params.fft_size / np.sqrt(subcarriers.size))
    if params.cp_length:
        time = np.concatenate([time[-params.cp_length:], time])
    return time


def ofdm_demodulate(params: OfdmParameters, symbol: np.ndarray,
                    subcarriers: np.ndarray) -> np.ndarray:
    """Recover constellation points from one time-domain OFDM symbol.

    ``symbol`` must contain exactly ``params.symbol_length`` samples
    (CP included); the CP is discarded before the FFT.  The scaling is
    the inverse of :func:`ofdm_modulate` so a clean round trip returns
    the original values.
    """
    symbol = np.asarray(symbol, dtype=np.complex128)
    if symbol.size != params.symbol_length:
        raise StreamError(
            f"expected {params.symbol_length} samples, got {symbol.size}"
        )
    subcarriers = np.asarray(subcarriers)
    core = symbol[params.cp_length:]
    freq = np.fft.fft(core) * (np.sqrt(subcarriers.size) / params.fft_size)
    bins = subcarriers_to_fft_bins(subcarriers, params.fft_size)
    return freq[bins]


def ofdm_symbol_stream(params: OfdmParameters, subcarriers: np.ndarray,
                       value_rows: np.ndarray) -> np.ndarray:
    """Concatenate multiple OFDM symbols into a contiguous waveform.

    ``value_rows`` is shaped ``(n_symbols, n_active)``; each row becomes
    one symbol.
    """
    value_rows = np.asarray(value_rows, dtype=np.complex128)
    if value_rows.ndim != 2:
        raise StreamError("value_rows must be 2-D (symbols x carriers)")
    chunks = [ofdm_modulate(params, subcarriers, row) for row in value_rows]
    if not chunks:
        return np.zeros(0, dtype=np.complex128)
    return np.concatenate(chunks)
