"""FIR filter design and streaming filtering.

The DDC/DUC models need anti-alias low-pass filters, and the streaming
blocks need a filter object that preserves state across chunk
boundaries so a signal split into chunks produces bit-identical output
to the same signal filtered in one call.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.errors import ConfigurationError, StreamError


def design_lowpass(cutoff: float, sample_rate: float, num_taps: int = 63,
                   window: str = "hamming") -> np.ndarray:
    """Design a linear-phase FIR low-pass filter.

    Args:
        cutoff: Passband edge in Hz (must be below Nyquist).
        sample_rate: Sampling rate in Hz.
        num_taps: Filter length (odd lengths give integer group delay).
        window: Window function name accepted by scipy.

    Returns:
        Real-valued filter taps normalized to unit DC gain.
    """
    if not 0 < cutoff < sample_rate / 2:
        raise ConfigurationError(
            f"cutoff {cutoff} Hz must lie in (0, {sample_rate / 2}) Hz"
        )
    if num_taps < 1:
        raise ConfigurationError("num_taps must be >= 1")
    taps = sp_signal.firwin(num_taps, cutoff, fs=sample_rate, window=window)
    return taps / np.sum(taps)


class FirFilter:
    """A streaming FIR filter with persistent state.

    Feeding a long signal in arbitrary chunk sizes yields exactly the
    same output as a single call on the concatenated signal, which the
    hardware model relies on when processing sample streams.
    """

    def __init__(self, taps: np.ndarray) -> None:
        taps = np.asarray(taps, dtype=np.float64)
        if taps.ndim != 1 or taps.size == 0:
            raise ConfigurationError("taps must be a non-empty 1-D array")
        self._taps = taps
        self._state = np.zeros(taps.size - 1, dtype=np.complex128)

    @property
    def taps(self) -> np.ndarray:
        """The filter taps (read-only copy)."""
        return self._taps.copy()

    @property
    def group_delay_samples(self) -> float:
        """Group delay of the linear-phase filter in samples."""
        return (self._taps.size - 1) / 2.0

    def reset(self) -> None:
        """Clear the internal delay line."""
        self._state[:] = 0.0

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Filter one chunk, carrying state across calls."""
        samples = np.asarray(samples)
        if samples.ndim != 1:
            raise StreamError("FirFilter.process expects a 1-D sample chunk")
        if samples.size == 0:
            return np.zeros(0, dtype=np.complex128)
        if self._taps.size == 1:
            return samples.astype(np.complex128) * self._taps[0]
        out, self._state = sp_signal.lfilter(
            self._taps, [1.0], samples.astype(np.complex128), zi=self._state
        )
        return out


def moving_sum(values: np.ndarray, window: int) -> np.ndarray:
    """Causal moving sum: ``out[n] = sum(values[max(0, n-window+1) : n+1])``.

    This is the software-reference implementation of the energy
    differentiator's running sum, used in tests to validate the
    streaming hardware block.
    """
    if window < 1:
        raise ConfigurationError("window must be >= 1")
    values = np.asarray(values, dtype=np.float64)
    csum = np.cumsum(values)
    out = csum.copy()
    out[window:] = csum[window:] - csum[:-window]
    return out
