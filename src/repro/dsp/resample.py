"""Rational resampling between device sampling rates.

The paper's central detection impairment is a sampling-rate mismatch:
802.11g waveforms are defined at 20 MSPS while the USRP's DDC delivers
25 MSPS to the custom core, so a 64-sample correlation template spans
only the first 2.56 us of the 3.2 us long-preamble code.  The channel
model uses this module to convert every transmitter's native rate to
the jammer's 25 MSPS input rate (and 11.4 MHz for WiMAX sources).
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
from scipy import signal as sp_signal

from repro.errors import ConfigurationError


def rate_ratio(rate_in: float, rate_out: float, max_denominator: int = 1000) -> Fraction:
    """The rational up/down factor converting ``rate_in`` to ``rate_out``.

    Raises :class:`ConfigurationError` if the ratio cannot be expressed
    with a denominator small enough for a practical polyphase filter.
    """
    if rate_in <= 0 or rate_out <= 0:
        raise ConfigurationError("sample rates must be positive")
    ratio = Fraction(rate_out / rate_in).limit_denominator(max_denominator)
    if ratio <= 0:
        raise ConfigurationError("degenerate resampling ratio")
    actual = rate_in * float(ratio)
    if not math.isclose(actual, rate_out, rel_tol=1e-6):
        raise ConfigurationError(
            f"rate ratio {rate_out}/{rate_in} is not rational within "
            f"denominator {max_denominator}"
        )
    return ratio


class RationalResampler:
    """Polyphase rational resampler by ``up``/``down``.

    This mirrors the behaviour of a hardware interpolate-filter-decimate
    chain; the anti-alias filter is designed for the tighter of the two
    Nyquist constraints.
    """

    def __init__(self, up: int, down: int) -> None:
        if up < 1 or down < 1:
            raise ConfigurationError("up and down factors must be >= 1")
        g = math.gcd(up, down)
        self._up = up // g
        self._down = down // g

    @property
    def up(self) -> int:
        """Interpolation factor after reduction."""
        return self._up

    @property
    def down(self) -> int:
        """Decimation factor after reduction."""
        return self._down

    def output_length(self, input_length: int) -> int:
        """Number of output samples produced for ``input_length`` inputs."""
        return int(np.ceil(input_length * self._up / self._down))

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Resample one complete signal."""
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.size == 0:
            return samples.copy()
        if self._up == 1 and self._down == 1:
            return samples.copy()
        return sp_signal.resample_poly(samples, self._up, self._down)


def resample(samples: np.ndarray, rate_in: float, rate_out: float) -> np.ndarray:
    """Resample ``samples`` from ``rate_in`` to ``rate_out`` Hz.

    Convenience wrapper that derives the rational factors; identical
    rates return a copy untouched.
    """
    if math.isclose(rate_in, rate_out, rel_tol=1e-12):
        return np.asarray(samples, dtype=np.complex128).copy()
    ratio = rate_ratio(rate_in, rate_out)
    return RationalResampler(ratio.numerator, ratio.denominator).process(samples)
