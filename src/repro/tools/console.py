"""The jammer control console (paper §2.5).

"We implement a Python-based custom GUI to configure our jammer
operations on the fly ... This GUI acts as a reactive jamming event
builder, where users can specifically control detection types and
desired jamming reactions during run time.  The user inputs are passed
directly to the UHD driver stack."

This is the headless equivalent: a command interpreter whose every
command translates to the same UHD register writes.  Run it
interactively with ``python -m repro.tools.console``, or drive it
programmatically (the tests do)::

    console = JammerConsole()
    console.execute("template wifi-short")
    console.execute("threshold 25000")
    console.execute("trigger xcorr")
    console.execute("uptime 1e-4")
    console.execute("demo wifi")

Type ``help`` inside the console for the command list.
"""

from __future__ import annotations

import shlex
from collections.abc import Callable

import numpy as np

from repro import units
from repro.core.coeffs import (
    dsss_preamble_template,
    wifi_long_preamble_template,
    wifi_short_preamble_template,
    wimax_preamble_template,
    zigbee_preamble_template,
)
from repro.core.timeline import timeline_for
from repro.errors import ReproError
from repro.hw.trigger import TriggerMode, TriggerSource
from repro.hw.tx_controller import JamWaveform
from repro.hw.uhd import UhdDriver
from repro.hw.usrp import UsrpN210
from repro.telemetry import Telemetry

_TEMPLATES: dict[str, Callable[[], np.ndarray]] = {
    "wifi-short": wifi_short_preamble_template,
    "wifi-long": wifi_long_preamble_template,
    "wimax": wimax_preamble_template,
    "zigbee": zigbee_preamble_template,
    "dsss": dsss_preamble_template,
}

_SOURCES = {
    "xcorr": TriggerSource.XCORR,
    "energy-rise": TriggerSource.ENERGY_HIGH,
    "energy-fall": TriggerSource.ENERGY_LOW,
}

_WAVEFORMS = {
    "wgn": JamWaveform.WGN,
    "replay": JamWaveform.REPLAY,
    "host": JamWaveform.HOST_STREAM,
}

_HELP = """\
commands:
  template <wifi-short|wifi-long|wimax|zigbee|dsss>   load a correlator template
  threshold <int>                                     correlation threshold
  fa <rate_per_second>                                threshold from an FA budget
  energy <high_db> <low_db>                           energy thresholds (3..30)
  trigger <src> [<src> [<src>]] [window <samples>] [mode any|seq]
                                                      program the event FSM
  waveform <wgn|replay|host>                          jam waveform preset
  uptime <seconds>      delay <seconds>               burst timing
  enable <on|off>       continuous <on|off>           control flags
  tune <hz>             txgain <db>   rxgain <db>     RF front end
  impairments <off|typical|dirty>                     analog front-end dirt
  status                current configuration + counters
  stats                 telemetry trace + metrics digest
  trace <file>          export the trace as Chrome trace-event JSON
  timeline              the Fig. 5 latency budget
  registers             register writes so far
  save <file>           snapshot the configuration to a JSON profile
  load <file>           program the device from a JSON profile
  demo <wifi|wimax|zigbee>                            run a canned capture
  sweep run [--workers=N] [--resume=PATH] [--max-retries=N]
            [--shard-deadline=S]                      quick detection sweep
                                                      on the job layer
  sweep status          health of the last sweep (retries, crashes,
                        quarantines, checkpoint hits)
  defense roc [--p=P] [--scenario=reactive|constant] [--trials=N]
              [--seed=N]                              detector ROC under
                                                      one jam policy
  defense tournament [--policies=1,0.5,0.1] [--trials=N] [--workers=N]
              [--seed=N] [--scenario=reactive|constant]
                                                      policy x detector
                                                      grid (AUC vs
                                                      efficiency)
  help                  this text
  quit                  leave the console"""


class JammerConsole:
    """A scriptable front panel over one USRP + custom core."""

    def __init__(self, device: UsrpN210 | None = None,
                 telemetry: Telemetry | None = None) -> None:
        self.device = device if device is not None else UsrpN210()
        self.driver = UhdDriver(self.device)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.telemetry.attach(self.device, self.driver)
        self._template_name: str | None = None
        self._trigger_desc = "(not programmed)"
        self.done = False

    # ------------------------------------------------------------------

    def execute(self, line: str) -> str:
        """Run one command line; returns the console's reply text."""
        try:
            words = shlex.split(line)
        except ValueError as exc:
            return f"error: {exc}"
        if not words:
            return ""
        command, *args = words
        handler = getattr(self, f"_cmd_{command.replace('-', '_')}", None)
        if handler is None:
            return f"error: unknown command {command!r} (try 'help')"
        try:
            return handler(args)
        except (ReproError, ValueError, IndexError) as exc:
            return f"error: {exc}"

    # ------------------------------------------------------------------
    # Commands

    def _cmd_help(self, _args: list[str]) -> str:
        return _HELP

    def _cmd_quit(self, _args: list[str]) -> str:
        self.done = True
        return "bye"

    def _cmd_template(self, args: list[str]) -> str:
        name = args[0]
        factory = _TEMPLATES.get(name)
        if factory is None:
            return f"error: unknown template {name!r} " \
                   f"(have: {', '.join(sorted(_TEMPLATES))})"
        self.driver.set_correlator_template(factory())
        self._template_name = name
        return f"correlator template: {name}"

    def _cmd_threshold(self, args: list[str]) -> str:
        value = int(args[0])
        self.driver.set_xcorr_threshold(value)
        return f"xcorr threshold: {value}"

    def _cmd_fa(self, args: list[str]) -> str:
        """Set the correlation threshold from a false-alarm budget."""
        from repro.experiments.detection import threshold_for_false_alarm_rate

        rate = float(args[0])
        coeffs_i, coeffs_q = self.device.core.correlator.coefficients
        if not coeffs_i.any() and not coeffs_q.any():
            return "error: load a template before calibrating (see 'template')"
        threshold = threshold_for_false_alarm_rate(coeffs_i, coeffs_q, rate)
        self.driver.set_xcorr_threshold(threshold)
        return (f"xcorr threshold: {threshold} "
                f"(calibrated for {rate:g} false alarms/s)")

    def _cmd_energy(self, args: list[str]) -> str:
        high, low = float(args[0]), float(args[1])
        self.driver.set_energy_thresholds(high, low)
        return f"energy thresholds: rise {high} dB, fall {low} dB"

    def _cmd_trigger(self, args: list[str]) -> str:
        sources: list[TriggerSource] = []
        window = 0
        mode = TriggerMode.SEQUENCE
        i = 0
        while i < len(args):
            word = args[i]
            if word == "window":
                window = int(args[i + 1])
                i += 2
            elif word == "mode":
                mode = TriggerMode.ANY if args[i + 1] == "any" \
                    else TriggerMode.SEQUENCE
                i += 2
            elif word in _SOURCES:
                sources.append(_SOURCES[word])
                i += 1
            else:
                return f"error: unknown trigger token {word!r}"
        self.driver.set_trigger_stages(sources, window, mode=mode)
        self._trigger_desc = " -> ".join(s.name for s in sources)
        if mode is TriggerMode.ANY:
            self._trigger_desc = " OR ".join(s.name for s in sources)
        return f"trigger: {self._trigger_desc}" + \
            (f" within {window} samples" if window else "")

    def _cmd_waveform(self, args: list[str]) -> str:
        waveform = _WAVEFORMS.get(args[0])
        if waveform is None:
            return f"error: unknown waveform {args[0]!r}"
        self.driver.set_jam_waveform(waveform)
        return f"jam waveform: {args[0]}"

    def _cmd_uptime(self, args: list[str]) -> str:
        seconds = float(args[0])
        self.driver.set_jam_uptime_seconds(seconds)
        return f"jam uptime: {seconds * 1e6:g} us"

    def _cmd_delay(self, args: list[str]) -> str:
        seconds = float(args[0])
        self.driver.set_jam_delay_seconds(seconds)
        return f"jam delay: {seconds * 1e6:g} us"

    def _cmd_enable(self, args: list[str]) -> str:
        on = args[0] == "on"
        self.driver.set_control(jammer_enabled=on,
                                continuous=self.device.core.continuous)
        return f"jammer {'enabled' if on else 'disabled'}"

    def _cmd_continuous(self, args: list[str]) -> str:
        on = args[0] == "on"
        self.driver.set_control(jammer_enabled=True, continuous=on)
        return f"continuous mode {'on' if on else 'off'}"

    def _cmd_tune(self, args: list[str]) -> str:
        freq = float(args[0])
        self.device.frontend.tune(freq)
        return f"tuned to {freq / 1e9:.4f} GHz"

    def _cmd_txgain(self, args: list[str]) -> str:
        self.device.frontend.set_tx_gain(float(args[0]))
        return f"TX gain {args[0]} dB"

    def _cmd_rxgain(self, args: list[str]) -> str:
        self.device.frontend.set_rx_gain(float(args[0]))
        return f"RX gain {args[0]} dB"

    def _cmd_impairments(self, args: list[str]) -> str:
        """Attach an analog front-end impairment profile to the DDC."""
        from repro.hw.impairments import TYPICAL_N210, FrontEndImpairments

        profiles = {
            "off": None,
            "typical": TYPICAL_N210,
            "dirty": FrontEndImpairments(dc_offset=0.08 + 0.06j,
                                         iq_gain_imbalance_db=2.0,
                                         iq_phase_error_deg=15.0,
                                         cfo_hz=30e3),
        }
        name = args[0]
        if name not in profiles:
            return f"error: unknown profile {name!r} (off|typical|dirty)"
        self.device.ddc.impairments = profiles[name]
        return f"front-end impairments: {name}"

    def _cmd_status(self, _args: list[str]) -> str:
        core = self.device.core
        counts = self.driver.detection_counts()
        lines = [
            f"frequency     : {self.device.frontend.center_freq_hz / 1e9:.4f} GHz",
            f"template      : {self._template_name or '(none)'}",
            f"xcorr thresh  : {core.correlator.threshold}",
            f"energy thresh : rise {core.energy.threshold_high_db} dB / "
            f"fall {core.energy.threshold_low_db} dB",
            f"trigger       : {self._trigger_desc}",
            f"waveform      : {core.tx.waveform.name}",
            f"uptime        : "
            f"{units.samples_to_seconds(core.tx.uptime_samples) * 1e6:g} us",
            f"delay         : "
            f"{units.samples_to_seconds(core.tx.delay_samples) * 1e6:g} us",
            f"enabled       : {core.jammer_enabled}  "
            f"continuous: {core.continuous}",
            f"detections    : " + "  ".join(
                f"{s.name}={counts[s]}" for s in counts),
            f"jam bursts    : {self.driver.jam_count()}",
        ]
        return "\n".join(lines)

    def _cmd_stats(self, _args: list[str]) -> str:
        if not self.telemetry.enabled:
            return "telemetry is disabled"
        return self.telemetry.summary()

    def _cmd_trace(self, args: list[str]) -> str:
        if not self.telemetry.enabled:
            return "error: telemetry is disabled"
        path = self.telemetry.write_chrome_trace(args[0])
        count = len(self.telemetry.events())
        return f"trace written to {path} ({count} events)"

    def _cmd_timeline(self, _args: list[str]) -> str:
        budget = timeline_for(energy=self.device.core.energy,
                              tx=self.device.core.tx).as_dict()
        return "\n".join(f"{key:<16}{value * 1e6:8.3f} us"
                         for key, value in budget.items())

    def _cmd_registers(self, _args: list[str]) -> str:
        return f"register writes: {self.driver.register_writes()}"

    def _cmd_save(self, args: list[str]) -> str:
        from repro.core.profiles import save_profile

        save_profile(self.device, args[0])
        return f"profile saved to {args[0]}"

    def _cmd_load(self, args: list[str]) -> str:
        from repro.core.profiles import load_profile

        writes = load_profile(self.device, args[0])
        return f"profile loaded from {args[0]} ({writes} register writes)"

    def _cmd_sweep(self, args: list[str]) -> str:
        """Run/inspect detection sweeps on the fault-tolerant job layer."""
        from repro.runtime.jobs import last_sweep_health

        sub = args[0] if args else "status"
        if sub == "status":
            health = last_sweep_health()
            if health is None:
                return "no sweep has run yet (try 'sweep run')"
            return health.summary()
        if sub != "run":
            return f"error: unknown sweep subcommand {sub!r} (run|status)"

        from repro.experiments.detection import long_preamble_curve
        from repro.experiments.report import resilience_from_args

        opts = args[1:]
        workers = 1
        for opt in opts:
            if opt.startswith("--workers="):
                workers = int(opt.split("=", 1)[1])
        points = long_preamble_curve(
            [-6.0, -3.0, 0.0, 3.0, 6.0], n_frames=40, full_frames=False,
            workers=workers, telemetry=self.telemetry,
            resilience=resilience_from_args(opts))
        curve = "  ".join(f"{p.snr_db:+.0f}dB:{p.detection_probability:.2f}"
                          for p in points)
        health = last_sweep_health()
        reply = f"P(detect)     : {curve}"
        if health is not None:
            reply += "\n" + health.summary()
        return reply

    def _cmd_defense(self, args: list[str]) -> str:
        """Victim-side detection: ROC evaluation and policy tournaments."""
        from repro.defense import (
            ALWAYS_JAM,
            DefenseScenario,
            randomized_policy,
            run_tournament,
        )

        sub = args[0] if args else ""
        if sub not in ("roc", "tournament"):
            return f"error: unknown defense subcommand {sub!r} " \
                   "(roc|tournament)"
        probs = [1.0, 0.5, 0.1] if sub == "tournament" else [1.0]
        trials, seed, workers, kind = 2, 1, 1, "reactive"
        for opt in args[1:]:
            if opt.startswith("--p="):
                probs = [float(opt.split("=", 1)[1])]
            elif opt.startswith("--policies="):
                probs = [float(p) for p in
                         opt.split("=", 1)[1].split(",") if p]
            elif opt.startswith("--trials="):
                trials = int(opt.split("=", 1)[1])
            elif opt.startswith("--seed="):
                seed = int(opt.split("=", 1)[1])
            elif opt.startswith("--workers="):
                workers = int(opt.split("=", 1)[1])
            elif opt.startswith("--scenario="):
                kind = opt.split("=", 1)[1]
            else:
                return f"error: unknown defense option {opt!r}"
        policies = [ALWAYS_JAM if p >= 1.0 else randomized_policy(p)
                    for p in probs]
        result = run_tournament(
            policies=policies, scenario=DefenseScenario(kind=kind),
            n_trials=trials, seed=seed, workers=workers,
            telemetry=self.telemetry if self.telemetry.enabled else None)
        if sub == "tournament":
            return result.table()
        lines = []
        for policy in policies:
            for name in result.detectors:
                curve = result.curves[(policy.name, name)]
                threshold, fpr, tpr = curve.operating_point(0.1)
                lines.append(
                    f"{policy.name:<8}{name:<10}auc={curve.auc:.3f}  "
                    f"op@fpr<=0.1: thr={threshold:.3g} "
                    f"fpr={fpr:.2f} tpr={tpr:.2f}")
        return "\n".join(lines)

    def _cmd_demo(self, args: list[str]) -> str:
        kind = args[0]
        rx = self._demo_capture(kind)
        out = self.device.run(rx)
        return (f"demo {kind}: {len(out.detections)} detections, "
                f"{len(out.jams)} jam bursts over "
                f"{rx.size / units.BASEBAND_RATE * 1e3:.1f} ms")

    def _demo_capture(self, kind: str) -> np.ndarray:
        from repro.channel.combining import Transmission, mix_at_port

        rng = np.random.default_rng(99)
        noise = 1e-4
        power = units.db_to_linear(15.0) * noise
        if kind == "wifi":
            from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
            from repro.phy.wifi.params import WIFI_SAMPLE_RATE

            psdu = rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
            tx = [Transmission(build_ppdu(psdu, WifiFrameConfig()),
                               WIFI_SAMPLE_RATE,
                               100e-6 + k * 500e-6, power) for k in range(4)]
            duration = 2.1e-3
        elif kind == "wimax":
            from repro.phy.wimax.frame import build_downlink_frame
            from repro.phy.wimax.params import WIMAX_SAMPLE_RATE, WimaxConfig

            tx = [Transmission(build_downlink_frame(WimaxConfig(), rng),
                               WIMAX_SAMPLE_RATE, k * 5e-3, power)
                  for k in range(2)]
            duration = 10e-3
        elif kind == "zigbee":
            from repro.phy.zigbee.frame import build_ppdu as zb
            from repro.phy.zigbee.params import ZIGBEE_SAMPLE_RATE

            psdu = rng.integers(0, 256, 30, dtype=np.uint8).tobytes()
            tx = [Transmission(zb(psdu), ZIGBEE_SAMPLE_RATE,
                               100e-6 + k * 1.5e-3, power)
                  for k in range(3)]
            duration = 5e-3
        else:
            raise ValueError(f"unknown demo {kind!r}")
        return mix_at_port(tx, units.BASEBAND_RATE, duration,
                           noise_power=noise, rng=rng)


def main() -> None:
    """The interactive REPL."""
    console = JammerConsole()
    print("reactive jammer console — 'help' for commands")
    while not console.done:
        try:
            line = input("jammer> ")
        except (EOFError, KeyboardInterrupt):
            print()
            break
        reply = console.execute(line)
        if reply:
            print(reply)


if __name__ == "__main__":
    main()
