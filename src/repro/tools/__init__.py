"""Host-side tooling.

:mod:`repro.tools.console` is the equivalent of the paper's §2.5
GNU Radio Companion GUI: "a reactive jamming event builder, where
users can specifically control detection types and desired jamming
reactions during run time".  It drives the same UHD register path the
GUI did, as a scriptable command interpreter plus an interactive REPL
(``python -m repro.tools.console``).
"""

from __future__ import annotations

from repro.tools.console import JammerConsole

__all__ = ["JammerConsole"]
