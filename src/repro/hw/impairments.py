"""Analog front-end impairments of the receive chain.

The paper attributes its reduced correlator performance to "the
dynamic range characteristics of the signal being correlated" and
related front-end behaviour.  A real N210 + SBX receive chain exhibits
three well-documented impairments that matter specifically to a
*sign-bit* correlator:

* **DC offset** — the direct-conversion SBX leaves a residual DC spur
  at baseband; samples whose amplitude is comparable to the spur get
  their sign bits biased.
* **IQ imbalance** — gain and phase mismatch between the I and Q
  paths rotates/stretches the constellation, flipping sign bits near
  the decision boundaries.
* **Carrier frequency offset** — independent TX/RX oscillators leave
  a residual rotation across the correlation window.

:class:`FrontEndImpairments` applies all three to a sample stream;
:class:`repro.hw.ddc.DigitalDownConverter` accepts an instance, and
the ablation bench ``test_bench_ablation_impairments`` measures what
each does to the detection curves — reproducing the *direction* of
the paper's plateau.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FrontEndImpairments:
    """A static impairment profile for one receive chain.

    Attributes:
        dc_offset: Complex DC spur added to every sample, in units of
            digital full scale (N210s without calibration show spurs
            tens of dB above the noise floor).
        iq_gain_imbalance_db: Gain of the Q path relative to I (dB).
        iq_phase_error_deg: Quadrature phase error (degrees).
        cfo_hz: Residual carrier frequency offset after tuning.
        sample_rate: Rate used to integrate the CFO phase.
    """

    dc_offset: complex = 0.0 + 0.0j
    iq_gain_imbalance_db: float = 0.0
    iq_phase_error_deg: float = 0.0
    cfo_hz: float = 0.0
    sample_rate: float = units.BASEBAND_RATE

    def __post_init__(self) -> None:
        if abs(self.dc_offset) >= 1.0:
            raise ConfigurationError("DC offset beyond digital full scale")
        if abs(self.iq_gain_imbalance_db) > 6.0:
            raise ConfigurationError(
                "IQ gain imbalance beyond any plausible hardware (6 dB)"
            )
        if abs(self.iq_phase_error_deg) > 45.0:
            raise ConfigurationError("IQ phase error beyond 45 degrees")
        if self.sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")

    @property
    def is_ideal(self) -> bool:
        """True when every impairment is zero."""
        return (self.dc_offset == 0 and self.iq_gain_imbalance_db == 0.0
                and self.iq_phase_error_deg == 0.0 and self.cfo_hz == 0.0)

    def apply(self, samples: np.ndarray, start_sample: int = 0) -> np.ndarray:
        """Impair a chunk; ``start_sample`` keeps CFO phase continuous."""
        samples = np.asarray(samples, dtype=np.complex128)
        if self.is_ideal or samples.size == 0:
            return samples.copy() if samples.size else samples
        out = samples
        if self.cfo_hz:
            n = start_sample + np.arange(samples.size)
            out = out * np.exp(2j * np.pi * self.cfo_hz * n
                               / self.sample_rate)
        if self.iq_gain_imbalance_db or self.iq_phase_error_deg:
            gain = units.db_to_amplitude(self.iq_gain_imbalance_db)
            phi = np.deg2rad(self.iq_phase_error_deg)
            i = out.real
            q = gain * (out.imag * np.cos(phi) + out.real * np.sin(phi))
            out = i + 1j * q
        if self.dc_offset:
            out = out + self.dc_offset
        return out


#: A profile representative of an uncalibrated N210 + SBX: a DC spur
#: a few percent of typical signal amplitudes, ~0.5 dB / 3 degrees of
#: IQ mismatch, and a few kHz of residual CFO at 2.4 GHz.
TYPICAL_N210 = FrontEndImpairments(
    dc_offset=0.02 + 0.015j,
    iq_gain_imbalance_db=0.5,
    iq_phase_error_deg=3.0,
    cfo_hz=5e3,
)
