"""Digital down-conversion chain model.

In the real N210 the ADC runs at 100 MSPS and the DDC decimates by 4 to
deliver 25 MSPS complex baseband to the custom core.  The channel
simulation already produces baseband at the core's rate, so the DDC
model captures what remains observable at that interface: RX gain,
16-bit quantization with saturation, an anti-alias low-pass, and the
chain's pipeline latency in clock cycles.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.dsp.filters import FirFilter, design_lowpass
from repro.dsp.fixed_point import quantize_iq16
from repro.errors import StreamError
from repro.hw.impairments import FrontEndImpairments

#: Pipeline depth of the DDC (CIC + halfband filters), in clock cycles.
#: The value is part of the fixed RX latency but does not affect the
#: *relative* detect-to-jam timing the paper reports, since both RX and
#: trigger share it.
PIPELINE_LATENCY_CLOCKS = 32


class DigitalDownConverter:
    """RX front-half of the data path feeding the custom DSP core.

    An optional :class:`repro.hw.impairments.FrontEndImpairments`
    profile models the analog dirt (DC offset, IQ imbalance, CFO) in
    front of the quantizer.
    """

    def __init__(self, rx_gain_db: float = 0.0, use_filter: bool = False,
                 impairments: "FrontEndImpairments | None" = None) -> None:
        self.rx_gain_db = rx_gain_db
        self._filter: FirFilter | None = None
        self.impairments = impairments
        self._sample_clock = 0
        if use_filter:
            taps = design_lowpass(
                cutoff=0.45 * units.BASEBAND_RATE,
                sample_rate=units.BASEBAND_RATE,
                num_taps=31,
            )
            self._filter = FirFilter(taps)

    @property
    def rx_gain_db(self) -> float:
        """Receive gain applied before quantization, in dB."""
        return self._rx_gain_db

    @rx_gain_db.setter
    def rx_gain_db(self, value: float) -> None:
        self._rx_gain_db = float(value)
        self._rx_gain = units.db_to_amplitude(self._rx_gain_db) \
            if value != float("-inf") else 0.0

    def reset(self) -> None:
        """Clear filter state and the CFO phase clock."""
        if self._filter is not None:
            self._filter.reset()
        self._sample_clock = 0

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Apply impairments, gain, filtering, 16-bit quantization."""
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.ndim != 1:
            raise StreamError("DDC expects a 1-D complex chunk")
        if self.impairments is not None:
            samples = self.impairments.apply(samples, self._sample_clock)
        self._sample_clock += samples.size
        scaled = samples * self._rx_gain
        if self._filter is not None:
            scaled = self._filter.process(scaled)
        return quantize_iq16(scaled)
