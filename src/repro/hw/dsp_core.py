"""The custom DSP core: detection + jamming control (paper Fig. 2).

This block sits inside the N210's DDC chain.  It wires together the
four functional blocks — cross-correlator, energy differentiator,
trigger state machine, and transmit controller — and exposes the
register bus the host uses for run-time reconfiguration.

Processing model: the core consumes received baseband chunks (25 MSPS,
16-bit-quantized complex) and produces the transmit chunk for the same
span of the timeline plus event records (detections and jam bursts)
stamped with absolute sample indices.  Internally the per-sample
trigger booleans are computed vectorized and reduced to rising edges;
the FSM and transmit controller, whose state changes only at events,
walk the edge lists.  Tests validate this fast path against a
sample-by-sample reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.dsp.fixed_point import quantize_iq16
from repro.errors import ConfigurationError, RegisterError, StreamError
from repro.hw import register_map as regmap
from repro.telemetry.tracer import CAT_DETECTOR, CAT_TX, NULL_TRACER, Tracer

if TYPE_CHECKING:
    from repro.telemetry.profiler import HostProfiler
from repro.hw.watchdog import Watchdog
from repro.hw.banked_correlator import DEFAULT_BANK_LABELS, \
    BankedCrossCorrelator
from repro.hw.cross_correlator import METRIC_MAX, CrossCorrelator
from repro.hw.energy_differentiator import EnergyDifferentiator
from repro.hw.registers import UserRegisterBus, unpack_signed_fields
from repro.hw.trigger import (
    TriggerMode,
    TriggerSource,
    TriggerStateMachine,
)
from repro.hw.tx_controller import JamInterval, JamWaveform, TransmitController


@dataclass(frozen=True)
class DetectionEvent:
    """A rising-edge detection from one of the detector blocks.

    ``protocol`` names the correlator bank that fired when the core
    runs in stacked multi-standard mode (the ``which_protocol``
    telemetry dimension); it is ``None`` for energy detections and for
    the legacy single-bank correlator.
    """

    time: int
    source: TriggerSource
    protocol: str | None = None


@dataclass(frozen=True)
class JamEvent:
    """A completed or scheduled jam burst."""

    trigger_time: int
    start: int
    end: int
    waveform: JamWaveform


@dataclass
class CoreOutput:
    """Result of processing one received chunk."""

    tx: np.ndarray
    detections: list[DetectionEvent] = field(default_factory=list)
    jams: list[JamEvent] = field(default_factory=list)


class CustomDspCore:
    """The paper's custom DSP core with its register-bus control plane."""

    def __init__(self, bus: UserRegisterBus | None = None,
                 watchdog: Watchdog | None = None) -> None:
        self.bus = bus if bus is not None else UserRegisterBus()
        #: Optional in-fabric watchdog (duty guard, re-arm timeout,
        #: safe state).  ``None`` reproduces the unguarded core.
        self.watchdog = watchdog
        self.correlator = CrossCorrelator()
        #: The stacked multi-standard bank (K protocols, one GEMM
        #: pass).  Dormant until ``REG_BANK_COUNT`` selects K >= 1,
        #: at which point it replaces ``correlator`` on the data path.
        self.banked = BankedCrossCorrelator()
        #: Host-side protocol names for the banked correlator; strings
        #: cannot cross the register bus, so the host (driver) sets
        #: them directly before programming the bank count.
        self.bank_labels = list(DEFAULT_BANK_LABELS)
        self._bank_count = 0
        self._bank_select = 0
        # Per-bank coefficient shadow storage behind the windowed
        # write path: words latch into the *selected* bank's slot.
        self._bank_words_i = [[0] * regmap.COEFF_WORDS
                              for _ in range(regmap.MAX_BANKS)]
        self._bank_words_q = [[0] * regmap.COEFF_WORDS
                              for _ in range(regmap.MAX_BANKS)]
        # METRIC_MAX never fires (the trigger needs metric > threshold),
        # matching the single correlator's quiet power-on default.
        self._bank_thresholds = np.full(regmap.MAX_BANKS, METRIC_MAX,
                                        dtype=np.int64)
        self._protocol_registry = None
        self._protocol_counters: dict[str, object] = {}
        self.energy = EnergyDifferentiator()
        self.fsm = TriggerStateMachine([TriggerSource.ENERGY_HIGH])
        self.tx = TransmitController()
        #: Telemetry probes; the null tracer / no profiler by default
        #: (see :mod:`repro.telemetry` — opt-in observability).
        self._tracer: Tracer = NULL_TRACER
        self.profiler: "HostProfiler | None" = None
        self._clock = 0  # absolute index of the next sample to process
        self._last_xcorr = False
        self._last_ehigh = False
        self._last_elow = False
        self._active_intervals: list[JamInterval] = []
        self._continuous_since: int | None = None
        self.detection_counts = {source: 0 for source in TriggerSource}
        self.jam_count = 0
        self._jammer_enabled = True
        self._antenna_bits = 0
        self._wire_registers()

    # ------------------------------------------------------------------
    # Register control plane

    def _wire_registers(self) -> None:
        for offset in range(regmap.COEFF_WORDS):
            self.bus.watch(regmap.REG_COEFF_I_BASE + offset,
                           lambda _v: self._reload_coefficients())
            self.bus.watch(regmap.REG_COEFF_Q_BASE + offset,
                           lambda _v: self._reload_coefficients())
        self.bus.watch(regmap.REG_XCORR_THRESHOLD, self._set_xcorr_threshold)
        self.bus.watch(regmap.REG_ENERGY_THRESHOLD_HIGH,
                       self._set_energy_high)
        self.bus.watch(regmap.REG_ENERGY_THRESHOLD_LOW,
                       self._set_energy_low)
        for address, handler in (
            (regmap.REG_TRIGGER_CONFIG, self._set_trigger_config),
            (regmap.REG_TRIGGER_WINDOW, self._set_trigger_window),
            (regmap.REG_JAM_DELAY, self._set_jam_delay),
            (regmap.REG_JAM_UPTIME, self._set_jam_uptime),
            (regmap.REG_JAM_WAVEFORM, self._set_jam_waveform),
            (regmap.REG_CONTROL_FLAGS, self._set_control_flags),
            (regmap.REG_REPLAY_LENGTH, self._set_replay_length),
            (regmap.REG_BANK_COUNT, self._set_bank_count),
            (regmap.REG_BANK_SELECT, self._set_bank_select),
        ):
            self.bus.watch(address, self._guarded(address, handler))
        for offset in range(regmap.COEFF_WORDS):
            self.bus.watch(regmap.REG_BANK_COEFF_I_BASE + offset,
                           self._bank_coeff_watch(self._bank_words_i,
                                                  offset))
            self.bus.watch(regmap.REG_BANK_COEFF_Q_BASE + offset,
                           self._bank_coeff_watch(self._bank_words_q,
                                                  offset))
        for index in range(regmap.MAX_BANKS):
            self.bus.watch(regmap.REG_BANK_THRESHOLD_BASE + index,
                           self._bank_threshold_watch(index))

    def _guarded(self, address, handler):
        """Route a register decode through the watchdog's safe state.

        Without a watchdog (or with ``safe_state_on_illegal`` off) an
        undecodable register word raises straight into the writer, as
        before.  With one, the register is flagged illegal and the
        core keeps running with transmission suppressed until a legal
        word lands on the same address.
        """
        def wrapped(value: int) -> None:
            try:
                handler(value)
            except ConfigurationError as exc:
                wd = self.watchdog
                if wd is not None and wd.config.safe_state_on_illegal:
                    wd.flag_illegal(address, self._clock, str(exc))
                    return
                raise
            if self.watchdog is not None:
                self.watchdog.clear_illegal(address)
        return wrapped

    def _reload_coefficients(self) -> None:
        words_i = [self.bus.read(regmap.REG_COEFF_I_BASE + k)
                   for k in range(regmap.COEFF_WORDS)]
        words_q = [self.bus.read(regmap.REG_COEFF_Q_BASE + k)
                   for k in range(regmap.COEFF_WORDS)]
        coeffs_i = unpack_signed_fields(words_i, regmap.COEFF_BITS,
                                        regmap.CORRELATOR_LENGTH)
        coeffs_q = unpack_signed_fields(words_q, regmap.COEFF_BITS,
                                        regmap.CORRELATOR_LENGTH)
        self.correlator.load_coefficients(np.array(coeffs_i), np.array(coeffs_q))

    def _unpacked_bank(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        coeffs_i = unpack_signed_fields(self._bank_words_i[index],
                                        regmap.COEFF_BITS,
                                        regmap.CORRELATOR_LENGTH)
        coeffs_q = unpack_signed_fields(self._bank_words_q[index],
                                        regmap.COEFF_BITS,
                                        regmap.CORRELATOR_LENGTH)
        return np.array(coeffs_i), np.array(coeffs_q)

    def _set_bank_count(self, value: int) -> None:
        count = int(value)
        if not 0 <= count <= regmap.MAX_BANKS:
            raise ConfigurationError(
                f"bank count must be 0..{regmap.MAX_BANKS}, got {count}"
            )
        if count == 0:
            # Back to the legacy single-bank correlator; the shadows
            # keep their contents for a later re-enable.
            self._bank_count = 0
            return
        banks = [self._unpacked_bank(k) for k in range(count)]
        self.banked.load_banks(banks, self._bank_thresholds[:count],
                               labels=self.bank_labels[:count])
        self._bank_count = count

    def _set_bank_select(self, value: int) -> None:
        self._bank_select = int(value)

    def _bank_coeff_watch(self, words, offset):
        """Latch a windowed coefficient word into the selected bank.

        A write targeting a *live* bank hot-swaps it immediately — the
        new template takes effect on the next processed chunk, with
        the sign history and trigger carries intact.
        """
        def handler(value: int) -> None:
            index = self._bank_select
            words[index][offset] = int(value)
            if index < self._bank_count:
                coeffs_i, coeffs_q = self._unpacked_bank(index)
                self.banked.load_bank(index, coeffs_i, coeffs_q)
        return handler

    def _bank_threshold_watch(self, index):
        def handler(value: int) -> None:
            self._bank_thresholds[index] = int(value)
            if index < self._bank_count:
                self.banked.set_threshold(index, int(value))
        return handler

    def set_bank_label(self, index: int, label: str) -> None:
        """Name the protocol a bank detects (host-side metadata)."""
        if not 0 <= index < regmap.MAX_BANKS:
            raise ConfigurationError(
                f"bank index {index} outside 0..{regmap.MAX_BANKS - 1}"
            )
        self.bank_labels[index] = str(label)
        if index < self._bank_count:
            self.banked.set_label(index, label)

    def _set_xcorr_threshold(self, value: int) -> None:
        self.correlator.threshold = value

    def _set_energy_high(self, value: int) -> None:
        self.energy.threshold_high_db = regmap.decode_energy_threshold_db(value)

    def _set_energy_low(self, value: int) -> None:
        self.energy.threshold_low_db = regmap.decode_energy_threshold_db(value)

    def _set_trigger_config(self, value: int) -> None:
        stages: list[TriggerSource] = []
        for stage in range(TriggerStateMachine.MAX_STAGES):
            if value & (1 << (regmap.STAGE_ENABLE_SHIFT + stage)):
                raw = (value >> (stage * regmap.STAGE_SOURCE_BITS)) \
                    & regmap.STAGE_SOURCE_MASK
                try:
                    stages.append(TriggerSource(raw))
                except ValueError as exc:
                    raise RegisterError(
                        f"stage {stage} selects unknown source "
                        f"encoding {raw}"
                    ) from exc
        mode = TriggerMode.ANY if value & regmap.TRIGGER_MODE_BIT \
            else TriggerMode.SEQUENCE
        window = self.fsm.window_samples
        if len(stages) > 1 and window == 0 and mode is TriggerMode.SEQUENCE:
            window = 1
        self.fsm = TriggerStateMachine(stages or [TriggerSource.ENERGY_HIGH],
                                       window_samples=window, mode=mode)
        self.fsm.tracer = self._tracer

    def _set_trigger_window(self, value: int) -> None:
        self.fsm.window_samples = value

    def _set_jam_delay(self, value: int) -> None:
        self.tx.delay_samples = value

    def _set_jam_uptime(self, value: int) -> None:
        self.tx.uptime_samples = value

    def _set_jam_waveform(self, value: int) -> None:
        select = value & regmap.WAVEFORM_SELECT_MASK
        try:
            self.tx.waveform = JamWaveform(select)
        except ValueError as exc:
            raise RegisterError(
                f"waveform select {select} is not a defined preset"
            ) from exc
        self.tx.wgn_seed = value >> regmap.WGN_SEED_SHIFT

    def _set_control_flags(self, value: int) -> None:
        self._jammer_enabled = bool(value & regmap.FLAG_JAMMER_ENABLE)
        continuous = bool(value & regmap.FLAG_CONTINUOUS)
        if continuous and self._continuous_since is None:
            self._continuous_since = self._clock
        if not continuous:
            self._continuous_since = None
        self._antenna_bits = (value & regmap.ANTENNA_MASK) >> regmap.ANTENNA_SHIFT

    def _set_replay_length(self, value: int) -> None:
        self.tx.replay_length = value

    # ------------------------------------------------------------------
    # Status (the "host feedback / synchro flags" path in Fig. 1)

    @property
    def tracer(self) -> Tracer:
        """The attached trace sink (the null tracer by default)."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: Tracer) -> None:
        # The FSM is rebuilt on trigger-config writes, so the tracer
        # rides along through this setter and `_set_trigger_config`.
        self._tracer = tracer
        self.fsm.tracer = tracer

    @property
    def clock(self) -> int:
        """Absolute index of the next sample to be processed."""
        return self._clock

    @property
    def bank_count(self) -> int:
        """Active stacked banks (0 = legacy single-bank correlator)."""
        return self._bank_count

    def attach_metrics(self, registry) -> None:
        """Expose per-protocol detection counters on a registry.

        Counters are created lazily as ``detect.which_protocol.<label>``
        the first time each protocol fires.  Pass ``None`` to detach.
        """
        self._protocol_registry = registry
        self._protocol_counters = {}

    def _protocol_counter(self, label: str):
        counter = self._protocol_counters.get(label)
        if counter is None:
            counter = self._protocol_registry.counter(
                f"detect.which_protocol.{label}")
            self._protocol_counters[label] = counter
        return counter

    @property
    def jammer_enabled(self) -> bool:
        """Whether jam bursts are transmitted at all."""
        return self._jammer_enabled

    @property
    def antenna_bits(self) -> int:
        """Antenna-control field from the control register."""
        return self._antenna_bits

    @property
    def continuous(self) -> bool:
        """Whether the continuous-jamming flag is set."""
        return self._continuous_since is not None

    @property
    def _tx_allowed(self) -> bool:
        """Jamming enabled and the watchdog not holding safe state."""
        if not self._jammer_enabled:
            return False
        return self.watchdog is None or not self.watchdog.safe_state

    def reset(self) -> None:
        """Hardware reset: clears all block state but keeps registers."""
        self.correlator.reset()
        self.banked.reset()
        self.energy.reset()
        self.fsm.reset()
        self.tx.reset()
        self._clock = 0
        self._last_xcorr = False
        self._last_ehigh = False
        self._last_elow = False
        self._active_intervals.clear()
        self._continuous_since = None if self._continuous_since is None else 0
        self.detection_counts = {source: 0 for source in TriggerSource}
        self.jam_count = 0
        if self.watchdog is not None:
            self.watchdog.reset()

    # ------------------------------------------------------------------
    # Data path

    def process(self, rx_chunk: np.ndarray, *,
                quantized: bool = False) -> CoreOutput:
        """Run one received chunk through detection and jamming control.

        ``rx_chunk`` is complex baseband at 25 MSPS; it is quantized to
        the 16-bit data path on entry (the ADC/DDC already delivers
        integers in the real system).  Callers that already hold
        IQ16-quantized complex128 samples — the DDC output — pass
        ``quantized=True`` to skip the redundant re-quantize copy.
        Returns the transmit waveform aligned to the same sample span
        plus all events.
        """
        if quantized:
            rx_chunk = np.asarray(rx_chunk)
        else:
            rx_chunk = np.asarray(rx_chunk, dtype=np.complex128)
        if rx_chunk.ndim != 1:
            raise StreamError("CustomDspCore expects a 1-D complex chunk")
        chunk_start = self._clock
        n = rx_chunk.size
        if n == 0:
            return CoreOutput(tx=np.zeros(0, dtype=np.complex128))
        samples = rx_chunk if quantized else quantize_iq16(rx_chunk)

        if self.watchdog is not None:
            self.watchdog.check_rearm(self.fsm, chunk_start)

        profiler = self.profiler
        banked = self._bank_count >= 1
        if profiler is None:
            if banked:
                _trig, banked_edges = self.banked.detect(samples)
            else:
                xcorr_trig, xcorr_edges = self.correlator.detect(
                    samples, self._last_xcorr)
            ehigh_trig, elow_trig, ehigh_edges, elow_edges = \
                self.energy.detect(samples, self._last_ehigh,
                                   self._last_elow)
        else:
            with profiler.profile("xcorr"):
                if banked:
                    _trig, banked_edges = self.banked.detect(samples)
                else:
                    xcorr_trig, xcorr_edges = self.correlator.detect(
                        samples, self._last_xcorr)
            with profiler.profile("energy"):
                ehigh_trig, elow_trig, ehigh_edges, elow_edges = \
                    self.energy.detect(samples, self._last_ehigh,
                                       self._last_elow)
        if banked:
            # The stacked facade owns the per-bank trigger carries.
            xcorr_banks = list(zip(banked_edges, self.banked.labels))
        else:
            self._last_xcorr = bool(xcorr_trig[-1])
            xcorr_banks = [(xcorr_edges, None)]
        self._last_ehigh = bool(ehigh_trig[-1])
        self._last_elow = bool(elow_trig[-1])

        detections = self._collect_detections(
            chunk_start, xcorr_banks, ehigh_edges, elow_edges
        )
        jam_times = self.fsm.process_events(
            [(event.time, event.source) for event in detections]
        )

        new_intervals: list[JamInterval] = []
        if self._tx_allowed and jam_times:
            new_intervals = self._schedule_with_capture(
                jam_times, samples, chunk_start
            )
            if self.watchdog is not None:
                new_intervals = self._admit_intervals(new_intervals)
        else:
            self.tx.observe_rx(samples)
        self.jam_count += len(new_intervals)
        self._active_intervals.extend(new_intervals)

        tx_chunk = self._synthesize_tx(chunk_start, n)
        jams = [JamEvent(trigger_time=iv.trigger_time, start=iv.start,
                         end=iv.end, waveform=iv.waveform)
                for iv in new_intervals]
        if self._tracer.enabled:
            for interval in new_intervals:
                self._tracer.span(
                    "jam", CAT_TX, interval.start, interval.end,
                    trigger_sample=interval.trigger_time,
                    waveform=interval.waveform.name,
                )
        self._clock += n
        self._retire_intervals()
        return CoreOutput(tx=tx_chunk, detections=detections, jams=jams)

    def skip(self, n: int) -> None:
        """Advance the sample clock over ``n`` samples that were lost.

        The recovery path uses this when a chunk cannot be processed:
        the absolute timeline stays aligned (later events keep correct
        timestamps) while the lost span produces no detections and no
        transmit samples.  Edge trackers are cleared — the trigger
        state on the far side of a gap is unknown, and re-detecting an
        edge is safer than missing one.
        """
        if n < 0:
            raise StreamError("cannot skip a negative number of samples")
        self._clock += n
        self._last_xcorr = False
        self._last_ehigh = False
        self._last_elow = False
        self.banked.clear_last()
        self._retire_intervals()

    def _collect_detections(self, chunk_start: int,
                            xcorr_banks: list,
                            ehigh_edges: np.ndarray,
                            elow_edges: np.ndarray
                            ) -> list[DetectionEvent]:
        """Merge per-bank correlator edges with the energy detector's.

        ``xcorr_banks`` is a list of ``(edges, protocol)`` pairs — one
        entry (protocol ``None``) in legacy mode, K entries in stacked
        mode.  Events sort by time, then source, then bank index, so
        coincident multi-protocol hits come out in bank order.
        """
        xcorr_total = sum(edges.size for edges, _ in xcorr_banks)
        self.detection_counts[TriggerSource.XCORR] += xcorr_total
        self.detection_counts[TriggerSource.ENERGY_HIGH] += ehigh_edges.size
        self.detection_counts[TriggerSource.ENERGY_LOW] += elow_edges.size
        total = xcorr_total + ehigh_edges.size + elow_edges.size
        if not total:
            # The common chunk: no edges, no objects built at all.
            return []
        times = np.concatenate([edges for edges, _ in xcorr_banks]
                               + [ehigh_edges, elow_edges])
        times += chunk_start
        sources = np.empty(total, dtype=np.int64)
        banks = np.full(total, -1, dtype=np.int64)
        sources[:xcorr_total] = TriggerSource.XCORR
        cursor = 0
        for bank, (edges, _) in enumerate(xcorr_banks):
            banks[cursor:cursor + edges.size] = bank
            cursor += edges.size
        split_b = xcorr_total + ehigh_edges.size
        sources[xcorr_total:split_b] = TriggerSource.ENERGY_HIGH
        sources[split_b:] = TriggerSource.ENERGY_LOW
        order = np.lexsort((banks, sources, times))
        labels = [protocol for _, protocol in xcorr_banks]
        events = []
        for k in order:
            bank = int(banks[k])
            events.append(DetectionEvent(
                time=int(times[k]),
                source=TriggerSource(int(sources[k])),
                protocol=labels[bank] if bank >= 0 else None,
            ))
        if self._protocol_registry is not None:
            for event in events:
                if event.protocol is not None:
                    self._protocol_counter(event.protocol).inc()
        if self._tracer.enabled:
            for event in events:
                if event.protocol is None:
                    self._tracer.instant(
                        f"detect.{event.source.name.lower()}",
                        CAT_DETECTOR, event.time,
                    )
                else:
                    self._tracer.instant(
                        f"detect.{event.source.name.lower()}",
                        CAT_DETECTOR, event.time,
                        which_protocol=event.protocol,
                    )
        return events

    def _admit_intervals(self, intervals: list[JamInterval]
                         ) -> list[JamInterval]:
        """Run scheduled bursts past the watchdog's duty guard.

        A vetoed burst is cancelled in the transmit controller too, so
        the pipeline does not stay busy for a burst that never airs.
        """
        admitted: list[JamInterval] = []
        for interval in intervals:
            if self.watchdog.admit_interval(interval.start, interval.end):
                admitted.append(interval)
            else:
                self.tx.cancel_interval(interval)
        return admitted

    def _schedule_with_capture(self, jam_times: list[int],
                               quantized: np.ndarray,
                               chunk_start: int) -> list[JamInterval]:
        """Schedule bursts, feeding RX history up to each trigger first.

        Replay captures must contain only samples received *before*
        their trigger, so the chunk is fed to the capture buffer in
        segments split at the trigger times.
        """
        intervals: list[JamInterval] = []
        fed = 0
        for trigger in jam_times:
            local = trigger - chunk_start
            upto = min(max(local + 1, 0), quantized.size)
            if upto > fed:
                self.tx.observe_rx(quantized[fed:upto])
                fed = upto
            intervals.extend(self.tx.schedule([trigger]))
        if fed < quantized.size:
            self.tx.observe_rx(quantized[fed:])
        return intervals

    def _synthesize_tx(self, chunk_start: int, n: int) -> np.ndarray:
        tx_chunk = np.zeros(n, dtype=np.complex128)
        if self.watchdog is not None and self.watchdog.safe_state:
            return tx_chunk  # safe state: nothing leaves the DUC
        if self._continuous_since is not None and self._tx_allowed:
            allowed = n
            if self.watchdog is not None:
                allowed = self.watchdog.continuous_allowance(chunk_start, n)
            if allowed == 0:
                return tx_chunk
            burst = JamInterval(
                trigger_time=self._continuous_since,
                start=self._continuous_since,
                end=chunk_start + allowed,
                waveform=JamWaveform.WGN,
            )
            offset, wave = self.tx.synthesize(burst, chunk_start, n)
            tx_chunk[offset:offset + wave.size] = wave
            return tx_chunk
        for interval in self._active_intervals:
            offset, wave = self.tx.synthesize(interval, chunk_start, n)
            if wave.size:
                tx_chunk[offset:offset + wave.size] += wave
        return tx_chunk

    def _retire_intervals(self) -> None:
        still_active: list[JamInterval] = []
        for interval in self._active_intervals:
            if interval.end <= self._clock:
                self.tx.release_interval(interval)
            else:
                still_active.append(interval)
        self._active_intervals = still_active
