"""Digital up-conversion chain model.

The DUC takes the custom core's transmit samples (25 MSPS, full scale
+-1.0), applies the TX gain, and hands them to the RF front end.  Its
fill latency — about seven clock cycles to populate the interpolation
pipeline — is part of the paper's 80 ns T_init and is accounted for in
:mod:`repro.hw.tx_controller`; here we model the amplitude path and
full-scale clipping.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.errors import StreamError

#: Clock cycles to populate the interpolation pipeline after a trigger
#: (included in TransmitController.INIT_LATENCY_CLOCKS).
FILL_LATENCY_CLOCKS = 7


class DigitalUpConverter:
    """TX back-half of the data path after the custom DSP core."""

    def __init__(self, tx_gain_db: float = 0.0) -> None:
        self.tx_gain_db = tx_gain_db

    @property
    def tx_gain_db(self) -> float:
        """Transmit gain applied to the core's output, in dB."""
        return self._tx_gain_db

    @tx_gain_db.setter
    def tx_gain_db(self, value: float) -> None:
        self._tx_gain_db = float(value)
        self._tx_gain = units.db_to_amplitude(self._tx_gain_db)

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Apply TX gain; the DAC clips at digital full scale."""
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.ndim != 1:
            raise StreamError("DUC expects a 1-D complex chunk")
        scaled = samples * self._tx_gain
        return scaled
