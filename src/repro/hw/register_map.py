"""Layout of the 24 user registers used by the custom DSP core.

The paper states the design uses 24 of the available 255 user registers
for "run-time updates of cross-correlator coefficients, detection
thresholds, jammer settings, and antenna control signals".  This module
pins down a concrete layout with the same footprint:

==========  =====================================================
Address     Contents
==========  =====================================================
0 .. 6      I correlator coefficients, 64 x 3-bit signed, packed
            10 per 32-bit word (LSB first)
7 .. 13     Q correlator coefficients, same packing
14          cross-correlation detection threshold (unsigned)
15          energy threshold HIGH, dB x 256 (Q8.8 unsigned)
16          energy threshold LOW, dB x 256 (Q8.8 unsigned)
17          trigger configuration: three 4-bit stage source fields
            (bits 0-3, 4-7, 8-11) + stage-enable bits 12-14
18          trigger combination window, baseband samples
19          jam delay after trigger, baseband samples
20          jam uptime, baseband samples (full 32-bit range:
            1 sample = 40 ns up to 2^32 samples ~ 40 s... clipped
            to 2^32 - 1 by the bus width)
21          jam waveform select (bits 0-1) + WGN seed (bits 2-31)
22          control flags: bit 0 jammer enable, bit 1 continuous
            (jam regardless of triggers), bit 2 replay-capture
            freeze, bits 8-15 antenna control
23          replay length, samples (1..512)
==========  =====================================================

The multi-standard correlator bank (the Drexel lab's FPGA packet
detector generalized onto this core) extends the layout past the
paper's 24 registers with a bank-select write window plus per-bank
thresholds:

==========  =====================================================
Address     Contents
==========  =====================================================
24          bank count: 0 = banked mode off (legacy single
            correlator), 1..4 = number of active stacked banks
25          bank select: which bank (0..3) the coefficient write
            window at 26..39 targets
26 .. 32    selected bank's I coefficients, same 3-bit packing
33 .. 39    selected bank's Q coefficients, same packing
40 .. 43    per-bank correlation thresholds (direct-mapped, one
            register per bank — not windowed, so the host can
            retune any bank's threshold in one write)
==========  =====================================================

The windowed coefficient path mirrors how the real register bus
hot-swaps banks: the host parks the select register on a bank, streams
the 14 coefficient words, and the core latches them into that bank's
shadow storage — taking effect on the next processed chunk when the
bank is live.  ``REGISTERS_USED`` stays the paper's 24 (the base
core); ``TOTAL_REGISTERS_USED`` covers the banked extension.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bits per packed correlator coefficient (3-bit signed, paper Fig. 3).
COEFF_BITS = 3

#: Coefficients per 32-bit register word (floor(32 / 3)).
COEFFS_PER_WORD = 32 // COEFF_BITS

#: Correlator length in samples (fixed by the WARP reference core).
CORRELATOR_LENGTH = 64

#: Words needed to carry one 64-coefficient bank.
COEFF_WORDS = -(-CORRELATOR_LENGTH // COEFFS_PER_WORD)  # ceil division -> 7

REG_COEFF_I_BASE = 0
REG_COEFF_Q_BASE = REG_COEFF_I_BASE + COEFF_WORDS            # 7
REG_XCORR_THRESHOLD = REG_COEFF_Q_BASE + COEFF_WORDS         # 14
REG_ENERGY_THRESHOLD_HIGH = 15
REG_ENERGY_THRESHOLD_LOW = 16
REG_TRIGGER_CONFIG = 17
REG_TRIGGER_WINDOW = 18
REG_JAM_DELAY = 19
REG_JAM_UPTIME = 20
REG_JAM_WAVEFORM = 21
REG_CONTROL_FLAGS = 22
REG_REPLAY_LENGTH = 23

#: Total registers consumed by the design (matches the paper's 24).
REGISTERS_USED = 24

#: Maximum concurrently-stacked correlator banks (WiFi short / DSSS /
#: WiMAX / ZigBee fit in one pass; matches the multi-standard FPGA
#: detector's concurrent-correlator count).
MAX_BANKS = 4

REG_BANK_COUNT = 24
REG_BANK_SELECT = 25
REG_BANK_COEFF_I_BASE = 26
REG_BANK_COEFF_Q_BASE = REG_BANK_COEFF_I_BASE + COEFF_WORDS      # 33
REG_BANK_THRESHOLD_BASE = REG_BANK_COEFF_Q_BASE + COEFF_WORDS    # 40

#: Registers added by the banked extension (count + select + one
#: windowed coefficient bank + MAX_BANKS thresholds).
BANKED_REGISTERS_USED = 2 + 2 * COEFF_WORDS + MAX_BANKS

#: Full footprint: the paper's 24 plus the banked extension.
TOTAL_REGISTERS_USED = REGISTERS_USED + BANKED_REGISTERS_USED

# Control-flag bit positions (register 22).
FLAG_JAMMER_ENABLE = 1 << 0
FLAG_CONTINUOUS = 1 << 1
FLAG_REPLAY_FREEZE = 1 << 2
ANTENNA_SHIFT = 8
ANTENNA_MASK = 0xFF << ANTENNA_SHIFT

# Trigger-config fields (register 17).
STAGE_SOURCE_BITS = 4
STAGE_SOURCE_MASK = (1 << STAGE_SOURCE_BITS) - 1
STAGE_ENABLE_SHIFT = 12
#: Bit 15: stage combination mode (0 = sequence-within-window, the
#: paper's description; 1 = any-stage-fires).
TRIGGER_MODE_BIT = 1 << 15

# Waveform-select fields (register 21).
WAVEFORM_SELECT_MASK = 0x3
WGN_SEED_SHIFT = 2
#: The WGN seed occupies bits 2..31 of the waveform register.
WGN_SEED_MASK = (1 << (32 - WGN_SEED_SHIFT)) - 1

#: Highest value the 32-bit JAM_UPTIME register can carry.  The
#: docstring contract above ("clipped to 2^32 - 1 by the bus width")
#: is enforced by :func:`clip_jam_uptime`.
JAM_UPTIME_MAX = (1 << 32) - 1


@dataclass(frozen=True)
class RegisterSpec:
    """Declarative contract for one user register.

    ``width`` is the number of meaningful low bits; ``max_value`` the
    highest value the hardware accepts (defaults to the all-ones value
    of ``width`` bits, but can be tighter — the replay length stops at
    512 even though it needs 10 bits).  The static-analysis pass
    (:mod:`repro.analysis`, rule RJ002) checks literal writes against
    this table, so it is the single source of truth for field widths.
    """

    name: str
    address: int
    width: int
    description: str
    max_value: int = -1

    def __post_init__(self) -> None:
        if not 1 <= self.width <= 32:
            raise ValueError(f"register width {self.width} outside [1, 32]")
        if self.max_value < 0:
            object.__setattr__(self, "max_value", (1 << self.width) - 1)
        if self.max_value >= (1 << self.width):
            raise ValueError(
                f"max_value {self.max_value:#x} does not fit {self.width} bits"
            )


#: Bits used per packed-coefficient word (10 coefficients x 3 bits).
COEFF_WORD_WIDTH = COEFFS_PER_WORD * COEFF_BITS

REGISTER_SPECS: tuple[RegisterSpec, ...] = tuple(
    [RegisterSpec(f"REG_COEFF_I_{k}", REG_COEFF_I_BASE + k, COEFF_WORD_WIDTH,
                  f"I correlator coefficients, word {k} (10 x 3-bit signed)")
     for k in range(COEFF_WORDS)]
    + [RegisterSpec(f"REG_COEFF_Q_{k}", REG_COEFF_Q_BASE + k, COEFF_WORD_WIDTH,
                    f"Q correlator coefficients, word {k} (10 x 3-bit signed)")
       for k in range(COEFF_WORDS)]
    + [
        RegisterSpec("REG_XCORR_THRESHOLD", REG_XCORR_THRESHOLD, 32,
                     "cross-correlation detection threshold (unsigned)"),
        RegisterSpec("REG_ENERGY_THRESHOLD_HIGH", REG_ENERGY_THRESHOLD_HIGH, 16,
                     "energy rise threshold, dB x 256 (Q8.8 unsigned)"),
        RegisterSpec("REG_ENERGY_THRESHOLD_LOW", REG_ENERGY_THRESHOLD_LOW, 16,
                     "energy fall threshold, dB x 256 (Q8.8 unsigned)"),
        RegisterSpec("REG_TRIGGER_CONFIG", REG_TRIGGER_CONFIG, 16,
                     "3 x 4-bit stage sources + enable bits 12-14 + mode bit 15"),
        RegisterSpec("REG_TRIGGER_WINDOW", REG_TRIGGER_WINDOW, 32,
                     "trigger combination window, baseband samples"),
        RegisterSpec("REG_JAM_DELAY", REG_JAM_DELAY, 32,
                     "jam delay after trigger, baseband samples"),
        RegisterSpec("REG_JAM_UPTIME", REG_JAM_UPTIME, 32,
                     "jam uptime, baseband samples (saturates at 2^32 - 1)"),
        RegisterSpec("REG_JAM_WAVEFORM", REG_JAM_WAVEFORM, 32,
                     "waveform select (bits 0-1) + WGN seed (bits 2-31)"),
        RegisterSpec("REG_CONTROL_FLAGS", REG_CONTROL_FLAGS, 16,
                     "enable/continuous/freeze flags + antenna bits 8-15"),
        RegisterSpec("REG_REPLAY_LENGTH", REG_REPLAY_LENGTH, 10,
                     "replay capture length, samples (1..512)", max_value=512),
        RegisterSpec("REG_BANK_COUNT", REG_BANK_COUNT, 3,
                     "active stacked banks (0 = banked mode off, 1..4)",
                     max_value=MAX_BANKS),
        RegisterSpec("REG_BANK_SELECT", REG_BANK_SELECT, 2,
                     "bank targeted by the coefficient write window",
                     max_value=MAX_BANKS - 1),
    ]
    + [RegisterSpec(f"REG_BANK_COEFF_I_{k}", REG_BANK_COEFF_I_BASE + k,
                    COEFF_WORD_WIDTH,
                    f"selected bank's I coefficients, word {k} "
                    "(10 x 3-bit signed)")
       for k in range(COEFF_WORDS)]
    + [RegisterSpec(f"REG_BANK_COEFF_Q_{k}", REG_BANK_COEFF_Q_BASE + k,
                    COEFF_WORD_WIDTH,
                    f"selected bank's Q coefficients, word {k} "
                    "(10 x 3-bit signed)")
       for k in range(COEFF_WORDS)]
    + [RegisterSpec(f"REG_BANK_THRESHOLD_{k}", REG_BANK_THRESHOLD_BASE + k,
                    32, f"bank {k} correlation threshold (unsigned)")
       for k in range(MAX_BANKS)]
)

#: Address -> spec, for bounds checks and the static analyzer.
SPEC_BY_ADDRESS: dict[int, RegisterSpec] = {
    spec.address: spec for spec in REGISTER_SPECS
}

assert len(SPEC_BY_ADDRESS) == TOTAL_REGISTERS_USED, \
    "register spec table has gaps"


def register_spec(address: int) -> RegisterSpec | None:
    """Spec for ``address``, or ``None`` for unassigned registers."""
    return SPEC_BY_ADDRESS.get(address)


def clip_jam_uptime(samples: int) -> int:
    """Saturate a jam uptime request to the 32-bit bus width.

    The register layout promises values above ``2^32 - 1`` are
    *clipped*, not rejected — the bus simply cannot carry more.
    Negative uptimes have no hardware meaning and are rejected.
    """
    if samples < 0:
        raise ValueError(f"jam uptime {samples} cannot be negative")
    return min(int(samples), JAM_UPTIME_MAX)


def encode_energy_threshold_db(threshold_db: float) -> int:
    """Encode an energy threshold in dB as a Q8.8 register word.

    The hardware accepts thresholds between 3 and 30 dB (paper §2.3).
    """
    if not 3.0 <= threshold_db <= 30.0:
        raise ValueError(
            f"energy threshold {threshold_db} dB outside the hardware's 3-30 dB range"
        )
    return int(round(threshold_db * 256.0))


def decode_energy_threshold_db(word: int) -> float:
    """Decode a Q8.8 energy-threshold register word back to dB."""
    return word / 256.0
