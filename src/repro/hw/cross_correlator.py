"""The 64-sample sign-bit weighted phase cross-correlator (paper Fig. 3).

The block is extracted from the Rice WARP OFDM reference design: each
incoming 16-bit I/Q pair is sliced to its sign bit (1-bit signed,
giving 90-degree phase resolution), then correlated against a template
of 64 3-bit signed coefficients for I and Q.  The complex correlation
magnitude-squared is compared against a user threshold to produce the
detection trigger.

With template ``c[k] = cI[k] + j*cQ[k]`` and sliced signal
``s[n] = sign(I[n]) + j*sign(Q[n])`` the correlator computes::

    corr[n] = sum_k conj(c[k]) * s[n - 63 + k]
    metric[n] = Re(corr)^2 + Im(corr)^2        (the two x^2 paths in Fig. 3)
    trigger[n] = metric[n] > threshold

The output peaks on the sample where the last template symbol arrives,
so a detection fires exactly 64 samples (2.56 us at 25 MSPS) after the
start of a 64-sample preamble — the paper's T_xcorr_det.

This class is the thin stateful *facade*: it owns the streaming
history, the threshold register, and the scratch buffers, while the
per-sample math runs in :mod:`repro.kernels` (one fused kernel call
per chunk instead of the four ``np.correlate`` passes the seed model
used).  The kernel backend is picked at construction
(:func:`repro.kernels.get_backend`, honoring ``REPRO_KERNEL_BACKEND``)
and every backend is byte-identical to the numpy reference.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.fixed_point import COEFF3
from repro.errors import ConfigurationError, StreamError
from repro.hw.register_map import CORRELATOR_LENGTH
from repro.kernels import (
    get_backend,
    prepare_coefficients,
    sign_plane,
    xcorr_detect,
)
from repro.runtime.buffers import ScratchBuffer
from repro.runtime.cache import cached_artifact

#: Pipeline latency from last-sample arrival to trigger assertion, in
#: FPGA clock cycles.  The comparator output registers once.
PIPELINE_LATENCY_CLOCKS = 1

#: Upper bound of the metric: |Re| and |Im| are each at most
#: 64 * (|cI| + |cQ|) <= 64 * (4 + 4), so the metric fits in 32 bits.
METRIC_MAX = 2 * (CORRELATOR_LENGTH * 8) ** 2


@cached_artifact
def quantize_coefficients(template: np.ndarray) -> tuple[np.ndarray, np.ndarray]:  # repro-lint: disable=RJ003 (host-side offline step, not datapath)
    """Quantize a complex template to 3-bit signed I/Q coefficients.

    The host generates these offline from knowledge of the standard's
    preamble (paper §2.3).  The template is scaled so its largest
    component magnitude maps to the 3-bit maximum (+3), then rounded.

    Memoized by template content (:mod:`repro.runtime.cache`): the
    returned banks are frozen read-only arrays shared by every caller;
    :meth:`CrossCorrelator.load_coefficients` copies them anyway.

    Returns:
        ``(coeffs_i, coeffs_q)`` int arrays of length 64 in [-4, 3].
    """
    template = np.asarray(template, dtype=np.complex128)
    if template.size != CORRELATOR_LENGTH:
        raise ConfigurationError(
            f"correlator template must have {CORRELATOR_LENGTH} samples, "
            f"got {template.size}"
        )
    peak = float(np.max(np.abs(np.concatenate([template.real, template.imag]))))
    if peak == 0.0:
        raise ConfigurationError("correlator template has zero energy")
    scaled = template / peak * COEFF3.max_int
    coeffs_i = COEFF3.to_int(scaled.real)
    coeffs_q = COEFF3.to_int(scaled.imag)
    return coeffs_i.astype(np.int64), coeffs_q.astype(np.int64)


class CrossCorrelator:
    """Streaming sign-bit cross-correlator with run-time coefficients.

    The block keeps the last 63 sign pairs across chunk boundaries so
    that feeding a signal chunk-wise matches a single-shot call.
    """

    def __init__(self, coeffs_i: np.ndarray | None = None,
                 coeffs_q: np.ndarray | None = None,
                 threshold: int = METRIC_MAX,
                 backend: str | None = None) -> None:
        self._backend = get_backend(backend)
        self._coeffs_i = np.zeros(CORRELATOR_LENGTH, dtype=np.int64)
        self._coeffs_q = np.zeros(CORRELATOR_LENGTH, dtype=np.int64)
        self._prepared = prepare_coefficients(self._coeffs_i,
                                              self._coeffs_q)
        if coeffs_i is not None or coeffs_q is not None:
            self.load_coefficients(coeffs_i, coeffs_q)
        self.threshold = threshold
        # The interleaved sign history (zeros after reset, exactly as
        # the hardware shift register clears); the scratch buffers
        # carry the [history | chunk] plane and the kernel's padded
        # GEMM storage across calls without reallocating.
        self._history = np.zeros(2 * (CORRELATOR_LENGTH - 1),
                                 dtype=np.int8)
        self._plane_scratch = ScratchBuffer(np.int8)
        self._gemm_scratch = ScratchBuffer(self._prepared.gemm_dtype)
        self._metric_chunks = None
        self._metric_samples = None

    @property
    def backend(self) -> str:
        """Name of the kernel backend this instance dispatches to."""
        return self._backend.name

    @property
    def threshold(self) -> int:
        """Detection threshold compared against the squared metric."""
        return self._threshold

    @threshold.setter
    def threshold(self, value: int) -> None:
        if not 0 <= value <= 0xFFFF_FFFF:
            raise ConfigurationError("threshold must fit the 32-bit register")
        self._threshold = int(value)

    @property
    def coefficients(self) -> tuple[np.ndarray, np.ndarray]:
        """Current I and Q coefficient banks (copies)."""
        return self._coeffs_i.copy(), self._coeffs_q.copy()

    @property
    def prepared_coefficients(self):
        """The kernel-ready coefficient bank (frozen, shareable)."""
        return self._prepared

    def load_coefficients(self, coeffs_i: np.ndarray | None,
                          coeffs_q: np.ndarray | None) -> None:
        """Load 3-bit signed coefficient banks (run-time programmable)."""
        for name, bank in (("I", coeffs_i), ("Q", coeffs_q)):
            if bank is None:
                raise ConfigurationError(f"missing {name} coefficient bank")
        coeffs_i = np.asarray(coeffs_i, dtype=np.int64)
        coeffs_q = np.asarray(coeffs_q, dtype=np.int64)
        for name, bank in (("I", coeffs_i), ("Q", coeffs_q)):
            if bank.size != CORRELATOR_LENGTH:
                raise ConfigurationError(
                    f"{name} bank must have {CORRELATOR_LENGTH} coefficients"
                )
            if np.any(bank < COEFF3.min_int) or np.any(bank > COEFF3.max_int):
                raise ConfigurationError(
                    f"{name} coefficients exceed the 3-bit signed range"
                )
        self._coeffs_i = coeffs_i.copy()
        self._coeffs_q = coeffs_q.copy()
        self._prepared = prepare_coefficients(coeffs_i, coeffs_q)

    def attach_metrics(self, registry) -> None:
        """Fold per-chunk throughput counters into a metrics registry.

        Exposes ``kernels.xcorr.chunks`` / ``kernels.xcorr.samples``
        and bumps ``kernels.backend.<name>.selected`` once, so a
        telemetry snapshot records which backend produced the run.
        Pass ``None`` to detach.
        """
        if registry is None:
            self._metric_chunks = None
            self._metric_samples = None
            return
        self._metric_chunks = registry.counter("kernels.xcorr.chunks")
        self._metric_samples = registry.counter("kernels.xcorr.samples")
        registry.counter(
            f"kernels.backend.{self._backend.name}.selected").inc()

    def reset(self) -> None:
        """Clear the sign-bit history (as a hardware reset would)."""
        self._history[:] = 0

    def _assemble_plane(self, samples: np.ndarray) -> np.ndarray:
        """[history | chunk] interleaved sign plane in scratch storage."""
        history = self._history.size
        plane = self._plane_scratch.view(history + 2 * samples.size)
        plane[:history] = self._history
        sign_plane(samples, out=plane[history:])
        # The new history is the last 63 sign pairs of the plane; the
        # scratch is distinct storage, so this holds for any chunk size.
        self._history[:] = plane[2 * samples.size:]
        if self._metric_chunks is not None:
            self._metric_chunks.inc()
            self._metric_samples.inc(samples.size)
        return plane

    def metric(self, samples: np.ndarray) -> np.ndarray:
        """Squared correlation metric per incoming sample.

        Consumes the chunk and updates the history.  ``metric[n]``
        corresponds to the window *ending* at chunk sample ``n``;
        windows that reach back before the first-ever sample see the
        reset history, which contributes zero to the correlation.
        """
        samples = np.asarray(samples)
        if samples.ndim != 1:
            raise StreamError("CrossCorrelator expects a 1-D sample chunk")
        if samples.size == 0:
            return np.zeros(0, dtype=np.int64)
        plane = self._assemble_plane(samples)
        return self._backend.xcorr_metric(plane, self._prepared,
                                          scratch=self._gemm_scratch)

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Boolean trigger per incoming sample (metric > threshold)."""
        return self.metric(samples) > self._threshold

    def detect(self, samples: np.ndarray, last: bool = False):
        """The fused datapath: ``(trigger, rising-edge indices)``.

        ``last`` carries the final trigger value of the previous chunk
        so edges are not double-counted across chunk boundaries.  One
        kernel call yields metric, threshold compare, and edges — the
        path :class:`repro.hw.dsp_core.CustomDspCore` runs per chunk.
        """
        samples = np.asarray(samples)
        if samples.ndim != 1:
            raise StreamError("CrossCorrelator expects a 1-D sample chunk")
        if samples.size == 0:
            return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.int64)
        plane = self._assemble_plane(samples)
        result = xcorr_detect(plane, self._prepared, self._threshold,
                              last=last, backend=self._backend,
                              scratch=self._gemm_scratch)
        return result.trigger, result.edges
