"""Antenna switching (Fig. 2's "Jammer Antenna Control" block).

The SBX daughterboard has two RF connectors: TX/RX (transmit, or
receive through the switch) and RX2 (receive only).  The custom core
drives antenna-control lines through the Debug/GPIO outputs (Fig. 1's
"Debug_IO_out (antenna control)") so the host — or the core itself —
can steer the ports at run time, e.g. to receive on RX2 while the
TX/RX port radiates jamming.

The control word travels in bits 8..15 of the control-flag register
(see :mod:`repro.hw.register_map`); this module gives those bits
meaning and tracks switching latency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import units
from repro.errors import ConfigurationError


class AntennaPort(enum.IntEnum):
    """The SBX RF connectors."""

    TX_RX = 0
    RX2 = 1


#: RF switch settling time, in FPGA clock cycles (sub-microsecond for
#: the SBX's GaAs switches; we budget 10 cycles = 100 ns).
SWITCH_LATENCY_CLOCKS = 10

# Bit layout inside the 8-bit antenna field.
_RX_PORT_BIT = 1 << 0
_TX_ENABLE_BIT = 1 << 1


@dataclass(frozen=True)
class AntennaConfig:
    """Decoded antenna-control state.

    Attributes:
        rx_port: Which connector feeds the receive chain.
        tx_enabled: Whether the TX/RX port is switched to transmit.
    """

    rx_port: AntennaPort = AntennaPort.RX2
    tx_enabled: bool = True

    def encode(self) -> int:
        """The 8-bit field for the control register's antenna bits."""
        word = 0
        if self.rx_port is AntennaPort.RX2:
            word |= _RX_PORT_BIT
        if self.tx_enabled:
            word |= _TX_ENABLE_BIT
        return word

    @classmethod
    def decode(cls, bits: int) -> "AntennaConfig":
        """Parse the 8-bit antenna field."""
        if not 0 <= bits <= 0xFF:
            raise ConfigurationError("antenna field must fit 8 bits")
        return cls(
            rx_port=AntennaPort.RX2 if bits & _RX_PORT_BIT
            else AntennaPort.TX_RX,
            tx_enabled=bool(bits & _TX_ENABLE_BIT),
        )

    @property
    def full_duplex_capable(self) -> bool:
        """Whether simultaneous RX and TX is physically possible.

        Receiving on RX2 while transmitting on TX/RX is the paper's
        full-duplex arrangement; receiving through the TX/RX switch
        while it radiates is not possible.
        """
        return self.rx_port is AntennaPort.RX2 or not self.tx_enabled

    @property
    def switch_latency_s(self) -> float:
        """Settling time of a switch to this configuration."""
        return units.clocks_to_seconds(SWITCH_LATENCY_CLOCKS)
