"""The jamming transmit controller (paper §2.4).

Once the trigger state machine fires, the controller takes over the
transmit data path and emits one of three user-selectable waveforms:

1. a pseudorandom 25 MHz white Gaussian noise signal,
2. a repetitive replay of up to the 512 most recently received samples,
3. the waveform currently streamed to the transmit buffer by the host.

Jamming duration (uptime) ranges from 1 sample (40 ns) to 2^32 samples
(~40 s); an optional delay between trigger and transmission lets the
user target specific packet locations ("surgical" jamming).  The RF
response begins 8 FPGA clock cycles after the trigger (1 cycle to
initiate plus ~7 to populate the DUC), i.e. 80 ns — the paper's T_init.

The controller operates on absolute sample timestamps so the
surrounding core can run vectorized: triggers come in as timestamps,
jam intervals go out as ``(start, end)`` spans, and the waveform for a
chunk is synthesized only where intervals overlap the chunk.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro import units
from repro.errors import ConfigurationError, StreamError

#: Clock cycles from trigger to first RF sample out of the DUC.
INIT_LATENCY_CLOCKS = 8

#: The same latency expressed in baseband samples (80 ns = 2 samples).
INIT_LATENCY_SAMPLES = INIT_LATENCY_CLOCKS // units.CLOCKS_PER_SAMPLE

#: Maximum replay-buffer depth in samples (paper §2.4).
MAX_REPLAY_LENGTH = 512

#: Maximum jam uptime in samples.  The hardware's 32-bit uptime
#: counter runs on the 100 MHz clock (2^32 cycles ~ 42.9 s, the
#: paper's "about 40 s"); at 4 clocks per baseband sample that is
#: 2^30 samples.
MAX_UPTIME_SAMPLES = 2 ** 32 // units.CLOCKS_PER_SAMPLE


class JamWaveform(enum.IntEnum):
    """Waveform presets, encoded as the 2-bit register field."""

    WGN = 0
    REPLAY = 1
    HOST_STREAM = 2


@dataclass(frozen=True)
class JamInterval:
    """One scheduled jamming burst on the absolute sample timeline.

    ``start``/``end`` delimit the transmitted span (end exclusive);
    ``trigger_time`` is the FSM completion time that caused it.
    """

    trigger_time: int
    start: int
    end: int
    waveform: JamWaveform


class TransmitController:
    """Schedules jam bursts and synthesizes the jamming waveform."""

    def __init__(self, waveform: JamWaveform = JamWaveform.WGN,
                 uptime_samples: int = 2500, delay_samples: int = 0,
                 wgn_seed: int = 0x5EED, replay_length: int = MAX_REPLAY_LENGTH,
                 amplitude: float = 1.0) -> None:
        self.waveform = waveform
        self.uptime_samples = uptime_samples
        self.delay_samples = delay_samples
        self.replay_length = replay_length
        self.amplitude = amplitude
        self._wgn_seed = int(wgn_seed)
        self.continuous = False
        self._busy_until = -1
        self._rx_history = np.zeros(0, dtype=np.complex128)
        self._host_waveform = np.zeros(0, dtype=np.complex128)
        # Waveform snapshots per active interval, keyed by interval start.
        self._interval_sources: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Configuration

    @property
    def waveform(self) -> JamWaveform:
        """Selected jamming waveform preset."""
        return self._waveform

    @waveform.setter
    def waveform(self, value: JamWaveform) -> None:
        self._waveform = JamWaveform(value)

    @property
    def uptime_samples(self) -> int:
        """Jam burst length in baseband samples."""
        return self._uptime

    @uptime_samples.setter
    def uptime_samples(self, value: int) -> None:
        if not 1 <= value <= MAX_UPTIME_SAMPLES:
            raise ConfigurationError(
                f"uptime {value} outside [1, {MAX_UPTIME_SAMPLES}] samples"
            )
        self._uptime = int(value)

    @property
    def delay_samples(self) -> int:
        """Extra delay between trigger and burst start, in samples."""
        return self._delay

    @delay_samples.setter
    def delay_samples(self, value: int) -> None:
        if not 0 <= value <= MAX_UPTIME_SAMPLES:
            raise ConfigurationError("delay_samples must be a 32-bit count")
        self._delay = int(value)

    @property
    def replay_length(self) -> int:
        """Replay capture depth in samples (1..512)."""
        return self._replay_length

    @replay_length.setter
    def replay_length(self, value: int) -> None:
        if not 1 <= value <= MAX_REPLAY_LENGTH:
            raise ConfigurationError(
                f"replay length {value} outside [1, {MAX_REPLAY_LENGTH}]"
            )
        self._replay_length = int(value)

    @property
    def amplitude(self) -> float:
        """Full-scale amplitude of the synthesized waveform."""
        return self._amplitude

    @amplitude.setter
    def amplitude(self, value: float) -> None:
        if not 0.0 < value <= 1.0:
            raise ConfigurationError("amplitude must be in (0, 1] full scale")
        self._amplitude = float(value)

    @property
    def wgn_seed(self) -> int:
        """Seed of the hardware WGN generator."""
        return self._wgn_seed

    @wgn_seed.setter
    def wgn_seed(self, value: int) -> None:
        self._wgn_seed = int(value) & 0x3FFF_FFFF

    def set_host_waveform(self, samples: np.ndarray) -> None:
        """Install the host-streamed transmit buffer (cycled during jams)."""
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.ndim != 1 or samples.size == 0:
            raise StreamError("host waveform must be a non-empty 1-D array")
        self._host_waveform = samples.copy()

    def reset(self) -> None:
        """Abort any active burst and clear capture history."""
        self._busy_until = -1
        self._rx_history = np.zeros(0, dtype=np.complex128)
        self._interval_sources.clear()

    # ------------------------------------------------------------------
    # Scheduling

    def schedule(self, trigger_times: list[int]) -> list[JamInterval]:
        """Turn FSM jam triggers into transmit intervals.

        Triggers that arrive while a previous burst (including its
        delay period) is still pending are ignored, as the hardware's
        single transmit pipeline cannot queue overlapping bursts.
        """
        intervals: list[JamInterval] = []
        for trigger in trigger_times:
            if trigger < self._busy_until:
                continue
            start = trigger + INIT_LATENCY_SAMPLES + self._delay
            end = start + self._uptime
            self._busy_until = end
            intervals.append(JamInterval(
                trigger_time=trigger, start=start, end=end,
                waveform=self._waveform,
            ))
            if self._waveform is JamWaveform.REPLAY:
                self._interval_sources[start] = self._capture_replay()
        return intervals

    def _capture_replay(self) -> np.ndarray:
        """Snapshot the most recent received samples for replay."""
        if self._rx_history.size == 0:
            return np.zeros(1, dtype=np.complex128)
        return self._rx_history[-self._replay_length:].copy()

    def observe_rx(self, rx_chunk: np.ndarray) -> None:
        """Feed received samples into the replay capture buffer."""
        rx_chunk = np.asarray(rx_chunk, dtype=np.complex128)
        if rx_chunk.size == 0:
            return
        combined = np.concatenate([self._rx_history, rx_chunk])
        self._rx_history = combined[-MAX_REPLAY_LENGTH:]

    # ------------------------------------------------------------------
    # Waveform synthesis

    def _wgn_samples(self, interval_start: int, offset: int, count: int) -> np.ndarray:
        """Deterministic WGN: a per-burst stream seeded from the burst start.

        Seeding from ``(seed, interval_start)`` makes the synthesized
        waveform independent of how the timeline is chunked.
        """
        rng = np.random.default_rng((self._wgn_seed, interval_start))
        if offset:
            rng.standard_normal(2 * offset)  # advance the stream
        pairs = rng.standard_normal(2 * count)
        samples = (pairs[0::2] + 1j * pairs[1::2]) / np.sqrt(2.0)
        return samples

    def synthesize(self, interval: JamInterval, chunk_start: int,
                   chunk_length: int) -> tuple[int, np.ndarray]:
        """Waveform samples where ``interval`` overlaps the chunk.

        Returns ``(local_offset, samples)``; ``samples`` may be empty
        when there is no overlap.
        """
        lo = max(interval.start, chunk_start)
        hi = min(interval.end, chunk_start + chunk_length)
        if hi <= lo:
            return 0, np.zeros(0, dtype=np.complex128)
        offset_in_burst = lo - interval.start
        count = hi - lo
        if interval.waveform is JamWaveform.WGN:
            wave = self._wgn_samples(interval.start, offset_in_burst, count)
        elif interval.waveform is JamWaveform.REPLAY:
            source = self._interval_sources.get(
                interval.start, np.zeros(1, dtype=np.complex128)
            )
            idx = (offset_in_burst + np.arange(count)) % source.size
            wave = source[idx]
        else:
            if self._host_waveform.size == 0:
                # An empty host transmit buffer radiates silence, as
                # an un-filled hardware FIFO would — never a crash.
                wave = np.zeros(count, dtype=np.complex128)
            else:
                idx = (offset_in_burst
                       + np.arange(count)) % self._host_waveform.size
                wave = self._host_waveform[idx]
        return lo - chunk_start, wave * self._amplitude

    def release_interval(self, interval: JamInterval) -> None:
        """Drop the replay snapshot of a finished burst."""
        self._interval_sources.pop(interval.start, None)

    def cancel_interval(self, interval: JamInterval) -> None:
        """Abort a just-scheduled burst before any sample is emitted.

        Used by the watchdog's duty-cycle guard: a vetoed burst must
        also free the transmit pipeline, otherwise the controller would
        stay busy for a burst that never airs.
        """
        self._interval_sources.pop(interval.start, None)
        if self._busy_until == interval.end:
            self._busy_until = interval.trigger_time
