"""The multi-standard stacked correlator bank (K protocols, one pass).

The same Drexel lab's FPGA multi-standard packet detector runs several
run-time-swappable preamble correlators concurrently; this facade is
that block grafted onto the paper's sign-bit correlator.  Up to
:data:`repro.hw.register_map.MAX_BANKS` 64-tap coefficient banks are
stacked into one block-Toeplitz operand
(:func:`repro.kernels.prepare_stacked`) and evaluated over a *single*
shared interleaved sign plane by one dual-GEMM pass per chunk —
``K`` protocol detections for roughly the cost of the widened GEMM,
with the sign slicing, history stitch, and padded-plane copy amortized
across banks.

Per-bank state is exactly what ``K`` independent
:class:`repro.hw.cross_correlator.CrossCorrelator` instances would
keep: one shared 63-pair sign history (every bank is 64 taps, so the
histories coincide) and a per-bank trigger carry for rising-edge
extraction.  Byte-identity of each bank's trigger/edge stream to its
standalone counterpart is the invariant the parity suites pin.

Banks are hot-swappable: :meth:`BankedCrossCorrelator.load_bank`
replaces one bank's coefficients between chunks (the register bus
write path lands here) and takes effect on the next chunk — the sign
history is received *data*, not coefficient state, so it survives the
swap just as the hardware shift register would.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.fixed_point import COEFF3
from repro.errors import ConfigurationError, StreamError
from repro.hw.register_map import CORRELATOR_LENGTH, MAX_BANKS
from repro.kernels import get_backend, prepare_stacked, sign_plane, \
    xcorr_detect_stacked
from repro.runtime.buffers import ScratchBuffer

#: Host-side protocol names when the caller provides none.
DEFAULT_BANK_LABELS = tuple(f"bank{k}" for k in range(MAX_BANKS))


def _check_bank(coeffs_i: np.ndarray,
                coeffs_q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    coeffs_i = np.asarray(coeffs_i, dtype=np.int64)
    coeffs_q = np.asarray(coeffs_q, dtype=np.int64)
    for name, bank in (("I", coeffs_i), ("Q", coeffs_q)):
        if bank.ndim != 1 or bank.size != CORRELATOR_LENGTH:
            raise ConfigurationError(
                f"{name} bank must have {CORRELATOR_LENGTH} coefficients"
            )
        if np.any(bank < COEFF3.min_int) or np.any(bank > COEFF3.max_int):
            raise ConfigurationError(
                f"{name} coefficients exceed the 3-bit signed range"
            )
    return coeffs_i.copy(), coeffs_q.copy()


class BankedCrossCorrelator:
    """K stacked 64-tap sign-bit correlators sharing one GEMM pass."""

    def __init__(self, backend: str | None = None) -> None:
        self._backend = get_backend(backend)
        self._banks: list[tuple[np.ndarray, np.ndarray]] = []
        self._thresholds = np.zeros(0, dtype=np.int64)
        self._labels: tuple[str, ...] = ()
        self._stacked = None
        # Every bank is 64 taps, so the shared history is the same 63
        # sign pairs a single correlator carries.
        self._history = np.zeros(2 * (CORRELATOR_LENGTH - 1),
                                 dtype=np.int8)
        self._last = np.zeros(0, dtype=bool)
        self._plane_scratch = ScratchBuffer(np.int8)
        self._gemm_scratch: ScratchBuffer | None = None
        self._metric_chunks = None
        self._metric_samples = None

    # ------------------------------------------------------------------
    # Configuration

    @property
    def backend(self) -> str:
        """Name of the kernel backend this instance dispatches to."""
        return self._backend.name

    @property
    def n_banks(self) -> int:
        """Number of loaded banks (0 = unconfigured)."""
        return len(self._banks)

    @property
    def labels(self) -> tuple[str, ...]:
        """Host-side protocol name per bank."""
        return self._labels

    @property
    def thresholds(self) -> np.ndarray:
        """Per-bank detection thresholds (copy)."""
        return self._thresholds.copy()

    @property
    def prepared_coefficients(self):
        """The stacked kernel operand (frozen), or ``None``."""
        return self._stacked

    def bank_coefficients(self, index: int
                          ) -> tuple[np.ndarray, np.ndarray]:
        """Bank ``index``'s I and Q coefficient banks (copies)."""
        coeffs_i, coeffs_q = self._banks[index]
        return coeffs_i.copy(), coeffs_q.copy()

    def load_banks(self, banks, thresholds, labels=None) -> None:
        """Load a full bank set: ``K`` ``(coeffs_i, coeffs_q)`` pairs.

        Replaces any previous configuration; per-bank trigger carries
        restart cleared (as ``K`` freshly-reset single correlators
        would) while the shared sign history — received data — is
        kept.
        """
        banks = [_check_bank(ci, cq) for ci, cq in banks]
        if not 1 <= len(banks) <= MAX_BANKS:
            raise ConfigurationError(
                f"bank count must be 1..{MAX_BANKS}, got {len(banks)}"
            )
        thresholds = np.asarray(thresholds, dtype=np.int64)
        if thresholds.shape != (len(banks),):
            raise ConfigurationError(
                f"expected {len(banks)} thresholds, "
                f"got shape {thresholds.shape}"
            )
        if np.any(thresholds < 0) or np.any(thresholds > 0xFFFF_FFFF):
            raise ConfigurationError(
                "per-bank thresholds must fit the 32-bit register"
            )
        if labels is None:
            labels = DEFAULT_BANK_LABELS[:len(banks)]
        labels = tuple(str(label) for label in labels)
        if len(labels) != len(banks):
            raise ConfigurationError(
                f"expected {len(banks)} labels, got {len(labels)}"
            )
        self._banks = banks
        self._thresholds = thresholds.copy()
        self._labels = labels
        self._last = np.zeros(len(banks), dtype=bool)
        self._restack()

    def load_bank(self, index: int, coeffs_i: np.ndarray,
                  coeffs_q: np.ndarray, label: str | None = None) -> None:
        """Hot-swap one bank's coefficients (effective next chunk).

        The shared sign history and every bank's trigger carry are
        untouched — swapping a template does not clear the hardware
        shift register or the comparator output registers.
        """
        self._require_configured()
        if not 0 <= index < len(self._banks):
            raise ConfigurationError(
                f"bank index {index} outside the {len(self._banks)} "
                "loaded banks"
            )
        self._banks[index] = _check_bank(coeffs_i, coeffs_q)
        if label is not None:
            labels = list(self._labels)
            labels[index] = str(label)
            self._labels = tuple(labels)
        self._restack()

    def set_label(self, index: int, label: str) -> None:
        """Rename one bank's host-side protocol label."""
        self._require_configured()
        if not 0 <= index < len(self._banks):
            raise ConfigurationError(
                f"bank index {index} outside the {len(self._banks)} "
                "loaded banks"
            )
        labels = list(self._labels)
        labels[index] = str(label)
        self._labels = tuple(labels)

    def set_threshold(self, index: int, threshold: int) -> None:
        """Retune one bank's detection threshold (effective next chunk)."""
        self._require_configured()
        if not 0 <= index < len(self._banks):
            raise ConfigurationError(
                f"bank index {index} outside the {len(self._banks)} "
                "loaded banks"
            )
        threshold = int(threshold)
        if not 0 <= threshold <= 0xFFFF_FFFF:
            raise ConfigurationError(
                "threshold must fit the 32-bit register"
            )
        self._thresholds[index] = threshold

    def _restack(self) -> None:
        self._stacked = prepare_stacked(self._banks)
        if self._gemm_scratch is None \
                or self._gemm_scratch.dtype != self._stacked.gemm_dtype:
            self._gemm_scratch = ScratchBuffer(self._stacked.gemm_dtype)

    def _require_configured(self) -> None:
        if self._stacked is None:
            raise ConfigurationError(
                "no banks loaded; call load_banks() first"
            )

    # ------------------------------------------------------------------
    # Telemetry

    def attach_metrics(self, registry) -> None:
        """Fold stacked-pass throughput counters into a registry.

        Exposes ``kernels.xcorr_stacked.chunks`` /
        ``kernels.xcorr_stacked.samples`` and bumps the shared
        ``kernels.backend.<name>.selected`` once.  Pass ``None`` to
        detach.
        """
        if registry is None:
            self._metric_chunks = None
            self._metric_samples = None
            return
        self._metric_chunks = registry.counter("kernels.xcorr_stacked.chunks")
        self._metric_samples = registry.counter(
            "kernels.xcorr_stacked.samples")
        registry.counter(
            f"kernels.backend.{self._backend.name}.selected").inc()

    # ------------------------------------------------------------------
    # Streaming state

    def reset(self) -> None:
        """Clear the sign history and trigger carries (hardware reset)."""
        self._history[:] = 0
        self._last[:] = False

    def clear_last(self) -> None:
        """Forget the trigger carries only (used across skipped gaps)."""
        self._last[:] = False

    def _assemble_plane(self, samples: np.ndarray) -> np.ndarray:
        history = self._history.size
        plane = self._plane_scratch.view(history + 2 * samples.size)
        plane[:history] = self._history
        sign_plane(samples, out=plane[history:])
        self._history[:] = plane[2 * samples.size:]
        if self._metric_chunks is not None:
            self._metric_chunks.inc()
            self._metric_samples.inc(samples.size)
        return plane

    def metric(self, samples: np.ndarray) -> np.ndarray:
        """Per-bank squared metric, ``(K, n)``; consumes the chunk."""
        self._require_configured()
        samples = np.asarray(samples)
        if samples.ndim != 1:
            raise StreamError(
                "BankedCrossCorrelator expects a 1-D sample chunk")
        if samples.size == 0:
            return np.zeros((self.n_banks, 0), dtype=np.int64)
        plane = self._assemble_plane(samples)
        return self._backend.xcorr_metric_stacked(
            plane, self._stacked, scratch=self._gemm_scratch)

    def detect(self, samples: np.ndarray
               ) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
        """One stacked pass: ``((K, n) trigger, per-bank edge indices)``.

        The per-bank trigger carry is owned here (unlike the
        single-bank facade, where the core threads it through), so the
        caller simply feeds chunks.
        """
        self._require_configured()
        samples = np.asarray(samples)
        if samples.ndim != 1:
            raise StreamError(
                "BankedCrossCorrelator expects a 1-D sample chunk")
        if samples.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return (np.zeros((self.n_banks, 0), dtype=bool),
                    tuple(empty for _ in range(self.n_banks)))
        plane = self._assemble_plane(samples)
        result = xcorr_detect_stacked(plane, self._stacked,
                                      self._thresholds, last=self._last,
                                      backend=self._backend,
                                      scratch=self._gemm_scratch)
        self._last = result.last
        return result.trigger, result.edges
