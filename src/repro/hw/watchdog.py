"""The DSP-core watchdog: last-line defence inside the FPGA fabric.

Host-side hardening (verified writes, register scrubbing) repairs the
control plane, but a corrupted register can still reach the core
between a fault and its repair.  The watchdog bounds the damage from
inside the core, the way real safety logic is synthesized next to the
datapath:

* a **jam duty-cycle guard** — transmitted jamming time over a sliding
  window may never exceed a configured fraction, no matter what the
  uptime register claims (a runaway jammer is an FCC incident, not a
  bug report);
* a **trigger-FSM re-arm timeout** — a partially-advanced multi-stage
  trigger that has waited longer than the timeout is reset, so a
  corrupted (huge) combination window cannot latch a stale stage-1
  event forever;
* **safe-state entry on illegal register contents** — a register word
  the core cannot decode (unknown trigger source, undecodable
  waveform select, zero uptime) flags the register and suppresses
  transmission until a legal word lands, instead of crashing the
  stream thread.

Every intervention is recorded as a :class:`WatchdogTrip` so the host
health report can surface what the core had to do.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.telemetry.tracer import CAT_WATCHDOG, NULL_TRACER, Tracer

#: Default duty-cycle accounting window: 10 ms of baseband (250k
#: samples at 25 MSPS) — long against any burst, short against an
#: experiment.
DEFAULT_DUTY_WINDOW_SAMPLES = 250_000

#: Trip reasons, used as the ``reason`` field of :class:`WatchdogTrip`.
TRIP_DUTY_CYCLE = "duty-cycle"
TRIP_REARM_TIMEOUT = "rearm-timeout"
TRIP_ILLEGAL_REGISTER = "illegal-register"


@dataclass(frozen=True)
class WatchdogConfig:
    """Watchdog policy knobs.

    Attributes:
        max_duty_cycle: Largest allowed fraction of the sliding window
            the jammer may transmit (1.0 disables the guard).
        duty_window_samples: Sliding-window length in baseband samples.
        rearm_timeout_samples: Longest a partially-advanced trigger
            FSM may stay armed before being reset (0 disables).
        safe_state_on_illegal: Enter safe state on undecodable
            register contents instead of raising into the stream path.
    """

    max_duty_cycle: float = 1.0
    duty_window_samples: int = DEFAULT_DUTY_WINDOW_SAMPLES
    rearm_timeout_samples: int = 0
    safe_state_on_illegal: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.max_duty_cycle <= 1.0:
            raise ConfigurationError(
                f"max_duty_cycle {self.max_duty_cycle} outside (0, 1]"
            )
        if self.duty_window_samples < 1:
            raise ConfigurationError("duty_window_samples must be >= 1")
        if self.rearm_timeout_samples < 0:
            raise ConfigurationError("rearm_timeout_samples must be >= 0")


@dataclass(frozen=True)
class WatchdogTrip:
    """One watchdog intervention, stamped with the core sample clock."""

    time: int
    reason: str
    detail: str


class Watchdog:
    """Run-time state of the core watchdog.

    The duty guard is a sliding-window budget: admitted transmit spans
    are recorded, and a new burst is vetoed when its span would push
    the transmitted time inside the trailing window past
    ``max_duty_cycle``.  The guarantee is exact for bursts shorter
    than the window and conservative otherwise.
    """

    def __init__(self, config: WatchdogConfig | None = None) -> None:
        self.config = config if config is not None else WatchdogConfig()
        self.trips: list[WatchdogTrip] = []
        self._spans: deque[tuple[int, int]] = deque()
        self._illegal: dict[int, str] = {}
        #: Telemetry probe: every trip also lands in the trace.
        self.tracer: Tracer = NULL_TRACER

    def _record_trip(self, trip: WatchdogTrip) -> None:
        self.trips.append(trip)
        self.tracer.instant(f"watchdog.{trip.reason}", CAT_WATCHDOG,
                            trip.time, detail=trip.detail)

    # ------------------------------------------------------------------
    # Duty-cycle guard

    def _prune(self, now: int) -> None:
        horizon = now - self.config.duty_window_samples
        while self._spans and self._spans[0][1] <= horizon:
            self._spans.popleft()

    def _busy_samples(self, now: int) -> int:
        lo = now - self.config.duty_window_samples
        busy = 0
        for start, end in self._spans:
            overlap = min(end, now) - max(start, lo)
            if overlap > 0:
                busy += overlap
        return busy

    def duty_cycle(self, now: int) -> float:
        """Transmitted fraction of the window ending at ``now``."""
        self._prune(now)
        return self._busy_samples(now) / self.config.duty_window_samples

    def admit_interval(self, start: int, end: int) -> bool:
        """Admit or veto one scheduled jam burst.

        Admitted spans are recorded against the budget; vetoed bursts
        leave no trace beyond the trip record.
        """
        if self.config.max_duty_cycle >= 1.0:
            self._record(start, end)
            return True
        self._prune(start)
        window = self.config.duty_window_samples
        budget = self.config.max_duty_cycle * window
        projected = self._busy_samples(start) + min(end - start, window)
        if projected > budget:
            self._record_trip(WatchdogTrip(
                time=start, reason=TRIP_DUTY_CYCLE,
                detail=f"burst [{start}, {end}) vetoed: projected duty "
                       f"{projected / window:.3f} exceeds "
                       f"{self.config.max_duty_cycle:.3f}",
            ))
            return False
        self._record(start, end)
        return True

    def continuous_allowance(self, chunk_start: int, n: int) -> int:
        """Samples of a continuous-mode chunk the budget still allows.

        Continuous jamming is throttled rather than vetoed: each chunk
        may transmit up to the remaining window budget, which realizes
        ``max_duty_cycle`` as a long-run duty bound.
        """
        if self.config.max_duty_cycle >= 1.0:
            self._record(chunk_start, chunk_start + n)
            return n
        self._prune(chunk_start)
        window = self.config.duty_window_samples
        budget = self.config.max_duty_cycle * window
        remaining = int(budget - self._busy_samples(chunk_start))
        allowed = max(0, min(n, remaining))
        if allowed:
            self._record(chunk_start, chunk_start + allowed)
        if allowed < n:
            self._record_trip(WatchdogTrip(
                time=chunk_start, reason=TRIP_DUTY_CYCLE,
                detail=f"continuous transmission throttled to {allowed} of "
                       f"{n} samples by the duty budget",
            ))
        return allowed

    def _record(self, start: int, end: int) -> None:
        if end > start:
            self._spans.append((start, end))

    # ------------------------------------------------------------------
    # Safe state on illegal register contents

    def flag_illegal(self, address: int, time: int, detail: str) -> None:
        """Mark a register as holding undecodable contents."""
        if address not in self._illegal:
            self._record_trip(WatchdogTrip(
                time=time, reason=TRIP_ILLEGAL_REGISTER,
                detail=f"register {address} holds illegal contents: {detail}",
            ))
        self._illegal[address] = detail

    def clear_illegal(self, address: int) -> None:
        """A legal word landed; the register is trustworthy again."""
        self._illegal.pop(address, None)

    @property
    def safe_state(self) -> bool:
        """Whether transmission is suppressed by illegal registers."""
        return bool(self._illegal)

    @property
    def illegal_registers(self) -> dict[int, str]:
        """Currently-flagged registers and why (copy)."""
        return dict(self._illegal)

    # ------------------------------------------------------------------
    # Trigger-FSM re-arm timeout

    def check_rearm(self, fsm, now: int) -> bool:
        """Reset a stale partially-advanced FSM; True if it tripped."""
        timeout = self.config.rearm_timeout_samples
        if timeout == 0:
            return False
        armed_since = fsm.armed_since
        if armed_since is None or now - armed_since <= timeout:
            return False
        fsm.reset()
        self._record_trip(WatchdogTrip(
            time=now, reason=TRIP_REARM_TIMEOUT,
            detail=f"trigger FSM armed since sample {armed_since} "
                   f"re-armed after {now - armed_since} samples",
        ))
        return True

    # ------------------------------------------------------------------

    def trips_by_reason(self, reason: str) -> list[WatchdogTrip]:
        """Trips matching one reason string."""
        return [trip for trip in self.trips if trip.reason == reason]

    def reset(self) -> None:
        """Clear run-time state (trip history included)."""
        self.trips.clear()
        self._spans.clear()
        self._illegal.clear()
