"""Sample-accurate model of the paper's custom USRP N210 FPGA core.

The real system nests a custom DSP core inside the N210's digital
down-conversion chain (paper Fig. 1/2).  This package reproduces that
core block-for-block:

* :mod:`repro.hw.registers` — the UHD user register bus (32-bit data,
  8-bit address) through which the host reconfigures the core at run
  time.
* :mod:`repro.hw.register_map` — the 24-register layout used by the
  design, including packed 3-bit correlator coefficients.
* :mod:`repro.hw.cross_correlator` — the 64-sample sign-bit weighted
  phase correlator (paper Fig. 3).
* :mod:`repro.hw.banked_correlator` — up to four stacked protocol
  banks evaluated in one dual-GEMM pass (multi-standard detection).
* :mod:`repro.hw.energy_differentiator` — the 32-sample moving-sum
  energy rise/fall detector (paper Fig. 4).
* :mod:`repro.hw.trigger` — the three-stage trigger event state
  machine (paper §2.4).
* :mod:`repro.hw.tx_controller` — the jamming transmit controller with
  the three waveform presets, delay, and uptime.
* :mod:`repro.hw.dsp_core` — the wiring of the four blocks plus event
  bookkeeping (paper Fig. 2).
* :mod:`repro.hw.ddc` / :mod:`repro.hw.duc` — down/up conversion chain
  models (quantization, gain, pipeline latency).
* :mod:`repro.hw.usrp` — the USRP N210 + SBX device model.
* :mod:`repro.hw.uhd` — a UHD-like host driver exposing named setters
  that translate to register writes, as gr-uhd does — hardened with
  verified writes and a shadow-map ``scrub()`` repair pass.
* :mod:`repro.hw.watchdog` — the in-fabric watchdog (jam duty-cycle
  guard, trigger-FSM re-arm timeout, safe state on illegal register
  contents).

Timing is tracked in FPGA clock cycles (100 MHz) and baseband samples
(25 MSPS); every block declares its pipeline latency so the Fig. 5
timeline analysis is exact.
"""

from __future__ import annotations

from repro.hw.registers import UserRegisterBus
from repro.hw.banked_correlator import BankedCrossCorrelator
from repro.hw.cross_correlator import CrossCorrelator, quantize_coefficients
from repro.hw.energy_differentiator import EnergyDifferentiator
from repro.hw.trigger import TriggerMode, TriggerSource, TriggerStateMachine
from repro.hw.tx_controller import JamWaveform, TransmitController
from repro.hw.dsp_core import CustomDspCore, DetectionEvent, JamEvent
from repro.hw.usrp import SbxFrontend, UsrpN210
from repro.hw.uhd import DriverHealth, UhdDriver
from repro.hw.watchdog import Watchdog, WatchdogConfig, WatchdogTrip
from repro.hw.antenna import AntennaConfig, AntennaPort
from repro.hw.impairments import TYPICAL_N210, FrontEndImpairments
from repro.hw.vita_time import VitaTimestamp, VitaTimeSource

__all__ = [
    "UserRegisterBus",
    "BankedCrossCorrelator",
    "CrossCorrelator",
    "quantize_coefficients",
    "EnergyDifferentiator",
    "TriggerMode",
    "TriggerSource",
    "TriggerStateMachine",
    "JamWaveform",
    "TransmitController",
    "CustomDspCore",
    "DetectionEvent",
    "JamEvent",
    "SbxFrontend",
    "UsrpN210",
    "UhdDriver",
    "DriverHealth",
    "Watchdog",
    "WatchdogConfig",
    "WatchdogTrip",
    "AntennaConfig",
    "AntennaPort",
    "FrontEndImpairments",
    "TYPICAL_N210",
    "VitaTimestamp",
    "VitaTimeSource",
]
