"""The UHD user register bus.

UHD exposes a "user register" interface to custom FPGA logic: a 32-bit
data bus with an 8-bit address bus, giving up to 255 programmable
32-bit registers (paper §2.2).  The paper's design uses 24 of them for
correlator coefficients, thresholds, jammer settings, and antenna
control.

The bus model supports write callbacks so hardware blocks can react to
a register update on the cycle it lands, mirroring how the real core's
control registers take effect immediately (the paper reports
personality switches with "a small latency equivalent to the latency of
the UHD user setting bus").
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import RegisterError

#: Number of addressable user registers (8-bit address bus; address 255
#: is reserved by UHD).
NUM_REGISTERS = 255

#: Mask for the 32-bit data bus.
WORD_MASK = 0xFFFF_FFFF


class UserRegisterBus:
    """A bank of 32-bit registers with an 8-bit address space.

    Values are stored as unsigned 32-bit words.  Hardware blocks
    subscribe to addresses they care about and are called synchronously
    on every write.
    """

    def __init__(self) -> None:
        self._values = [0] * NUM_REGISTERS
        self._watchers: dict[int, list[Callable[[int], None]]] = {}
        self._write_count = 0

    @staticmethod
    def _check_address(address: int) -> None:
        if not 0 <= address < NUM_REGISTERS:
            raise RegisterError(
                f"register address {address} outside [0, {NUM_REGISTERS})"
            )

    def write(self, address: int, value: int) -> None:
        """Write a 32-bit word to ``address``.

        Width policy — **reject, never mask**: a value outside
        ``[0, WORD_MASK]`` raises :class:`RegisterError` instead of
        being silently truncated to its low 32 bits.  Silent masking
        would reprogram the hardware with a different value than the
        caller asked for; callers that want saturation semantics must
        clip explicitly (e.g. ``register_map.clip_jam_uptime``) so the
        intent is visible at the call site.
        """
        self._check_address(address)
        if not 0 <= value <= WORD_MASK:
            raise RegisterError(
                f"value {value:#x} does not fit the 32-bit data bus "
                "(the bus rejects out-of-range words, it never masks)"
            )
        self._values[address] = value
        self._write_count += 1
        for callback in self._watchers.get(address, []):
            callback(value)

    def read(self, address: int) -> int:
        """Read back a register (host-visible readback path)."""
        self._check_address(address)
        return self._values[address]

    def watch(self, address: int, callback: Callable[[int], None]) -> None:
        """Register ``callback(value)`` to run on writes to ``address``."""
        self._check_address(address)
        self._watchers.setdefault(address, []).append(callback)

    @property
    def write_count(self) -> int:
        """Total number of writes, used to model reconfiguration cost."""
        return self._write_count


def pack_signed_fields(values: list[int], bits_per_field: int) -> list[int]:
    """Pack small signed integers into 32-bit words, LSB first.

    Each word holds ``32 // bits_per_field`` fields.  Used to ship the
    64 x 3-bit correlator coefficients over the register bus.
    """
    if bits_per_field < 1 or bits_per_field > 32:
        raise RegisterError("bits_per_field must be in [1, 32]")
    per_word = 32 // bits_per_field
    lo = -(1 << (bits_per_field - 1))
    hi = (1 << (bits_per_field - 1)) - 1
    mask = (1 << bits_per_field) - 1
    words: list[int] = []
    for start in range(0, len(values), per_word):
        word = 0
        for i, value in enumerate(values[start:start + per_word]):
            if not lo <= value <= hi:
                raise RegisterError(
                    f"value {value} does not fit in {bits_per_field} signed bits"
                )
            word |= (value & mask) << (i * bits_per_field)
        words.append(word)
    return words


def unpack_signed_fields(words: list[int], bits_per_field: int,
                         count: int) -> list[int]:
    """Inverse of :func:`pack_signed_fields`; returns ``count`` values."""
    if bits_per_field < 1 or bits_per_field > 32:
        raise RegisterError("bits_per_field must be in [1, 32]")
    per_word = 32 // bits_per_field
    mask = (1 << bits_per_field) - 1
    sign_bit = 1 << (bits_per_field - 1)
    values: list[int] = []
    for word in words:
        for i in range(per_word):
            if len(values) == count:
                return values
            raw = (word >> (i * bits_per_field)) & mask
            values.append(raw - (raw & sign_bit) * 2)
    if len(values) < count:
        raise RegisterError(
            f"not enough packed words for {count} fields of {bits_per_field} bits"
        )
    return values
