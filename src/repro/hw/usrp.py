"""USRP N210 + SBX daughterboard device model.

Ties together the RF front end (tuning range and gain limits of the
SBX transceiver board), the DDC/DUC chains, and the custom DSP core.
The paper initializes both TX and RX chains at start-up to avoid
RX/TX switching time; the model reflects that by being full-duplex:
every ``process`` call consumes a received chunk and produces the
transmit chunk for the same span of the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError, HardwareError
from repro.hw.ddc import DigitalDownConverter
from repro.hw.dsp_core import CoreOutput, CustomDspCore
from repro.hw.duc import DigitalUpConverter
from repro.hw.registers import UserRegisterBus
from repro.hw.vita_time import VitaTimestamp, VitaTimeSource
from repro.hw.watchdog import Watchdog

if TYPE_CHECKING:  # repro.faults imports repro.hw; avoid the cycle.
    from repro.faults.stream import StreamFaultInjector
    from repro.telemetry.profiler import HostProfiler

#: SBX tuning range (Hz).  The paper quotes 400 MHz - 4 GHz; the board
#: datasheet extends to 4.4 GHz.
SBX_FREQ_MIN_HZ = 400e6
SBX_FREQ_MAX_HZ = 4.4e9

#: SBX instantaneous bandwidth (Hz).
SBX_BANDWIDTH_HZ = 40e6

#: SBX gain range (dB), both directions.
SBX_GAIN_MIN_DB = 0.0
SBX_GAIN_MAX_DB = 31.5


@dataclass
class SbxFrontend:
    """The agile SBX transceiver daughterboard.

    Attributes:
        center_freq_hz: Tuned RF center frequency.
        tx_gain_db: RF transmit gain within the SBX range.
        rx_gain_db: RF receive gain within the SBX range.
    """

    center_freq_hz: float = 2.484e9  # WiFi channel 14, as in the paper
    tx_gain_db: float = 15.0
    rx_gain_db: float = 15.0

    def __post_init__(self) -> None:
        self.tune(self.center_freq_hz)
        self.set_tx_gain(self.tx_gain_db)
        self.set_rx_gain(self.rx_gain_db)

    def tune(self, freq_hz: float) -> None:
        """Retune the front end; out-of-range requests are hardware errors."""
        if not SBX_FREQ_MIN_HZ <= freq_hz <= SBX_FREQ_MAX_HZ:
            raise HardwareError(
                f"SBX cannot tune to {freq_hz / 1e9:.3f} GHz "
                f"(range {SBX_FREQ_MIN_HZ / 1e6:.0f} MHz - "
                f"{SBX_FREQ_MAX_HZ / 1e9:.1f} GHz)"
            )
        self.center_freq_hz = float(freq_hz)

    def set_tx_gain(self, gain_db: float) -> None:
        """Set the RF transmit gain."""
        if not SBX_GAIN_MIN_DB <= gain_db <= SBX_GAIN_MAX_DB:
            raise HardwareError(
                f"SBX TX gain {gain_db} dB outside "
                f"[{SBX_GAIN_MIN_DB}, {SBX_GAIN_MAX_DB}] dB"
            )
        self.tx_gain_db = float(gain_db)

    def set_rx_gain(self, gain_db: float) -> None:
        """Set the RF receive gain."""
        if not SBX_GAIN_MIN_DB <= gain_db <= SBX_GAIN_MAX_DB:
            raise HardwareError(
                f"SBX RX gain {gain_db} dB outside "
                f"[{SBX_GAIN_MIN_DB}, {SBX_GAIN_MAX_DB}] dB"
            )
        self.rx_gain_db = float(gain_db)


class UsrpN210:
    """Full-duplex USRP N210 with the custom jamming core installed."""

    def __init__(self, frontend: SbxFrontend | None = None,
                 bus: UserRegisterBus | None = None,
                 vita_time: VitaTimeSource | None = None,
                 watchdog: Watchdog | None = None,
                 stream_faults: "StreamFaultInjector | None" = None) -> None:
        self.frontend = frontend if frontend is not None else SbxFrontend()
        self.bus = bus if bus is not None else UserRegisterBus()
        self.core = CustomDspCore(bus=self.bus, watchdog=watchdog)
        self.ddc = DigitalDownConverter(rx_gain_db=0.0)
        self.duc = DigitalUpConverter(tx_gain_db=0.0)
        self.vita_time = vita_time if vita_time is not None \
            else VitaTimeSource()
        #: Optional antenna-port fault stage (see :mod:`repro.faults`).
        self.stream_faults = stream_faults
        #: Telemetry probe: host profiling scopes around DDC/DUC.
        self.profiler: "HostProfiler | None" = None

    def timestamp_of(self, sample_index: int) -> "VitaTimestamp":
        """Absolute VITA time of an event's sample index (Fig. 1)."""
        return self.vita_time.timestamp(sample_index)

    def set_tx_amplitude_db(self, gain_db: float) -> None:
        """Set the digital TX scaling (on top of the SBX RF gain).

        The experiments sweep jammer power over a wider range than the
        31.5 dB SBX step allows by combining RF gain and digital
        scaling, exactly as the paper stacks attenuators.
        """
        self.duc.tx_gain_db = gain_db

    def process(self, rx_chunk: np.ndarray) -> CoreOutput:
        """Run one received chunk through RX -> core -> TX.

        ``rx_chunk`` is the complex baseband arriving at the antenna
        port (post channel).  The returned :class:`CoreOutput` carries
        the antenna-port transmit waveform for the same sample span.
        """
        rx_chunk = np.asarray(rx_chunk, dtype=np.complex128)
        if self.stream_faults is not None:
            rx_chunk = self.stream_faults.process(rx_chunk)
        # The DDC already quantizes its output to IQ16, so the core is
        # told not to re-quantize (no second pass over the chunk).
        if self.profiler is None:
            baseband = self.ddc.process(rx_chunk)
            output = self.core.process(baseband, quantized=True)
            output.tx = self.duc.process(output.tx)
            return output
        with self.profiler.profile("ddc"):
            baseband = self.ddc.process(rx_chunk)
        output = self.core.process(baseband, quantized=True)
        with self.profiler.profile("duc"):
            output.tx = self.duc.process(output.tx)
        return output

    def skip(self, n: int) -> None:
        """Advance the device timeline over ``n`` lost antenna samples.

        Keeps the DSP core's sample clock and the fault injector's
        schedule aligned when the recovery path drops a chunk.
        """
        if self.stream_faults is not None:
            self.stream_faults.skip(n)
        self.core.skip(n)

    def run(self, rx_signal: np.ndarray, chunk_size: int = 1 << 16) -> CoreOutput:
        """Process a complete signal in chunks and merge the outputs.

        Chunked processing is bit-identical to single-shot processing
        (the blocks carry state), so ``chunk_size`` is a throughput
        knob only.
        """
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        rx_signal = np.asarray(rx_signal, dtype=np.complex128)
        # The data path is length-preserving chunk by chunk, so the
        # whole transmit waveform is written into one preallocated
        # array instead of a per-chunk list merged at the end.
        tx = np.zeros(rx_signal.size, dtype=np.complex128)
        detections = []
        jams = []
        filled = 0
        for start in range(0, rx_signal.size, chunk_size):
            out = self.process(rx_signal[start:start + chunk_size])
            end = filled + out.tx.size
            if end > tx.size:  # defensive: a stage grew the chunk
                tx = np.concatenate([tx[:filled], out.tx])
                end = tx.size
            else:
                tx[filled:end] = out.tx
            filled = end
            detections.extend(out.detections)
            jams.extend(out.jams)
        if filled != tx.size:
            tx = tx[:filled]
        return CoreOutput(tx=tx, detections=detections, jams=jams)
