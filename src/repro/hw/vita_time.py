"""VITA-49 style timekeeping (the "Vita_Time (GPS Locked)" of Fig. 1).

The N210 stamps samples with VITA time — integer seconds plus
fractional seconds — optionally disciplined by a GPSDO.  The custom
core's event records carry absolute sample indices; this module
converts them to wall-clock timestamps and models the clock quality
(a free-running oscillator drifts, a GPS-locked one does not), which
matters when correlating jam events across devices in a testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class VitaTimestamp:
    """A VITA-49 integer/fractional-seconds timestamp."""

    full_seconds: int
    fractional_seconds: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fractional_seconds < 1.0:
            raise ConfigurationError("fractional_seconds must be in [0, 1)")

    @property
    def seconds(self) -> float:
        """The timestamp as a single float (loses LSBs after years)."""
        return self.full_seconds + self.fractional_seconds

    def __str__(self) -> str:
        return f"{self.full_seconds}.{int(self.fractional_seconds * 1e9):09d}"


class VitaTimeSource:
    """Converts the core's sample clock to absolute VITA time.

    Attributes:
        epoch_seconds: Absolute time of sample 0.
        gps_locked: Whether a GPSDO disciplines the clock.
        drift_ppm: Frequency error of a free-running clock (ignored
            when GPS locked).
    """

    def __init__(self, epoch_seconds: float = 0.0, gps_locked: bool = True,
                 drift_ppm: float = 2.5,
                 sample_rate: float = units.BASEBAND_RATE) -> None:
        if sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        if drift_ppm < 0:
            raise ConfigurationError("drift_ppm must be non-negative")
        self.epoch_seconds = float(epoch_seconds)
        self.gps_locked = bool(gps_locked)
        self.drift_ppm = float(drift_ppm)
        self._sample_rate = float(sample_rate)

    @property
    def effective_rate(self) -> float:
        """The clock's true sample rate including drift."""
        if self.gps_locked:
            return self._sample_rate
        return self._sample_rate * (1.0 + self.drift_ppm * 1e-6)

    def timestamp(self, sample_index: int) -> VitaTimestamp:
        """VITA time of a sample index on this device's clock."""
        if sample_index < 0:
            raise ConfigurationError("sample_index must be non-negative")
        elapsed = sample_index / self.effective_rate
        absolute = self.epoch_seconds + elapsed
        full = int(absolute)
        return VitaTimestamp(full_seconds=full,
                             fractional_seconds=absolute - full)

    def sample_at(self, timestamp: VitaTimestamp) -> int:
        """Nearest sample index for an absolute timestamp."""
        elapsed = timestamp.seconds - self.epoch_seconds
        if elapsed < 0:
            raise ConfigurationError("timestamp precedes the epoch")
        return int(round(elapsed * self.effective_rate))

    def offset_after(self, other: "VitaTimeSource", duration_s: float) -> float:
        """Clock disagreement (seconds) accumulated over ``duration_s``.

        Two GPS-locked devices stay aligned; free-running ones drift
        apart at their relative ppm — the reason the paper's platform
        carries the GPS-locked VITA time input.
        """
        rate_a = self.effective_rate / self._sample_rate
        rate_b = other.effective_rate / other._sample_rate
        return abs(rate_a - rate_b) * duration_s
