"""The energy differentiator block (paper Fig. 4).

The block computes the instantaneous energy of each I/Q pair, keeps a
running sum over the most recent ``N`` samples (N = 32 in the paper's
implementation), and compares the current sum against its own value
``D`` samples ago (the Z^-64 delay in Fig. 4) scaled by user-defined
thresholds:

* **trigger high**: ``y[n] > y[n - D] * T_high``  — energy rose by at
  least ``T_high`` (expressed in dB, 3..30 dB programmable);
* **trigger low**:  ``y[n] * T_low < y[n - D]``   — energy fell by at
  least ``T_low``.

The moving sum needs at most ``N`` samples to charge, so an energy-high
detection takes at most 32 samples = 128 clocks = 1.28 us (the paper's
T_en_det).
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.errors import ConfigurationError, StreamError
from repro.kernels import get_backend, rising_edge_plane
from repro.runtime.buffers import ScratchBuffer

#: Moving-sum window length in samples (paper's implementation).
DEFAULT_WINDOW = 32

#: Delay between the compared sums, in samples (the Z^-64 in Fig. 4).
DEFAULT_DELAY = 64

#: Pipeline latency from sample arrival to trigger assertion (clocks).
PIPELINE_LATENCY_CLOCKS = 1

#: Programmable threshold range in dB (paper §2.3).
THRESHOLD_MIN_DB = 3.0
THRESHOLD_MAX_DB = 30.0


class EnergyDifferentiator:
    """Streaming energy rise/fall detector with persistent state."""

    def __init__(self, threshold_high_db: float = 10.0,
                 threshold_low_db: float = 10.0,
                 window: int = DEFAULT_WINDOW,
                 delay: int = DEFAULT_DELAY,
                 backend: str | None = None) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if delay < 1:
            raise ConfigurationError("delay must be >= 1")
        self._backend = get_backend(backend)
        self._window = window
        self._delay = delay
        self.threshold_high_db = threshold_high_db
        self.threshold_low_db = threshold_low_db
        # Energy of the last `window` samples (for the moving sum) and
        # the last `delay` sums (for the comparison delay line).
        self._energy_tail = np.zeros(window, dtype=np.float64)
        self._sum_tail = np.zeros(delay, dtype=np.float64)
        # Reusable [tail | chunk] assembly buffers: padding and cumsum
        # happen in scratch storage instead of fresh per-chunk arrays.
        self._pad_scratch = ScratchBuffer(np.float64)
        self._csum_scratch = ScratchBuffer(np.float64)
        self._delay_scratch = ScratchBuffer(np.float64)
        self._metric_chunks = None
        self._metric_samples = None

    @property
    def backend(self) -> str:
        """Name of the kernel backend this instance dispatches to."""
        return self._backend.name

    def attach_metrics(self, registry) -> None:
        """Fold per-chunk throughput counters into a metrics registry.

        Exposes ``kernels.energy.chunks`` / ``kernels.energy.samples``
        and bumps ``kernels.backend.<name>.selected`` once.  Pass
        ``None`` to detach.
        """
        if registry is None:
            self._metric_chunks = None
            self._metric_samples = None
            return
        self._metric_chunks = registry.counter("kernels.energy.chunks")
        self._metric_samples = registry.counter("kernels.energy.samples")
        registry.counter(
            f"kernels.backend.{self._backend.name}.selected").inc()

    @staticmethod
    def _check_threshold(value_db: float) -> float:  # repro-lint: disable=RJ003 (host-side dB validation, not datapath)
        if not THRESHOLD_MIN_DB <= value_db <= THRESHOLD_MAX_DB:
            raise ConfigurationError(
                f"energy threshold {value_db} dB outside the programmable "
                f"{THRESHOLD_MIN_DB}-{THRESHOLD_MAX_DB} dB range"
            )
        return float(value_db)

    @property
    def threshold_high_db(self) -> float:
        """Energy-rise threshold in dB."""
        return self._threshold_high_db

    @threshold_high_db.setter
    def threshold_high_db(self, value_db: float) -> None:
        self._threshold_high_db = self._check_threshold(value_db)
        self._threshold_high = units.db_to_linear(self._threshold_high_db)

    @property
    def threshold_low_db(self) -> float:
        """Energy-fall threshold in dB."""
        return self._threshold_low_db

    @threshold_low_db.setter
    def threshold_low_db(self, value_db: float) -> None:
        self._threshold_low_db = self._check_threshold(value_db)
        self._threshold_low = units.db_to_linear(self._threshold_low_db)

    @property
    def window(self) -> int:
        """Moving-sum length in samples."""
        return self._window

    @property
    def delay(self) -> int:
        """Comparison delay in samples."""
        return self._delay

    def reset(self) -> None:
        """Clear the energy and sum delay lines."""
        self._energy_tail[:] = 0.0
        self._sum_tail[:] = 0.0

    def energy_sums(self, samples: np.ndarray) -> np.ndarray:
        """The moving energy sum per incoming sample (consumes input)."""
        samples = np.asarray(samples)
        if samples.ndim != 1:
            raise StreamError("EnergyDifferentiator expects a 1-D chunk")
        if samples.size == 0:
            return np.zeros(0, dtype=np.float64)
        energy = np.abs(np.asarray(samples, dtype=np.complex128)) ** 2
        padded = self._pad_scratch.view(self._window + energy.size)
        padded[:self._window] = self._energy_tail
        padded[self._window:] = energy
        sums = self._backend.moving_sums(padded, self._window,
                                         csum_scratch=self._csum_scratch)
        # New tail = last `window` entries of [tail | energy]; the
        # scratch is distinct storage, so this holds for any chunk size.
        self._energy_tail[:] = padded[energy.size:]
        if self._metric_chunks is not None:
            self._metric_chunks.inc()
            self._metric_samples.inc(energy.size)
        return sums

    def process(self, samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Boolean (trigger_high, trigger_low) arrays per incoming sample."""
        sums = self.energy_sums(samples)
        if sums.size == 0:
            empty = np.zeros(0, dtype=bool)
            return empty, empty
        delayed_full = self._delay_scratch.view(self._delay + sums.size)
        delayed_full[:self._delay] = self._sum_tail
        delayed_full[self._delay:] = sums
        delayed = delayed_full[:sums.size]
        self._sum_tail[:] = delayed_full[sums.size:]
        trigger_high = sums > delayed * self._threshold_high
        trigger_low = sums * self._threshold_low < delayed
        return trigger_high, trigger_low

    def detect(self, samples: np.ndarray, last_high: bool = False,
               last_low: bool = False
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fused triggers plus rising-edge indices for both directions.

        ``last_high``/``last_low`` carry the final trigger values of
        the previous chunk so edges are not double-counted across
        chunk boundaries.  Returns ``(trigger_high, trigger_low,
        edges_high, edges_low)``.
        """
        trigger_high, trigger_low = self.process(samples)
        if trigger_high.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return trigger_high, trigger_low, empty, empty
        edges_high = np.flatnonzero(
            rising_edge_plane(trigger_high, last_high))
        edges_low = np.flatnonzero(
            rising_edge_plane(trigger_low, last_low))
        return trigger_high, trigger_low, edges_high, edges_low
