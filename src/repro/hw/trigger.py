"""The three-stage trigger event state machine (paper §2.4).

"A three-stage hardware state machine allows the user to select up to
three trigger event combinations, all of which must occur within a
user-assigned time interval."

Each stage selects one detection source (cross-correlator, energy
high, or energy low).  When every enabled stage has fired, in order,
within ``window`` samples of the first stage's event, the machine
emits a jam trigger and returns to idle.  If the window expires the
partial progress is discarded.

The machine operates on *event edges* (rising edges of the per-sample
trigger booleans), which lets the surrounding core run vectorized: the
per-sample booleans are reduced to edge timestamps first and the FSM —
whose state only changes on events — walks the edges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.telemetry.tracer import CAT_FSM, NULL_TRACER, Tracer


class TriggerSource(enum.IntEnum):
    """Detection sources selectable by each FSM stage.

    The integer values are the 4-bit field encodings in the trigger
    configuration register.
    """

    XCORR = 0
    ENERGY_HIGH = 1
    ENERGY_LOW = 2


class TriggerMode(enum.IntEnum):
    """How multiple enabled stages combine.

    SEQUENCE is the paper's description ("all of which must occur
    within a user-assigned time interval"); ANY fires on whichever
    enabled source triggers first — the combination the WiMAX
    experiment needs ("combining the cross-correlator with the energy
    differentiator ... able to detect reliably 100%").
    """

    SEQUENCE = 0
    ANY = 1


def rising_edges(trigger: np.ndarray, previous_last: bool = False) -> np.ndarray:
    """Indices where a boolean trigger goes 0 -> 1.

    ``previous_last`` carries the final trigger value of the previous
    chunk so edges are not double-counted across chunk boundaries.
    """
    trigger = np.asarray(trigger, dtype=bool)
    if trigger.size == 0:
        return np.zeros(0, dtype=np.int64)
    shifted = np.empty_like(trigger)
    shifted[0] = previous_last
    shifted[1:] = trigger[:-1]
    return np.flatnonzero(trigger & ~shifted)


@dataclass(frozen=True)
class StageConfig:
    """One FSM stage: which source it waits for."""

    source: TriggerSource


@dataclass
class _FsmState:
    """Mutable run-time state of the trigger machine."""

    stage_index: int = 0
    first_event_time: int = -1
    history: list[int] = field(default_factory=list)


class TriggerStateMachine:
    """Combines up to three detection events within a time window."""

    MAX_STAGES = 3

    def __init__(self, stages: list[StageConfig] | list[TriggerSource],
                 window_samples: int = 0,
                 mode: TriggerMode = TriggerMode.SEQUENCE) -> None:
        if not stages:
            raise ConfigurationError("at least one trigger stage must be enabled")
        if len(stages) > self.MAX_STAGES:
            raise ConfigurationError(
                f"the hardware FSM has {self.MAX_STAGES} stages, got {len(stages)}"
            )
        normalized: list[StageConfig] = []
        for stage in stages:
            if isinstance(stage, TriggerSource):
                normalized.append(StageConfig(source=stage))
            else:
                normalized.append(stage)
        self._stages = normalized
        self._mode = TriggerMode(mode)
        self.window_samples = window_samples
        self._state = _FsmState()
        #: Telemetry probe for state transitions (null by default).
        self.tracer: Tracer = NULL_TRACER

    @property
    def stages(self) -> list[StageConfig]:
        """Configured stages (copy)."""
        return list(self._stages)

    @property
    def mode(self) -> TriggerMode:
        """Stage combination mode (SEQUENCE or ANY)."""
        return self._mode

    @property
    def window_samples(self) -> int:
        """Time window, in samples, for multi-stage combination."""
        return self._window

    @window_samples.setter
    def window_samples(self, value: int) -> None:
        if value < 0:
            raise ConfigurationError("window_samples must be >= 0")
        if (len(self._stages) > 1 and value == 0
                and self._mode is TriggerMode.SEQUENCE):
            raise ConfigurationError(
                "multi-stage sequential combination needs a non-zero window"
            )
        self._window = int(value)

    @property
    def armed_since(self) -> int | None:
        """Sample time of the first matched stage, or ``None`` if idle.

        A partially-advanced machine is "armed": it has consumed at
        least one stage event and is waiting for the rest of the
        sequence.  The watchdog's re-arm timeout uses this to reset a
        machine that has been armed implausibly long (e.g. because a
        corrupted window register made the expiry check unreachable).
        """
        if self._state.stage_index == 0:
            return None
        return self._state.first_event_time

    def reset(self) -> None:
        """Return the machine to idle, discarding partial progress."""
        self._state = _FsmState()

    def process_events(self, events: list[tuple[int, TriggerSource]]) -> list[int]:
        """Feed time-ordered detection events; return jam-trigger times.

        ``events`` is a list of ``(sample_time, source)`` tuples in
        non-decreasing time order (merged across sources by the core).
        Returns sample times at which the FSM completed and asserted
        the jam trigger.
        """
        jam_times: list[int] = []
        tracer = self.tracer if self.tracer.enabled else None
        if self._mode is TriggerMode.ANY:
            wanted = {stage.source for stage in self._stages}
            fired = [time for time, source in events if source in wanted]
            if tracer is not None:
                for time in fired:
                    tracer.instant("fsm.fire", CAT_FSM, time, mode="ANY")
            return fired
        for time, source in events:
            state = self._state
            # Expire a partially-matched window.
            if (state.stage_index > 0
                    and time - state.first_event_time > self._window):
                if tracer is not None:
                    tracer.instant("fsm.expire", CAT_FSM, time,
                                   armed_since=state.first_event_time,
                                   stage=state.stage_index)
                self.reset()
                state = self._state
            expected = self._stages[state.stage_index].source
            if source != expected:
                continue
            if state.stage_index == 0:
                state.first_event_time = time
            state.history.append(time)
            state.stage_index += 1
            if state.stage_index == len(self._stages):
                if tracer is not None:
                    tracer.instant("fsm.fire", CAT_FSM, time,
                                   mode="SEQUENCE", stages=len(self._stages))
                jam_times.append(time)
                self.reset()
            elif tracer is not None:
                name = "fsm.arm" if state.stage_index == 1 else "fsm.advance"
                tracer.instant(name, CAT_FSM, time,
                               stage=state.stage_index,
                               source=source.name)
        return jam_times
