"""A UHD/gr-uhd-like host driver for the custom core.

The paper's host application (a GNU Radio Companion GUI) programs the
custom DSP core through UHD's ``set_user_register`` API.  This module
provides the equivalent named setters: each call translates a friendly
parameter into the packed register writes the hardware expects, so the
rest of the framework never touches raw addresses.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.hw import register_map as regmap
from repro.hw.cross_correlator import quantize_coefficients
from repro.hw.registers import UserRegisterBus, pack_signed_fields
from repro.hw.trigger import TriggerMode, TriggerSource, TriggerStateMachine
from repro.hw.tx_controller import JamWaveform, MAX_UPTIME_SAMPLES
from repro.hw.usrp import UsrpN210


class UhdDriver:
    """Host-side control of one USRP running the custom core."""

    def __init__(self, device: UsrpN210) -> None:
        self.device = device
        self._bus: UserRegisterBus = device.bus

    # ------------------------------------------------------------------
    # Detection configuration

    def set_correlator_coefficients(self, coeffs_i: np.ndarray,
                                    coeffs_q: np.ndarray) -> None:
        """Ship 3-bit signed coefficient banks over the register bus."""
        words_i = pack_signed_fields([int(c) for c in coeffs_i],
                                     regmap.COEFF_BITS)
        words_q = pack_signed_fields([int(c) for c in coeffs_q],
                                     regmap.COEFF_BITS)
        if len(words_i) != regmap.COEFF_WORDS or len(words_q) != regmap.COEFF_WORDS:
            raise ConfigurationError(
                f"expected {regmap.CORRELATOR_LENGTH} coefficients per bank"
            )
        for offset, word in enumerate(words_i):
            self._bus.write(regmap.REG_COEFF_I_BASE + offset, word)
        for offset, word in enumerate(words_q):
            self._bus.write(regmap.REG_COEFF_Q_BASE + offset, word)

    def set_correlator_template(self, template: np.ndarray) -> None:
        """Quantize a complex preamble template and load it.

        This is the host-side "generated offline ... based on knowledge
        of the wireless standards' preambles" step from paper §2.3.
        """
        coeffs_i, coeffs_q = quantize_coefficients(template)
        self.set_correlator_coefficients(coeffs_i, coeffs_q)

    def set_xcorr_threshold(self, threshold: int) -> None:
        """Set the correlation detection threshold."""
        self._bus.write(regmap.REG_XCORR_THRESHOLD, int(threshold))

    def set_energy_thresholds(self, high_db: float, low_db: float) -> None:
        """Set energy rise/fall thresholds (3..30 dB)."""
        self._bus.write(regmap.REG_ENERGY_THRESHOLD_HIGH,
                        regmap.encode_energy_threshold_db(high_db))
        self._bus.write(regmap.REG_ENERGY_THRESHOLD_LOW,
                        regmap.encode_energy_threshold_db(low_db))

    def set_trigger_stages(self, sources: list[TriggerSource],
                           window_samples: int = 0,
                           mode: TriggerMode = TriggerMode.SEQUENCE) -> None:
        """Program the three-stage trigger state machine."""
        if not 1 <= len(sources) <= TriggerStateMachine.MAX_STAGES:
            raise ConfigurationError(
                "the trigger FSM supports 1 to 3 stages"
            )
        word = 0
        for stage, source in enumerate(sources):
            word |= int(source) << (stage * regmap.STAGE_SOURCE_BITS)
            word |= 1 << (regmap.STAGE_ENABLE_SHIFT + stage)
        if mode is TriggerMode.ANY:
            word |= regmap.TRIGGER_MODE_BIT
        elif len(sources) > 1 and window_samples < 1:
            raise ConfigurationError(
                "multi-stage sequential triggering needs a positive window"
            )
        self._bus.write(regmap.REG_TRIGGER_CONFIG, word)
        if window_samples:
            self._bus.write(regmap.REG_TRIGGER_WINDOW, int(window_samples))

    # ------------------------------------------------------------------
    # Jamming configuration

    def set_jam_delay(self, samples: int) -> None:
        """Delay between trigger and burst start, in samples."""
        self._bus.write(regmap.REG_JAM_DELAY, int(samples))

    def set_jam_delay_seconds(self, seconds: float) -> None:
        """Delay between trigger and burst start, in seconds."""
        self.set_jam_delay(units.seconds_to_samples(seconds))

    def set_jam_uptime(self, samples: int) -> None:
        """Jam burst duration in samples.

        Requests saturate rather than fail: the register layout
        promises uptimes are "clipped to 2^32 - 1 by the bus width"
        (:func:`repro.hw.register_map.clip_jam_uptime`), and the
        transmit controller's uptime counter further caps the usable
        range at ``MAX_UPTIME_SAMPLES``.  Zero/negative uptimes have
        no hardware meaning and are rejected.
        """
        if samples < 1:
            raise ConfigurationError(
                f"uptime {samples} must be at least 1 sample"
            )
        clipped = min(regmap.clip_jam_uptime(int(samples)),
                      MAX_UPTIME_SAMPLES)
        self._bus.write(regmap.REG_JAM_UPTIME, clipped)

    def set_jam_uptime_seconds(self, seconds: float) -> None:
        """Jam burst duration in seconds (40 ns .. ~40 s)."""
        self.set_jam_uptime(units.seconds_to_samples(seconds))

    def set_jam_waveform(self, waveform: JamWaveform, wgn_seed: int = 0x5EED) -> None:
        """Select the jamming waveform preset (and WGN seed)."""
        word = int(JamWaveform(waveform)) & regmap.WAVEFORM_SELECT_MASK
        word |= (int(wgn_seed) & 0x3FFF_FFFF) << regmap.WGN_SEED_SHIFT
        self._bus.write(regmap.REG_JAM_WAVEFORM, word)

    def set_replay_length(self, samples: int) -> None:
        """Depth of the replay capture buffer (1..512 samples)."""
        self._bus.write(regmap.REG_REPLAY_LENGTH, int(samples))

    def set_control(self, jammer_enabled: bool = True,
                    continuous: bool = False, antenna_bits: int = 0) -> None:
        """Program the control-flag register."""
        if not 0 <= antenna_bits <= 0xFF:
            raise ConfigurationError("antenna_bits must fit 8 bits")
        word = 0
        if jammer_enabled:
            word |= regmap.FLAG_JAMMER_ENABLE
        if continuous:
            word |= regmap.FLAG_CONTINUOUS
        word |= antenna_bits << regmap.ANTENNA_SHIFT
        self._bus.write(regmap.REG_CONTROL_FLAGS, word)

    # ------------------------------------------------------------------
    # Feedback path

    def detection_counts(self) -> dict[TriggerSource, int]:
        """Per-source detection counters (the host feedback flags)."""
        return dict(self.device.core.detection_counts)

    def jam_count(self) -> int:
        """Total jam bursts scheduled since reset."""
        return self.device.core.jam_count

    def register_writes(self) -> int:
        """Number of bus writes issued (reconfiguration cost metric)."""
        return self._bus.write_count
