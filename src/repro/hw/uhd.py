"""A UHD/gr-uhd-like host driver for the custom core.

The paper's host application (a GNU Radio Companion GUI) programs the
custom DSP core through UHD's ``set_user_register`` API.  This module
provides the equivalent named setters: each call translates a friendly
parameter into the packed register writes the hardware expects, so the
rest of the framework never touches raw addresses.

The driver is *hardened* against the N210's UDP-borne control path
(see :mod:`repro.faults`): by default every register write is verified
by readback and re-sent with exponential backoff until it sticks, the
driver keeps a host-side **shadow map** of every value it has written,
and :meth:`UhdDriver.scrub` compares the shadow against the device and
repairs any register that has drifted (dropped datagrams, stale
reordered writes, SEUs).  Backoff is *virtual* — the model accumulates
the would-be wait in :class:`DriverHealth` instead of sleeping, so
deterministic tests stay fast.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro import units
from repro.errors import ConfigurationError, RegisterError, RegisterWriteError
from repro.hw import register_map as regmap
from repro.hw.cross_correlator import quantize_coefficients
from repro.hw.registers import WORD_MASK, UserRegisterBus, pack_signed_fields
from repro.hw.trigger import TriggerMode, TriggerSource, TriggerStateMachine
from repro.hw.tx_controller import (
    MAX_REPLAY_LENGTH,
    MAX_UPTIME_SAMPLES,
    JamWaveform,
)
from repro.hw.usrp import UsrpN210
from repro.telemetry.tracer import CAT_DRIVER, NULL_TRACER, Tracer

#: Verified-write retry budget: the original send plus this many
#: re-sends before the driver gives up with :class:`RegisterWriteError`.
DEFAULT_MAX_RETRIES = 8


@dataclass
class DriverHealth:
    """Control-plane health counters kept by the hardened driver.

    Attributes:
        writes: Verified-write transactions attempted.
        retries: Individual re-sends after a failed verification.
        recovered_writes: Transactions that needed at least one retry
            but eventually verified.
        write_failures: Transactions abandoned after the retry budget
            (each raised :class:`~repro.errors.RegisterWriteError`).
        scrub_passes: Completed :meth:`UhdDriver.scrub` sweeps.
        scrub_repairs: Registers found drifted and rewritten by scrub.
        backoff_ops: Accumulated virtual exponential backoff, in bus
            operations (1, 2, 4, ... per successive retry).
    """

    writes: int = 0
    retries: int = 0
    recovered_writes: int = 0
    write_failures: int = 0
    scrub_passes: int = 0
    scrub_repairs: int = 0
    backoff_ops: int = 0

    def snapshot(self) -> dict[str, int]:
        """The counters as a plain dict (for reports and logs)."""
        return asdict(self)


class UhdDriver:
    """Host-side control of one USRP running the custom core.

    ``verify_writes=True`` (the default) turns every register write
    into a write/readback/compare transaction with up to
    ``max_retries`` re-sends; ``verify_writes=False`` restores the
    fire-and-forget behaviour of plain ``set_user_register`` (useful
    as the *unhardened* arm of fault-injection experiments).
    """

    def __init__(self, device: UsrpN210, verify_writes: bool = True,
                 max_retries: int = DEFAULT_MAX_RETRIES) -> None:
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        self.device = device
        self.verify_writes = verify_writes
        self.max_retries = max_retries
        self.health = DriverHealth()
        self._bus: UserRegisterBus = device.bus
        self._shadow: dict[int, int] = {}
        #: Telemetry probe: register-write transactions land in the
        #: trace, stamped with the core's sample clock.
        self.tracer: Tracer = NULL_TRACER

    # ------------------------------------------------------------------
    # Hardened write path

    def _write(self, address: int, value: int) -> None:
        """Write one register, verified and shadowed.

        The value is validated host-side first so caller bugs surface
        immediately (reject, never mask); only wire-level corruption
        enters the retry loop.  A :class:`ConfigurationError` raised by
        the core while decoding the landed word is treated the same as
        a readback mismatch: the word that arrived is not the word
        that was sent.
        """
        value = int(value)
        if not 0 <= value <= WORD_MASK:
            raise RegisterError(
                f"value {value:#x} does not fit the 32-bit data bus "
                "(the driver rejects out-of-range words, it never masks)"
            )
        self._shadow[address] = value
        if not self.verify_writes:
            self._bus.write(address, value)
            self.tracer.instant("register.write", CAT_DRIVER,
                                self.device.core.clock,
                                address=address, value=value, attempts=1)
            return
        self.health.writes += 1
        backoff = 1
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.health.retries += 1
                self.health.backoff_ops += backoff
                backoff *= 2
            try:
                self._bus.write(address, value)
                landed = self._bus.read(address)
            except ConfigurationError:
                # The core rejected what arrived — corruption on the
                # wire (or a stale reordered write landing mid-readback),
                # since the driver only sends decodable words.
                continue
            if landed == value:
                if attempt:
                    self.health.recovered_writes += 1
                self.tracer.instant("register.write", CAT_DRIVER,
                                    self.device.core.clock,
                                    address=address, value=value,
                                    attempts=attempt + 1)
                return
        self.health.write_failures += 1
        self.tracer.instant("register.write_failed", CAT_DRIVER,
                            self.device.core.clock,
                            address=address, value=value,
                            attempts=self.max_retries + 1)
        raise RegisterWriteError(
            f"register {address} write of {value:#x} could not be "
            f"verified after {self.max_retries + 1} attempts"
        )

    def scrub(self) -> list[int]:
        """Sweep the shadow map and repair any drifted register.

        Reads back every register the driver has ever written and
        rewrites (verified) those whose device contents disagree with
        the shadow — the detect-and-repair pass that catches dropped
        datagrams, stale reordered writes landing late, and SEU-style
        upsets that never crossed the wire at all.  Returns the
        repaired addresses in ascending order.

        A repair re-fires the core's register watcher, so in-flight
        soft state derived from that register (e.g. partial trigger-FSM
        progress under ``REG_TRIGGER_CONFIG``) is rebuilt, exactly as
        a host rewrite would on real hardware.
        """
        repaired: list[int] = []
        for address in sorted(self._shadow):
            value = self._shadow[address]
            try:
                drifted = self._bus.read(address) != value
            except ConfigurationError:
                drifted = True  # a stale write landed mid-read; repair
            if drifted:
                self._write(address, value)
                repaired.append(address)
        self.health.scrub_passes += 1
        self.health.scrub_repairs += len(repaired)
        return repaired

    def shadow_registers(self) -> dict[int, int]:
        """The host's intended register file (copy), address -> value."""
        return dict(self._shadow)

    # ------------------------------------------------------------------
    # Detection configuration

    def set_correlator_coefficients(self, coeffs_i: np.ndarray,
                                    coeffs_q: np.ndarray) -> None:
        """Ship 3-bit signed coefficient banks over the register bus."""
        words_i = pack_signed_fields([int(c) for c in coeffs_i],
                                     regmap.COEFF_BITS)
        words_q = pack_signed_fields([int(c) for c in coeffs_q],
                                     regmap.COEFF_BITS)
        if len(words_i) != regmap.COEFF_WORDS or len(words_q) != regmap.COEFF_WORDS:
            raise ConfigurationError(
                f"expected {regmap.CORRELATOR_LENGTH} coefficients per bank"
            )
        for offset, word in enumerate(words_i):
            self._write(regmap.REG_COEFF_I_BASE + offset, word)
        for offset, word in enumerate(words_q):
            self._write(regmap.REG_COEFF_Q_BASE + offset, word)

    def set_correlator_template(self, template: np.ndarray) -> None:
        """Quantize a complex preamble template and load it.

        This is the host-side "generated offline ... based on knowledge
        of the wireless standards' preambles" step from paper §2.3.
        """
        coeffs_i, coeffs_q = quantize_coefficients(template)
        self.set_correlator_coefficients(coeffs_i, coeffs_q)

    def set_xcorr_threshold(self, threshold: int) -> None:
        """Set the correlation detection threshold."""
        self._write(regmap.REG_XCORR_THRESHOLD, int(threshold))

    # ------------------------------------------------------------------
    # Multi-standard stacked banks

    def _check_bank_index(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < regmap.MAX_BANKS:
            raise ConfigurationError(
                f"bank index {index} outside 0..{regmap.MAX_BANKS - 1}"
            )
        return index

    def _write_bank_coefficients(self, index: int, coeffs_i: np.ndarray,
                                 coeffs_q: np.ndarray) -> None:
        words_i = pack_signed_fields([int(c) for c in coeffs_i],
                                     regmap.COEFF_BITS)
        words_q = pack_signed_fields([int(c) for c in coeffs_q],
                                     regmap.COEFF_BITS)
        if len(words_i) != regmap.COEFF_WORDS \
                or len(words_q) != regmap.COEFF_WORDS:
            raise ConfigurationError(
                f"expected {regmap.CORRELATOR_LENGTH} coefficients per bank"
            )
        self._write(regmap.REG_BANK_SELECT, index)
        for offset, word in enumerate(words_i):
            self._write(regmap.REG_BANK_COEFF_I_BASE + offset, word)
        for offset, word in enumerate(words_q):
            self._write(regmap.REG_BANK_COEFF_Q_BASE + offset, word)

    def set_bank_threshold(self, index: int, threshold: int) -> None:
        """Retune one stacked bank's threshold (one verified write)."""
        index = self._check_bank_index(index)
        self._write(regmap.REG_BANK_THRESHOLD_BASE + index, int(threshold))

    def set_bank_count(self, count: int) -> None:
        """Select how many stacked banks run (0 = legacy correlator)."""
        count = int(count)
        if not 0 <= count <= regmap.MAX_BANKS:
            raise ConfigurationError(
                f"bank count must be 0..{regmap.MAX_BANKS}, got {count}"
            )
        self._write(regmap.REG_BANK_COUNT, count)

    def set_correlator_bank(self, index: int, template: np.ndarray,
                            threshold: int | None = None,
                            label: str | None = None) -> None:
        """Hot-swap one stacked bank over the register bus (verified).

        The threshold, when given, is written *before* the coefficient
        words — a chunk processed mid-swap may see the old template
        with the new threshold, never the new template with a stale
        threshold.  Takes effect on the next processed chunk; the
        core's sign history and trigger carries are untouched, so
        :meth:`repro.core.jammer.ReactiveJammer.run` keeps streaming.
        """
        index = self._check_bank_index(index)
        if label is not None:
            self.device.core.set_bank_label(index, label)
        if threshold is not None:
            self.set_bank_threshold(index, threshold)
        coeffs_i, coeffs_q = quantize_coefficients(template)
        self._write_bank_coefficients(index, coeffs_i, coeffs_q)

    def set_correlator_banks(self, templates, thresholds,
                             labels=None) -> None:
        """Program K protocol banks and enable stacked detection.

        Atomic in the same sense as :meth:`set_trigger_stages`: the
        bank count is parked at 0 first, then every per-bank threshold
        and coefficient word is shipped (verified), and only then does
        the final count write arm the stacked correlator — no chunk
        can ever be processed against a partially-programmed bank set.
        """
        templates = list(templates)
        count = len(templates)
        if not 1 <= count <= regmap.MAX_BANKS:
            raise ConfigurationError(
                f"bank count must be 1..{regmap.MAX_BANKS}, got {count}"
            )
        thresholds = [int(t) for t in thresholds]
        if len(thresholds) != count:
            raise ConfigurationError(
                f"expected {count} thresholds, got {len(thresholds)}"
            )
        if labels is not None and len(labels) != count:
            raise ConfigurationError(
                f"expected {count} labels, got {len(labels)}"
            )
        self._write(regmap.REG_BANK_COUNT, 0)
        if labels is not None:
            for index, label in enumerate(labels):
                self.device.core.set_bank_label(index, label)
        for index, threshold in enumerate(thresholds):
            self.set_bank_threshold(index, threshold)
        for index, template in enumerate(templates):
            coeffs_i, coeffs_q = quantize_coefficients(template)
            self._write_bank_coefficients(index, coeffs_i, coeffs_q)
        self._write(regmap.REG_BANK_COUNT, count)

    def set_energy_thresholds(self, high_db: float, low_db: float) -> None:
        """Set energy rise/fall thresholds (3..30 dB)."""
        self._write(regmap.REG_ENERGY_THRESHOLD_HIGH,
                    regmap.encode_energy_threshold_db(high_db))
        self._write(regmap.REG_ENERGY_THRESHOLD_LOW,
                    regmap.encode_energy_threshold_db(low_db))

    def set_trigger_stages(self, sources: list[TriggerSource],
                           window_samples: int = 0,
                           mode: TriggerMode = TriggerMode.SEQUENCE) -> None:
        """Program the three-stage trigger state machine.

        The window register is written unconditionally: reprogramming
        with ``window_samples=0`` must clear a previously-set window
        rather than silently leaving the stale value in the hardware.
        """
        if not 1 <= len(sources) <= TriggerStateMachine.MAX_STAGES:
            raise ConfigurationError(
                "the trigger FSM supports 1 to 3 stages"
            )
        word = 0
        for stage, source in enumerate(sources):
            word |= int(source) << (stage * regmap.STAGE_SOURCE_BITS)
            word |= 1 << (regmap.STAGE_ENABLE_SHIFT + stage)
        if mode is TriggerMode.ANY:
            word |= regmap.TRIGGER_MODE_BIT
        elif len(sources) > 1 and window_samples < 1:
            raise ConfigurationError(
                "multi-stage sequential triggering needs a positive window"
            )
        self._write(regmap.REG_TRIGGER_CONFIG, word)
        self._write(regmap.REG_TRIGGER_WINDOW, int(window_samples))

    # ------------------------------------------------------------------
    # Jamming configuration

    def set_jam_delay(self, samples: int) -> None:
        """Delay between trigger and burst start, in samples."""
        self._write(regmap.REG_JAM_DELAY, int(samples))

    def set_jam_delay_seconds(self, seconds: float) -> None:
        """Delay between trigger and burst start, in seconds."""
        self.set_jam_delay(units.seconds_to_samples(seconds))

    def set_jam_uptime(self, samples: int) -> None:
        """Jam burst duration in samples.

        Requests saturate rather than fail: the register layout
        promises uptimes are "clipped to 2^32 - 1 by the bus width"
        (:func:`repro.hw.register_map.clip_jam_uptime`), and the
        transmit controller's uptime counter further caps the usable
        range at ``MAX_UPTIME_SAMPLES``.  Zero/negative uptimes have
        no hardware meaning and are rejected.
        """
        if samples < 1:
            raise ConfigurationError(
                f"uptime {samples} must be at least 1 sample"
            )
        clipped = min(regmap.clip_jam_uptime(int(samples)),
                      MAX_UPTIME_SAMPLES)
        self._write(regmap.REG_JAM_UPTIME, clipped)

    def set_jam_uptime_seconds(self, seconds: float) -> None:
        """Jam burst duration in seconds (40 ns .. ~40 s)."""
        self.set_jam_uptime(units.seconds_to_samples(seconds))

    def set_jam_waveform(self, waveform: JamWaveform, wgn_seed: int = 0x5EED) -> None:
        """Select the jamming waveform preset (and WGN seed).

        The seed must fit its 30-bit register field; an oversized seed
        is rejected rather than silently masked, matching the bus-wide
        "reject, never mask" policy.
        """
        wgn_seed = int(wgn_seed)
        if not 0 <= wgn_seed <= regmap.WGN_SEED_MASK:
            raise ConfigurationError(
                f"wgn_seed {wgn_seed:#x} does not fit the 30-bit seed field "
                f"(0..{regmap.WGN_SEED_MASK:#x})"
            )
        word = int(JamWaveform(waveform)) & regmap.WAVEFORM_SELECT_MASK
        word |= wgn_seed << regmap.WGN_SEED_SHIFT
        self._write(regmap.REG_JAM_WAVEFORM, word)

    def set_replay_length(self, samples: int) -> None:
        """Depth of the replay capture buffer (1..512 samples)."""
        samples = int(samples)
        if not 1 <= samples <= MAX_REPLAY_LENGTH:
            raise ConfigurationError(
                f"replay length {samples} outside the hardware's "
                f"[1, {MAX_REPLAY_LENGTH}]-sample capture buffer"
            )
        self._write(regmap.REG_REPLAY_LENGTH, samples)

    def set_control(self, jammer_enabled: bool = True,
                    continuous: bool = False, antenna_bits: int = 0) -> None:
        """Program the control-flag register."""
        if not 0 <= antenna_bits <= 0xFF:
            raise ConfigurationError("antenna_bits must fit 8 bits")
        word = 0
        if jammer_enabled:
            word |= regmap.FLAG_JAMMER_ENABLE
        if continuous:
            word |= regmap.FLAG_CONTINUOUS
        word |= antenna_bits << regmap.ANTENNA_SHIFT
        self._write(regmap.REG_CONTROL_FLAGS, word)

    # ------------------------------------------------------------------
    # Feedback path

    def detection_counts(self) -> dict[TriggerSource, int]:
        """Per-source detection counters (the host feedback flags)."""
        return dict(self.device.core.detection_counts)

    def jam_count(self) -> int:
        """Total jam bursts scheduled since reset."""
        return self.device.core.jam_count

    def register_writes(self) -> int:
        """Number of bus writes issued (reconfiguration cost metric)."""
        return self._bus.write_count
