"""MAC frame descriptors and air-time accounting.

Frame durations come straight from the PHY's PPDU arithmetic, so the
MAC plane and the waveform plane agree on every timing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.phy.wifi.frame import ppdu_duration_us
from repro.phy.wifi.params import WifiRate

#: MAC header (24 B) + FCS (4 B) for data frames.
DATA_MAC_OVERHEAD = 28

#: LLC/SNAP encapsulation of an IP packet inside 802.11.
LLC_SNAP_OVERHEAD = 8

#: IPv4 + UDP headers.
IP_UDP_OVERHEAD = 28

#: ACK frame MAC length in bytes.
ACK_LENGTH = 14

#: Control-response (ACK) rate by data-rate class: the highest basic
#: rate not faster than the data rate (802.11 OFDM basic set 6/12/24).
_ACK_RATE = {
    WifiRate.MBPS_6: WifiRate.MBPS_6,
    WifiRate.MBPS_9: WifiRate.MBPS_6,
    WifiRate.MBPS_12: WifiRate.MBPS_12,
    WifiRate.MBPS_18: WifiRate.MBPS_12,
    WifiRate.MBPS_24: WifiRate.MBPS_24,
    WifiRate.MBPS_36: WifiRate.MBPS_24,
    WifiRate.MBPS_48: WifiRate.MBPS_24,
    WifiRate.MBPS_54: WifiRate.MBPS_24,
}


class FrameKind(enum.Enum):
    """MAC frame types used by the simulation."""

    DATA = "data"
    ACK = "ack"


@dataclass(frozen=True)
class MacFrame:
    """One MAC frame on the air.

    Attributes:
        kind: DATA or ACK.
        src: Transmitting node name.
        dst: Intended receiver node name.
        psdu_bytes: MAC frame length including header and FCS.
        rate: PHY rate the frame is sent at.
        seq: Sequence number (DATA only; ACKs echo the acked seq).
        payload_bytes: Application payload carried (DATA only).
    """

    kind: FrameKind
    src: str
    dst: str
    psdu_bytes: int
    rate: WifiRate
    seq: int = 0
    payload_bytes: int = 0

    def __post_init__(self) -> None:
        if self.psdu_bytes < ACK_LENGTH:
            raise ConfigurationError(
                f"PSDU of {self.psdu_bytes} bytes is smaller than an ACK"
            )

    @property
    def duration_s(self) -> float:
        """Air time of this frame in seconds."""
        return ppdu_duration_us(self.psdu_bytes, self.rate) * 1e-6


def udp_datagram_psdu(udp_payload_bytes: int) -> int:
    """PSDU size of a UDP datagram carried over 802.11."""
    if udp_payload_bytes < 1:
        raise ConfigurationError("udp_payload_bytes must be >= 1")
    return (udp_payload_bytes + IP_UDP_OVERHEAD + LLC_SNAP_OVERHEAD
            + DATA_MAC_OVERHEAD)


def ack_rate_for(data_rate: WifiRate) -> WifiRate:
    """Control-response rate for a data frame's rate."""
    return _ACK_RATE[data_rate]


def data_duration_us(udp_payload_bytes: int, rate: WifiRate) -> float:
    """Air time in microseconds of a UDP datagram's PPDU."""
    return ppdu_duration_us(udp_datagram_psdu(udp_payload_bytes), rate)


def ack_duration_us(data_rate: WifiRate) -> float:
    """Air time in microseconds of the ACK answering a data frame."""
    return ppdu_duration_us(ACK_LENGTH, ack_rate_for(data_rate))
