"""The iperf UDP bandwidth test, as the paper runs it.

"UDP bandwidth tests with maximum bandwidth of 54 Mbps are conducted
repeatedly for 60 second intervals" with the AP as the iperf server
and the wireless client as the iperf client.  The report carries the
two quantities the paper plots: achieved UDP bandwidth (Fig. 10) and
packet reception ratio (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mac.nodes import AccessPoint, Station
from repro.mac.simkernel import SimKernel

#: iperf's default UDP payload (bytes).
DEFAULT_DATAGRAM_BYTES = 1470


@dataclass(frozen=True)
class IperfReport:
    """Results of one UDP bandwidth test interval.

    ``sent`` counts datagrams the client put into the stack (iperf's
    UDP client blocks on a full socket buffer, so throttled datagrams
    never become loss); ``backlog`` counts datagrams still queued or
    in flight when the interval closed.
    """

    duration_s: float
    offered: int
    sent: int
    delivered: int
    delivered_payload_bytes: int
    backlog: int = 0

    @property
    def bandwidth_kbps(self) -> float:
        """Application-layer goodput in kbit/s (what iperf prints)."""
        return self.delivered_payload_bytes * 8.0 / self.duration_s / 1e3

    @property
    def bandwidth_mbps(self) -> float:
        """Application-layer goodput in Mbit/s."""
        return self.bandwidth_kbps / 1e3

    @property
    def packet_reception_ratio(self) -> float:
        """Delivered datagrams over datagrams whose fate is known.

        Datagrams still queued when the interval closes are normally
        excluded (they are neither delivered nor lost), *except* when
        the interval delivered nothing at all — a dead link loses
        everything the application handed to the stack, which is what
        iperf's server-side loss statistic shows in that case.
        """
        if self.sent == 0:
            return 1.0
        if self.delivered == 0:
            return 0.0
        completed = max(self.sent - self.backlog, self.delivered)
        return min(self.delivered / completed, 1.0)


class UdpBandwidthTest:
    """Drives a station with constant-rate UDP datagrams."""

    def __init__(self, kernel: SimKernel, station: Station, ap: AccessPoint,
                 offered_mbps: float = 54.0,
                 datagram_bytes: int = DEFAULT_DATAGRAM_BYTES) -> None:
        if offered_mbps <= 0:
            raise ConfigurationError("offered_mbps must be positive")
        if datagram_bytes < 1:
            raise ConfigurationError("datagram_bytes must be >= 1")
        self._kernel = kernel
        self._station = station
        self._ap = ap
        self._datagram_bytes = datagram_bytes
        self._interval_s = datagram_bytes * 8.0 / (offered_mbps * 1e6)
        self._stop_time = 0.0

    def run(self, duration_s: float) -> IperfReport:
        """Run one test interval and return the report."""
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        start = self._kernel.now
        self._stop_time = start + duration_s
        base_delivered = self._ap.received_datagrams
        base_bytes = self._ap.received_payload_bytes
        base_offered = self._station.stats.offered
        base_sent = self._station.stats.sent
        self._kernel.schedule(0.0, self._offer)
        self._kernel.run_until(self._stop_time)
        return IperfReport(
            duration_s=duration_s,
            offered=self._station.stats.offered - base_offered,
            sent=self._station.stats.sent - base_sent,
            delivered=self._ap.received_datagrams - base_delivered,
            delivered_payload_bytes=(
                self._ap.received_payload_bytes - base_bytes
            ),
            backlog=self._station.backlog,
        )

    def _offer(self) -> None:
        if self._kernel.now >= self._stop_time:
            return
        self._station.enqueue_datagram(self._datagram_bytes)
        self._kernel.schedule(self._interval_s, self._offer)
