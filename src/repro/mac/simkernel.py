"""A minimal discrete-event simulation kernel.

Events are ``(time, sequence, callback)`` triples in a binary heap;
the sequence number makes ordering deterministic for simultaneous
events.  Times are floats in seconds.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle to a scheduled event, allowing cancellation."""

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event's callback from running."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    @property
    def time(self) -> float:
        """Scheduled firing time in seconds."""
        return self._event.time


class SimKernel:
    """The event loop."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._sequence = 0
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule at non-finite time {time}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = _Event(time=time, sequence=self._sequence, callback=callback)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback)

    def run_until(self, end_time: float) -> None:
        """Process events up to and including ``end_time``."""
        if self._running:
            raise SimulationError("the kernel is not re-entrant")
        self._running = True
        try:
            while self._queue and self._queue[0].time <= end_time:
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback()
            if math.isfinite(end_time):
                self._now = max(self._now, end_time)
        finally:
            self._running = False

    def run(self) -> None:
        """Process every pending event."""
        self.run_until(float("inf"))

    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for event in self._queue if not event.cancelled)
