"""The shared wireless medium of the MAC-plane simulation.

Tracks every emission (802.11 frames and jamming bursts), computes
per-node received powers through the 5-port network's path losses,
answers carrier-sense queries, and decides frame reception outcomes by
combining the SINR->PER link model with the jam-overlap anatomy of
each frame.

Calibrated receiver-robustness constants
----------------------------------------
Two constants abstract consumer-receiver behaviour that the
semi-analytic PER model cannot derive; both are calibrated against the
paper's measured SIR cliffs and documented in EXPERIMENTS.md:

* :data:`SYNC_LOSS_SIR_DB` — a burst covering at least half the long
  training field destroys synchronization when the signal is less
  than this many dB above the jammer.  Anchors the 0.01 ms-uptime
  cliff (paper: ~2.8 dB).
* :data:`AGC_CAPTURE_SIR_DB` — a burst arriving during the SIGNAL or
  DATA portion disrupts the receiver's AGC/equalizer outright when
  the signal-to-jammer ratio is below this value; above it the
  SINR->PER model decides.  Anchors the 0.1 ms-uptime cliff
  (paper: ~15.9 dB).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro import units
from repro.errors import SimulationError
from repro.mac.frames import MacFrame
from repro.phy.wifi.params import WifiRate, SERVICE_BITS, TAIL_BITS
from repro.phy.wifi.per_model import segment_success

#: CCA busy threshold for decodable 802.11 preambles (dBm).
CCA_PREAMBLE_DBM = -82.0

#: CCA energy-detect threshold for non-decodable signals (dBm).
CCA_ED_DBM = -62.0

#: Jam-to-signal sync destruction margin (dB).  See module docstring.
SYNC_LOSS_SIR_DB = 3.0

#: AGC/equalizer capture margin for mid-frame bursts (dB).
AGC_CAPTURE_SIR_DB = 15.0

#: Preamble anatomy (seconds from frame start).
_STF_END_S = 8e-6
_LTF_END_S = 16e-6
_SIGNAL_END_S = 20e-6

#: Fraction of the LTF a burst must cover to threaten synchronization.
_LTF_KILL_FRACTION = 0.5


class EmissionKind(enum.Enum):
    """What kind of energy an emission is."""

    FRAME = "frame"
    JAM = "jam"


@dataclass
class Emission:
    """One transmission on the medium.

    Attributes:
        kind: Frame or jamming burst.
        src: Transmitting node name.
        start: Start time (seconds).
        end: End time (seconds).
        tx_power_dbm: Transmit power.
        frame: The MAC frame (FRAME emissions only).
    """

    kind: EmissionKind
    src: str
    start: float
    end: float
    tx_power_dbm: float
    frame: MacFrame | None = None

    def overlaps(self, start: float, end: float) -> bool:
        """Whether this emission overlaps the [start, end) span."""
        return self.start < end and start < self.end

    def overlap_duration(self, start: float, end: float) -> float:
        """Seconds of overlap with [start, end)."""
        return max(0.0, min(self.end, end) - max(self.start, start))


class Medium:
    """The shared channel, parameterized by a path-loss function."""

    def __init__(self, path_loss_db: Callable[[str, str], float | None],
                 noise_floor_dbm: float = -95.0) -> None:
        self._path_loss_db = path_loss_db
        self.noise_floor_dbm = float(noise_floor_dbm)
        self._emissions: list[Emission] = []
        self._frame_listeners: list[Callable[[Emission], None]] = []
        self._emit_count = 0

    # ------------------------------------------------------------------
    # Emission bookkeeping

    def add_frame_listener(self, callback: Callable[[Emission], None]) -> None:
        """Subscribe to frame-start notifications (the jammer's ears)."""
        self._frame_listeners.append(callback)

    def emit_frame(self, src: str, frame: MacFrame, start: float,
                   tx_power_dbm: float) -> Emission:
        """Register a frame transmission starting at ``start``."""
        emission = Emission(
            kind=EmissionKind.FRAME, src=src, start=start,
            end=start + frame.duration_s, tx_power_dbm=tx_power_dbm,
            frame=frame,
        )
        self._register(emission)
        for listener in self._frame_listeners:
            listener(emission)
        return emission

    def _register(self, emission: Emission) -> None:
        self._emissions.append(emission)
        self._emit_count += 1
        # Periodically forget long-finished emissions; nothing in the
        # simulation looks back more than a few frame times.
        if self._emit_count % 256 == 0:
            self.prune(emission.start - 0.05)

    def emit_jam(self, src: str, start: float, duration: float,
                 tx_power_dbm: float) -> Emission:
        """Register a jamming burst."""
        if duration <= 0:
            raise SimulationError("jam duration must be positive")
        emission = Emission(
            kind=EmissionKind.JAM, src=src, start=start,
            end=start + duration, tx_power_dbm=tx_power_dbm,
        )
        self._register(emission)
        return emission

    def prune(self, before: float) -> None:
        """Forget emissions that ended before ``before``."""
        self._emissions = [e for e in self._emissions if e.end >= before]

    # ------------------------------------------------------------------
    # Power bookkeeping

    def rx_power_dbm(self, emission: Emission, node: str) -> float | None:
        """Received power of an emission at ``node`` (None if isolated)."""
        if emission.src == node:
            return None
        loss = self._path_loss_db(emission.src, node)
        if loss is None:
            return None
        return emission.tx_power_dbm + loss

    def _cca_threshold(self, emission: Emission) -> float:
        if emission.kind is EmissionKind.FRAME:
            return CCA_PREAMBLE_DBM
        return CCA_ED_DBM

    def _audible(self, emission: Emission, node: str) -> bool:
        power = self.rx_power_dbm(emission, node)
        return power is not None and power > self._cca_threshold(emission)

    # ------------------------------------------------------------------
    # Carrier sense

    def busy_intervals(self, node: str, t_from: float) -> list[tuple[float, float]]:
        """Merged intervals (from ``t_from``) during which CCA is busy."""
        spans = sorted(
            (max(e.start, t_from), e.end)
            for e in self._emissions
            if e.end > t_from and self._audible(e, node)
        )
        merged: list[tuple[float, float]] = []
        for start, end in spans:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    def is_busy(self, node: str, t: float) -> bool:
        """Whether CCA reports busy at instant ``t``."""
        return any(e.start <= t < e.end and self._audible(e, node)
                   for e in self._emissions)

    def backoff_finish_time(self, node: str, t_from: float, slots: int,
                            difs_s: float, slot_s: float) -> float:
        """When a DIFS + ``slots``-slot backoff completes.

        Walks the currently-known busy intervals: the countdown needs
        the medium idle for a full DIFS, then decrements one slot per
        idle slot, freezing (and re-waiting DIFS) whenever the medium
        goes busy.  Deterministic given the registered emissions; the
        caller re-validates if new emissions appear in the meantime.
        """
        if slots < 0:
            raise SimulationError("slots must be non-negative")
        busy = self.busy_intervals(node, t_from)
        t = t_from
        remaining = slots
        index = 0
        while True:
            # Skip any busy interval containing t.
            while index < len(busy) and busy[index][1] <= t:
                index += 1
            if index < len(busy) and busy[index][0] <= t:
                t = busy[index][1]
                continue
            # Idle until the next busy interval (or forever).
            idle_end = busy[index][0] if index < len(busy) else float("inf")
            need = difs_s + remaining * slot_s
            if t + need <= idle_end:
                return t + need
            # DIFS must fit entirely in the idle gap before any slot counts.
            usable = idle_end - t - difs_s
            if usable > 0:
                consumed = min(remaining, int(usable / slot_s))
                remaining -= consumed
            t = idle_end

    # ------------------------------------------------------------------
    # Reception outcomes

    def _jam_overlaps(self, emission: Emission, receiver: str
                      ) -> list[tuple[Emission, float]]:
        """Interfering emissions overlapping a frame, with rx powers."""
        out: list[tuple[Emission, float]] = []
        for other in self._emissions:
            if other is emission or other.src == receiver:
                continue
            if not other.overlaps(emission.start, emission.end):
                continue
            power = self.rx_power_dbm(other, receiver)
            if power is not None:
                out.append((other, power))
        return out

    def frame_success_probability(self, emission: Emission, receiver: str) -> float:
        """Probability that ``receiver`` decodes the frame emission."""
        if emission.frame is None:
            raise SimulationError("success probability applies to frames only")
        s_dbm = self.rx_power_dbm(emission, receiver)
        if s_dbm is None or s_dbm < CCA_PREAMBLE_DBM:
            return 0.0
        interferers = self._jam_overlaps(emission, receiver)
        frame = emission.frame
        rate = frame.rate
        snr_db = s_dbm - self.noise_floor_dbm
        n_bits = 8 * frame.psdu_bytes + SERVICE_BITS + TAIL_BITS
        if not interferers:
            return (segment_success(snr_db, WifiRate.MBPS_6, 24)
                    * segment_success(snr_db, rate, n_bits))

        # Any overlapping *frame* is a collision: the stronger one may
        # capture, otherwise both are lost.
        for other, power in interferers:
            if other.kind is EmissionKind.FRAME and s_dbm - power < 10.0:
                return 0.0

        jams = [(e, p) for e, p in interferers if e.kind is EmissionKind.JAM]
        if not jams:
            return (segment_success(snr_db, WifiRate.MBPS_6, 24)
                    * segment_success(snr_db, rate, n_bits))
        j_dbm = max(p for _e, p in jams)
        sir_db = s_dbm - j_dbm
        j_watts = sum(units.dbm_to_watts(p) for _e, p in jams)
        noise_watts = units.dbm_to_watts(self.noise_floor_dbm)
        sinr_jam_db = units.linear_to_db(
            units.dbm_to_watts(s_dbm) / (noise_watts + j_watts)
        )

        t0 = emission.start
        ltf_overlap = sum(
            e.overlap_duration(t0 + _STF_END_S, t0 + _LTF_END_S)
            for e, _p in jams
        )
        signal_hit = any(
            e.overlaps(t0 + _LTF_END_S, t0 + _SIGNAL_END_S) for e, _p in jams
        )
        data_overlap = sum(
            e.overlap_duration(t0 + _SIGNAL_END_S, emission.end)
            for e, _p in jams
        )

        # Synchronization destruction (dominates the short-uptime jammer).
        ltf_len = _LTF_END_S - _STF_END_S
        if ltf_overlap >= _LTF_KILL_FRACTION * ltf_len and sir_db < SYNC_LOSS_SIR_DB:
            return 0.0
        # AGC/equalizer capture by a mid-frame burst (dominates the
        # long-uptime jammer).
        if (signal_hit or data_overlap > 0) and sir_db < AGC_CAPTURE_SIR_DB:
            return 0.0

        data_duration = max(emission.end - (t0 + _SIGNAL_END_S), 1e-12)
        jam_fraction = min(data_overlap / data_duration, 1.0)
        jammed_bits = int(round(n_bits * jam_fraction))
        clean_bits = n_bits - jammed_bits
        signal_snr = sinr_jam_db if signal_hit else snr_db
        return (segment_success(signal_snr, WifiRate.MBPS_6, 24)
                * segment_success(snr_db, rate, clean_bits)
                * segment_success(sinr_jam_db, rate, jammed_bits))

    def receive_frame(self, emission: Emission, receiver: str,
                      rng: np.random.Generator) -> bool:
        """Bernoulli reception decision for one frame."""
        return bool(rng.random() < self.frame_success_probability(
            emission, receiver))
