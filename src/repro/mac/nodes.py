"""MAC-plane nodes: client station, access point, and jammer.

The station implements the DCF transmit side (DIFS + binary
exponential backoff, retries, ARF rate fallback); the access point
implements reception and SIFS-spaced ACKs; the jammer node mirrors the
hardware model's trigger timing (T_resp from
:mod:`repro.core.timeline`) and personality presets on the MAC plane.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import units
from repro.core.presets import JammerPersonality
from repro.core.timeline import timeline_for
from repro.errors import ConfigurationError, SimulationError
from repro.mac import dcf
from repro.mac.frames import (
    ACK_LENGTH,
    FrameKind,
    MacFrame,
    ack_rate_for,
    udp_datagram_psdu,
)
from repro.mac.medium import Emission, Medium
from repro.mac.rate_control import ArfRateController
from repro.mac.simkernel import EventHandle, SimKernel
from repro.phy.wifi.frame import ppdu_duration_us
from repro.phy.wifi.params import WifiRate


@dataclass
class StationStats:
    """Transmit-side counters for the iperf report.

    ``offered`` counts datagrams the application tried to send;
    ``throttled`` counts those refused because the queue (socket
    buffer) was full — real iperf blocks on the socket in that case,
    so throttled datagrams are *not* "sent" and do not count as loss.
    """

    offered: int = 0
    throttled: int = 0
    sent: int = 0
    delivered: int = 0
    retry_drops: int = 0
    attempts: int = 0
    delivered_payload_bytes: int = 0


#: Beacon frame PSDU size (typical management frame with IEs).
BEACON_BYTES = 120

#: Default beacon interval.  Real APs use ~102.4 ms; the simulated
#: iperf intervals are sub-second, so a faster default keeps the
#: association dynamics observable (it is configurable).
DEFAULT_BEACON_INTERVAL_S = 0.025


class AccessPoint:
    """The iperf server side: receives data frames and returns ACKs.

    Optionally broadcasts beacons, which stations use to maintain
    association — the mechanism behind the paper's "connection to the
    access point was lost" observation under continuous jamming.
    """

    def __init__(self, name: str, kernel: SimKernel, medium: Medium,
                 rng: np.random.Generator, tx_power_dbm: float = 20.0) -> None:
        self.name = name
        self._kernel = kernel
        self._medium = medium
        self._rng = rng
        self.tx_power_dbm = float(tx_power_dbm)
        self.received_datagrams = 0
        self.received_payload_bytes = 0
        self._seen_seqs: set[int] = set()
        self._stations: list["Station"] = []
        self._beacon_interval_s = 0.0
        self.beacons_sent = 0
        #: Optional ``(rssi_dbm, success, time)`` callback per data
        #: frame, for link monitors / jamming detectors.
        self.monitor = None

    # ------------------------------------------------------------------
    # Beacons / association

    def register_station(self, station: "Station") -> None:
        """Stations that listen for this AP's beacons."""
        self._stations.append(station)

    def start_beacons(self, interval_s: float = DEFAULT_BEACON_INTERVAL_S) -> None:
        """Begin periodic beacon broadcasts."""
        if interval_s <= 0:
            raise ConfigurationError("beacon interval must be positive")
        self._beacon_interval_s = float(interval_s)
        self._kernel.schedule(0.0, self._beacon_tick)

    def _beacon_tick(self) -> None:
        self._kernel.schedule(self._beacon_interval_s, self._beacon_tick)
        # Beacons contend like any DCF transmission (simplified: DIFS
        # plus a CWmin backoff against the currently-known medium).
        slots = int(self._rng.integers(0, dcf.CW_MIN + 1))
        start = self._medium.backoff_finish_time(
            self.name, self._kernel.now, slots, dcf.DIFS_S, dcf.SLOT_S)
        # Skip the beacon if the medium stays unusable into the next
        # interval (a real AP's queue would also collapse).
        if start - self._kernel.now > self._beacon_interval_s:
            return
        self._kernel.schedule_at(start, self._transmit_beacon)

    def _transmit_beacon(self) -> None:
        beacon = MacFrame(
            kind=FrameKind.DATA, src=self.name, dst="*broadcast*",
            psdu_bytes=BEACON_BYTES, rate=WifiRate.MBPS_6,
        )
        emission = self._medium.emit_frame(self.name, beacon,
                                           self._kernel.now,
                                           self.tx_power_dbm)
        self.beacons_sent += 1
        self._kernel.schedule(
            beacon.duration_s, lambda: self._beacon_delivery(emission))

    def _beacon_delivery(self, emission: Emission) -> None:
        for station in self._stations:
            if self._medium.receive_frame(emission, station.name, self._rng):
                station.on_beacon()

    def handle_data_end(self, emission: Emission, sender: "Station") -> None:
        """Called when a data frame addressed to this AP ends."""
        frame = emission.frame
        if frame is None or frame.kind is not FrameKind.DATA:
            raise SimulationError("AP received a non-data emission")
        success = self._medium.receive_frame(emission, self.name, self._rng)
        if self.monitor is not None:
            rssi = self._medium.rx_power_dbm(emission, self.name)
            self.monitor(rssi, success, self._kernel.now)
        if not success:
            return
        # Duplicate retransmissions are ACKed but counted once.
        if frame.seq not in self._seen_seqs:
            self._seen_seqs.add(frame.seq)
            self.received_datagrams += 1
            self.received_payload_bytes += frame.payload_bytes
        ack = MacFrame(
            kind=FrameKind.ACK, src=self.name, dst=frame.src,
            psdu_bytes=ACK_LENGTH, rate=ack_rate_for(frame.rate),
            seq=frame.seq,
        )
        self._kernel.schedule(dcf.SIFS_S, lambda: self._send_ack(ack, sender))

    def _send_ack(self, ack: MacFrame, sender: "Station") -> None:
        emission = self._medium.emit_frame(self.name, ack, self._kernel.now,
                                           self.tx_power_dbm)
        self._kernel.schedule(ack.duration_s,
                              lambda: sender.on_ack_end(emission))


class Station:
    """The iperf client side: a single-queue DCF transmitter."""

    def __init__(self, name: str, kernel: SimKernel, medium: Medium,
                 ap: AccessPoint, rng: np.random.Generator,
                 tx_power_dbm: float = 14.0, queue_limit: int = 100,
                 rate_control: ArfRateController | None = None) -> None:
        if queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1")
        self.name = name
        self._kernel = kernel
        self._medium = medium
        self._ap = ap
        self._rng = rng
        self.tx_power_dbm = float(tx_power_dbm)
        self._queue: deque[int] = deque()
        self._queue_limit = queue_limit
        self.rate_control = rate_control if rate_control is not None \
            else ArfRateController()
        self.stats = StationStats()
        self._seq = 0
        self._busy = False
        self._retry = 0
        self._current_payload: int | None = None
        self._current_seq = 0
        self._timeout_handle: EventHandle | None = None
        self._acked = False
        # Association tracking (active when the AP broadcasts beacons
        # and track_beacons() is called).
        self._beacon_timeout_s: float | None = None
        self._associated = True
        self.connection_losses = 0
        self._beacon_watchdog: EventHandle | None = None

    # ------------------------------------------------------------------
    # Association

    @property
    def associated(self) -> bool:
        """Whether the station currently holds its association."""
        return self._associated

    def track_beacons(self, timeout_s: float) -> None:
        """Drop the association if no beacon arrives for ``timeout_s``."""
        if timeout_s <= 0:
            raise ConfigurationError("beacon timeout must be positive")
        self._beacon_timeout_s = float(timeout_s)
        self._arm_beacon_watchdog()

    def _arm_beacon_watchdog(self) -> None:
        if self._beacon_watchdog is not None:
            self._beacon_watchdog.cancel()
        assert self._beacon_timeout_s is not None
        self._beacon_watchdog = self._kernel.schedule(
            self._beacon_timeout_s, self._on_beacon_timeout)

    def on_beacon(self) -> None:
        """A beacon was decoded; refresh (or regain) the association."""
        if self._beacon_timeout_s is None:
            return
        if not self._associated:
            self._associated = True
            if self._queue and not self._busy:
                self._next_frame()
        self._arm_beacon_watchdog()

    def _on_beacon_timeout(self) -> None:
        if self._associated:
            self._associated = False
            self.connection_losses += 1
        self._arm_beacon_watchdog()

    # ------------------------------------------------------------------
    # Application interface

    @property
    def backlog(self) -> int:
        """Datagrams accepted but not yet resolved (queued or in flight)."""
        return len(self._queue) + (1 if self._current_payload is not None else 0)

    def enqueue_datagram(self, payload_bytes: int) -> bool:
        """Offer one UDP datagram to the MAC queue.

        Returns False when the queue is full (the sending socket would
        block); the datagram is then never "sent" from iperf's point
        of view.
        """
        self.stats.offered += 1
        if len(self._queue) >= self._queue_limit:
            self.stats.throttled += 1
            return False
        self.stats.sent += 1
        self._queue.append(payload_bytes)
        if not self._busy:
            self._next_frame()
        return True

    # ------------------------------------------------------------------
    # DCF transmit machinery

    def _next_frame(self) -> None:
        if not self._queue or not self._associated:
            self._busy = False
            return
        self._busy = True
        self._current_payload = self._queue.popleft()
        self._current_seq = self._seq
        self._seq += 1
        self._retry = 0
        self._start_contention()

    def _start_contention(self) -> None:
        cw = dcf.contention_window(self._retry)
        slots = int(self._rng.integers(0, cw + 1))
        self._schedule_backoff(slots)

    def _schedule_backoff(self, slots: int) -> None:
        finish = self._medium.backoff_finish_time(
            self.name, self._kernel.now, slots, dcf.DIFS_S, dcf.SLOT_S
        )
        start = self._kernel.now
        self._kernel.schedule_at(
            finish, lambda: self._backoff_done(start, slots, finish)
        )

    def _backoff_done(self, start: float, slots: int, expected: float) -> None:
        # New emissions may have appeared since the finish time was
        # computed; recompute and re-wait if the medium disagrees.
        finish = self._medium.backoff_finish_time(
            self.name, start, slots, dcf.DIFS_S, dcf.SLOT_S
        )
        if finish > expected + 1e-12:
            self._kernel.schedule_at(
                finish, lambda: self._backoff_done(start, slots, finish)
            )
            return
        self._transmit()

    def _transmit(self) -> None:
        if self._current_payload is None:
            raise SimulationError("transmit with no frame staged")
        rate = self.rate_control.rate
        frame = MacFrame(
            kind=FrameKind.DATA, src=self.name, dst=self._ap.name,
            psdu_bytes=udp_datagram_psdu(self._current_payload),
            rate=rate, seq=self._current_seq,
            payload_bytes=self._current_payload,
        )
        self.stats.attempts += 1
        self._acked = False
        emission = self._medium.emit_frame(self.name, frame,
                                           self._kernel.now,
                                           self.tx_power_dbm)
        self._kernel.schedule(
            frame.duration_s, lambda: self._ap.handle_data_end(emission, self)
        )
        ack_air_s = ppdu_duration_us(ACK_LENGTH, ack_rate_for(rate)) * 1e-6
        timeout = frame.duration_s + dcf.ack_timeout_s(ack_air_s)
        self._timeout_handle = self._kernel.schedule(
            timeout, self._on_ack_timeout
        )

    def on_ack_end(self, emission: Emission) -> None:
        """The AP's ACK finished; decide whether we decoded it."""
        if self._acked or self._current_payload is None:
            return
        if self._medium.receive_frame(emission, self.name, self._rng):
            self._acked = True
            if self._timeout_handle is not None:
                self._timeout_handle.cancel()
                self._timeout_handle = None
            self.rate_control.report_success()
            self.stats.delivered += 1
            self.stats.delivered_payload_bytes += self._current_payload
            self._current_payload = None
            self._next_frame()

    def _on_ack_timeout(self) -> None:
        if self._acked:
            return
        self.rate_control.report_failure()
        self._retry += 1
        if self._retry > dcf.RETRY_LIMIT:
            self.stats.retry_drops += 1
            self._current_payload = None
            self._next_frame()
        else:
            self._start_contention()


class JammerNode:
    """The jammer on the MAC plane, mirroring the hardware timing."""

    def __init__(self, name: str, kernel: SimKernel, medium: Medium,
                 personality: JammerPersonality, tx_power_dbm: float,
                 response_time_s: float | None = None,
                 sensitivity_dbm: float = -80.0) -> None:
        self.name = name
        self._kernel = kernel
        self._medium = medium
        self.personality = personality
        self.tx_power_dbm = float(tx_power_dbm)
        self._sensitivity_dbm = float(sensitivity_dbm)
        if response_time_s is None:
            response_time_s = timeline_for().t_resp_xcorr
        self._response_time_s = float(response_time_s)
        self._busy_until = -1.0
        self.bursts = 0
        medium.add_frame_listener(self._on_frame_start)

    def start(self, run_duration_s: float) -> None:
        """Begin operation (continuous jammers key up immediately)."""
        if self.personality.continuous:
            self._medium.emit_jam(self.name, self._kernel.now,
                                  run_duration_s, self.tx_power_dbm)
            self.bursts += 1

    def _on_frame_start(self, emission: Emission) -> None:
        if self.personality.continuous:
            return
        if emission.src == self.name:
            return
        power = self._medium.rx_power_dbm(emission, self.name)
        if power is None or power < self._sensitivity_dbm:
            return
        now = emission.start
        if now < self._busy_until:
            return
        delay_s = units.samples_to_seconds(self.personality.delay_samples)
        burst_start = now + self._response_time_s + delay_s
        burst_len = self.personality.uptime_seconds
        self._busy_until = burst_start + burst_len
        self._medium.emit_jam(self.name, burst_start, burst_len,
                              self.tx_power_dbm)
        self.bursts += 1
