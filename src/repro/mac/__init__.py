"""802.11 MAC and traffic substrate for the network-level experiments.

The paper's Figs. 10/11 measure iperf UDP bandwidth and packet
reception ratio over a real 802.11g link while the jammer runs.  This
package provides the simulated equivalent:

* :mod:`repro.mac.simkernel` — a discrete-event simulation kernel.
* :mod:`repro.mac.frames` — MAC frame descriptors and air times.
* :mod:`repro.mac.rate_control` — ARF-style rate fallback ("802.11
  rate back-offs ... considered as inherent parts of the link").
* :mod:`repro.mac.medium` — the shared channel: emissions, per-node
  received powers (from the 5-port network), carrier sense, and the
  frame-corruption decision combining the link model with jam bursts.
* :mod:`repro.mac.dcf` — the CSMA/CA distributed coordination
  function: DIFS/SIFS, binary exponential backoff, ACKs, retries.
* :mod:`repro.mac.nodes` — access point, client station, and the
  reactive/continuous jammer as a MAC-plane entity driven by the same
  hardware timing parameters as the waveform-level model.
* :mod:`repro.mac.iperf` — the UDP bandwidth test client/server pair
  reporting bandwidth and PRR exactly as the paper's tables read them.
"""

from __future__ import annotations

from repro.mac.simkernel import SimKernel
from repro.mac.frames import FrameKind, MacFrame, ack_duration_us, data_duration_us
from repro.mac.rate_control import ArfRateController
from repro.mac.medium import Emission, Medium
from repro.mac.nodes import AccessPoint, JammerNode, Station
from repro.mac.iperf import IperfReport, UdpBandwidthTest

__all__ = [
    "SimKernel",
    "FrameKind",
    "MacFrame",
    "ack_duration_us",
    "data_duration_us",
    "ArfRateController",
    "Emission",
    "Medium",
    "AccessPoint",
    "JammerNode",
    "Station",
    "IperfReport",
    "UdpBandwidthTest",
]
