"""ARF-style automatic rate fallback.

The paper leaves "802.11 ... rate back-offs" unconstrained and treats
them as part of the link's behaviour; they matter because a jammer
that corrupts frames pushes the rate down, amplifying the bandwidth
loss.  We implement classic ARF: step the rate down after
``down_after`` consecutive failures, probe back up after ``up_after``
consecutive successes.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.phy.wifi.params import WifiRate

#: The OFDM rate ladder, slowest first.
RATE_LADDER = [
    WifiRate.MBPS_6, WifiRate.MBPS_9, WifiRate.MBPS_12, WifiRate.MBPS_18,
    WifiRate.MBPS_24, WifiRate.MBPS_36, WifiRate.MBPS_48, WifiRate.MBPS_54,
]


class ArfRateController:
    """Per-link transmit rate state."""

    def __init__(self, initial: WifiRate = WifiRate.MBPS_54,
                 down_after: int = 2, up_after: int = 10) -> None:
        if down_after < 1 or up_after < 1:
            raise ConfigurationError("thresholds must be >= 1")
        self._index = RATE_LADDER.index(initial)
        self._down_after = down_after
        self._up_after = up_after
        self._failures = 0
        self._successes = 0

    @property
    def rate(self) -> WifiRate:
        """Current transmit rate."""
        return RATE_LADDER[self._index]

    def report_success(self) -> None:
        """Record a delivered (ACKed) frame."""
        self._failures = 0
        self._successes += 1
        if self._successes >= self._up_after:
            self._successes = 0
            if self._index < len(RATE_LADDER) - 1:
                self._index += 1

    def report_failure(self) -> None:
        """Record a failed (unACKed) transmission attempt."""
        self._successes = 0
        self._failures += 1
        if self._failures >= self._down_after:
            self._failures = 0
            if self._index > 0:
                self._index -= 1

    def reset(self, rate: WifiRate | None = None) -> None:
        """Reset counters (and optionally the rate)."""
        if rate is not None:
            self._index = RATE_LADDER.index(rate)
        self._failures = 0
        self._successes = 0
