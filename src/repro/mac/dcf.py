"""802.11g DCF timing constants and backoff arithmetic.

Values are the ERP-OFDM (802.11g, no protection) set: 9 us slots,
10 us SIFS, DIFS = SIFS + 2 slots = 28 us, CWmin/CWmax 15/1023.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Slot time (seconds).
SLOT_S = 9e-6

#: Short interframe space (seconds).
SIFS_S = 10e-6

#: DCF interframe space (seconds).
DIFS_S = SIFS_S + 2 * SLOT_S

#: Contention window bounds (slots).
CW_MIN = 15
CW_MAX = 1023

#: Maximum transmission attempts per frame (long retry limit).
RETRY_LIMIT = 7

#: Extra allowance beyond SIFS + ACK air time before declaring timeout.
ACK_TIMEOUT_MARGIN_S = SLOT_S


def contention_window(retry_count: int) -> int:
    """CW for the given retry count (binary exponential backoff)."""
    if retry_count < 0:
        raise ConfigurationError("retry_count must be non-negative")
    cw = (CW_MIN + 1) * (1 << retry_count) - 1
    return min(cw, CW_MAX)


def ack_timeout_s(ack_duration_s: float) -> float:
    """How long a transmitter waits for an ACK before retrying."""
    if ack_duration_s <= 0:
        raise ConfigurationError("ack_duration_s must be positive")
    return SIFS_S + ack_duration_s + ACK_TIMEOUT_MARGIN_S
