"""Byte-level 802.11 MAC frame formats.

The MAC simulation works with abstract :class:`repro.mac.frames.
MacFrame` descriptors; this module provides the concrete wire format
for the pieces the attack/defence applications need to forge or parse:
data frames, ACKs, and deauthentication frames, all with valid FCS.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError, DecodeError
from repro.phy.bits import append_fcs, check_fcs

#: A locally-administered test OUI for convenience addresses.
_TEST_PREFIX = b"\x02\x00\x5e"


def mac_address(suffix: int) -> bytes:
    """A deterministic locally-administered MAC address."""
    if not 0 <= suffix <= 0xFFFFFF:
        raise ConfigurationError("suffix must fit 24 bits")
    return _TEST_PREFIX + suffix.to_bytes(3, "big")


class FrameType(enum.Enum):
    """The 802.11 frame classes used here (type, subtype)."""

    DATA = (2, 0)
    ACK = (1, 13)
    DEAUTH = (0, 12)


def _frame_control(frame_type: FrameType, to_ds: bool = False,
                   from_ds: bool = False) -> bytes:
    ftype, subtype = frame_type.value
    first = (ftype << 2) | (subtype << 4)  # protocol version 0
    second = (1 if to_ds else 0) | (2 if from_ds else 0)
    return bytes([first, second])


@dataclass(frozen=True)
class Dot11Header:
    """The parsed fixed fields of a (data/management) MAC header."""

    frame_type: FrameType
    addr1: bytes
    addr2: bytes
    addr3: bytes
    sequence: int


def build_data_frame(dst: bytes, src: bytes, bssid: bytes,
                     payload: bytes, sequence: int = 0,
                     to_ds: bool = True) -> bytes:
    """A data MPDU: header (24 B) + payload + FCS."""
    for name, addr in (("dst", dst), ("src", src), ("bssid", bssid)):
        if len(addr) != 6:
            raise ConfigurationError(f"{name} must be 6 bytes")
    if not 0 <= sequence <= 0xFFF:
        raise ConfigurationError("sequence must fit 12 bits")
    # In to-DS frames addr1 is the BSSID, addr2 the source station,
    # addr3 the final destination.
    a1, a2, a3 = (bssid, src, dst) if to_ds else (dst, bssid, src)
    header = (_frame_control(FrameType.DATA, to_ds=to_ds, from_ds=not to_ds)
              + b"\x00\x00"                       # duration
              + a1 + a2 + a3
              + (sequence << 4).to_bytes(2, "little"))
    return append_fcs(header + payload)


def build_ack_frame(receiver: bytes) -> bytes:
    """An ACK control frame (14 bytes with FCS)."""
    if len(receiver) != 6:
        raise ConfigurationError("receiver must be 6 bytes")
    return append_fcs(_frame_control(FrameType.ACK) + b"\x00\x00" + receiver)


def build_deauth_frame(dst: bytes, src: bytes, bssid: bytes,
                       reason: int = 7, sequence: int = 0) -> bytes:
    """A deauthentication management frame.

    Reason 7 ("class 3 frame from nonassociated station") is the
    classic spoofed-deauth payload.
    """
    for name, addr in (("dst", dst), ("src", src), ("bssid", bssid)):
        if len(addr) != 6:
            raise ConfigurationError(f"{name} must be 6 bytes")
    if not 0 <= reason <= 0xFFFF:
        raise ConfigurationError("reason must fit 16 bits")
    header = (_frame_control(FrameType.DEAUTH)
              + b"\x00\x00"
              + dst + src + bssid
              + (sequence << 4).to_bytes(2, "little"))
    return append_fcs(header + reason.to_bytes(2, "little"))


def parse_frame(mpdu: bytes) -> tuple[Dot11Header, bytes]:
    """Parse an MPDU; returns (header, body-without-FCS).

    Raises :class:`DecodeError` on a bad FCS or malformed header.
    """
    if not check_fcs(mpdu):
        raise DecodeError("FCS check failed")
    body = mpdu[:-4]
    if len(body) < 10:
        raise DecodeError("frame too short for any 802.11 header")
    ftype = (body[0] >> 2) & 0x3
    subtype = (body[0] >> 4) & 0xF
    try:
        frame_type = FrameType((ftype, subtype))
    except ValueError as exc:
        raise DecodeError(
            f"unsupported frame type/subtype ({ftype}, {subtype})"
        ) from exc
    if frame_type is FrameType.ACK:
        header = Dot11Header(frame_type=frame_type, addr1=body[4:10],
                             addr2=b"", addr3=b"", sequence=0)
        return header, b""
    if len(body) < 24:
        raise DecodeError("frame too short for a full MAC header")
    sequence = int.from_bytes(body[22:24], "little") >> 4
    header = Dot11Header(
        frame_type=frame_type,
        addr1=body[4:10], addr2=body[10:16], addr3=body[16:22],
        sequence=sequence,
    )
    return header, body[24:]
