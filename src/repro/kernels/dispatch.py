"""Backend dispatch for the detection kernels.

The kernel layer has exactly one semantic: the numpy reference
implementation.  Alternative backends (the optional numba JIT) are
*accelerations* of that semantic, required to be byte-identical to the
reference on every input — the parity tests in
``tests/kernels/test_backend_parity.py`` enforce this, and nothing in
the repo is allowed to behave differently depending on which backend
ran.

Selection order for :func:`get_backend`:

1. an explicit ``backend=`` argument (a name or an already-resolved
   :class:`KernelBackend`) — unknown or unavailable names raise,
   because the caller asked for something specific;
2. the ``REPRO_KERNEL_BACKEND`` environment variable — unknown or
   unavailable names *fall back* to the reference backend with a
   one-shot warning, because an environment knob must never turn a
   working run into a crash (e.g. ``REPRO_KERNEL_BACKEND=numba`` on a
   box without numba);
3. the default: ``numpy``.

Backends register lazily via a factory so that merely importing
:mod:`repro.kernels` never imports an optional dependency.
"""

from __future__ import annotations

import os
import warnings
from collections.abc import Callable

import numpy as np

from repro.errors import ConfigurationError

#: Environment variable naming the preferred kernel backend.
BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: The reference backend every other backend must match byte-for-byte.
DEFAULT_BACKEND = "numpy"


class BackendUnavailable(Exception):
    """A registered backend cannot run here (missing optional dep)."""


class KernelBackend:
    """Interface the detection kernels dispatch through.

    A backend implements the two primitives every detector reduces to;
    the fused/batched/chained logic above them is backend-independent
    array bookkeeping in :mod:`repro.kernels.xcorr` /
    :mod:`repro.kernels.energy`.
    """

    #: Registry name; concrete backends override this.
    name = "abstract"

    def xcorr_metric(self, plane: np.ndarray, coeffs,
                     out: np.ndarray | None = None,
                     scratch=None) -> np.ndarray:
        """Squared correlation metric over an interleaved sign plane.

        ``plane`` is ``(..., 2 * (history + n))`` int8 with I/Q signs
        interleaved (``plane[..., 2m]`` = sign I of pair ``m``); the
        leading ``2 * (taps - 1)`` entries are carried history (zeros
        after reset).  Returns ``(..., n)`` int64.
        """
        raise NotImplementedError

    def xcorr_metric_stacked(self, plane: np.ndarray, coeffs,
                             out: np.ndarray | None = None,
                             scratch=None) -> np.ndarray:
        """Per-bank squared metric over one shared sign plane.

        ``plane`` is laid out exactly as for :meth:`xcorr_metric` with
        the history depth of the *stacked* bank
        (``2 * (coeffs.taps - 1)`` leading entries); ``coeffs`` is a
        :class:`repro.kernels.xcorr.StackedCoefficients` carrying the
        ``K`` zero-padded protocol banks.  Returns ``(..., K, n)``
        int64 — bank ``k``'s row is byte-identical to
        :meth:`xcorr_metric` run with bank ``k`` alone.
        """
        raise NotImplementedError

    def moving_sums(self, padded: np.ndarray, window: int,
                    out: np.ndarray | None = None,
                    csum_scratch=None) -> np.ndarray:
        """Length-``window`` moving sums over ``(..., window + n)`` rows.

        Each row is ``[tail | energies]`` float64; returns ``(..., n)``
        float64 computed exactly as the sequential cumulative-sum
        difference the streaming block uses, so results are
        bit-identical across backends and batch shapes.
        """
        raise NotImplementedError


_FACTORIES: dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}
_WARNED: set[str] = set()


def register_backend(name: str,
                     factory: Callable[[], KernelBackend]) -> None:
    """Register a backend factory under ``name``.

    The factory runs on first selection; it may raise
    :class:`BackendUnavailable` to signal a missing optional
    dependency.
    """
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Names of the registered backends that construct on this host."""
    names = []
    for name in _FACTORIES:
        try:
            _resolve(name)
        except BackendUnavailable:
            continue
        names.append(name)
    return tuple(names)


def _resolve(name: str) -> KernelBackend:
    instance = _INSTANCES.get(name)
    if instance is None:
        if name not in _FACTORIES:
            raise ConfigurationError(
                f"unknown kernel backend {name!r}; registered: "
                f"{sorted(_FACTORIES)}"
            )
        instance = _INSTANCES[name] = _FACTORIES[name]()
    return instance


def get_backend(backend: "str | KernelBackend | None" = None
                ) -> KernelBackend:
    """Resolve a kernel backend (see module docstring for the order)."""
    if isinstance(backend, KernelBackend):
        return backend
    if backend is not None:
        return _resolve(backend)
    from_env = os.environ.get(BACKEND_ENV)
    if from_env:
        try:
            return _resolve(from_env)
        except (ConfigurationError, BackendUnavailable) as exc:
            if from_env not in _WARNED:
                _WARNED.add(from_env)
                warnings.warn(
                    f"{BACKEND_ENV}={from_env!r} is not usable here "
                    f"({exc}); falling back to the "
                    f"{DEFAULT_BACKEND!r} reference backend",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return _resolve(DEFAULT_BACKEND)
