"""Batched energy-differentiator kernels (paper Fig. 4).

The streaming block is a length-``window`` moving energy sum compared
against its own value ``delay`` samples earlier.  Batching rows is
*not* free of state the way it looks: the moving sum is evaluated as a
float64 cumulative-sum difference, and float addition does not cancel
prefixes — ``(A + x) - (A + y) != x - y`` in general — so a batched
row must start from the previous row's *actual* tail values, not from
a fresh zero tail, to stay byte-identical to the stream.  The chained
kernel therefore stitches two per-row carries:

* the last ``window`` energies of the previous row (moving-sum warmup);
* the last ``delay`` sums of the previous row (the Z^-64 delay line).

Rows shorter than a tail reach into their own stitched prefix, which
makes the gather order-dependent; that rare shape falls back to a
sequential stitch, keeping the identity guarantee unconditional.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StreamError
from repro.kernels.dispatch import KernelBackend, get_backend
from repro.kernels.xcorr import chained_edges


def moving_sums(padded: np.ndarray, window: int,
                backend: "str | KernelBackend | None" = None,
                out: np.ndarray | None = None,
                csum_scratch=None) -> np.ndarray:
    """Moving sums over ``[tail | energies]`` rows (backend dispatch)."""
    return get_backend(backend).moving_sums(padded, window, out=out,
                                            csum_scratch=csum_scratch)


@dataclass(frozen=True)
class EnergyBatchResult:
    """Chained batch result of the energy differentiator.

    ``trigger_high``/``trigger_low`` are raw ``(batch, width)`` planes
    (columns past a row's length are meaningless); the edge planes are
    masked to valid columns.  ``energy_tail``/``sum_tail`` and the two
    ``last`` bits are the carry-out stream state.
    """

    sums: np.ndarray
    trigger_high: np.ndarray
    trigger_low: np.ndarray
    edge_high: np.ndarray
    edge_low: np.ndarray
    energy_tail: np.ndarray
    sum_tail: np.ndarray
    last_high: bool
    last_low: bool


def _stitch_tails(full: np.ndarray, lengths: np.ndarray,
                  init_tail: np.ndarray, tail_len: int) -> None:
    """Fill ``full[:, :tail_len]`` with each previous row's valid tail.

    ``full`` rows are ``[tail | payload]``; the last ``tail_len``
    valid entries of row ``b - 1`` start at column ``lengths[b - 1]``.
    """
    batch = full.shape[0]
    full[0, :tail_len] = init_tail
    if batch == 1 or tail_len == 0:
        return
    if np.all(lengths[:-1] >= tail_len):
        cols = lengths[:-1, None] + np.arange(tail_len)[None, :]
        full[1:, :tail_len] = np.take_along_axis(full[:-1], cols, axis=1)
    else:
        for b in range(1, batch):
            start = lengths[b - 1]
            full[b, :tail_len] = full[b - 1, start:start + tail_len]


def energy_detect_batch(blocks: np.ndarray, lengths: np.ndarray,
                        window: int, delay: int,
                        threshold_high: float, threshold_low: float,
                        energy_tail: np.ndarray | None = None,
                        sum_tail: np.ndarray | None = None,
                        last_high: bool = False, last_low: bool = False,
                        backend: "str | KernelBackend | None" = None
                        ) -> EnergyBatchResult:
    """Run a batch of chained sample rows through the energy detector.

    Same contract as :func:`repro.kernels.xcorr.xcorr_detect_batch`:
    ``blocks`` is ``(batch, width)`` complex with per-row valid
    ``lengths``, rows are chained through the stitched tails, and the
    result is byte-identical to the streaming facade fed row by row.
    ``threshold_high``/``threshold_low`` are the *linear* ratios.
    """
    blocks = np.asarray(blocks)
    lengths = np.asarray(lengths, dtype=np.int64)
    if blocks.ndim != 2 or lengths.shape != (blocks.shape[0],):
        raise StreamError("expected (batch, width) blocks with one "
                          "length per row")
    if np.any(lengths < 1) or np.any(lengths > blocks.shape[1]):
        raise StreamError("row lengths must be in [1, width]")
    batch, width = blocks.shape

    # Zero padding has zero energy, and every padded-column value is
    # sliced off or masked before it can reach a carried tail.
    padded = np.empty((batch, window + width), dtype=np.float64)
    np.abs(np.asarray(blocks, dtype=np.complex128),
           out=padded[:, window:].view())
    np.square(padded[:, window:], out=padded[:, window:])
    if energy_tail is None:
        energy_tail = np.zeros(window, dtype=np.float64)
    _stitch_tails(padded, lengths, energy_tail, window)

    sums = moving_sums(padded, window, backend=backend)

    delayed_full = np.empty((batch, delay + width), dtype=np.float64)
    delayed_full[:, delay:] = sums
    if sum_tail is None:
        sum_tail = np.zeros(delay, dtype=np.float64)
    _stitch_tails(delayed_full, lengths, sum_tail, delay)
    delayed = delayed_full[:, :width]

    trigger_high = sums > delayed * threshold_high
    trigger_low = sums * threshold_low < delayed

    tail_start = int(lengths[-1])
    return EnergyBatchResult(
        sums=sums,
        trigger_high=trigger_high,
        trigger_low=trigger_low,
        edge_high=chained_edges(trigger_high, lengths, last_high),
        edge_low=chained_edges(trigger_low, lengths, last_low),
        energy_tail=padded[-1, tail_start:tail_start + window].copy(),
        sum_tail=delayed_full[-1, tail_start:tail_start + delay].copy(),
        last_high=bool(trigger_high[-1, lengths[-1] - 1]),
        last_low=bool(trigger_low[-1, lengths[-1] - 1]),
    )
