"""Shared primitive wrappers: the repo's one home for raw DSP calls.

repro-lint rule RJ009 flags direct ``np.correlate`` / ``np.convolve``
/ ``sliding_window_view`` use outside :mod:`repro.kernels`, the same
choke-point discipline RJ008 applies to process pools: correlation
datapaths that matter for bit-exactness must go through the kernel
layer, and the remaining convolution call sites (channel models,
matched filters) route through here so a future optimization or
backend swap has exactly one place to land.
"""

from __future__ import annotations

import numpy as np


def convolve(signal: np.ndarray, kernel: np.ndarray,
             mode: str = "full") -> np.ndarray:
    """``np.convolve`` behind the kernel-layer choke point."""
    return np.convolve(signal, kernel, mode=mode)
