"""repro.kernels: fused, batched, backend-dispatched DSP kernels.

The bit-exact compute layer under the detector facades:

* :mod:`repro.kernels.xcorr` — the sign-bit cross-correlator as two
  GEMMs over an interleaved sign plane (fused metric + trigger + edge
  extraction, streaming and chained-batch forms);
* :mod:`repro.kernels.energy` — the moving-sum energy differentiator
  with exact float tail stitching for batched rows;
* :mod:`repro.kernels.dispatch` — the backend registry (``numpy``
  reference, optional ``numba`` JIT) selected per call or via the
  ``REPRO_KERNEL_BACKEND`` environment variable;
* :mod:`repro.kernels.ops` — the choke point for the remaining raw
  convolution call sites (see repro-lint RJ009).

Every backend is required to be byte-identical to the numpy reference;
the facades in :mod:`repro.hw` stay the stateful streaming API while
all per-sample math lives here.
"""

from __future__ import annotations

from repro.kernels.dispatch import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    BackendUnavailable,
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.kernels.energy import (
    EnergyBatchResult,
    energy_detect_batch,
    moving_sums,
)
from repro.kernels.numba_backend import make_numba_backend
from repro.kernels.numpy_backend import NumpyKernelBackend
from repro.kernels.xcorr import (
    StackedBatchResult,
    StackedCoefficients,
    StackedDetection,
    XcorrBatchResult,
    XcorrCoefficients,
    XcorrDetection,
    chained_edges,
    prepare_coefficients,
    prepare_stacked,
    rising_edge_plane,
    sign_plane,
    stacked_bank_program,
    xcorr_detect,
    xcorr_detect_batch,
    xcorr_detect_stacked,
    xcorr_detect_stacked_batch,
    xcorr_metric,
    xcorr_metric_stacked,
)

register_backend("numpy", NumpyKernelBackend)
register_backend("numba", make_numba_backend)

__all__ = [
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "BackendUnavailable",
    "EnergyBatchResult",
    "KernelBackend",
    "NumpyKernelBackend",
    "StackedBatchResult",
    "StackedCoefficients",
    "StackedDetection",
    "XcorrBatchResult",
    "XcorrCoefficients",
    "XcorrDetection",
    "available_backends",
    "chained_edges",
    "energy_detect_batch",
    "get_backend",
    "make_numba_backend",
    "moving_sums",
    "prepare_coefficients",
    "prepare_stacked",
    "register_backend",
    "rising_edge_plane",
    "sign_plane",
    "stacked_bank_program",
    "xcorr_detect",
    "xcorr_detect_batch",
    "xcorr_detect_stacked",
    "xcorr_detect_stacked_batch",
    "xcorr_metric",
    "xcorr_metric_stacked",
]
