"""Optional numba JIT backend.

A straight-line integer transcription of the kernel semantics: int64
accumulation over the int8 sign plane for the correlator, sequential
float64 cumulative sums for the energy path.  Integer arithmetic is
associative and the cumulative sum is written in the exact sequential
order the numpy reference uses, so the JIT results are bit-identical
to the reference — the parity tests enforce it whenever numba is
importable.

numba is *not* a dependency of this repo.  The backend registers a
factory that raises :class:`repro.kernels.dispatch.BackendUnavailable`
when the import fails, which :func:`repro.kernels.dispatch.get_backend`
turns into a warning-and-fallback for environment-variable selection.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.dispatch import BackendUnavailable, KernelBackend


def _compile_kernels():
    from numba import njit, prange

    @njit(parallel=True, cache=True)
    def xcorr_metric(plane, stacked, history_pairs, out):
        rows, length = plane.shape
        taps2 = stacked.shape[0]
        n = length // 2 - history_pairs
        for r in prange(rows):
            for t in range(n):
                base = 2 * t
                corr_re = np.int64(0)
                corr_im = np.int64(0)
                for j in range(taps2):
                    value = np.int64(plane[r, base + j])
                    corr_re += stacked[j, 0] * value
                    corr_im += stacked[j, 1] * value
                out[r, t] = corr_re * corr_re + corr_im * corr_im

    @njit(parallel=True, cache=True)
    def xcorr_metric_stacked(plane, stacked, history_pairs, out):
        rows, length = plane.shape
        taps2 = stacked.shape[0]
        banks = stacked.shape[1] // 2
        n = length // 2 - history_pairs
        for r in prange(rows):
            for t in range(n):
                base = 2 * t
                for b in range(banks):
                    corr_re = np.int64(0)
                    corr_im = np.int64(0)
                    for j in range(taps2):
                        value = np.int64(plane[r, base + j])
                        corr_re += stacked[j, 2 * b] * value
                        corr_im += stacked[j, 2 * b + 1] * value
                    out[r, b, t] = corr_re * corr_re + corr_im * corr_im

    @njit(parallel=True, cache=True)
    def moving_sums(padded, window, csum, out):
        rows, length = padded.shape
        n = length - window
        for r in prange(rows):
            acc = 0.0
            for k in range(length):
                acc += padded[r, k]
                csum[r, k] = acc
            for i in range(n):
                out[r, i] = csum[r, window + i] - csum[r, i]

    return xcorr_metric, xcorr_metric_stacked, moving_sums


class NumbaKernelBackend(KernelBackend):
    """JIT-compiled integer kernels (requires the optional numba)."""

    name = "numba"

    def __init__(self) -> None:
        try:
            self._xcorr, self._xcorr_stacked, self._sums = \
                _compile_kernels()
        except ImportError as exc:
            raise BackendUnavailable(
                "the numba backend needs the optional 'numba' package"
            ) from exc

    def xcorr_metric(self, plane: np.ndarray, coeffs,
                     out: np.ndarray | None = None,
                     scratch=None) -> np.ndarray:
        plane = np.asarray(plane, dtype=np.int8)
        lead = plane.shape[:-1]
        length = plane.shape[-1]
        n = length // 2 - coeffs.history_pairs
        if out is None:
            out = np.empty(lead + (n,), dtype=np.int64)
        rows = int(np.prod(lead, dtype=np.int64)) if lead else 1
        self._xcorr(np.ascontiguousarray(plane.reshape(rows, length)),
                    coeffs.stacked, coeffs.history_pairs,
                    out.reshape(rows, n))
        return out

    def xcorr_metric_stacked(self, plane: np.ndarray, coeffs,
                             out: np.ndarray | None = None,
                             scratch=None) -> np.ndarray:
        plane = np.asarray(plane, dtype=np.int8)
        lead = plane.shape[:-1]
        length = plane.shape[-1]
        n = length // 2 - coeffs.history_pairs
        banks = coeffs.n_banks
        if out is None:
            out = np.empty(lead + (banks, n), dtype=np.int64)
        rows = int(np.prod(lead, dtype=np.int64)) if lead else 1
        self._xcorr_stacked(
            np.ascontiguousarray(plane.reshape(rows, length)),
            coeffs.stacked, coeffs.history_pairs,
            out.reshape(rows, banks, n))
        return out

    def moving_sums(self, padded: np.ndarray, window: int,
                    out: np.ndarray | None = None,
                    csum_scratch=None) -> np.ndarray:
        padded = np.asarray(padded, dtype=np.float64)
        lead = padded.shape[:-1]
        length = padded.shape[-1]
        n = length - window
        rows = int(np.prod(lead, dtype=np.int64)) if lead else 1
        if out is None:
            out = np.empty(lead + (n,), dtype=np.float64)
        csum = np.empty((rows, length), dtype=np.float64)
        self._sums(np.ascontiguousarray(padded.reshape(rows, length)),
                   window, csum, out.reshape(rows, n))
        return out


def make_numba_backend() -> NumbaKernelBackend:
    """Factory for the dispatch registry (raises BackendUnavailable)."""
    return NumbaKernelBackend()
