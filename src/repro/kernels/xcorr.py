"""Fused, batched sign-bit cross-correlation kernels.

The paper's correlator (Fig. 3) is one fixed-point pipeline: slice
each I/Q pair to its sign bit, correlate against 64 3-bit complex
coefficients, square, compare, trigger.  The seed software model spent
four separate ``np.correlate`` passes per chunk on this; here the
whole datapath is two GEMMs.

**Layout.**  A chunk becomes an *interleaved sign plane*:
``plane[2m] = sign(I[m])``, ``plane[2m+1] = sign(Q[m])``, prefixed by
the ``2 * (taps - 1)`` entries of carried history (zeros after reset,
matching the hardware).  With the stacked coefficient matrix ``C`` of
shape ``(2T, 2)``::

    C[2k, 0] = cI[k]   C[2k+1, 0] = cQ[k]     # -> corr_re
    C[2k, 1] = -cQ[k]  C[2k+1, 1] = cI[k]     # -> corr_im

the window starting at pair ``t`` satisfies
``(corr_re[t], corr_im[t]) = plane[2t : 2t + 2T] @ C`` — both
correlator accumulators from one product.

**Block-Toeplitz evaluation.**  Gathering every window explicitly
(``sliding_window_view`` + matmul) is memory-bound: each input element
is copied ~64 times.  Instead the plane is cut into contiguous
non-overlapping blocks of ``2S`` entries (``S = taps``) and the
windows are recovered algebraically: every window spans at most two
consecutive blocks, so with banded Toeplitz matrices ``A`` and ``B``
(``A[tau, 2j+c] = C[tau - 2j, c]`` where defined, ``B`` the
continuation into the next block)::

    out = X0 @ A + X1 @ B        # X1 = X0 shifted one block

which runs at full BLAS speed on the untouched input layout.

**Exactness.**  Every partial sum is an integer bounded by
``sum(|cI| + |cQ|)`` and the metric by twice its square; when that
fits float32's 2**24 integer window (it does for 3-bit banks: bound
512, metric 524288) the GEMM is performed in float32 and is *exact* —
every intermediate is an exactly-representable integer regardless of
summation order.  Larger banks fall back to float64 (exact through
2**53).  The result is bit-identical to the int64 reference, which the
parity tests enforce property-style.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, StreamError
from repro.kernels.dispatch import KernelBackend, get_backend
from repro.runtime.cache import cached_artifact

#: Largest integer float32 runs an exact accumulation over.
_F32_EXACT_LIMIT = 1 << 24

#: Prepared-bank memo (insertion-ordered; oldest evicted at the cap).
_PREPARED_CACHE: dict[tuple[bytes, bytes], "XcorrCoefficients"] = {}
_PREPARED_CACHE_MAX = 16

#: Int8 scalars for the in-place 0/1 -> +1/-1 sign mapping.
_SIGN_SCALE = np.int8(-2)
_SIGN_POS = np.int8(1)


@dataclass(frozen=True)
class XcorrCoefficients:
    """A coefficient bank prepared for the fused kernel.

    Attributes:
        taps: Template length ``T`` (64 for the paper's correlator).
        stacked: ``(2T, 2)`` int64 stacked coefficient matrix (the
            ``C`` of the module docstring) — integer ground truth used
            by the reference/JIT paths.
        gemm_dtype: float32 when the exactness bound allows, else
            float64.
        block: Block length ``S`` of the Toeplitz evaluation (= taps).
        a_matrix: ``(2S, 2S)`` in-block Toeplitz band, ``gemm_dtype``.
        b_matrix: ``(2S, 2S)`` next-block continuation band.
    """

    taps: int
    stacked: np.ndarray
    gemm_dtype: np.dtype
    block: int
    a_matrix: np.ndarray
    b_matrix: np.ndarray

    @property
    def history_pairs(self) -> int:
        """Sign pairs of history a stream must carry: ``taps - 1``."""
        return self.taps - 1


def _freeze(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


def prepare_coefficients(coeffs_i: np.ndarray,
                         coeffs_q: np.ndarray) -> XcorrCoefficients:
    """Build the stacked and Toeplitz matrices for a coefficient bank.

    Memoized on the bank contents: sweep trials re-prepare the same
    bank thousands of times, and the prepared matrices are frozen, so
    sharing one instance is safe.
    """
    coeffs_i = np.asarray(coeffs_i, dtype=np.int64)
    coeffs_q = np.asarray(coeffs_q, dtype=np.int64)
    if coeffs_i.ndim != 1 or coeffs_i.shape != coeffs_q.shape:
        raise ConfigurationError(
            "coefficient banks must be two 1-D arrays of equal length"
        )
    taps = coeffs_i.size
    if taps < 1:
        raise ConfigurationError("coefficient banks must not be empty")
    key = (coeffs_i.tobytes(), coeffs_q.tobytes())
    cached = _PREPARED_CACHE.get(key)
    if cached is not None:
        return cached

    stacked = np.zeros((2 * taps, 2), dtype=np.int64)
    stacked[0::2, 0] = coeffs_i
    stacked[1::2, 0] = coeffs_q
    stacked[0::2, 1] = -coeffs_q
    stacked[1::2, 1] = coeffs_i

    # |corr_re|, |corr_im| <= bound; metric <= 2 * bound**2.  Exact in
    # float32 iff the metric stays inside the 2**24 integer window.
    bound = int(np.sum(np.abs(coeffs_i)) + np.sum(np.abs(coeffs_q)))
    exact_in_f32 = 2 * bound * bound < _F32_EXACT_LIMIT
    gemm_dtype = np.dtype(np.float32 if exact_in_f32 else np.float64)

    block = taps
    two_s = 2 * block
    # A[tau, j, c] = stacked[tau - 2j, c] for 0 <= tau - 2j < 2T;
    # B picks up the band where it wraps past the block boundary.
    offsets = np.arange(two_s)[:, None] - 2 * np.arange(block)[None, :]
    clipped = offsets.clip(0, 2 * taps - 1)
    in_band = (offsets >= 0) & (offsets < 2 * taps)
    a_matrix = np.where(in_band[:, :, None], stacked[clipped], 0)
    offsets_b = offsets + two_s
    clipped_b = offsets_b.clip(0, 2 * taps - 1)
    in_band_b = (offsets_b >= 0) & (offsets_b < 2 * taps)
    b_matrix = np.where(in_band_b[:, :, None], stacked[clipped_b], 0)

    prepared = XcorrCoefficients(
        taps=taps,
        stacked=_freeze(stacked),
        gemm_dtype=gemm_dtype,
        block=block,
        a_matrix=_freeze(a_matrix.reshape(two_s, two_s).astype(gemm_dtype)),
        b_matrix=_freeze(b_matrix.reshape(two_s, two_s).astype(gemm_dtype)),
    )
    if len(_PREPARED_CACHE) >= _PREPARED_CACHE_MAX:
        _PREPARED_CACHE.pop(next(iter(_PREPARED_CACHE)))
    _PREPARED_CACHE[key] = prepared
    return prepared


@dataclass(frozen=True)
class StackedCoefficients:
    """``K`` protocol banks prepared for one stacked dual-GEMM pass.

    The banks are zero-padded *at the front* to the longest bank's
    length ``T`` and interleaved into one block-Toeplitz operand: the
    stacked matrix ``C`` grows to ``(2T, 2K)`` with bank ``k``'s
    corr_re in column ``2k`` and corr_im in column ``2k + 1``, and the
    Toeplitz bands to ``(2S, 2K * S)`` with flattened column index
    ``j * 2K + 2k + c`` — so one pair of GEMMs over the *shared* sign
    plane evaluates every bank at once and the output reshapes to a
    per-bank metric plane.

    Front-padding preserves the per-sample metric exactly: a padded
    window's extra leading coefficients are zero, so they contribute
    nothing regardless of what the (longer) shared history holds.
    Bank ``k``'s row of the stacked metric is therefore byte-identical
    to an independent single-bank correlator of length
    ``bank_taps[k]`` — the invariant the parity suite pins.

    Attributes:
        taps: Padded common template length ``T`` (= max bank length).
        n_banks: Number of stacked banks ``K``.
        bank_taps: Original (pre-padding) length of each bank.
        stacked: ``(2T, 2K)`` int64 stacked coefficient matrix.
        gemm_dtype: float32 when *every* bank satisfies the exactness
            bound, else float64 (both are exact; see module docstring).
        block: Block length ``S`` of the Toeplitz evaluation (= taps).
        a_matrix: ``(2S, 2K * S)`` in-block Toeplitz band.
        b_matrix: ``(2S, 2K * S)`` next-block continuation band.
    """

    taps: int
    n_banks: int
    bank_taps: tuple[int, ...]
    stacked: np.ndarray
    gemm_dtype: np.dtype
    block: int
    a_matrix: np.ndarray
    b_matrix: np.ndarray

    @property
    def history_pairs(self) -> int:
        """Sign pairs of history a stream must carry: ``taps - 1``."""
        return self.taps - 1


def _normalize_banks(banks) -> tuple[tuple[np.ndarray, np.ndarray], ...]:
    """Validate and canonicalize a bank list for the artifact cache.

    Lists and tuples tokenize differently in the cache key, so every
    entry point funnels through this one canonical
    tuple-of-(int64, int64) form before the memoized builders run.
    """
    normalized = []
    for bank in banks:
        coeffs_i, coeffs_q = bank
        coeffs_i = np.asarray(coeffs_i, dtype=np.int64)
        coeffs_q = np.asarray(coeffs_q, dtype=np.int64)
        if coeffs_i.ndim != 1 or coeffs_i.shape != coeffs_q.shape:
            raise ConfigurationError(
                "each bank must be two 1-D arrays of equal length"
            )
        if coeffs_i.size < 1:
            raise ConfigurationError("coefficient banks must not be empty")
        normalized.append((coeffs_i, coeffs_q))
    if not normalized:
        raise ConfigurationError("a stacked bank needs at least one bank")
    return tuple(normalized)


@cached_artifact
def _prepare_stacked(banks) -> StackedCoefficients:
    taps = max(coeffs_i.size for coeffs_i, _ in banks)
    n_banks = len(banks)
    bank_taps = tuple(coeffs_i.size for coeffs_i, _ in banks)

    stacked = np.zeros((2 * taps, 2 * n_banks), dtype=np.int64)
    bound = 0
    for k, (coeffs_i, coeffs_q) in enumerate(banks):
        pad = taps - coeffs_i.size
        padded_i = np.concatenate([np.zeros(pad, dtype=np.int64), coeffs_i])
        padded_q = np.concatenate([np.zeros(pad, dtype=np.int64), coeffs_q])
        stacked[0::2, 2 * k] = padded_i
        stacked[1::2, 2 * k] = padded_q
        stacked[0::2, 2 * k + 1] = -padded_q
        stacked[1::2, 2 * k + 1] = padded_i
        bound = max(bound, int(np.sum(np.abs(coeffs_i))
                               + np.sum(np.abs(coeffs_q))))

    # One dtype serves every bank, so the exactness bound is the worst
    # bank's.  Either dtype is exact within its bound, so the int64
    # metric is identical whichever is picked.
    exact_in_f32 = 2 * bound * bound < _F32_EXACT_LIMIT
    gemm_dtype = np.dtype(np.float32 if exact_in_f32 else np.float64)

    block = taps
    two_s = 2 * block
    # Same band construction as prepare_coefficients, with 2K stacked
    # columns per window position: a_matrix[tau, j*2K + c2] =
    # stacked[tau - 2j, c2] where defined, b_matrix the continuation.
    offsets = np.arange(two_s)[:, None] - 2 * np.arange(block)[None, :]
    clipped = offsets.clip(0, 2 * taps - 1)
    in_band = (offsets >= 0) & (offsets < 2 * taps)
    a_matrix = np.where(in_band[:, :, None], stacked[clipped], 0)
    offsets_b = offsets + two_s
    clipped_b = offsets_b.clip(0, 2 * taps - 1)
    in_band_b = (offsets_b >= 0) & (offsets_b < 2 * taps)
    b_matrix = np.where(in_band_b[:, :, None], stacked[clipped_b], 0)

    width = block * 2 * n_banks
    return StackedCoefficients(
        taps=taps,
        n_banks=n_banks,
        bank_taps=bank_taps,
        stacked=_freeze(stacked),
        gemm_dtype=gemm_dtype,
        block=block,
        a_matrix=_freeze(a_matrix.reshape(two_s, width).astype(gemm_dtype)),
        b_matrix=_freeze(b_matrix.reshape(two_s, width).astype(gemm_dtype)),
    )


def prepare_stacked(banks) -> StackedCoefficients:
    """Pad and stack ``K`` coefficient banks into one GEMM operand.

    ``banks`` is a sequence of ``(coeffs_i, coeffs_q)`` pairs; banks
    may have different lengths (each is front-padded with zeros to the
    longest).  Memoized through the artifact cache
    (:mod:`repro.runtime.cache`) on the bank contents, so sweeps and
    repeated facade loads share one frozen instance.
    """
    return _prepare_stacked(_normalize_banks(banks))


@cached_artifact
def _stacked_bank_program(banks, thresholds
                          ) -> tuple[StackedCoefficients, np.ndarray]:
    prepared = _prepare_stacked(banks)
    return prepared, np.asarray(thresholds, dtype=np.int64)


def stacked_bank_program(banks, thresholds
                         ) -> tuple[StackedCoefficients, np.ndarray]:
    """A full detection program: stacked banks plus per-bank thresholds.

    Memoized over the ``K`` bank fingerprints *and* the thresholds —
    the key a sweep varies — while the expensive block-Toeplitz
    padding is cached one level down on the banks alone, so a
    threshold-only sweep re-pads nothing.  Returns
    ``(StackedCoefficients, (K,) int64 thresholds)``, both frozen.
    """
    banks = _normalize_banks(banks)
    thresholds = tuple(int(t) for t in thresholds)
    if len(thresholds) != len(banks):
        raise ConfigurationError(
            f"got {len(thresholds)} thresholds for {len(banks)} banks"
        )
    for value in thresholds:
        if not 0 <= value <= 0xFFFF_FFFF:
            raise ConfigurationError(
                "per-bank thresholds must fit the 32-bit register"
            )
    return _stacked_bank_program(banks, thresholds)


def sign_plane(samples: np.ndarray,
               out: np.ndarray | None = None) -> np.ndarray:
    """Interleave the I/Q sign bits of ``(..., n)`` complex samples.

    Matches the hardware MSB slice: negative maps to -1, everything
    else (including exact zero) to +1.  Returns ``(..., 2n)`` int8.
    """
    samples = np.asarray(samples)
    shape = samples.shape[:-1] + (2 * samples.shape[-1],)
    if out is None:
        out = np.empty(shape, dtype=np.int8)
    elif out.shape != shape:
        raise StreamError(
            f"sign plane output must have shape {shape}, got {out.shape}"
        )
    if samples.dtype == np.complex128 \
            and samples.strides[-1:] == (samples.itemsize,):
        # Complex128 memory is already the interleaved [re, im] layout
        # the plane wants, so the comparison writes straight into the
        # int8 plane viewed as bools (same itemsize), and two in-place
        # passes map 0/1 to +1/-1 — no temporaries at all.
        view = samples.view(np.float64)
        np.less(view, 0.0, out=out.view(np.bool_))
        np.multiply(out, _SIGN_SCALE, out=out)
        out += _SIGN_POS
        return out
    out[..., 0::2] = np.where(np.real(samples) < 0, -1, 1)
    out[..., 1::2] = np.where(np.imag(samples) < 0, -1, 1)
    return out


def rising_edge_plane(trigger: np.ndarray, previous_last) -> np.ndarray:
    """Elementwise rising-edge mask of a boolean trigger plane.

    ``previous_last`` is the trigger value preceding column 0 (a bool,
    or per-row bools for a 2-D plane).
    """
    edges = np.empty_like(trigger)
    edges[..., 1:] = trigger[..., 1:] & ~trigger[..., :-1]
    edges[..., 0] = trigger[..., 0] & ~np.asarray(previous_last)
    return edges


def chained_edges(trigger: np.ndarray, lengths: np.ndarray,
                  last: bool = False) -> np.ndarray:
    """Rising edges over batch rows chained as one stream.

    Row ``b``'s predecessor for column 0 is the last *valid* trigger
    of row ``b - 1`` (``last`` for row 0), exactly as if the rows had
    been fed through a streaming detector back to back.  Columns at or
    beyond each row's valid length are masked off.
    """
    batch, width = trigger.shape
    previous = np.empty_like(trigger)
    previous[:, 1:] = trigger[:, :-1]
    previous[0, 0] = last
    if batch > 1:
        previous[1:, 0] = trigger[np.arange(batch - 1), lengths[:-1] - 1]
    edges = trigger & ~previous
    edges &= np.arange(width)[None, :] < lengths[:, None]
    return edges


@dataclass(frozen=True)
class XcorrDetection:
    """Fused single-stream detection result."""

    metric: np.ndarray
    trigger: np.ndarray
    edges: np.ndarray
    last: bool


@dataclass(frozen=True)
class XcorrBatchResult:
    """Chained batch detection result.

    ``trigger``/``edge_plane`` are ``(batch, width)``; columns past a
    row's length are meaningless in ``trigger`` and already masked in
    ``edge_plane``.  ``history``/``last`` are the carry-out stream
    state, ready to seed the next :func:`xcorr_detect_batch` call.
    """

    metric: np.ndarray
    trigger: np.ndarray
    edge_plane: np.ndarray
    history: np.ndarray
    last: bool


@dataclass(frozen=True)
class StackedDetection:
    """Fused single-stream detection result over ``K`` stacked banks.

    ``metric``/``trigger`` are ``(K, n)``; ``edges`` holds one rising-
    edge index array per bank; ``last`` is the ``(K,)`` per-bank carry
    state for the next chunk.
    """

    metric: np.ndarray
    trigger: np.ndarray
    edges: tuple[np.ndarray, ...]
    last: np.ndarray


@dataclass(frozen=True)
class StackedBatchResult:
    """Chained batch detection result over ``K`` stacked banks.

    ``metric``/``trigger``/``edge_plane`` are ``(batch, K, width)``;
    columns past a row's length are meaningless in ``trigger`` and
    already masked in ``edge_plane``.  ``history`` (shared across
    banks) and ``last`` (``(K,)`` bools) are the carry-out stream
    state for the next call.
    """

    metric: np.ndarray
    trigger: np.ndarray
    edge_plane: np.ndarray
    history: np.ndarray
    last: np.ndarray


def xcorr_metric(plane: np.ndarray, coeffs: XcorrCoefficients,
                 backend: "str | KernelBackend | None" = None,
                 out: np.ndarray | None = None,
                 scratch=None) -> np.ndarray:
    """Squared correlation metric over an interleaved sign plane."""
    return get_backend(backend).xcorr_metric(plane, coeffs,
                                             out=out, scratch=scratch)


def xcorr_metric_stacked(plane: np.ndarray, coeffs: StackedCoefficients,
                         backend: "str | KernelBackend | None" = None,
                         out: np.ndarray | None = None,
                         scratch=None) -> np.ndarray:
    """Per-bank squared metric over one shared sign plane: ``(..., K, n)``."""
    return get_backend(backend).xcorr_metric_stacked(plane, coeffs,
                                                     out=out,
                                                     scratch=scratch)


def _check_stacked_thresholds(thresholds: np.ndarray,
                              coeffs: StackedCoefficients) -> np.ndarray:
    thresholds = np.asarray(thresholds, dtype=np.int64)
    if thresholds.shape != (coeffs.n_banks,):
        raise ConfigurationError(
            f"expected {coeffs.n_banks} per-bank thresholds, "
            f"got shape {thresholds.shape}"
        )
    return thresholds


def xcorr_detect_stacked(plane: np.ndarray, coeffs: StackedCoefficients,
                         thresholds: np.ndarray,
                         last: np.ndarray | None = None,
                         backend: "str | KernelBackend | None" = None,
                         scratch=None) -> StackedDetection:
    """The fused multi-standard datapath: one GEMM pass, K detectors.

    ``thresholds`` is ``(K,)`` (one per bank) and ``last`` the ``(K,)``
    per-bank trigger carry from the previous chunk.  Bank ``k``'s
    trigger/edges are byte-identical to :func:`xcorr_detect` run with
    bank ``k``'s own coefficients and threshold over the same stream.
    """
    thresholds = _check_stacked_thresholds(thresholds, coeffs)
    if last is None:
        last = np.zeros(coeffs.n_banks, dtype=bool)
    metric = xcorr_metric_stacked(plane, coeffs, backend=backend,
                                  scratch=scratch)
    trigger = metric > thresholds[:, None]
    edge_mask = rising_edge_plane(trigger, last)
    edges = tuple(np.flatnonzero(edge_mask[k])
                  for k in range(coeffs.n_banks))
    new_last = trigger[:, -1].copy() if trigger.shape[-1] \
        else np.asarray(last, dtype=bool).copy()
    return StackedDetection(metric=metric, trigger=trigger, edges=edges,
                            last=new_last)


def xcorr_detect_stacked_batch(blocks: np.ndarray, lengths: np.ndarray,
                               coeffs: StackedCoefficients,
                               thresholds: np.ndarray,
                               history: np.ndarray | None = None,
                               last: np.ndarray | None = None,
                               backend: "str | KernelBackend | None" = None
                               ) -> StackedBatchResult:
    """Chained batch rows through the stacked detector (``K`` banks).

    The row-stitching contract of :func:`xcorr_detect_batch` holds
    per bank: the ``(batch, K, width)`` planes equal what streaming
    :func:`xcorr_detect_stacked` produces over the concatenated rows,
    which in turn equals ``K`` independent single-bank streams.
    """
    thresholds = _check_stacked_thresholds(thresholds, coeffs)
    if last is None:
        last = np.zeros(coeffs.n_banks, dtype=bool)
    last = np.asarray(last, dtype=bool)
    blocks = np.asarray(blocks)
    lengths = np.asarray(lengths, dtype=np.int64)
    if blocks.ndim != 2 or lengths.shape != (blocks.shape[0],):
        raise StreamError("expected (batch, width) blocks with one "
                          "length per row")
    if np.any(lengths < 1) or np.any(lengths > blocks.shape[1]):
        raise StreamError("row lengths must be in [1, width]")
    batch, width = blocks.shape
    pairs = coeffs.history_pairs
    if history is None:
        history = np.zeros(2 * pairs, dtype=np.int8)

    plane = np.empty((batch, 2 * (pairs + width)), dtype=np.int8)
    sign_plane(blocks, out=plane[:, 2 * pairs:])
    plane[0, :2 * pairs] = history
    if batch > 1 and pairs:
        if np.all(lengths[:-1] >= pairs):
            cols = 2 * lengths[:-1, None] + np.arange(2 * pairs)[None, :]
            plane[1:, :2 * pairs] = np.take_along_axis(plane[:-1], cols,
                                                       axis=1)
        else:
            for b in range(1, batch):
                start = 2 * lengths[b - 1]
                plane[b, :2 * pairs] = \
                    plane[b - 1, start:start + 2 * pairs]

    metric = xcorr_metric_stacked(plane, coeffs, backend=backend)
    trigger = metric > thresholds[None, :, None]
    edge_plane = np.empty_like(trigger)
    for k in range(coeffs.n_banks):
        edge_plane[:, k, :] = chained_edges(
            np.ascontiguousarray(trigger[:, k, :]), lengths, bool(last[k]))

    tail_start = 2 * lengths[-1]
    return StackedBatchResult(
        metric=metric,
        trigger=trigger,
        edge_plane=edge_plane,
        history=plane[-1, tail_start:tail_start + 2 * pairs].copy(),
        last=trigger[-1, :, lengths[-1] - 1].copy(),
    )


def xcorr_detect(plane: np.ndarray, coeffs: XcorrCoefficients,
                 threshold: int, last: bool = False,
                 backend: "str | KernelBackend | None" = None,
                 scratch=None) -> XcorrDetection:
    """The fused streaming datapath: metric, trigger, and edges.

    One backend call replaces the seed's four correlation passes, and
    the threshold compare plus rising-edge extraction ride along so
    the DSP core consumes edge indices directly.
    """
    metric = xcorr_metric(plane, coeffs, backend=backend, scratch=scratch)
    trigger = metric > threshold
    edges = np.flatnonzero(rising_edge_plane(trigger, last))
    new_last = bool(trigger[-1]) if trigger.size else last
    return XcorrDetection(metric=metric, trigger=trigger, edges=edges,
                          last=new_last)


def xcorr_detect_batch(blocks: np.ndarray, lengths: np.ndarray,
                       coeffs: XcorrCoefficients, threshold: int,
                       history: np.ndarray | None = None,
                       last: bool = False,
                       backend: "str | KernelBackend | None" = None
                       ) -> XcorrBatchResult:
    """Run a batch of chained sample rows through the fused detector.

    ``blocks`` is ``(batch, width)`` complex with row ``b`` valid
    through ``lengths[b]`` (rows may be zero-padded to the common
    width).  Rows are *chained*: each row's sign history is stitched
    from the previous row's valid tail, so the result is byte-identical
    to feeding the rows one by one through the streaming facade —
    tests pin this.  ``history`` (``(2 * (taps - 1),)`` int8) and
    ``last`` seed the chain and come back updated in the result.
    """
    blocks = np.asarray(blocks)
    lengths = np.asarray(lengths, dtype=np.int64)
    if blocks.ndim != 2 or lengths.shape != (blocks.shape[0],):
        raise StreamError("expected (batch, width) blocks with one "
                          "length per row")
    if np.any(lengths < 1) or np.any(lengths > blocks.shape[1]):
        raise StreamError("row lengths must be in [1, width]")
    batch, width = blocks.shape
    pairs = coeffs.history_pairs
    if history is None:
        history = np.zeros(2 * pairs, dtype=np.int8)

    plane = np.empty((batch, 2 * (pairs + width)), dtype=np.int8)
    sign_plane(blocks, out=plane[:, 2 * pairs:])
    # Stitch each row's history from the previous row's valid tail:
    # the last 2*pairs entries of [history | row] live at plane
    # columns [2L, 2L + 2*pairs).  A row shorter than the history
    # depth reaches into its own stitched prefix, so the gather source
    # must already be final — fall back to a sequential stitch there.
    plane[0, :2 * pairs] = history
    if batch > 1 and pairs:
        if np.all(lengths[:-1] >= pairs):
            cols = 2 * lengths[:-1, None] + np.arange(2 * pairs)[None, :]
            plane[1:, :2 * pairs] = np.take_along_axis(plane[:-1], cols,
                                                       axis=1)
        else:
            for b in range(1, batch):
                start = 2 * lengths[b - 1]
                plane[b, :2 * pairs] = \
                    plane[b - 1, start:start + 2 * pairs]

    metric = xcorr_metric(plane, coeffs, backend=backend)
    trigger = metric > threshold
    edge_plane = chained_edges(trigger, lengths, last)

    tail_start = 2 * lengths[-1]
    return XcorrBatchResult(
        metric=metric,
        trigger=trigger,
        edge_plane=edge_plane,
        history=plane[-1, tail_start:tail_start + 2 * pairs].copy(),
        last=bool(trigger[-1, lengths[-1] - 1]),
    )
