"""The numpy reference backend: exact BLAS evaluation of the kernels.

This is the semantic ground truth every other backend must match
byte-for-byte.  The correlation metric is evaluated with the
block-Toeplitz two-GEMM scheme described in
:mod:`repro.kernels.xcorr`; the float dtype is chosen by
:func:`repro.kernels.xcorr.prepare_coefficients` so that every
intermediate is an exactly-representable integer, making the float
GEMM bit-identical to int64 arithmetic.

All large intermediates live in grow-only scratch buffers owned by
the backend instance: the temporaries here are hundreds of kilobytes,
which glibc serves via mmap and hands back to the kernel on free, so
naive per-call allocation pays the zero-page fault cost on every
single chunk.  Only the returned metric array is freshly allocated.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.dispatch import KernelBackend
from repro.runtime.buffers import ScratchBuffer


class NumpyKernelBackend(KernelBackend):
    """Reference implementations of the dispatchable primitives."""

    name = "numpy"

    def __init__(self) -> None:
        self._scratch: dict[tuple[str, np.dtype], ScratchBuffer] = {}

    def _view(self, tag: str, dtype: np.dtype, n: int) -> np.ndarray:
        key = (tag, np.dtype(dtype))
        buf = self._scratch.get(key)
        if buf is None:
            buf = self._scratch[key] = ScratchBuffer(dtype)
        return buf.view(n)

    def xcorr_metric(self, plane: np.ndarray, coeffs,
                     out: np.ndarray | None = None,
                     scratch=None) -> np.ndarray:
        plane = np.asarray(plane)
        lead = plane.shape[:-1]
        length = plane.shape[-1]
        pairs = length // 2
        n = pairs - coeffs.history_pairs
        two_s = 2 * coeffs.block
        n_blocks = -(-pairs // coeffs.block)
        rows = int(np.prod(lead, dtype=np.int64)) if lead else 1
        padded_len = (n_blocks + 1) * two_s
        dtype = coeffs.gemm_dtype

        # Copy the plane into block-aligned zero-padded float storage
        # (the caller's scratch when its dtype matches); windows that
        # start in the zero padding produce garbage rows sliced away
        # below, never junk data read.
        if scratch is not None and scratch.dtype == dtype:
            flat = scratch.view(rows * padded_len)
        else:
            flat = self._view("padded", dtype, rows * padded_len)
        padded = flat.reshape(rows, padded_len)
        padded[:, :length] = plane.reshape(rows, length)
        padded[:, length:] = 0

        # Window g of the flat padded buffer is (row g // (n_blocks+1),
        # block g % (n_blocks+1)): X0 is the buffer itself and X1 the
        # same buffer offset by one block, so both GEMM operands are
        # contiguous views — no window gather/copy at all.  The extra
        # per-row window (j == n_blocks, whose X1 operand crosses into
        # the next row) lands at columns >= n_blocks*block and is
        # sliced away with the zero-padding garbage below.
        m = rows * (n_blocks + 1)
        x0 = flat.reshape(m, two_s)
        x1 = flat[two_s:m * two_s].reshape(m - 1, two_s)
        gemm = self._view("gemm0", dtype, m * two_s).reshape(m, two_s)
        gemm_b = self._view("gemm1", dtype, m * two_s).reshape(m, two_s)
        np.matmul(x0, coeffs.a_matrix, out=gemm)
        np.matmul(x1, coeffs.b_matrix, out=gemm_b[:m - 1])
        gemm_b[m - 1:] = 0
        gemm += gemm_b
        corr = gemm.reshape(rows, (n_blocks + 1) * coeffs.block, 2)
        corr_re = corr[:, :n, 0]
        corr_im = corr[:, :n, 1]

        sq_re = self._view("sq_re", dtype, rows * n).reshape(rows, n)
        sq_im = self._view("sq_im", dtype, rows * n).reshape(rows, n)
        np.multiply(corr_re, corr_re, out=sq_re)
        np.multiply(corr_im, corr_im, out=sq_im)
        if out is None:
            out = np.empty(lead + (n,), dtype=np.int64)
        np.add(sq_re, sq_im, out=out.reshape(rows, n), casting="unsafe")
        return out

    def xcorr_metric_stacked(self, plane: np.ndarray, coeffs,
                             out: np.ndarray | None = None,
                             scratch=None) -> np.ndarray:
        plane = np.asarray(plane)
        lead = plane.shape[:-1]
        length = plane.shape[-1]
        pairs = length // 2
        n = pairs - coeffs.history_pairs
        k = coeffs.n_banks
        two_s = 2 * coeffs.block
        n_blocks = -(-pairs // coeffs.block)
        rows = int(np.prod(lead, dtype=np.int64)) if lead else 1
        padded_len = (n_blocks + 1) * two_s
        dtype = coeffs.gemm_dtype

        # Identical padded-plane layout to xcorr_metric: the sign plane
        # is shared across banks, only the Toeplitz bands grow wider.
        if scratch is not None and scratch.dtype == dtype:
            flat = scratch.view(rows * padded_len)
        else:
            flat = self._view("padded", dtype, rows * padded_len)
        padded = flat.reshape(rows, padded_len)
        padded[:, :length] = plane.reshape(rows, length)
        padded[:, length:] = 0

        # One GEMM pair over all K banks: the operand columns carry
        # every bank's corr_re/corr_im per window (flattened index
        # j*2K + 2k + c), so the output row reshapes straight into the
        # (window, bank, component) metric layout.
        m = rows * (n_blocks + 1)
        width = two_s * k
        x0 = flat.reshape(m, two_s)
        x1 = flat[two_s:m * two_s].reshape(m - 1, two_s)
        gemm = self._view("gemm0", dtype, m * width).reshape(m, width)
        gemm_b = self._view("gemm1", dtype, m * width).reshape(m, width)
        np.matmul(x0, coeffs.a_matrix, out=gemm)
        np.matmul(x1, coeffs.b_matrix, out=gemm_b[:m - 1])
        gemm_b[m - 1:] = 0
        gemm += gemm_b
        corr = gemm.reshape(rows, (n_blocks + 1) * coeffs.block, k, 2)
        corr_re = corr[:, :n, :, 0]
        corr_im = corr[:, :n, :, 1]

        count = rows * n * k
        sq_re = self._view("sq_re", dtype, count).reshape(rows, n, k)
        sq_im = self._view("sq_im", dtype, count).reshape(rows, n, k)
        np.multiply(corr_re, corr_re, out=sq_re)
        np.multiply(corr_im, corr_im, out=sq_im)
        summed = self._view("stacked_sum", np.int64,
                            count).reshape(rows, n, k)
        np.add(sq_re, sq_im, out=summed, casting="unsafe")
        if out is None:
            out = np.empty(lead + (k, n), dtype=np.int64)
        # (rows, n, k) -> (rows, k, n): one transposed copy into the
        # caller-facing per-bank layout.
        np.copyto(out.reshape(rows, k, n), summed.transpose(0, 2, 1))
        return out

    def moving_sums(self, padded: np.ndarray, window: int,
                    out: np.ndarray | None = None,
                    csum_scratch=None) -> np.ndarray:
        padded = np.asarray(padded, dtype=np.float64)
        lead = padded.shape[:-1]
        length = padded.shape[-1]
        n = length - window
        rows = int(np.prod(lead, dtype=np.int64)) if lead else 1
        flat = padded.reshape(rows, length)
        if csum_scratch is not None \
                and csum_scratch.dtype == np.dtype(np.float64):
            csum = csum_scratch.view(rows * length).reshape(rows, length)
        else:
            csum = self._view("csum", np.float64,
                              rows * length).reshape(rows, length)
        np.cumsum(flat, axis=-1, out=csum)
        if out is None:
            out = np.empty(lead + (n,), dtype=np.float64)
        np.subtract(csum[:, window:], csum[:, :-window],
                    out=out.reshape(rows, n))
        return out
