"""The 5-port interconnect network (paper Fig. 9 and Table 1).

The paper characterizes its splitter network with a vector network
analyzer and reports the port-to-port insertion losses in Table 1.
We parameterize the network by exactly that matrix, so every
experiment sees the same path losses the paper's hardware saw:

* port 1 — access point (behind a 20 dB pad),
* port 2 — wireless client (behind a 20 dB pad),
* port 3 — oscilloscope tap,
* port 4 — jammer transmitter (behind the variable attenuator),
* port 5 — jammer receiver.

Ports 4 and 5 are isolated from each other (the dashes in Table 1),
which is what lets the jammer transmit and receive simultaneously
without self-triggering through the wired network.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.errors import ConfigurationError

#: Number of ports on the network.
NUM_PORTS = 5

#: Insertion loss in dB from input port (row) to output port (column),
#: 1-indexed as in the paper; ``None`` marks isolated pairs.
#: Transcribed from Table 1 (note the paper's two asymmetric readbacks
#: of the 4/5 <-> 1, 3 paths: -39.3 vs -39.2 and -19.9 vs -19.8 dB —
#: we keep them as printed).
PAPER_TABLE1_DB: dict[tuple[int, int], float | None] = {
    (1, 2): -51.0, (1, 3): -25.2, (1, 4): -38.4, (1, 5): -39.3,
    (2, 1): -51.0, (2, 3): -31.7, (2, 4): -32.0, (2, 5): -32.8,
    (3, 1): -25.2, (3, 2): -31.7, (3, 4): -19.1, (3, 5): -19.9,
    (4, 1): -38.4, (4, 2): -32.0, (4, 3): -19.1, (4, 5): None,
    (5, 1): -39.2, (5, 2): -32.8, (5, 3): -19.8, (5, 4): None,
}


class FivePortNetwork:
    """A passive N-port network defined by an insertion-loss table."""

    def __init__(self, losses_db: dict[tuple[int, int], float | None] | None = None,
                 num_ports: int = NUM_PORTS) -> None:
        if num_ports < 2:
            raise ConfigurationError("a network needs at least 2 ports")
        self._num_ports = num_ports
        table = losses_db if losses_db is not None else PAPER_TABLE1_DB
        self._losses: dict[tuple[int, int], float | None] = {}
        for (src, dst), loss in table.items():
            self._check_port(src)
            self._check_port(dst)
            if src == dst:
                raise ConfigurationError("no self-loops in a passive network")
            if loss is not None and loss > 0:
                raise ConfigurationError(
                    f"passive network cannot have gain ({src}->{dst}: {loss} dB)"
                )
            self._losses[(src, dst)] = loss

    def _check_port(self, port: int) -> None:
        if not 1 <= port <= self._num_ports:
            raise ConfigurationError(
                f"port {port} outside 1..{self._num_ports}"
            )

    @property
    def num_ports(self) -> int:
        """Number of ports."""
        return self._num_ports

    def loss_db(self, src: int, dst: int) -> float | None:
        """Insertion loss from ``src`` to ``dst`` (None if isolated)."""
        self._check_port(src)
        self._check_port(dst)
        if src == dst:
            raise ConfigurationError("loss is undefined for a port to itself")
        return self._losses.get((src, dst))

    def path_gain(self, src: int, dst: int) -> float:
        """Amplitude gain of the path (0.0 for isolated pairs)."""
        loss = self.loss_db(src, dst)
        if loss is None:
            return 0.0
        return units.db_to_amplitude(loss)

    def propagate(self, signal: np.ndarray, src: int, dst: int) -> np.ndarray:
        """Carry a signal from one port to another."""
        return np.asarray(signal, dtype=np.complex128) * self.path_gain(src, dst)

    def deliver(self, injections: dict[int, np.ndarray], dst: int,
                n_samples: int) -> np.ndarray:
        """Sum every injected signal as seen at ``dst``.

        ``injections`` maps source port -> waveform (aligned timelines;
        shorter waveforms are zero-padded).
        """
        out = np.zeros(n_samples, dtype=np.complex128)
        for src, signal in injections.items():
            if src == dst:
                continue
            scaled = self.propagate(signal, src, dst)
            n = min(scaled.size, n_samples)
            out[:n] += scaled[:n]
        return out

    def vna_characterize(self, probe_power: float = 1.0,
                         n_samples: int = 4096,
                         seed: int = 1234) -> dict[tuple[int, int], float | None]:
        """Re-measure the loss matrix the way the paper's VNA did.

        Injects a known-power probe tone at each port in turn and
        measures received power at every other port.  Returns measured
        losses in dB (None where nothing is received), which tests
        compare against the configured Table 1 values.
        """
        rng = np.random.default_rng(seed)
        phases = rng.uniform(0.0, 2.0 * np.pi, n_samples)
        probe = np.sqrt(probe_power) * np.exp(1j * phases)
        measured: dict[tuple[int, int], float | None] = {}
        for src in range(1, self._num_ports + 1):
            for dst in range(1, self._num_ports + 1):
                if src == dst:
                    continue
                received = self.propagate(probe, src, dst)
                power = units.signal_power(received)
                if power == 0.0:
                    measured[(src, dst)] = None
                else:
                    measured[(src, dst)] = units.linear_to_db(
                        power / probe_power
                    )
        return measured
