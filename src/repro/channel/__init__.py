"""RF environment models: noise, attenuation, and the wired test network.

The paper validates its jammer inside a wired 5-port interconnect
network built from power splitters (Fig. 9 / Table 1), with calibrated
attenuators emulating path loss.  This package models that plumbing:

* :mod:`repro.channel.awgn` — calibrated additive white Gaussian noise.
* :mod:`repro.channel.attenuator` — fixed and variable attenuators.
* :mod:`repro.channel.splitter` — the 5-port network with its measured
  insertion-loss matrix, plus a VNA-style characterization routine.
* :mod:`repro.channel.combining` — superposition of transmissions with
  sample-rate conversion and time offsets.
"""

from __future__ import annotations

from repro.channel.awgn import AwgnChannel, awgn
from repro.channel.attenuator import Attenuator, VariableAttenuator
from repro.channel.splitter import FivePortNetwork, PAPER_TABLE1_DB
from repro.channel.combining import Transmission, mix_at_port

__all__ = [
    "AwgnChannel",
    "awgn",
    "Attenuator",
    "VariableAttenuator",
    "FivePortNetwork",
    "PAPER_TABLE1_DB",
    "Transmission",
    "mix_at_port",
]
