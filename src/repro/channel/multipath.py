"""Tapped-delay-line multipath channels.

The paper's validation deliberately runs over a wired network to
"isolate environmental effects"; real deployments face multipath.
This module provides static tapped-delay-line channels so tests and
extensions can quantify how frequency-selective fading affects both
sides of the arms race: the OFDM receivers equalize any delay spread
inside their cyclic prefix, and the jammer's sign-bit correlator
tolerates moderate dispersion of the preamble.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels.ops import convolve


@dataclass(frozen=True)
class TappedDelayLine:
    """A static multipath channel: complex gains at sample delays.

    Attributes:
        delays: Tap delays in samples (non-negative ints, sorted).
        gains: Complex tap gains, same length as ``delays``.
    """

    delays: tuple[int, ...]
    gains: tuple[complex, ...]

    def __post_init__(self) -> None:
        if len(self.delays) != len(self.gains) or not self.delays:
            raise ConfigurationError("delays and gains must match, non-empty")
        if any(d < 0 for d in self.delays):
            raise ConfigurationError("tap delays must be non-negative")
        if list(self.delays) != sorted(set(self.delays)):
            raise ConfigurationError("delays must be strictly increasing")

    @property
    def delay_spread(self) -> int:
        """Span between the first and last tap, in samples."""
        return self.delays[-1] - self.delays[0]

    @property
    def impulse_response(self) -> np.ndarray:
        """The channel as a dense FIR impulse response."""
        h = np.zeros(self.delays[-1] + 1, dtype=np.complex128)
        for delay, gain in zip(self.delays, self.gains):
            h[delay] = gain
        return h

    def normalized(self) -> "TappedDelayLine":
        """The same profile scaled to unit total power."""
        power = sum(abs(g) ** 2 for g in self.gains)
        scale = 1.0 / np.sqrt(power)
        return TappedDelayLine(
            delays=self.delays,
            gains=tuple(g * scale for g in self.gains),
        )

    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Convolve a waveform with the channel (same-length output)."""
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.size == 0:
            return samples.copy()
        out = convolve(samples, self.impulse_response)
        return out[:samples.size]


def line_of_sight() -> TappedDelayLine:
    """The identity channel."""
    return TappedDelayLine(delays=(0,), gains=(1.0 + 0.0j,))


def two_ray(delay_samples: int, echo_db: float = -6.0,
            echo_phase_rad: float = 1.0) -> TappedDelayLine:
    """A classic two-ray profile: direct path plus one echo."""
    if delay_samples < 1:
        raise ConfigurationError("the echo must arrive after the direct path")
    echo = 10 ** (echo_db / 20.0) * np.exp(1j * echo_phase_rad)
    return TappedDelayLine(delays=(0, delay_samples),
                           gains=(1.0 + 0.0j, complex(echo))).normalized()


def indoor_rayleigh(rng: np.random.Generator, n_taps: int = 4,
                    tap_spacing: int = 2,
                    decay_db_per_tap: float = 3.0) -> TappedDelayLine:
    """An exponentially-decaying Rayleigh profile (indoor-like)."""
    if n_taps < 1:
        raise ConfigurationError("n_taps must be >= 1")
    delays = tuple(k * tap_spacing for k in range(n_taps))
    gains = []
    for k in range(n_taps):
        sigma = 10 ** (-decay_db_per_tap * k / 20.0) / np.sqrt(2.0)
        gains.append(complex(rng.normal(0, sigma), rng.normal(0, sigma)))
    if all(abs(g) == 0 for g in gains):
        gains[0] = 1.0 + 0.0j
    return TappedDelayLine(delays=delays, gains=tuple(gains)).normalized()
