"""Superposition of transmissions on a shared medium.

Detection experiments need to place waveforms from devices with
different native sampling rates (802.11g at 20 MSPS, WiMAX at
11.4 MHz) onto the jammer's 25 MSPS timeline, at controlled offsets
and amplitudes, on top of a common noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.channel.awgn import awgn
from repro.dsp.resample import resample
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Transmission:
    """One waveform entering the medium.

    Attributes:
        samples: Complex baseband at the transmitter's native rate.
        sample_rate: The transmitter's native sampling rate in Hz.
        start_time: Transmission start on the shared timeline, seconds.
        power: Mean power the waveform should arrive with (linear).
    """

    samples: np.ndarray
    sample_rate: float
    start_time: float = 0.0
    power: float = 1.0

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        if self.start_time < 0:
            raise ConfigurationError("start_time must be non-negative")
        if self.power < 0:
            raise ConfigurationError("power must be non-negative")


def mix_at_port(transmissions: list[Transmission], out_rate: float,
                duration: float, noise_power: float = 0.0,
                rng: np.random.Generator | None = None) -> np.ndarray:
    """Combine transmissions into one receive waveform.

    Each transmission is resampled to ``out_rate``, scaled to its
    arrival power, placed at its start time, and summed over a noise
    floor of ``noise_power``.

    Returns ``round(duration * out_rate)`` complex samples.
    """
    if out_rate <= 0:
        raise ConfigurationError("out_rate must be positive")
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    n_out = int(round(duration * out_rate))
    if noise_power > 0:
        if rng is None:
            raise ConfigurationError("noise_power > 0 requires an rng")
        out = awgn(n_out, noise_power, rng)
    else:
        out = np.zeros(n_out, dtype=np.complex128)
    for tx in transmissions:
        wave = resample(np.asarray(tx.samples, dtype=np.complex128),
                        tx.sample_rate, out_rate)
        if wave.size == 0 or tx.power == 0.0:
            continue
        current = units.signal_power(wave)
        if current > 0:
            wave = wave * np.sqrt(tx.power / current)
        start = int(round(tx.start_time * out_rate))
        if start >= n_out:
            continue
        n = min(wave.size, n_out - start)
        out[start:start + n] += wave[:n]
    return out
