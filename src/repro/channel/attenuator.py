"""Fixed and variable RF attenuators.

The paper's test network places 20 dB fixed attenuators on the AP and
client ports (path-loss emulation, saturation protection) and a
variable attenuator on the jammer's transmit port to sweep SIR over a
wide dynamic range.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.errors import ConfigurationError


class Attenuator:
    """A fixed attenuator of ``loss_db`` (positive = attenuation)."""

    def __init__(self, loss_db: float) -> None:
        if loss_db < 0:
            raise ConfigurationError(
                "attenuation must be non-negative; use gain blocks elsewhere"
            )
        self._loss_db = float(loss_db)
        self._scale = units.db_to_amplitude(-self._loss_db)

    @property
    def loss_db(self) -> float:
        """Insertion loss in dB."""
        return self._loss_db

    def apply(self, signal: np.ndarray) -> np.ndarray:
        """Attenuate a signal."""
        return np.asarray(signal, dtype=np.complex128) * self._scale


class VariableAttenuator(Attenuator):
    """A step attenuator whose setting can change between runs.

    Models the paper's stacked-attenuator sweep: settings snap to the
    step size, like real step attenuators.
    """

    def __init__(self, loss_db: float = 0.0, max_db: float = 110.0,
                 step_db: float = 0.5) -> None:
        if max_db <= 0 or step_db <= 0:
            raise ConfigurationError("max_db and step_db must be positive")
        self._max_db = float(max_db)
        self._step_db = float(step_db)
        super().__init__(0.0)
        self.set_loss(loss_db)

    @property
    def max_db(self) -> float:
        """Maximum settable attenuation."""
        return self._max_db

    def set_loss(self, loss_db: float) -> None:
        """Snap to the nearest step and apply limits."""
        if loss_db < 0 or loss_db > self._max_db:
            raise ConfigurationError(
                f"attenuation {loss_db} dB outside [0, {self._max_db}] dB"
            )
        snapped = round(loss_db / self._step_db) * self._step_db
        self._loss_db = float(snapped)
        self._scale = units.db_to_amplitude(-self._loss_db)
