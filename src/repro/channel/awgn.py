"""Additive white Gaussian noise with calibrated power.

The detection experiments sweep received SNR exactly as the paper
does: the noise floor is fixed and the transmit amplitude is scaled,
with SNR measured independently at the receiver.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.errors import ConfigurationError


def awgn(n_samples: int, power: float, rng: np.random.Generator,
         out: np.ndarray | None = None) -> np.ndarray:
    """Complex white Gaussian noise of the given mean power.

    ``out`` (a length-``n_samples`` complex128 array) lets hot loops
    synthesize noise in place.  The RNG draw order and the produced
    values are identical with or without it: the real draws come
    first, then the imaginary draws, each scaled by ``sqrt(power/2)``.
    """
    if n_samples < 0:
        raise ConfigurationError("n_samples must be non-negative")
    if power < 0:
        raise ConfigurationError("noise power must be non-negative")
    if out is None:
        out = np.empty(n_samples, dtype=np.complex128)
    elif out.shape != (n_samples,) or out.dtype != np.complex128:
        raise ConfigurationError(
            "awgn out must be a length-n_samples complex128 array"
        )
    if power == 0.0:
        out[:] = 0.0
        return out
    scale = np.sqrt(power / 2.0)
    out.real = rng.standard_normal(n_samples)
    out.imag = rng.standard_normal(n_samples)
    out *= scale
    return out


class AwgnChannel:
    """A reproducible AWGN source with a fixed noise floor.

    Attributes:
        noise_power: Mean noise power in linear units (the "floor"
            against which experiment SNRs are defined).
    """

    def __init__(self, noise_power: float = 1.0, seed: int = 0) -> None:
        if noise_power <= 0:
            raise ConfigurationError("noise_power must be positive")
        self.noise_power = float(noise_power)
        self._rng = np.random.default_rng(seed)

    def apply(self, signal: np.ndarray) -> np.ndarray:
        """Add noise at the configured floor to ``signal``."""
        signal = np.asarray(signal, dtype=np.complex128)
        return signal + awgn(signal.size, self.noise_power, self._rng)

    def transmit_at_snr(self, signal: np.ndarray, snr_db: float) -> np.ndarray:
        """Scale ``signal`` to the target SNR and add the noise floor."""
        scaled = units.snr_scale(signal, snr_db, noise_power=self.noise_power)
        return self.apply(scaled)

    def noise_only(self, n_samples: int) -> np.ndarray:
        """A noise-only segment (e.g. the 50-ohm-terminated receiver)."""
        return awgn(n_samples, self.noise_power, self._rng)
