"""repro — a reproduction of the SRIF'14 reactive jamming framework.

This library rebuilds, in simulation, the system from *"A Real-Time
and Protocol-Aware Reactive Jamming Framework Built on Software-
Defined Radios"* (Nguyen, Sahin, Shishkin, Kandasamy, Dandekar —
ACM SRIF/SIGCOMM 2014): a USRP N210 FPGA core that detects in-flight
packets of preamble-based wireless standards within microseconds and
answers them with configurable jamming bursts.

Layering (see DESIGN.md for the full inventory):

* :mod:`repro.dsp` — fixed point, filters, resampling, OFDM, PN.
* :mod:`repro.hw` — the custom FPGA core, sample-accurate: register
  bus, sign-bit cross-correlator, energy differentiator, trigger FSM,
  transmit controller, USRP N210 device model, UHD-like driver.
* :mod:`repro.phy` — 802.11g and 802.16e waveforms (and an 802.11g
  receiver + SINR->PER model).
* :mod:`repro.channel` — AWGN, attenuators, and the paper's wired
  5-port splitter network (Table 1).
* :mod:`repro.mac` — discrete-event 802.11 DCF + iperf UDP testing.
* :mod:`repro.core` — the jamming framework facade: templates,
  detection configs, event builder, personalities, timeline analysis.
* :mod:`repro.telemetry` — opt-in sample-accurate tracing, metrics,
  host profiling, and the Fig. 5 latency-budget checker.
* :mod:`repro.experiments` — one harness per paper table/figure.

Quickstart::

    import numpy as np
    from repro.core import (ReactiveJammer, DetectionConfig,
                            JammingEventBuilder, reactive_jammer,
                            wifi_short_preamble_template)

    jammer = ReactiveJammer()
    jammer.configure(
        detection=DetectionConfig(
            template=wifi_short_preamble_template(),
            xcorr_threshold=25_000,
        ),
        events=JammingEventBuilder().on_correlation(),
        personality=reactive_jammer(uptime_seconds=1e-4),
    )
    report = jammer.run(received_waveform_25msps)
"""

from __future__ import annotations

from repro import units
from repro.errors import (
    ConfigurationError,
    DecodeError,
    HardwareError,
    RegisterError,
    ReproError,
    SimulationError,
    StreamError,
)

__version__ = "1.0.0"

__all__ = [
    "units",
    "ReproError",
    "ConfigurationError",
    "RegisterError",
    "StreamError",
    "DecodeError",
    "SimulationError",
    "HardwareError",
    "__version__",
]
