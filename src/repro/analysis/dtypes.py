"""Abstract dtype inference for the dataflow rules.

A tiny abstract interpreter over one function body that tracks, per
local name, whether its value is *certainly* integer-valued,
*certainly* floating, *certainly* complex, or unknown.  Two distinct
combinators keep the analysis sound for its one client question ("did
integer state silently become float?"):

* :func:`promote` models numeric promotion inside arithmetic — an
  ``int`` operand meeting a ``float`` operand certainly produces a
  float, exactly like the hardware-modelling bug RJ010 hunts;
* :func:`merge` models control-flow joins — a value that is ``int`` on
  one branch and ``float`` on the other is *unknown*, because neither
  claim is certain any more.

Only certainties ever produce findings, so every imprecision here
degrades to silence, never to a false positive.  The interpreter is
pure stdlib and never imports numpy; the numpy surface it understands
(dtype constructors, array factories, ``.astype``) is recognized
syntactically.
"""

from __future__ import annotations

import ast
from collections.abc import Callable

# The abstract lattice.  UNKNOWN is both top and bottom for our
# purposes: it produces no findings and absorbs every merge conflict.
INT = "int"
FLOAT = "float"
COMPLEX = "complex"
UNKNOWN = "unknown"

#: numpy dtype constructor names that certainly produce integers.
INT_DTYPE_NAMES: frozenset[str] = frozenset({
    "int8", "int16", "int32", "int64", "uint8", "uint16", "uint32",
    "uint64", "intp", "uintp", "intc", "int_", "byte", "ubyte",
    "short", "ushort", "longlong", "ulonglong",
})

#: numpy dtype constructor names that certainly produce floats.
FLOAT_DTYPE_NAMES: frozenset[str] = frozenset({
    "float16", "float32", "float64", "float_", "double", "single",
    "half", "longdouble",
})

#: numpy dtype constructor names that certainly produce complexes.
COMPLEX_DTYPE_NAMES: frozenset[str] = frozenset({
    "complex64", "complex128", "complex_", "cdouble", "csingle",
})

#: Array factories whose default dtype is float64 when no ``dtype=``
#: keyword overrides it.
_FLOAT_DEFAULT_FACTORIES = frozenset({"zeros", "ones", "empty"})

#: Array factories that take an explicit ``dtype=`` but default to the
#: dtype of their input, which we do not track.
_DTYPE_KW_FACTORIES = frozenset({
    "array", "asarray", "ascontiguousarray", "full", "arange",
    "zeros_like", "ones_like", "empty_like", "full_like", "linspace",
})

#: Methods/reductions preserving their receiver's dtype.
_PRESERVING_METHODS = frozenset({
    "sum", "cumsum", "prod", "cumprod", "copy", "reshape", "ravel",
    "flatten", "transpose", "squeeze", "min", "max", "clip", "take",
})

#: Methods that certainly produce floats regardless of receiver.
_FLOAT_METHODS = frozenset({"mean", "std", "var"})

#: ``np.<attr>`` module constants that are floats.
_FLOAT_NP_CONSTANTS = frozenset({"pi", "e", "inf", "nan", "euler_gamma"})

#: A resolver maps a Call node to the abstract return dtype of the
#: callee (via project summaries), or None when unresolvable.
Resolver = Callable[[ast.Call], "str | None"]


def promote(a: str, b: str) -> str:
    """Numeric promotion of two operand dtypes (arithmetic result)."""
    if COMPLEX in (a, b):
        return COMPLEX
    if FLOAT in (a, b):
        return FLOAT
    if a == INT and b == INT:
        return INT
    return UNKNOWN


def merge(a: str, b: str) -> str:
    """Control-flow join: certainty survives only when both agree."""
    return a if a == b else UNKNOWN


def dtype_of_annotation(node: ast.expr | None) -> str:
    """Abstract dtype named by a parameter/return annotation."""
    name = _terminal_name(node)
    if name is None:
        return UNKNOWN
    if name == "int" or name in INT_DTYPE_NAMES:
        return INT
    if name == "float" or name in FLOAT_DTYPE_NAMES:
        return FLOAT
    if name == "complex" or name in COMPLEX_DTYPE_NAMES:
        return COMPLEX
    return UNKNOWN


def dtype_of_dtype_arg(node: ast.expr) -> str:
    """Abstract dtype named by a ``dtype=...`` argument value."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name: str | None = node.value
    else:
        name = _terminal_name(node)
    if name is None:
        return UNKNOWN
    if name == "int" or name in INT_DTYPE_NAMES:
        return INT
    if name == "float" or name in FLOAT_DTYPE_NAMES:
        return FLOAT
    if name == "complex" or name in COMPLEX_DTYPE_NAMES:
        return COMPLEX
    return UNKNOWN


def _terminal_name(node: ast.expr | None) -> str | None:
    """The rightmost identifier of a Name / dotted Attribute chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_explicit_cast(node: ast.expr) -> bool:
    """Whether ``node`` is a visible, deliberate float/complex cast.

    ``float(x)``, ``np.float64(x)``, and ``x.astype(np.float32)`` are
    loud about changing the dtype; RJ010 only flags *silent* widening,
    so these shapes are exempt at the assignment that performs them.
    """
    if not isinstance(node, ast.Call):
        return False
    name = _terminal_name(node.func)
    if name in ("float", "complex") or name in FLOAT_DTYPE_NAMES \
            or name in COMPLEX_DTYPE_NAMES:
        return True
    return name == "astype"


class DtypeInterpreter:
    """In-order abstract interpretation of one function body.

    The interpreter owns the environment (name -> abstract dtype) and
    exposes overridable hooks so clients layer behaviour on top: the
    summary builder collects :attr:`return_dtypes`; RJ010 overrides
    the ``on_*`` hooks to emit findings at the offending statements.
    """

    def __init__(self, resolver: Resolver | None = None,
                 params: dict[str, str] | None = None,
                 self_attrs: dict[str, str] | None = None) -> None:
        self.env: dict[str, str] = dict(params or {})
        #: Abstract dtypes of ``self.<attr>`` established in __init__.
        self.self_attrs = dict(self_attrs or {})
        self.resolver = resolver
        self.return_dtypes: list[str] = []

    # -- hooks ---------------------------------------------------------

    def on_name_widened(self, name: str, old: str, new: str,
                        node: ast.stmt) -> None:
        """A local established as ``old`` was rebound to ``new``."""

    def on_attr_widened(self, attr: str, old: str, new: str,
                        node: ast.stmt) -> None:
        """A ``self.<attr>`` established as ``old`` was rebound."""

    def on_return(self, dtype: str, node: ast.Return) -> None:
        """A return statement produced ``dtype``."""

    def on_call(self, node: ast.Call) -> None:
        """Every call site, visited with the current environment."""

    # -- expressions ---------------------------------------------------

    def infer(self, node: ast.expr | None) -> str:
        if node is None:
            return UNKNOWN
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or isinstance(node.value, int):
                return INT
            if isinstance(node.value, float):
                return FLOAT
            if isinstance(node.value, complex):
                return COMPLEX
            return UNKNOWN
        if isinstance(node, ast.Name):
            return self.env.get(node.id, UNKNOWN)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node.op, self.infer(node.left),
                                     self.infer(node.right), node)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return INT
            return self.infer(node.operand)
        if isinstance(node, ast.BoolOp):
            dtype = self.infer(node.values[0])
            for value in node.values[1:]:
                dtype = merge(dtype, self.infer(value))
            return dtype
        if isinstance(node, ast.IfExp):
            return merge(self.infer(node.body), self.infer(node.orelse))
        if isinstance(node, ast.Compare):
            return INT  # bool
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.Attribute):
            return self._infer_attribute(node)
        if isinstance(node, ast.Subscript):
            # An element of an array shares the array's abstract dtype.
            return self.infer(node.value)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            if not node.elts:
                return UNKNOWN
            dtype = self.infer(node.elts[0])
            for elt in node.elts[1:]:
                dtype = merge(dtype, self.infer(elt))
            return dtype
        if isinstance(node, ast.Starred):
            return self.infer(node.value)
        if isinstance(node, ast.NamedExpr):
            dtype = self.infer(node.value)
            self.env[node.target.id] = dtype
            return dtype
        return UNKNOWN

    def _infer_binop(self, op: ast.operator, left: str, right: str,
                     node: ast.BinOp) -> str:
        if isinstance(op, ast.Div):
            return COMPLEX if COMPLEX in (left, right) else FLOAT
        if isinstance(op, (ast.FloorDiv, ast.Mod)):
            if left == INT and right == INT:
                return INT
            if FLOAT in (left, right):
                return FLOAT
            return UNKNOWN
        if isinstance(op, ast.Pow):
            exponent = node.right
            if isinstance(exponent, ast.Constant) \
                    and isinstance(exponent.value, int):
                if exponent.value >= 0:
                    return promote(left, right)
                return COMPLEX if COMPLEX in (left, right) else FLOAT
            if FLOAT in (left, right) or COMPLEX in (left, right):
                return promote(left, right)
            return UNKNOWN
        if isinstance(op, (ast.LShift, ast.RShift, ast.BitAnd,
                           ast.BitOr, ast.BitXor)):
            return INT
        return promote(left, right)

    def _infer_call(self, node: ast.Call) -> str:
        name = _terminal_name(node.func)
        if name is not None:
            if name in ("int", "len", "ord", "hash", "id") \
                    or name in INT_DTYPE_NAMES:
                return INT
            if name == "float" or name in FLOAT_DTYPE_NAMES:
                return FLOAT
            if name == "complex" or name in COMPLEX_DTYPE_NAMES:
                return COMPLEX
            if name == "range":
                return INT
            if name == "round" and len(node.args) == 1 \
                    and not node.keywords:
                return INT
            if name == "abs":
                operand = self.infer(node.args[0]) if node.args else UNKNOWN
                return FLOAT if operand == COMPLEX else operand
            if name in ("min", "max"):
                dtype = UNKNOWN
                if node.args:
                    dtype = self.infer(node.args[0])
                    for arg in node.args[1:]:
                        dtype = merge(dtype, self.infer(arg))
                return dtype
            if name == "astype" and isinstance(node.func, ast.Attribute):
                if node.args:
                    return dtype_of_dtype_arg(node.args[0])
                for kw in node.keywords:
                    if kw.arg == "dtype":
                        return dtype_of_dtype_arg(kw.value)
                return UNKNOWN
            if name in _FLOAT_METHODS and isinstance(node.func, ast.Attribute):
                return FLOAT
            if name in _PRESERVING_METHODS \
                    and isinstance(node.func, ast.Attribute):
                return self.infer(node.func.value)
            if name in _FLOAT_DEFAULT_FACTORIES | _DTYPE_KW_FACTORIES:
                for kw in node.keywords:
                    if kw.arg == "dtype":
                        return dtype_of_dtype_arg(kw.value)
                if name in _FLOAT_DEFAULT_FACTORIES:
                    return FLOAT
                if name == "linspace":
                    return FLOAT
                if name == "arange":
                    dtype = INT
                    for arg in node.args:
                        dtype = promote(dtype, self.infer(arg))
                    return dtype
                if name == "full" and len(node.args) >= 2:
                    return self.infer(node.args[1])
                return UNKNOWN
        if self.resolver is not None:
            resolved = self.resolver(node)
            if resolved is not None:
                return resolved
        return UNKNOWN

    def _infer_attribute(self, node: ast.Attribute) -> str:
        if node.attr in _FLOAT_NP_CONSTANTS:
            return FLOAT
        if node.attr in ("real", "imag"):
            receiver = self.infer(node.value)
            return FLOAT if receiver == COMPLEX else receiver
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return self.self_attrs.get(node.attr, UNKNOWN)
        return UNKNOWN

    # -- statements ----------------------------------------------------

    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _visit_calls(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self.on_call(child)

    def _bind_name(self, name: str, dtype: str, node: ast.stmt,
                   explicit: bool) -> None:
        old = self.env.get(name, UNKNOWN)
        if old == INT and dtype in (FLOAT, COMPLEX) and not explicit:
            self.on_name_widened(name, old, dtype, node)
        self.env[name] = dtype

    def _bind_attr(self, attr: str, dtype: str, node: ast.stmt,
                   explicit: bool) -> None:
        old = self.self_attrs.get(attr, UNKNOWN)
        if old == INT and dtype in (FLOAT, COMPLEX) and not explicit:
            self.on_attr_widened(attr, old, dtype, node)
        self.self_attrs[attr] = dtype

    def _assign_target(self, target: ast.expr, dtype: str, node: ast.stmt,
                       explicit: bool) -> None:
        if isinstance(target, ast.Name):
            self._bind_name(target.id, dtype, node, explicit)
        elif isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            self._bind_attr(target.attr, dtype, node, explicit)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, UNKNOWN, node, explicit)
        # Subscript stores (x[i] = v) do not rebind x's dtype: writing
        # a float into an int array raises or casts at runtime, and the
        # static claim about x stays whatever established it.

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._visit_calls(stmt.value)
            dtype = self.infer(stmt.value)
            explicit = is_explicit_cast(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, dtype, stmt, explicit)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._visit_calls(stmt.value)
            ann = dtype_of_annotation(stmt.annotation)
            value = self.infer(stmt.value) if stmt.value is not None \
                else UNKNOWN
            dtype = ann if ann != UNKNOWN else value
            if stmt.value is not None and ann == INT \
                    and value in (FLOAT, COMPLEX):
                self._assign_target(stmt.target, value, stmt,
                                    is_explicit_cast(stmt.value))
            else:
                if isinstance(stmt.target, ast.Name):
                    self.env[stmt.target.id] = dtype
                else:
                    self._assign_target(stmt.target, dtype, stmt, True)
        elif isinstance(stmt, ast.AugAssign):
            self._visit_calls(stmt.value)
            target = stmt.target
            if isinstance(target, ast.Name):
                old = self.env.get(target.id, UNKNOWN)
            elif isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                old = self.self_attrs.get(target.attr, UNKNOWN)
            else:
                old = UNKNOWN
            new = self._infer_binop(stmt.op, old, self.infer(stmt.value),
                                    ast.BinOp(left=ast.Constant(value=0),
                                              op=stmt.op,
                                              right=stmt.value))
            self._assign_target(target, new, stmt, False)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._visit_calls(stmt.value)
            dtype = self.infer(stmt.value)
            self.return_dtypes.append(dtype)
            self.on_return(dtype, stmt)
        elif isinstance(stmt, ast.For):
            self._visit_calls(stmt.iter)
            iter_dtype = self.infer(stmt.iter)
            if isinstance(stmt.iter, ast.Call) \
                    and _terminal_name(stmt.iter.func) in ("range",
                                                           "enumerate"):
                iter_dtype = INT if _terminal_name(
                    stmt.iter.func) == "range" else UNKNOWN
            self._assign_target(stmt.target, iter_dtype, stmt, True)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._visit_calls(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._visit_calls(stmt.test)
            before = dict(self.env)
            before_attrs = dict(self.self_attrs)
            self.run(stmt.body)
            after_body = dict(self.env)
            after_body_attrs = dict(self.self_attrs)
            self.env = dict(before)
            self.self_attrs = dict(before_attrs)
            self.run(stmt.orelse)
            self.env = {
                name: merge(after_body.get(name, UNKNOWN),
                            self.env.get(name, UNKNOWN))
                for name in set(after_body) | set(self.env)
            }
            self.self_attrs = {
                name: merge(after_body_attrs.get(name, UNKNOWN),
                            self.self_attrs.get(name, UNKNOWN))
                for name in set(after_body_attrs) | set(self.self_attrs)
            }
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._visit_calls(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, UNKNOWN,
                                        stmt, True)
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self._visit_calls(stmt.value)
            self.infer(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            # Nested scopes are summarized separately; their bodies do
            # not execute here.
            self.env[stmt.name] = UNKNOWN
        elif isinstance(stmt, (ast.Assert, ast.Raise, ast.Delete,
                               ast.Global, ast.Nonlocal, ast.Pass,
                               ast.Break, ast.Continue, ast.Import,
                               ast.ImportFrom)):
            if isinstance(stmt, ast.Assert):
                self._visit_calls(stmt.test)
            if isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.env.pop(target.id, None)
