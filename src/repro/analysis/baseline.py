"""The ratchet baseline: adopt repro-lint on a codebase with history.

Turning a new rule on over ``tests/`` surfaces findings that are
deliberate (tests write raw register addresses to prove the bus
rejects them) or merely old.  Deleting them all at once would bury the
PR that introduces the rule; ignoring the directory would let *new*
violations in.  The baseline is the standard way out: a checked-in
JSON file records, per ``RULE::path`` key, how many findings existed
when the rule landed.  At report time that many findings per key are
swallowed; finding **number N+1** — a new violation — still fails the
build.  The ratchet only turns one way: ``--update-baseline`` rewrites
the file from current findings, and review keeps counts from growing.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Finding

#: Conventional baseline filename at the repository root.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

BASELINE_SCHEMA_VERSION = 1

#: Separator inside baseline keys; ``::`` cannot appear in a rule code
#: and is vanishingly unlikely in a repo-relative posix path.
KEY_SEP = "::"


def baseline_key(finding: Finding) -> str:
    return f"{finding.rule}{KEY_SEP}{finding.path}"


def build_baseline(findings: Sequence[Finding]) -> dict[str, int]:
    """Per ``RULE::path`` finding counts for the given findings."""
    return dict(sorted(Counter(
        baseline_key(finding) for finding in findings).items()))


def load_baseline(path: str | Path) -> dict[str, int]:
    """Read a baseline file; a missing file is an empty baseline."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return {}
    data = json.loads(baseline_path.read_text())
    version = data.get("schema_version")
    if version != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported baseline schema_version {version!r} in "
            f"{baseline_path} (expected {BASELINE_SCHEMA_VERSION})")
    counts = data.get("counts", {})
    if not isinstance(counts, dict) or not all(
            isinstance(key, str) and isinstance(value, int)
            and value >= 0 for key, value in counts.items()):
        raise ValueError(f"malformed baseline counts in {baseline_path}")
    return dict(counts)


def write_baseline(path: str | Path,
                   findings: Sequence[Finding]) -> dict[str, int]:
    """Rewrite the baseline file from current findings; returns counts."""
    counts = build_baseline(findings)
    payload = {
        "tool": "repro-lint",
        "schema_version": BASELINE_SCHEMA_VERSION,
        "counts": counts,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return counts


def apply_baseline(findings: Sequence[Finding],
                   baseline: dict[str, int]
                   ) -> tuple[list[Finding], int]:
    """Swallow up to the baselined count of findings per key.

    Findings are consumed in report order (path, line, col), so the
    surviving ones are the *latest* occurrences — the ones most likely
    introduced by the change under review.  Returns
    ``(surviving_findings, suppressed_count)``.
    """
    budget = dict(baseline)
    surviving: list[Finding] = []
    suppressed = 0
    for finding in findings:
        key = baseline_key(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            surviving.append(finding)
    return surviving, suppressed
