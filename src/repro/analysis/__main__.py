"""The repro-lint command line.

::

    python -m repro.analysis [paths ...] [--format text|json]
                             [--select RJ001,RJ002] [--ignore RJ005]
                             [--list-rules]

Exit codes: 0 clean, 1 findings reported, 2 usage error.  With no
paths, ``src`` is scanned when it exists, else the current directory.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.engine import analyze_paths, resolve_rules
from repro.analysis.reporters import render_json, render_text

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _split_codes(raw: list[str]) -> list[str]:
    codes: list[str] = []
    for chunk in raw:
        codes.extend(code.strip() for code in chunk.split(",") if code.strip())
    return codes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Domain-aware static analysis for the reactive-jamming "
                    "reproduction (register-map, fixed-point, and units "
                    "invariants).",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to scan (default: src if present, else .)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", action="append", default=[], metavar="CODES",
        help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        rules = resolve_rules(_split_codes(args.select),
                              _split_codes(args.ignore))
    except ValueError as exc:
        parser.error(str(exc))  # exits with code 2

    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name}")
            print(f"       {rule.description}")
        return EXIT_CLEAN

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(missing)}")

    findings = analyze_paths(paths, rules)
    if args.format == "json":
        print(render_json(findings, [rule.code for rule in rules]))
    else:
        print(render_text(findings))
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
