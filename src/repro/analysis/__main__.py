"""The repro-lint command line.

::

    python -m repro.analysis [paths ...]
                             [--format text|json|sarif]
                             [--select RJ001,RJ002] [--ignore RJ005]
                             [--jobs N]
                             [--baseline FILE | --no-baseline]
                             [--update-baseline]
                             [--changed-only [--diff-base REF]]
                             [--list-rules]

Exit codes: 0 clean (warning-severity findings are advisory and do
not gate), 1 error-severity findings reported, 2 usage error.  With
no paths, ``src`` is scanned when it exists, else the current
directory.

``--baseline`` defaults to ``.repro-lint-baseline.json`` when that
file exists; baselined findings are swallowed up to the recorded
per-``RULE::path`` count (the ratchet), and ``--update-baseline``
rewrites the file from the current findings.  ``--changed-only``
restricts the per-file rule phase to files changed against
``--diff-base`` (default ``HEAD``) while the whole-program index
still covers the full source roots.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import analyze_paths, default_jobs, resolve_rules
from repro.analysis.findings import Severity
from repro.analysis.reporters import render_json, render_sarif, render_text

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _split_codes(raw: list[str]) -> list[str]:
    codes: list[str] = []
    for chunk in raw:
        codes.extend(code.strip() for code in chunk.split(",") if code.strip())
    return codes


def changed_python_files(diff_base: str,
                         scope: list[str]) -> list[str] | None:
    """Python files changed against ``diff_base``, untracked included.

    Returns None when git is unavailable or the diff fails (not a
    repository, unknown ref) — the caller falls back to a full scan
    rather than silently linting nothing.  ``scope`` limits the result
    to files under the requested paths.
    """
    commands = (
        ["git", "diff", "--name-only", "--diff-filter=ACMR", diff_base],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    names: list[str] = []
    for command in commands:
        try:
            proc = subprocess.run(command, capture_output=True,
                                  text=True, check=True)
        except (OSError, subprocess.CalledProcessError):
            return None
        names.extend(line.strip() for line in proc.stdout.splitlines()
                     if line.strip())
    scope_paths = [Path(p).resolve() for p in scope]

    def in_scope(path: Path) -> bool:
        resolved = path.resolve()
        return any(resolved == root or root in resolved.parents
                   for root in scope_paths)

    out: list[str] = []
    seen: set[str] = set()
    for name in names:
        path = Path(name)
        if path.suffix != ".py" or not path.exists():
            continue
        if name in seen or not in_scope(path):
            continue
        seen.add(name)
        out.append(name)
    return sorted(out)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-aware static analysis for the reactive-jamming "
                    "reproduction (register-map, fixed-point, dtype-flow, "
                    "determinism, and backend-parity invariants).",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to scan (default: src if present, else .)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", action="append", default=[], metavar="CODES",
        help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parse-pool width (default: min(8, cpu count))",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"ratchet baseline file (default: {DEFAULT_BASELINE_NAME} "
             "when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file from current findings and exit 0",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="lint only files changed against --diff-base; the project "
             "index still covers the full scan roots",
    )
    parser.add_argument(
        "--diff-base", default="HEAD", metavar="REF",
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        rules = resolve_rules(_split_codes(args.select),
                              _split_codes(args.ignore))
    except ValueError as exc:
        parser.error(str(exc))  # exits with code 2

    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name}")
            print(f"       {rule.description}")
        return EXIT_CLEAN

    if args.no_baseline and (args.baseline or args.update_baseline):
        parser.error("--no-baseline conflicts with "
                     "--baseline/--update-baseline")

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(missing)}")

    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        parser.error("--jobs must be >= 1")

    scan_paths: list[str | Path] = list(paths)
    project_paths: list[str | Path] | None = None
    if args.changed_only:
        changed = changed_python_files(args.diff_base, paths)
        if changed is None:
            print("repro-lint: git diff unavailable; scanning all paths",
                  file=sys.stderr)
        elif not changed:
            print("repro-lint: no changed Python files under "
                  f"{', '.join(paths)}")
            return EXIT_CLEAN
        else:
            scan_paths = list(changed)
            project_paths = list(paths)

    findings = analyze_paths(scan_paths, rules, jobs=jobs,
                             project_paths=project_paths)

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline \
            and Path(DEFAULT_BASELINE_NAME).exists():
        baseline_path = DEFAULT_BASELINE_NAME

    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE_NAME
        counts = write_baseline(target, findings)
        print(f"repro-lint: baseline {target} updated "
              f"({sum(counts.values())} finding(s) over "
              f"{len(counts)} key(s))")
        return EXIT_CLEAN

    suppressed = 0
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            parser.error(str(exc))
        findings, suppressed = apply_baseline(findings, baseline)

    if args.format == "json":
        print(render_json(findings, [rule.code for rule in rules]))
    elif args.format == "sarif":
        print(render_sarif(findings, rules))
    else:
        print(render_text(findings))
        if suppressed:
            print(f"repro-lint: {suppressed} baselined finding(s) "
                  f"suppressed by {baseline_path}")

    gating = [f for f in findings if f.severity is Severity.ERROR]
    return EXIT_FINDINGS if gating else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
