"""Inline suppression comments.

Three forms are understood, all spelled in a regular comment:

``# repro-lint: disable=RJ001``
    Suppress the listed rules on this line.  When the comment sits on
    a ``def`` or ``class`` header line, the suppression covers the
    whole body — the idiom for marking a host-side helper inside an
    otherwise bit-exact module.

``# repro-lint: disable-file=RJ004``
    Suppress the listed rules for the entire file, wherever the
    comment appears.

Multiple codes separate with commas: ``disable=RJ001,RJ003``.
Unknown codes are accepted silently so a suppression never turns into
a crash when a rule is renamed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize

_DIRECTIVE = re.compile(
    r"repro-lint:\s*disable(?P<scope>-file)?\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+)"
)


def _parse_codes(raw: str) -> set[str]:
    return {code.strip().upper() for code in raw.split(",") if code.strip()}


class Suppressions:
    """Suppression state for one file."""

    def __init__(self) -> None:
        self.file_level: set[str] = set()
        self.line_level: dict[int, set[str]] = {}
        #: ``(first_line, last_line, codes)`` spans from def/class headers.
        self.scoped: list[tuple[int, int, set[str]]] = []

    def is_suppressed(self, code: str, line: int) -> bool:
        code = code.upper()
        if code in self.file_level:
            return True
        if code in self.line_level.get(line, set()):
            return True
        return any(start <= line <= end and code in codes
                   for start, end, codes in self.scoped)


def collect_suppressions(source: str, tree: ast.Module | None) -> Suppressions:
    """Scan comments (and the AST, for scoping) for directives."""
    result = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if match is None:
                continue
            codes = _parse_codes(match.group("codes"))
            if match.group("scope"):
                result.file_level |= codes
            else:
                result.line_level.setdefault(token.start[0], set()).update(codes)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # A file the tokenizer rejects still gets analyzed (the engine
        # reports the parse error); it just cannot carry suppressions.
        return result

    if tree is None:
        return result

    # Promote directives sitting on def/class header lines to cover the
    # whole body.  ``node.lineno`` is the header line (decorators are
    # listed separately), ``end_lineno`` the last body line.
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            continue
        header_codes: set[str] = set()
        # The header may wrap across lines (long signatures); accept a
        # directive on any header line before the first body statement.
        body_start = node.body[0].lineno if node.body else node.lineno
        for line in range(node.lineno, max(node.lineno + 1, body_start)):
            header_codes |= result.line_level.get(line, set())
        if header_codes and node.end_lineno is not None:
            result.scoped.append((node.lineno, node.end_lineno, header_codes))
    return result
