"""repro-lint: project-aware static analysis for the reproduction.

The FPGA core reproduced here is correct only because every value that
crosses the user-register bus respects a bit-exact contract — 3-bit
signed correlator coefficients packed ten per word, Q8.8 energy
thresholds, a 2-bit waveform select, a 32-bit uptime counter.  A typo'd
register address or an over-wide literal compiles fine and only fails
at runtime, if ever — and so does a float that leaks into integer
detection state two calls from where it was made.  This package closes
that gap with a two-phase static-analysis pass: an **index phase**
builds a whole-program :class:`~repro.analysis.project.ProjectContext`
(module/import graph, symbol table, approximate call graph,
per-function dtype summaries, parsed in parallel), and a **rule
phase** hands it to the rules alongside each file:

========  ==========================================================
Rule      Invariant
========  ==========================================================
RJ001     register bus accesses must use ``REG_*`` constants from
          :mod:`repro.hw.register_map`, never raw integer addresses
RJ002     literal values written to a register must fit the
          destination field width declared in the register map
RJ003     designated bit-exact modules (the FPGA datapath models)
          must stay integer/sign-bit exact — no float arithmetic
RJ004     timing/rate magic numbers (25e6, 100e6, 40e-9, ...) live in
          :mod:`repro.units` / ``phy/*/params.py``, nowhere else
RJ005     generic hygiene the runtime cannot afford: mutable default
          arguments, bare ``except``, missing
          ``from __future__ import annotations`` under ``src/``
RJ006     ``UserRegisterBus`` is only constructed under ``hw/`` and
          ``faults/``; everything else goes through the driver
RJ007     model code (``hw/``, ``dsp/``, ``phy/``) never reads the
          host wall clock; its timeline is the sample clock
RJ008     process pools are only built in :mod:`repro.runtime`, the
          pool-policy choke point
RJ009     raw DSP primitives (``np.correlate`` & friends) stay in
          :mod:`repro.kernels`, behind the backend dispatch
RJ010     whole-program: integer state in ``hw/``/``dsp/``/
          ``kernels/`` is never silently widened to float, across
          assignments and one level of intra-project calls
RJ011     whole-program: no ambient RNG (unseeded ``default_rng``,
          legacy ``np.random.*``, stdlib ``random.*``) reachable
          from sweep/trial/experiment entry points
RJ012     whole-program: telemetry spans enter their scope (no
          discarded context managers) and probe points stay on the
          ``NULL_TRACER``-safe base Tracer interface
RJ013     whole-program: every numpy-reference kernel op exists on
          every other backend with a matching signature
========  ==========================================================

The analyzer itself is pure stdlib (``ast`` + ``tokenize``); its only
domain import is :mod:`repro.hw.register_map`, the declarative table
it checks against.  Run it as ``python -m repro.analysis [paths]`` or
via the ``repro-lint`` console script; findings suppress inline with
``# repro-lint: disable=RJ0xx``, historical findings ride the ratchet
baseline (``.repro-lint-baseline.json``), and reports render as text,
JSON, or SARIF 2.1.0.  See ``docs/static_analysis.md``.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    apply_baseline,
    build_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    FileContext,
    ProjectRule,
    analyze_paths,
    analyze_source,
    analyze_sources,
    default_jobs,
    iter_python_files,
    parse_files,
    resolve_rules,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import ProjectContext
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.rules import ALL_RULES, get_rule

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Finding",
    "ProjectContext",
    "ProjectRule",
    "Severity",
    "analyze_paths",
    "analyze_source",
    "analyze_sources",
    "apply_baseline",
    "build_baseline",
    "default_jobs",
    "get_rule",
    "iter_python_files",
    "load_baseline",
    "parse_files",
    "render_json",
    "render_sarif",
    "render_text",
    "resolve_rules",
    "write_baseline",
]
