"""repro-lint: domain-aware static analysis for the reproduction.

The FPGA core reproduced here is correct only because every value that
crosses the user-register bus respects a bit-exact contract — 3-bit
signed correlator coefficients packed ten per word, Q8.8 energy
thresholds, a 2-bit waveform select, a 32-bit uptime counter.  A typo'd
register address or an over-wide literal compiles fine and only fails
at runtime, if ever.  This package closes that gap with an AST-based
static-analysis pass that understands the hardware model:

========  ==========================================================
Rule      Invariant
========  ==========================================================
RJ001     register bus accesses must use ``REG_*`` constants from
          :mod:`repro.hw.register_map`, never raw integer addresses
RJ002     literal values written to a register must fit the
          destination field width declared in the register map
RJ003     designated bit-exact modules (the FPGA datapath models)
          must stay integer/sign-bit exact — no float arithmetic
RJ004     timing/rate magic numbers (25e6, 100e6, 40e-9, ...) live in
          :mod:`repro.units` / ``phy/*/params.py``, nowhere else
RJ005     generic hygiene the runtime cannot afford: mutable default
          arguments, bare ``except``, missing
          ``from __future__ import annotations`` under ``src/``
========  ==========================================================

The analyzer itself is pure stdlib (``ast`` + ``tokenize``); its only
domain import is :mod:`repro.hw.register_map`, the declarative table
it checks against.  Run it as ``python -m repro.analysis [paths]`` or
via the ``repro-lint`` console script; findings suppress inline with
``# repro-lint: disable=RJ00x``.  See ``docs/static_analysis.md``.
"""

from __future__ import annotations

from repro.analysis.engine import (
    FileContext,
    analyze_paths,
    analyze_source,
    iter_python_files,
    resolve_rules,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ALL_RULES, get_rule

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Finding",
    "Severity",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "iter_python_files",
    "render_json",
    "render_text",
    "resolve_rules",
]
