"""The rule engine: discovery, (parallel) parsing, dispatch, suppression.

Analysis runs in two phases.  The **index phase** parses every file —
serially or fanned out over a parse pool — and builds the
:class:`~repro.analysis.project.ProjectContext`: module/import graph,
symbol table, approximate call graph, per-function dtype summaries.
The **rule phase** walks each file once more, handing per-file rules
the :class:`FileContext` and whole-program rules
(:class:`ProjectRule`) the project context alongside it.  All domain
knowledge lives in the rules (:mod:`repro.analysis.rules`); the engine
stays deliberately boring.
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding, Severity
from repro.analysis.suppressions import Suppressions, collect_suppressions

#: Rule code reserved for files the parser rejects.
PARSE_ERROR_CODE = "RJ000"

#: Directories never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache",
              "build", "dist"}

#: Hard cap on the parse pool; parsing saturates well before this.
MAX_PARSE_JOBS = 8


class FileContext:
    """Everything a per-file rule needs to know about one file."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 suppressions: Suppressions) -> None:
        self.path = path
        #: Forward-slash path, for suffix matching regardless of OS.
        self.posix_path = path.replace("\\", "/")
        self.source = source
        self.tree = tree
        self.suppressions = suppressions

    @property
    def is_src(self) -> bool:
        """Whether the file lives under the ``src/`` package tree."""
        parts = Path(self.posix_path).parts
        return "src" in parts

    def path_endswith(self, *suffixes: str) -> bool:
        """Suffix match against the normalized path."""
        return any(self.posix_path.endswith(suffix) for suffix in suffixes)


class Rule:
    """Base class for per-file repro-lint rules.

    Subclasses set ``code`` (``RJ0xx``), ``name`` (short slug),
    ``description``, optionally ``severity``, and implement
    :meth:`check` yielding findings.  Rules must not mutate the
    context.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    #: Findings default to this severity; ERROR findings gate CI.
    severity: Severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                severity: Severity | None = None) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule=self.code,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=severity if severity is not None else self.severity,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    The engine calls :meth:`check_project` with the shared
    :class:`~repro.analysis.project.ProjectContext` built in the index
    phase.  The rule is still invoked once per file and must anchor
    its findings in ``ctx`` — that keeps suppressions, baselines, and
    reporting identical across both rule families.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Without a project index there is nothing to verify.
        return iter(())

    def check_project(self, ctx: FileContext,
                      project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files and directories into a stream of unique ``.py`` files.

    Overlapping arguments (a file plus its parent directory, the same
    directory twice) are deduplicated by resolved path so findings are
    never double-reported.
    """
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if _SKIP_DIRS.intersection(candidate.parts):
                    continue
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    yield candidate
        elif path.suffix == ".py":
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield path


def resolve_rules(select: Iterable[str] | None = None,
                  ignore: Iterable[str] | None = None) -> list[Rule]:
    """Turn ``--select`` / ``--ignore`` code lists into rule instances.

    Unknown codes raise in **both** lists: a typo'd ``--ignore`` that
    silently ignores nothing is exactly as wrong as a typo'd
    ``--select``.
    """
    from repro.analysis.rules import ALL_RULES

    known = {rule.code for rule in ALL_RULES}
    rules = list(ALL_RULES)
    if select:
        wanted = {code.upper() for code in select}
        unknown = wanted - known
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.code in wanted]
    if ignore:
        dropped = {code.upper() for code in ignore}
        unknown = dropped - known
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.code not in dropped]
    return rules


# -- parsing ------------------------------------------------------------


@dataclass
class ParsedFile:
    """One file after the parse step (tree is None on errors)."""

    path: str
    source: str
    tree: ast.Module | None
    suppressions: Suppressions
    error: Finding | None = None


def _parse_one(path_str: str) -> ParsedFile:
    """Read + parse + collect suppressions for one file.

    Module-level so the parse pool can pickle it by reference; the
    returned dataclass (AST included) round-trips through pickle.
    """
    try:
        source = Path(path_str).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return ParsedFile(
            path=path_str, source="", tree=None,
            suppressions=Suppressions(),
            error=Finding(rule=PARSE_ERROR_CODE,
                          message=f"file is unreadable: {exc}",
                          path=path_str, line=1, col=0),
        )
    return parse_source(source, path_str)


def parse_source(source: str, path: str) -> ParsedFile:
    """Parse one in-memory source string."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return ParsedFile(
            path=path, source=source, tree=None,
            suppressions=collect_suppressions(source, None),
            error=Finding(rule=PARSE_ERROR_CODE,
                          message=f"file does not parse: {exc.msg}",
                          path=path, line=exc.lineno or 1,
                          col=exc.offset or 0),
        )
    return ParsedFile(path=path, source=source, tree=tree,
                      suppressions=collect_suppressions(source, tree))


def default_jobs() -> int:
    """Parse-pool width used by ``--jobs auto``."""
    return max(1, min(MAX_PARSE_JOBS, os.cpu_count() or 1))


def parse_files(paths: Iterable[str | Path],
                jobs: int = 1) -> list[ParsedFile]:
    """Parse every Python file under ``paths``.

    With ``jobs > 1`` the files are parsed by a process pool.  The
    result is identical to the serial path (order included); only the
    wall-clock changes, which the analysis test suite measures.
    """
    files = [str(path) for path in iter_python_files(paths)]
    if jobs <= 1 or len(files) < 2:
        return [_parse_one(path) for path in files]
    # The parse fan-out is IO + C-parser work over an already-fixed
    # file list, not a seeded trial grid, so it stays here rather than
    # going through repro.runtime.sweep.
    from concurrent.futures import ProcessPoolExecutor

    workers = min(jobs, len(files))
    chunk = max(1, len(files) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:  # repro-lint: disable=RJ008
        return list(pool.map(_parse_one, files, chunksize=chunk))


# -- analysis -----------------------------------------------------------


def _check_file(parsed: ParsedFile, rules: Iterable[Rule],
                project: "ProjectContext | None") -> list[Finding]:
    if parsed.tree is None:
        return [parsed.error] if parsed.error is not None else []
    ctx = FileContext(parsed.path, parsed.source, parsed.tree,
                      parsed.suppressions)
    findings = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            if project is None:
                continue
            produced = rule.check_project(ctx, project)
        else:
            produced = rule.check(ctx)
        for finding in produced:
            if not ctx.suppressions.is_suppressed(finding.rule,
                                                  finding.line):
                findings.append(finding)
    return findings


def _build_project(parsed: Iterable[ParsedFile]) -> "ProjectContext":
    from repro.analysis.project import ProjectContext

    return ProjectContext.build([
        (p.path, p.tree) for p in parsed if p.tree is not None
    ])


def analyze_source(source: str, path: str,
                   rules: Iterable[Rule] | None = None,
                   project: "ProjectContext | None" = None
                   ) -> list[Finding]:
    """Analyze one source string as if it lived at ``path``.

    Without an explicit ``project`` a single-file index is built, so
    whole-program rules still run on snippets (seeing only this file).
    """
    if rules is None:
        rules = resolve_rules()
    parsed = parse_source(source, path)
    if project is None and parsed.tree is not None:
        project = _build_project([parsed])
    return sorted(_check_file(parsed, rules, project),
                  key=Finding.sort_key)


def analyze_sources(files: dict[str, str],
                    rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Analyze several in-memory files as one project.

    ``files`` maps path -> source; the index phase sees all of them,
    so cross-file dataflow rules resolve calls between the entries.
    """
    if rules is None:
        rules = resolve_rules()
    parsed = [parse_source(source, path) for path, source in files.items()]
    project = _build_project(parsed)
    findings = [
        finding
        for one in parsed
        for finding in _check_file(one, rules, project)
    ]
    return sorted(findings, key=Finding.sort_key)


def analyze_file(path: str | Path,
                 rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Analyze one file on disk (single-file project index)."""
    if rules is None:
        rules = resolve_rules()
    parsed = _parse_one(str(path))
    project = None
    if parsed.tree is not None:
        project = _build_project([parsed])
    return sorted(_check_file(parsed, rules, project),
                  key=Finding.sort_key)


def analyze_paths(paths: Iterable[str | Path],
                  rules: Iterable[Rule] | None = None,
                  jobs: int = 1,
                  project_paths: Iterable[str | Path] | None = None
                  ) -> list[Finding]:
    """Analyze every Python file under ``paths`` (the CLI entry point).

    ``project_paths`` widens the **index** beyond the analyzed files:
    ``--changed-only`` hands the changed files as ``paths`` and the
    full source roots here, so whole-program rules keep seeing the
    entire project while per-file work shrinks to the diff.
    """
    if rules is None:
        rules = resolve_rules()
    else:
        rules = list(rules)
    parsed = parse_files(paths, jobs=jobs)
    index_input = parsed
    if project_paths is not None:
        analyzed = {Path(p.path).resolve() for p in parsed}
        extra = parse_files(project_paths, jobs=jobs)
        index_input = parsed + [
            p for p in extra if Path(p.path).resolve() not in analyzed
        ]
    project = _build_project(index_input)
    findings: list[Finding] = []
    for one in parsed:
        findings.extend(_check_file(one, rules, project))
    return sorted(findings, key=Finding.sort_key)
