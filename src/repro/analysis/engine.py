"""The rule engine: file discovery, parsing, dispatch, suppression.

The engine is deliberately boring: it parses each file once, hands the
shared :class:`FileContext` to every rule, filters the findings
through the suppression table, and returns them sorted.  All domain
knowledge lives in the rules (:mod:`repro.analysis.rules`).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.suppressions import Suppressions, collect_suppressions

#: Rule code reserved for files the parser rejects.
PARSE_ERROR_CODE = "RJ000"

#: Directories never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache",
              "build", "dist"}


class FileContext:
    """Everything a rule needs to know about one file."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 suppressions: Suppressions) -> None:
        self.path = path
        #: Forward-slash path, for suffix matching regardless of OS.
        self.posix_path = path.replace("\\", "/")
        self.source = source
        self.tree = tree
        self.suppressions = suppressions

    @property
    def is_src(self) -> bool:
        """Whether the file lives under the ``src/`` package tree."""
        parts = Path(self.posix_path).parts
        return "src" in parts

    def path_endswith(self, *suffixes: str) -> bool:
        """Suffix match against the normalized path."""
        return any(self.posix_path.endswith(suffix) for suffix in suffixes)


class Rule:
    """Base class for repro-lint rules.

    Subclasses set ``code`` (``RJ00x``), ``name`` (short slug), and
    ``description``, and implement :meth:`check` yielding findings.
    Rules must not mutate the context.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule=self.code,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path


def resolve_rules(select: Iterable[str] | None = None,
                  ignore: Iterable[str] | None = None) -> list[Rule]:
    """Turn ``--select`` / ``--ignore`` code lists into rule instances."""
    from repro.analysis.rules import ALL_RULES

    rules = list(ALL_RULES)
    if select:
        wanted = {code.upper() for code in select}
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.code in wanted]
    if ignore:
        dropped = {code.upper() for code in ignore}
        rules = [rule for rule in rules if rule.code not in dropped]
    return rules


def analyze_source(source: str, path: str,
                   rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Analyze one source string as if it lived at ``path``."""
    if rules is None:
        rules = resolve_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            rule=PARSE_ERROR_CODE,
            message=f"file does not parse: {exc.msg}",
            path=path,
            line=exc.lineno or 1,
            col=exc.offset or 0,
        )]
    ctx = FileContext(path, source, tree, collect_suppressions(source, tree))
    findings = [
        finding
        for rule in rules
        for finding in rule.check(ctx)
        if not ctx.suppressions.is_suppressed(finding.rule, finding.line)
    ]
    return sorted(findings, key=Finding.sort_key)


def analyze_file(path: str | Path,
                 rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Analyze one file on disk."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding(
            rule=PARSE_ERROR_CODE,
            message=f"file is unreadable: {exc}",
            path=str(path),
            line=1,
            col=0,
        )]
    return analyze_source(source, str(path), rules)


def analyze_paths(paths: Iterable[str | Path],
                  rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Analyze every Python file under ``paths`` (the CLI entry point)."""
    if rules is None:
        rules = resolve_rules()
    else:
        rules = list(rules)
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(analyze_file(file_path, rules))
    return sorted(findings, key=Finding.sort_key)
