"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

The JSON schema (version 1) is stable; future PRs diff reports over
time, so fields are only ever added, never renamed.  See
``docs/static_analysis.md`` for the documented schema.  The SARIF
output targets the minimal valid 2.1.0 shape that code-scanning UIs
ingest: one run, a tool driver with the rule catalogue, one result
per finding with a single physical location.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable, Sequence

from repro.analysis.findings import Finding

#: Bumped only when an existing field changes meaning.
JSON_SCHEMA_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: CODE message`` line per finding + summary."""
    lines = [
        f"{finding.location}: {finding.rule} {finding.message}"
        for finding in findings
    ]
    if findings:
        counts = Counter(finding.rule for finding in findings)
        breakdown = ", ".join(
            f"{code} x{count}" for code, count in sorted(counts.items())
        )
        lines.append(f"repro-lint: {len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("repro-lint: clean, no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                rule_codes: Iterable[str] = ()) -> str:
    """The machine-readable report, schema version 1."""
    counts = Counter(finding.rule for finding in findings)
    report = {
        "tool": "repro-lint",
        "schema_version": JSON_SCHEMA_VERSION,
        "rules_run": sorted(rule_codes),
        "total": len(findings),
        "counts": dict(sorted(counts.items())),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(report, indent=2)


def render_sarif(findings: Sequence[Finding],
                 rules: Iterable = ()) -> str:
    """SARIF 2.1.0 for code-scanning ingestion.

    ``rules`` is the sequence of rule objects that ran (anything with
    ``code``/``name``/``description`` attributes); their catalogue
    entries go into the tool driver so viewers can show rule help
    without a second lookup.
    """
    rule_entries = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.description},
        }
        for rule in rules
    ]
    rule_index = {entry["id"]: i for i, entry in enumerate(rule_entries)}
    results = []
    for finding in findings:
        result: dict[str, object] = {
            "ruleId": finding.rule,
            "level": finding.severity.value,
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based; findings carry the
                        # 0-based AST col_offset.
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    sarif = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": rule_entries,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(sarif, indent=2)
