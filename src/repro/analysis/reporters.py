"""Finding reporters: human text and machine JSON.

The JSON schema (version 1) is stable; future PRs diff reports over
time, so fields are only ever added, never renamed.  See
``docs/static_analysis.md`` for the documented schema.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable, Sequence

from repro.analysis.findings import Finding

#: Bumped only when an existing field changes meaning.
JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: CODE message`` line per finding + summary."""
    lines = [
        f"{finding.location}: {finding.rule} {finding.message}"
        for finding in findings
    ]
    if findings:
        counts = Counter(finding.rule for finding in findings)
        breakdown = ", ".join(
            f"{code} x{count}" for code, count in sorted(counts.items())
        )
        lines.append(f"repro-lint: {len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("repro-lint: clean, no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                rule_codes: Iterable[str] = ()) -> str:
    """The machine-readable report, schema version 1."""
    counts = Counter(finding.rule for finding in findings)
    report = {
        "tool": "repro-lint",
        "schema_version": JSON_SCHEMA_VERSION,
        "rules_run": sorted(rule_codes),
        "total": len(findings),
        "counts": dict(sorted(counts.items())),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(report, indent=2)
