"""RJ001/RJ002: the user-register bus contract.

The 24-register layout in :mod:`repro.hw.register_map` is the single
source of truth for addresses and field widths.  RJ001 keeps raw
integer addresses out of bus calls (a typo'd address silently programs
the wrong block); RJ002 statically folds literal writes and checks
them against the destination register's declared width (an over-wide
literal would be rejected — or worse, truncated — only at runtime).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Finding, Rule
from repro.hw import register_map

#: The register map itself is the one place raw addresses may live.
_ADDRESS_AUTHORITY = ("hw/register_map.py",)

#: Receiver names that mark a call target as the register bus.
_BUS_METHODS = {"write", "read", "watch"}


def _receiver_is_bus(node: ast.expr) -> bool:
    """Whether an attribute/name chain plausibly names the register bus."""
    if isinstance(node, ast.Name):
        return node.id.lower().endswith("bus")
    if isinstance(node, ast.Attribute):
        return node.attr.lower().endswith("bus")
    return False


def _fold_constant(node: ast.expr) -> int | None:
    """Fold an expression of int literals and register-map names.

    Returns the value if the expression is statically known (integer
    literals, ``REG_*``-style names resolvable in the register map,
    and +,-,*,//,<<,>>,| combinations thereof), else ``None``.
    """
    if isinstance(node, ast.Constant):
        if isinstance(node.value, int) and not isinstance(node.value, bool):
            return node.value
        return None
    if isinstance(node, ast.Name):
        value = getattr(register_map, node.id, None)
        return value if isinstance(value, int) else None
    if isinstance(node, ast.Attribute):
        value = getattr(register_map, node.attr, None)
        return value if isinstance(value, int) else None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _fold_constant(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.BinOp):
        left = _fold_constant(node.left)
        right = _fold_constant(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.FloorDiv) and right != 0:
            return left // right
        if isinstance(node.op, ast.LShift) and right >= 0:
            return left << right
        if isinstance(node.op, ast.RShift) and right >= 0:
            return left >> right
        if isinstance(node.op, ast.BitOr):
            return left | right
        return None
    return None


def _is_pure_literal(node: ast.expr) -> bool:
    """Whether an expression is built from integer literals only."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, int) and not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp):
        return _is_pure_literal(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_pure_literal(node.left) and _is_pure_literal(node.right)
    return False


def _bus_calls(ctx: FileContext) -> Iterator[ast.Call]:
    for node in ast.walk(ctx.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _BUS_METHODS
                and _receiver_is_bus(node.func.value)
                and node.args):
            yield node


class RegisterAddressRule(Rule):
    """RJ001: bus accesses must address registers by ``REG_*`` name."""

    code = "RJ001"
    name = "raw-register-address"
    description = (
        "bus.write()/bus.read()/bus.watch() must use REG_* constants from "
        "repro.hw.register_map, not raw integer addresses"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.path_endswith(*_ADDRESS_AUTHORITY):
            return
        for call in _bus_calls(ctx):
            address = call.args[0]
            if _is_pure_literal(address):
                value = _fold_constant(address)
                shown = f" {value}" if value is not None else ""
                method = call.func.attr if isinstance(call.func, ast.Attribute) else "?"
                yield self.finding(
                    ctx, address,
                    f"raw register address{shown} in bus.{method}(); "
                    "use a REG_* constant from repro.hw.register_map",
                )


class RegisterWidthRule(Rule):
    """RJ002: literal register writes must fit the declared field width."""

    code = "RJ002"
    name = "register-field-overflow"
    description = (
        "a literal value written to a register must fit the destination "
        "field width declared in repro.hw.register_map.REGISTER_SPECS"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _bus_calls(ctx):
            if not isinstance(call.func, ast.Attribute):
                continue
            if call.func.attr != "write" or len(call.args) < 2:
                continue
            address = _fold_constant(call.args[0])
            value = _fold_constant(call.args[1])
            if address is None or value is None:
                continue
            spec = register_map.register_spec(address)
            if spec is None:
                if value > register_map.JAM_UPTIME_MAX or value < 0:
                    yield self.finding(
                        ctx, call.args[1],
                        f"value {value:#x} does not fit the 32-bit data bus",
                    )
                continue
            if not 0 <= value <= spec.max_value:
                yield self.finding(
                    ctx, call.args[1],
                    f"value {value:#x} overflows {spec.name} (address "
                    f"{spec.address}): {spec.description}; the field accepts "
                    f"at most {spec.max_value:#x} ({spec.width} bits)",
                )
