"""RJ012: telemetry span pairing and NULL_TRACER tolerance.

Two whole-program facts keep the telemetry layer honest:

1. **Spans must actually span.**  The profiler's scopes
   (``HostProfiler.profile`` and every ``@contextmanager``-decorated
   project function) only open and close when entered with ``with``.
   A bare statement call — ``profiler.profile("xcorr")`` — builds the
   context manager, records nothing, and closes nothing: the span is
   opened in the author's head and never on the timeline.  The rule
   resolves calls through the project symbol table, so any project
   context manager discarded as a bare expression statement is caught,
   not just the telemetry ones.

2. **Probe points must tolerate ``NULL_TRACER``.**  Every tracer
   attribute the instrumented code touches must exist on the base
   :class:`repro.telemetry.tracer.Tracer` interface, because the
   default tracer everywhere is the disabled singleton.  Touching a
   ``RingTracer``-only member (``iter_category``, ``emitted``,
   ``dropped``, ...) on a value that is a tracer by name crashes every
   un-instrumented run.  The interface and the ring-only surplus are
   read from the project index, not hard-coded, so the rule tracks the
   tracer API as it grows.

The telemetry package itself (which legitimately manipulates concrete
tracers) and test code are exempt from the tolerance check.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Finding, ProjectRule
from repro.analysis.project import (
    MODULE_BODY,
    ModuleInfo,
    ProjectContext,
)

#: Attribute-call names treated as span scopes even when the receiver
#: cannot be resolved (``<anything>.profile(...)``).
SPAN_SCOPE_METHODS: frozenset[str] = frozenset({"profile"})

#: Fallback Tracer interface when the telemetry package is outside the
#: analyzed project (single-file runs, fixtures).
_FALLBACK_TRACER_INTERFACE: frozenset[str] = frozenset({
    "enabled", "instant", "span", "host_span", "events", "clear",
})

_TRACER_CLASS = "repro.telemetry.tracer:Tracer"
_RING_TRACER_CLASS = "repro.telemetry.tracer:RingTracer"

#: Path fragment for the exempt telemetry package.
_TELEMETRY_PART = "/telemetry/"


def _tracer_surfaces(project: ProjectContext
                     ) -> tuple[frozenset[str], frozenset[str]]:
    """``(base_interface, ring_only_members)`` from the project index."""
    cached = project.cache.get("rj012.surfaces")
    if cached is not None:
        return cached  # type: ignore[return-value]
    base = project.classes.get(_TRACER_CLASS)
    ring = project.classes.get(_RING_TRACER_CLASS)
    if base is None:
        surfaces = (_FALLBACK_TRACER_INTERFACE, frozenset())
    else:
        interface = frozenset(base.methods) \
            | frozenset(base.class_attrs) | {"enabled"}
        ring_only: frozenset[str] = frozenset()
        if ring is not None:
            ring_members = frozenset(ring.methods) \
                | frozenset(ring.class_attrs) \
                | frozenset(ring.attr_dtypes)
            ring_only = ring_members - interface - {"__init__"}
        surfaces = (interface, ring_only)
    project.cache["rj012.surfaces"] = surfaces
    return surfaces


def _looks_like_tracer(node: ast.expr) -> bool:
    """Whether an attribute receiver is a tracer by naming convention."""
    if isinstance(node, ast.Name):
        return "tracer" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "tracer" in node.attr.lower()
    return False


class SpanPairingRule(ProjectRule):
    """RJ012: spans enter their scope; tracer use fits the interface."""

    code = "RJ012"
    name = "telemetry-span-pairing"
    description = (
        "profiler/contextmanager span scopes must be entered with "
        "'with' (a bare call opens nothing), and tracer probe points "
        "may only touch the base Tracer interface so NULL_TRACER "
        "always tolerates them"
    )

    def check_project(self, ctx: FileContext,
                      project: ProjectContext) -> Iterator[Finding]:
        module = project.module_for(ctx.posix_path)
        if module is None:
            return
        yield from self._check_discarded_scopes(ctx, project, module)
        if ctx.is_src and _TELEMETRY_PART not in ctx.posix_path:
            yield from self._check_tracer_surface(ctx, project, module)

    # -- span pairing --------------------------------------------------

    def _check_discarded_scopes(self, ctx: FileContext,
                                project: ProjectContext,
                                module: ModuleInfo) -> Iterator[Finding]:
        for fn in self._all_functions(module):
            body = fn.node.body if fn.name != MODULE_BODY else [
                stmt for stmt in module.tree.body
                if not isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef,
                                         ast.ClassDef))
            ]
            for stmt in body:
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Expr) \
                            or not isinstance(node.value, ast.Call):
                        continue
                    call = node.value
                    callee = project.resolve_call(module.name, call,
                                                  cls=fn.cls)
                    if callee is not None and callee.is_contextmanager:
                        yield self.finding(
                            ctx, call,
                            f"span scope {callee.display}() is created "
                            "and discarded; a context manager called "
                            "as a bare statement never enters — wrap "
                            "it in 'with'",
                        )
                    elif callee is None \
                            and isinstance(call.func, ast.Attribute) \
                            and call.func.attr in SPAN_SCOPE_METHODS:
                        yield self.finding(
                            ctx, call,
                            f".{call.func.attr}() span scope is "
                            "created and discarded; the span only "
                            "opens and closes inside 'with'",
                        )

    @staticmethod
    def _all_functions(module: ModuleInfo):
        functions = list(module.functions.values())
        for klass in module.classes.values():
            functions.extend(klass.methods.values())
        return functions

    # -- NULL_TRACER tolerance -----------------------------------------

    def _check_tracer_surface(self, ctx: FileContext,
                              project: ProjectContext,
                              module: ModuleInfo) -> Iterator[Finding]:
        interface, ring_only = _tracer_surfaces(project)
        if not ring_only:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in ring_only:
                continue
            if _looks_like_tracer(node.value):
                yield self.finding(
                    ctx, node,
                    f"'.{node.attr}' is a RingTracer-only member; the "
                    "default tracer is NULL_TRACER, which lacks it — "
                    "keep probe points on the base Tracer interface "
                    f"({', '.join(sorted(interface))}) or isinstance-"
                    "guard the concrete tracer",
                )
