"""RJ003: bit-exactness of the FPGA datapath models.

The cross-correlator, energy differentiator, and trigger FSM mirror
fixed-point hardware: sign-bit slicing, 3-bit coefficients, integer
accumulators, Q8.8 thresholds.  Floating-point arithmetic creeping
into these modules silently breaks the "matches the FPGA bit for bit"
property the detection-latency results rest on, so this rule flags:

* true division (``/``) — the hardware has no divider;
* float literals used in arithmetic or comparisons;
* calls to the ``float()`` builtin.

Host-side helpers that legitimately run in floating point (offline
template quantization, dB threshold validation) are marked with a
``# repro-lint: disable=RJ003`` directive on their ``def`` line, which
scopes the suppression to the whole function.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Finding, Rule

#: Modules whose datapaths must stay integer/sign-bit exact.
BIT_EXACT_MODULES: tuple[str, ...] = (
    "hw/cross_correlator.py",
    "hw/energy_differentiator.py",
    "hw/trigger.py",
)

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
              ast.Mod, ast.Pow)


def _is_float_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


class BitExactRule(Rule):
    """RJ003: no float arithmetic in designated bit-exact modules."""

    code = "RJ003"
    name = "float-in-bit-exact-module"
    description = (
        "designated bit-exact modules (FPGA datapath models) must not use "
        "true division, float literals in arithmetic/comparisons, or float()"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.path_endswith(*BIT_EXACT_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp):
                if isinstance(node.op, ast.Div):
                    yield self.finding(
                        ctx, node,
                        "true division in a bit-exact module; the FPGA "
                        "datapath has no divider (use shifts or //)",
                    )
                elif (isinstance(node.op, _ARITH_OPS)
                        and (_is_float_literal(node.left)
                             or _is_float_literal(node.right))):
                    yield self.finding(
                        ctx, node,
                        "float literal in arithmetic inside a bit-exact "
                        "module; the datapath is integer/sign-bit exact",
                    )
            elif isinstance(node, ast.Compare):
                if any(_is_float_literal(comp)
                       for comp in [node.left, *node.comparators]):
                    yield self.finding(
                        ctx, node,
                        "comparison against a float literal inside a "
                        "bit-exact module; thresholds are integer registers",
                    )
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "float"):
                yield self.finding(
                    ctx, node,
                    "float() conversion inside a bit-exact module; keep "
                    "the datapath integer (host-side helpers may suppress "
                    "with '# repro-lint: disable=RJ003' on the def line)",
                )
