"""RJ009: sliding-window DSP primitives live only in repro.kernels.

:mod:`repro.kernels` is the repo's single hot-path choke point: it owns
the fused sign-plane correlator, the batched moving-sum engine, the
backend dispatch (numpy reference vs optional JIT), and the
bit-exactness guarantees that make every backend interchangeable.  A
stray ``np.correlate`` / ``np.convolve`` / ``sliding_window_view``
elsewhere under ``src/`` re-grows the per-chunk Python overhead the
kernel package exists to eliminate, and silently escapes the
backend-parity test net.

Code that needs a convolution should call
:func:`repro.kernels.ops.convolve`; correlation-style detection goes
through :func:`repro.kernels.xcorr_metric` and friends.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Finding, Rule

#: Path fragment allowed to use the raw primitives: the kernel
#: package itself.
ALLOWED_PATH_PARTS: tuple[str, ...] = ("/kernels/",)

#: Sliding-window primitives whose call sites must route through
#: :mod:`repro.kernels`.
PRIMITIVE_NAMES: frozenset[str] = frozenset({
    "correlate", "convolve", "sliding_window_view",
})


def _collect_imports(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names under which the DSP primitives are reachable.

    Returns ``(module_aliases, direct_names)``: local names bound to
    ``numpy`` or its submodules, and local names of from-imported
    primitives.
    """
    module_aliases: set[str] = set()
    direct_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" \
                        or alias.name.startswith("numpy."):
                    module_aliases.add(
                        alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "numpy" or module.startswith("numpy."):
                for alias in node.names:
                    if alias.name in PRIMITIVE_NAMES:
                        direct_names.add(alias.asname or alias.name)
                    else:
                        # e.g. `from numpy.lib import stride_tricks`
                        module_aliases.add(alias.asname or alias.name)
    return module_aliases, direct_names


class DspPrimitiveRule(Rule):
    """RJ009: raw sliding-window primitives only inside repro.kernels."""

    code = "RJ009"
    name = "raw-dsp-primitive"
    description = (
        "np.correlate / np.convolve / sliding_window_view may only be "
        "called under repro.kernels; route convolutions through "
        "repro.kernels.ops and detection math through the fused "
        "kernels so every call site inherits the backend dispatch "
        "and the bit-exactness test net"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_src:
            return
        if any(part in ctx.posix_path for part in ALLOWED_PATH_PARTS):
            return
        module_aliases, direct_names = _collect_imports(ctx.tree)
        if not module_aliases and not direct_names:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            primitive: str | None = None
            if isinstance(func, ast.Name) and func.id in direct_names:
                primitive = func.id
            elif isinstance(func, ast.Attribute) \
                    and func.attr in PRIMITIVE_NAMES:
                owner = func.value
                # np.correlate(...), stride_tricks.sliding_window_view(...)
                if isinstance(owner, ast.Name) and owner.id in module_aliases:
                    primitive = f"{owner.id}.{func.attr}"
                # np.lib.stride_tricks.sliding_window_view(...)
                elif isinstance(owner, ast.Attribute):
                    root = owner
                    while isinstance(root, ast.Attribute):
                        root = root.value
                    if isinstance(root, ast.Name) \
                            and root.id in module_aliases:
                        primitive = f"...{func.attr}"
            if primitive is not None:
                yield self.finding(
                    ctx, node,
                    f"raw DSP primitive {primitive}() outside "
                    "repro.kernels; use repro.kernels.ops.convolve or "
                    "the fused kernel API so the call inherits the "
                    "backend dispatch and parity tests",
                )
