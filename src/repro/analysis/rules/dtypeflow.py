"""RJ010: dtype propagation through the bit-exact packages.

RJ003 catches a float *literal* inside the three designated datapath
modules, but the property the paper's detection results rest on is
wider: everything under ``hw/``, ``dsp/``, and ``kernels/`` models
fixed-point hardware, and a float that reaches integer detection state
*through a variable or a call boundary* is invisible to per-file
pattern matching.  This rule runs the abstract dtype interpreter
(:mod:`repro.analysis.dtypes`) over every function in those packages,
using the :class:`~repro.analysis.project.ProjectContext` summaries to
see one level through intra-project calls, and flags:

* a local established as integer being silently rebound or augmented
  to a float/complex value (``acc = 0`` ... ``acc += scale(x)`` where
  ``scale`` returns float);
* the same for ``self.<attr>`` state established integer in
  ``__init__``;
* a float-valued expression returned from a function annotated
  ``-> int`` (or a numpy integer dtype);
* a float-valued argument passed to a parameter annotated integer on
  a resolved project callee.

Explicit casts (``float(x)``, ``np.float64(x)``, ``x.astype(...)``)
are exempt at the assignment that performs them: the rule hunts
*silent* widening, and a spelled-out cast is a visible decision (that
RJ003 still polices inside the strict modules).  Everything the
interpreter cannot prove stays silent — only certainties fire.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.dtypes import COMPLEX, FLOAT, INT, DtypeInterpreter
from repro.analysis.engine import FileContext, Finding, ProjectRule
from repro.analysis.project import MODULE_BODY, FunctionInfo, ProjectContext

#: Path fragments naming the bit-exact packages.
BIT_EXACT_PATH_PARTS: tuple[str, ...] = ("/hw/", "/dsp/", "/kernels/")


class _CheckingInterpreter(DtypeInterpreter):
    """The dtype interpreter with RJ010's hooks wired to findings."""

    def __init__(self, rule: "DtypeFlowRule", ctx: FileContext,
                 fn: FunctionInfo, project: ProjectContext,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self._rule = rule
        self._ctx = ctx
        self._fn = fn
        self._project = project
        self.findings: list[Finding] = []

    def on_name_widened(self, name: str, old: str, new: str,
                        node: ast.stmt) -> None:
        self.findings.append(self._rule.finding(
            self._ctx, node,
            f"integer variable '{name}' in {self._fn.display}() is "
            f"silently widened to {new}; the bit-exact datapath must "
            "keep integer state integer (cast explicitly if this is "
            "host-side math)",
        ))

    def on_attr_widened(self, attr: str, old: str, new: str,
                        node: ast.stmt) -> None:
        self.findings.append(self._rule.finding(
            self._ctx, node,
            f"integer state 'self.{attr}' (established in __init__) is "
            f"silently widened to {new} in {self._fn.display}(); "
            "detection state crossing chunks must stay integer",
        ))

    def on_return(self, dtype: str, node: ast.Return) -> None:
        if self._fn.return_annotation_dtype == INT \
                and dtype in (FLOAT, COMPLEX):
            self.findings.append(self._rule.finding(
                self._ctx, node,
                f"{self._fn.display}() is annotated to return int but "
                f"this return is certainly {dtype}",
            ))

    def on_call(self, node: ast.Call) -> None:
        callee = self._project.resolve_call(self._fn.module, node,
                                            cls=self._fn.cls)
        if callee is None:
            return
        params = callee.params
        if callee.cls is not None and params and params[0] == "self":
            params = params[1:]
        for param, arg in zip(params, node.args):
            if callee.param_dtypes.get(param) != INT:
                continue
            if self.infer(arg) in (FLOAT, COMPLEX):
                self.findings.append(self._rule.finding(
                    self._ctx, node,
                    f"float operand flows into integer parameter "
                    f"'{param}' of {callee.display}(); the callee's "
                    "contract is integer (quantize or round at the "
                    "boundary)",
                ))
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            if callee.param_dtypes.get(keyword.arg) != INT:
                continue
            if self.infer(keyword.value) in (FLOAT, COMPLEX):
                self.findings.append(self._rule.finding(
                    self._ctx, node,
                    f"float operand flows into integer parameter "
                    f"'{keyword.arg}' of {callee.display}(); the "
                    "callee's contract is integer (quantize or round "
                    "at the boundary)",
                ))


class DtypeFlowRule(ProjectRule):
    """RJ010: no silent int->float widening in hw/, dsp/, kernels/."""

    code = "RJ010"
    name = "dtype-widening-in-bit-exact-package"
    description = (
        "integer detection state in hw/, dsp/, and kernels/ must not be "
        "silently widened to float — across assignments, augmented "
        "arithmetic, returns, and one level of intra-project calls "
        "(project dtype summaries)"
    )

    def check_project(self, ctx: FileContext,
                      project: ProjectContext) -> Iterator[Finding]:
        if not ctx.is_src:
            return
        if not any(part in ctx.posix_path
                   for part in BIT_EXACT_PATH_PARTS):
            return
        module = project.module_for(ctx.posix_path)
        if module is None:
            return
        functions = list(module.functions.values())
        for klass in module.classes.values():
            functions.extend(klass.methods.values())
        for fn in functions:
            yield from self._check_function(ctx, project, module.name, fn)

    def _check_function(self, ctx: FileContext, project: ProjectContext,
                        module_name: str,
                        fn: FunctionInfo) -> Iterator[Finding]:
        self_attrs: dict[str, str] = {}
        if fn.cls is not None and fn.name != "__init__":
            klass = project.modules[module_name].classes.get(fn.cls)
            if klass is not None:
                self_attrs = dict(klass.attr_dtypes)
        interp = _CheckingInterpreter(
            self, ctx, fn, project,
            resolver=project.dtype_resolver(module_name, cls=fn.cls),
            params=dict(fn.param_dtypes),
            self_attrs=self_attrs,
        )
        if fn.name == MODULE_BODY:
            body = [stmt for stmt in fn.node.body
                    if not isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef,
                                             ast.ClassDef))]
        else:
            body = fn.node.body
        interp.run(body)
        yield from interp.findings
