"""RJ014: retry loops must carry a bound.

The fault-tolerant job layer (:mod:`repro.runtime.jobs`) retries
crashed shards under a ``max_attempts`` budget with a capped seeded
backoff — a failure costs bounded time and then surfaces as a
quarantine or a typed error.  An unbounded retry loop inverts that: a
poison input or a dead device turns into a silent spin that never
returns and never reports.  This rule flags ``while True`` loops in
the resilience-critical packages (``runtime``, ``faults``, ``hw``)
that swallow an exception and go around again without any visible
attempt bound, backoff cap, or deadline in the loop body.

The check is a heuristic on names: a loop is considered bounded when
some comparison inside it mentions an attempt counter, retry budget,
cap, or deadline (``attempt``, ``retries``, ``tries``, ``budget``,
``cap``, ``deadline``, ``remaining``).  Loops without a ``try`` that
re-iterates are never flagged — an infinite *generator* (``while
True: yield ...``) is a legitimate shape.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Finding, Rule

#: Packages where an unbounded retry is a resilience bug, not a style
#: choice: the sweep runtime, the fault injectors, and the hardware
#: control plane.
WATCHED_PATH_PARTS: tuple[str, ...] = ("/runtime/", "/faults/", "/hw/")

#: Substrings that mark a comparison as a retry bound.
BOUND_NAME_HINTS: tuple[str, ...] = (
    "attempt", "retr", "tries", "budget", "cap", "deadline", "remaining",
)


def _is_constant_true(test: ast.expr) -> bool:
    """``while True`` / ``while 1`` — a loop only a ``break`` can end."""
    return isinstance(test, ast.Constant) and bool(test.value)


def _iter_loop_body(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a loop body without descending into nested def/class.

    A retry bound inside a nested function does not bound the outer
    loop, and a ``try`` inside a nested function is not the loop's
    exception handling.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _handler_reiterates(handler: ast.ExceptHandler) -> bool:
    """True when the except handler lets the loop go around again.

    A handler whose last statement raises, returns, or breaks exits
    the retry cycle; anything else (including an explicit ``continue``
    or a bare fall-through) re-enters the loop.
    """
    if not handler.body:
        return True
    last = handler.body[-1]
    return not isinstance(last, (ast.Raise, ast.Return, ast.Break))


def _names_in(node: ast.AST) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _has_bound(loop: ast.While) -> bool:
    """Any comparison in the loop mentioning an attempt/budget name."""
    for node in _iter_loop_body(loop.body):
        if not isinstance(node, ast.Compare):
            continue
        for name in _names_in(node):
            lowered = name.lower()
            if any(hint in lowered for hint in BOUND_NAME_HINTS):
                return True
    return False


class UnboundedRetryRule(Rule):
    """RJ014: no bound-less swallow-and-retry loops."""

    code = "RJ014"
    name = "unbounded-retry"
    description = (
        "a `while True` loop in runtime/faults/hw that catches an "
        "exception and retries must carry a visible attempt bound, "
        "backoff cap, or deadline; unbounded retries turn poison "
        "inputs into silent spins (see repro.runtime.jobs for the "
        "budgeted pattern)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_src:
            return
        if not any(part in ctx.posix_path for part in WATCHED_PATH_PARTS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While) \
                    or not _is_constant_true(node.test):
                continue
            retrying = [
                handler
                for sub in _iter_loop_body(node.body)
                if isinstance(sub, ast.Try)
                for handler in sub.handlers
                if _handler_reiterates(handler)
            ]
            if not retrying:
                continue
            if _has_bound(node):
                continue
            yield self.finding(
                ctx, node,
                "unbounded retry: this `while True` loop swallows an "
                "exception and goes around again with no attempt "
                "bound, backoff cap, or deadline in sight; budget the "
                "retries (max attempts + capped backoff) the way "
                "repro.runtime.jobs does",
            )
