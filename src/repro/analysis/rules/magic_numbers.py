"""RJ004: timing/rate magic numbers.

The framework mixes three clock domains (100 MHz FPGA clock, 25 MSPS
baseband, per-standard PHY rates) and the conversions are exactly the
kind of constant that drifts when spelled inline: ``25e6`` in one file
and ``25_000_000`` in another are the same jammer today and two
different jammers after a retune.  Every such constant has one home —
:mod:`repro.units` for the core clocks, ``phy/<std>/params.py`` for
per-standard rates — and this rule flags the literal anywhere else.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Finding, Rule

# This table must spell the values literally: the analyzer is pure
# stdlib and cannot import repro.units (numpy) to read the real
# constants.  It is the one other place they may appear.
# repro-lint: disable-file=RJ004

#: Files allowed to define timing/rate constants.
ALLOWED_SUFFIXES: tuple[str, ...] = ("repro/units.py",)

#: Integer-valued magic constants -> the name to use instead.
MAGIC_INTS: dict[int, str] = {
    25_000_000: "repro.units.BASEBAND_RATE",
    100_000_000: "repro.units.FPGA_CLOCK_HZ",
    20_000_000: "repro.phy.wifi.params.WIFI_SAMPLE_RATE",
    11_400_000: "repro.phy.wimax.params.WIMAX_SAMPLE_RATE",
    4_000_000: "repro.phy.zigbee.params.ZIGBEE_SAMPLE_RATE",
    2_000_000: "repro.phy.zigbee.params.CHIP_RATE",
}

#: Float-valued magic constants (periods) -> replacement name.
MAGIC_FLOATS: dict[float, str] = {
    40e-9: "repro.units.SAMPLE_PERIOD",
    10e-9: "repro.units.CLOCK_PERIOD",
}

_REL_TOLERANCE = 1e-9


def _is_params_module(ctx: FileContext) -> bool:
    parts = ctx.posix_path.split("/")
    return len(parts) >= 2 and parts[-1] == "params.py" and "phy" in parts


def _match(value: int | float) -> str | None:
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return MAGIC_INTS.get(value)
    if isinstance(value, float):
        for magic, name in MAGIC_FLOATS.items():
            if abs(value - magic) <= _REL_TOLERANCE * magic:
                return name
        if value.is_integer():
            return MAGIC_INTS.get(int(value))
    return None


class MagicNumberRule(Rule):
    """RJ004: clock/rate/period literals outside units.py / params.py."""

    code = "RJ004"
    name = "timing-magic-number"
    description = (
        "timing/rate magic numbers (25e6, 100e6, 40e-9, PHY sample rates) "
        "belong in repro.units or phy/*/params.py, not inline"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.path_endswith(*ALLOWED_SUFFIXES) or _is_params_module(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Constant):
                continue
            if not isinstance(node.value, (int, float)):
                continue
            replacement = _match(node.value)
            if replacement is not None:
                yield self.finding(
                    ctx, node,
                    f"timing magic number {node.value!r}; use {replacement}",
                )
