"""RJ011: RNG/determinism discipline on the sweep-reachable graph.

The byte-identical serial/parallel guarantee of
:mod:`repro.runtime.sweep` and the reproducibility of every figure
rest on one discipline: randomness enters a trial **only** through the
per-trial ``numpy.random.Generator`` derived from an explicit seed.
An unseeded ``default_rng()``, a legacy ``np.random.<fn>`` call (the
process-global generator), or a stdlib ``random.<fn>`` call anywhere
on the call graph reachable from a sweep/trial/experiment entry point
silently re-ties results to scheduling order and import history.

Per-file analysis cannot see that a helper two modules away is called
from a trial; this rule walks the project call graph from the entry
points (every function under ``experiments/``, ``runtime/`` and
``defense/`` — detector training and policy-vs-detector tournaments
carry the same byte-identity guarantee as figure sweeps — plus any
function whose name mentions sweep/trial/experiment/tournament) and
flags violations in every reachable function.  Module-level RNG calls in
``src/`` are flagged unconditionally — import-time randomness is
nondeterministic for every consumer.

A ``default_rng(<constants only>)`` in reachable code is reported at
WARNING severity: it is deterministic, but the seed does not derive
from an explicit seed argument, so independent trials silently share
a stream.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Finding, ProjectRule
from repro.analysis.findings import Severity
from repro.analysis.project import (
    MODULE_BODY,
    FunctionInfo,
    ModuleInfo,
    ProjectContext,
)

#: Path fragments whose functions are determinism entry points.
ENTRY_PATH_PARTS: tuple[str, ...] = ("/experiments/", "/runtime/",
                                     "/defense/")

#: Name fragments marking a function as an entry point anywhere.
ENTRY_NAME_PARTS: tuple[str, ...] = ("sweep", "trial", "experiment",
                                     "tournament")

#: Legacy ``numpy.random`` module functions (process-global state).
NUMPY_LEGACY: frozenset[str] = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_integers",
    "random_sample", "ranf", "sample", "bytes", "normal", "uniform",
    "standard_normal", "choice", "shuffle", "permutation", "poisson",
    "exponential", "binomial", "beta", "gamma", "get_state", "set_state",
})

#: Stdlib ``random`` module functions (process-global state).
STDLIB_RANDOM: frozenset[str] = frozenset({
    "random", "randint", "randrange", "uniform", "gauss",
    "normalvariate", "lognormvariate", "expovariate", "betavariate",
    "gammavariate", "paretovariate", "weibullvariate",
    "vonmisesvariate", "triangular", "choice", "choices", "sample",
    "shuffle", "seed", "getrandbits", "randbytes",
})


def _canonical_call_name(func: ast.expr,
                         module: ModuleInfo) -> str | None:
    """Canonical dotted name of a call target, imports resolved.

    ``np.random.default_rng`` -> ``numpy.random.default_rng`` under
    ``import numpy as np``; a bare ``default_rng`` ->
    ``numpy.random.default_rng`` under the from-import.  Unresolvable
    targets (locals, attributes of objects) return None.
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    tail = list(reversed(parts))
    if root in module.from_imports:
        mod, attr = module.from_imports[root]
        prefix = f"{mod}.{attr}" if mod else attr
        return ".".join([prefix, *tail])
    if root in module.imports:
        return ".".join([module.imports[root], *tail])
    return None


def _all_constant_args(call: ast.Call) -> bool:
    if not call.args and not call.keywords:
        return False
    for arg in call.args:
        if isinstance(arg, ast.Starred):
            return False
        if not _constant_expr(arg):
            return False
    for keyword in call.keywords:
        if keyword.arg is None or not _constant_expr(keyword.value):
            return False
    return True


def _constant_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, (ast.List, ast.Tuple)):
        return all(_constant_expr(elt) for elt in node.elts)
    if isinstance(node, ast.UnaryOp):
        return _constant_expr(node.operand)
    return False


class DeterminismRule(ProjectRule):
    """RJ011: no ambient RNG reachable from sweep/trial entry points."""

    code = "RJ011"
    name = "ambient-rng-on-sweep-path"
    description = (
        "functions reachable from sweep/trial/experiment entry points "
        "must not use unseeded default_rng(), legacy np.random.*, or "
        "stdlib random.* — randomness enters through the per-trial "
        "Generator derived from an explicit seed"
    )

    def check_project(self, ctx: FileContext,
                      project: ProjectContext) -> Iterator[Finding]:
        if not ctx.is_src:
            return
        module = project.module_for(ctx.posix_path)
        if module is None:
            return
        reachable = self._reachable(project)
        functions = list(module.functions.values())
        for klass in module.classes.values():
            functions.extend(klass.methods.values())
        for fn in functions:
            if fn.name == MODULE_BODY:
                yield from self._check_body(
                    ctx, module,
                    self._module_level_statements(module), fn,
                    module_level=True)
            elif fn.qualname in reachable:
                yield from self._check_body(ctx, module, fn.node.body,
                                            fn, module_level=False)

    # -- reachability --------------------------------------------------

    def _reachable(self, project: ProjectContext) -> set[str]:
        cached = project.cache.get("rj011.reachable")
        if cached is not None:
            return cached  # type: ignore[return-value]
        roots: set[str] = set()
        for qualname, fn in project.functions.items():
            module = project.modules.get(fn.module)
            if module is None or not module.is_src:
                continue
            if fn.name == MODULE_BODY:
                continue
            if any(part in module.posix_path
                   for part in ENTRY_PATH_PARTS):
                roots.add(qualname)
            elif any(part in fn.name.lower()
                     for part in ENTRY_NAME_PARTS):
                roots.add(qualname)
        reachable = project.reachable_from(roots)
        project.cache["rj011.reachable"] = reachable
        return reachable

    @staticmethod
    def _module_level_statements(module: ModuleInfo) -> list[ast.stmt]:
        return [stmt for stmt in module.tree.body
                if not isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef,
                                         ast.ClassDef))]

    # -- checks --------------------------------------------------------

    def _check_body(self, ctx: FileContext, module: ModuleInfo,
                    body: list[ast.stmt], fn: FunctionInfo,
                    module_level: bool) -> Iterator[Finding]:
        where = "at module level" if module_level \
            else f"in {fn.display}() (reachable from sweep/trial/" \
                 "experiment entry points)"
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                canonical = _canonical_call_name(node.func, module)
                if canonical is None:
                    continue
                yield from self._check_call(ctx, node, canonical, where)

    def _check_call(self, ctx: FileContext, call: ast.Call,
                    canonical: str, where: str) -> Iterator[Finding]:
        if canonical == "numpy.random.default_rng":
            if not call.args and not call.keywords:
                yield self.finding(
                    ctx, call,
                    f"unseeded default_rng() {where}; derive the "
                    "generator from an explicit seed argument so "
                    "trials replay byte-identically",
                )
            elif _all_constant_args(call):
                yield self.finding(
                    ctx, call,
                    f"default_rng() with a hard-coded seed {where}; "
                    "derive the seed from an explicit seed argument "
                    "so independent trials do not share a stream",
                    severity=Severity.WARNING,
                )
            return
        prefix, _, leaf = canonical.rpartition(".")
        if prefix == "numpy.random" and leaf in NUMPY_LEGACY:
            yield self.finding(
                ctx, call,
                f"legacy global np.random.{leaf}() {where}; the "
                "process-global generator ties results to import and "
                "scheduling order — pass a seeded Generator instead",
            )
        elif canonical == "random.Random":
            if not call.args and not call.keywords:
                yield self.finding(
                    ctx, call,
                    f"unseeded random.Random() {where}; seed it from "
                    "an explicit seed argument",
                )
        elif prefix == "random" and leaf in STDLIB_RANDOM:
            yield self.finding(
                ctx, call,
                f"stdlib random.{leaf}() {where}; stdlib randomness "
                "is process-global and unseeded — use the per-trial "
                "numpy Generator",
            )
