"""RJ006: host code must not construct a raw register bus.

The hardened control path (verified writes, shadow map, scrub) lives
in :class:`repro.hw.uhd.UhdDriver`; fault campaigns go through
:class:`repro.faults.bus.FaultyRegisterBus`.  Host code that builds a
bare :class:`~repro.hw.registers.UserRegisterBus` and writes registers
directly bypasses both — its writes are neither verified nor visible
to the shadow map, so the robustness guarantees silently stop holding.

Construction is therefore confined to the hardware model itself
(``hw/``, where the device assembles its own bus) and the fault layer
(``faults/``, which wraps it).  Everything else should take a device
or driver, or pass a bus *in* rather than make one.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Finding, Rule

#: Path fragments allowed to construct the raw bus.
ALLOWED_PATH_PARTS: tuple[str, ...] = ("/hw/", "/faults/")

_BUS_NAME = "UserRegisterBus"


def _constructs_bus(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == _BUS_NAME
    if isinstance(func, ast.Attribute):
        return func.attr == _BUS_NAME
    return False


class BusConstructionRule(Rule):
    """RJ006: raw ``UserRegisterBus()`` only inside hw/ and faults/."""

    code = "RJ006"
    name = "raw-bus-construction"
    description = (
        "UserRegisterBus may only be constructed under hw/ or faults/; "
        "host code must go through the hardened UhdDriver (or accept a "
        "bus/device from its caller)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_src:
            return
        if any(part in ctx.posix_path for part in ALLOWED_PATH_PARTS):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _constructs_bus(node):
                yield self.finding(
                    ctx, node,
                    "direct UserRegisterBus construction outside hw/ and "
                    "faults/; route register access through UhdDriver so "
                    "writes are verified and shadow-mapped",
                )
