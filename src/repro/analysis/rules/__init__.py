"""Rule registry.

Rules register themselves by being instantiated here; the engine and
CLI only ever see :data:`ALL_RULES`.  Adding a rule means adding a
module under this package and one line below — the contract a future
PR needs is deliberately that small.
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.backend_parity import BackendParityRule
from repro.analysis.rules.bitexact import BitExactRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.dsp_primitives import DspPrimitiveRule
from repro.analysis.rules.dtypeflow import DtypeFlowRule
from repro.analysis.rules.faults import BusConstructionRule
from repro.analysis.rules.hygiene import HygieneRule
from repro.analysis.rules.magic_numbers import MagicNumberRule
from repro.analysis.rules.pools import PoolConstructionRule
from repro.analysis.rules.registers import RegisterAddressRule, RegisterWidthRule
from repro.analysis.rules.retries import UnboundedRetryRule
from repro.analysis.rules.spans import SpanPairingRule
from repro.analysis.rules.walltime import WallClockRule

ALL_RULES: tuple[Rule, ...] = (
    RegisterAddressRule(),
    RegisterWidthRule(),
    BitExactRule(),
    MagicNumberRule(),
    HygieneRule(),
    BusConstructionRule(),
    WallClockRule(),
    PoolConstructionRule(),
    DspPrimitiveRule(),
    DtypeFlowRule(),
    DeterminismRule(),
    SpanPairingRule(),
    BackendParityRule(),
    UnboundedRetryRule(),
)

_BY_CODE = {rule.code: rule for rule in ALL_RULES}


def get_rule(code: str) -> Rule:
    """Look a rule up by its ``RJ00x`` code."""
    return _BY_CODE[code.upper()]


__all__ = ["ALL_RULES", "get_rule"]
