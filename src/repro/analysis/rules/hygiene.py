"""RJ005: generic hygiene the runtime cannot afford.

Three checks, all cheap and all with a history of biting streaming
code: mutable default arguments (shared state across calls of a block
that is supposed to be stateless), bare ``except`` (swallows
``KeyboardInterrupt`` in the console event loop), and a missing
``from __future__ import annotations`` in ``src/`` modules (the
codebase uses PEP 604 unions in signatures, which need it on the
oldest supported interpreter).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Finding, Rule

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set)
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS)


def _has_future_annotations(tree: ast.Module) -> bool:
    for stmt in tree.body:
        if isinstance(stmt, ast.ImportFrom) and stmt.module == "__future__":
            if any(alias.name == "annotations" for alias in stmt.names):
                return True
    return False


def _is_docstring_only(tree: ast.Module) -> bool:
    body = tree.body
    if not body:
        return True
    return (len(body) == 1
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str))


class HygieneRule(Rule):
    """RJ005: mutable defaults, bare except, missing future import."""

    code = "RJ005"
    name = "runtime-hygiene"
    description = (
        "no mutable default arguments, no bare except, and src/ modules "
        "must start with 'from __future__ import annotations'"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if (ctx.is_src and not _is_docstring_only(ctx.tree)
                and not _has_future_annotations(ctx.tree)):
            yield Finding(
                rule=self.code,
                message="missing 'from __future__ import annotations' "
                        "(required in src/ modules)",
                path=ctx.path, line=1, col=0,
            )
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = [*node.args.defaults, *node.args.kw_defaults]
                for default in defaults:
                    if default is not None and _is_mutable_default(default):
                        yield self.finding(
                            ctx, default,
                            f"mutable default argument in {node.name}(); "
                            "shared across calls — default to None instead",
                        )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                    "catch a concrete exception type",
                )
