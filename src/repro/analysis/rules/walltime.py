"""RJ007: no host wall-clock reads inside the hardware/signal model.

The hardware model (``hw/``), the DSP blocks (``dsp/``), and the PHY
layer (``phy/``) live entirely on the deterministic sample clock:
their timeline is sample indices, reproducible run over run.  A call
to ``time.perf_counter()`` or ``datetime.now()`` inside one of these
packages smuggles host wall time into the model — timestamps stop
being reproducible, latency numbers start depending on the host's
load, and the Fig. 5 analysis silently measures the simulator instead
of the simulated hardware.

Host timing belongs in :mod:`repro.telemetry` (the profiler and
timebase, where the wall clock is injectable) and in the benchmark
suite.  Model code that needs "now" must use the core's sample clock.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Finding, Rule

#: Path fragments naming the sample-clock-only packages.
WATCHED_PATH_PARTS: tuple[str, ...] = ("/hw/", "/dsp/", "/phy/")

#: Wall-clock reading functions of the ``time`` module.
TIME_FUNCTIONS: frozenset[str] = frozenset({
    "time", "time_ns",
    "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns",
    "process_time", "process_time_ns",
})

#: Wall-clock reading constructors on ``datetime.datetime`` / ``date``.
DATETIME_METHODS: frozenset[str] = frozenset({"now", "utcnow", "today"})


class WallClockRule(Rule):
    """RJ007: hw/, dsp/, and phy/ must stay on the sample clock."""

    code = "RJ007"
    name = "wall-clock-in-model"
    description = (
        "hardware/DSP/PHY model code must not read the host wall clock "
        "(time.time, time.perf_counter, datetime.now, ...); use the "
        "sample clock, or move host timing into repro.telemetry"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_src:
            return
        if not any(part in ctx.posix_path for part in WATCHED_PATH_PARTS):
            return
        time_aliases, datetime_aliases, direct_calls = _collect_imports(
            ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in direct_calls:
                yield self.finding(
                    ctx, node,
                    f"wall-clock call {direct_calls[func.id]}() in model "
                    "code; the hardware model is indexed by the sample "
                    "clock, host timing belongs in repro.telemetry",
                )
            elif isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name):
                owner = func.value.id
                if owner in time_aliases and func.attr in TIME_FUNCTIONS:
                    yield self.finding(
                        ctx, node,
                        f"wall-clock call time.{func.attr}() in model "
                        "code; the hardware model is indexed by the "
                        "sample clock, host timing belongs in "
                        "repro.telemetry",
                    )
                elif owner in datetime_aliases \
                        and func.attr in DATETIME_METHODS:
                    yield self.finding(
                        ctx, node,
                        f"wall-clock call {owner}.{func.attr}() in model "
                        "code; the hardware model is indexed by the "
                        "sample clock, host timing belongs in "
                        "repro.telemetry",
                    )


def _collect_imports(
    tree: ast.Module,
) -> tuple[set[str], set[str], dict[str, str]]:
    """Names under which wall clocks are reachable in this module.

    Returns ``(time_aliases, datetime_aliases, direct_calls)`` where
    ``time_aliases`` are local names bound to the ``time`` module,
    ``datetime_aliases`` are names bound to the ``datetime`` module or
    its ``datetime``/``date`` classes, and ``direct_calls`` maps local
    names of from-imported ``time`` functions to their real names.
    """
    time_aliases: set[str] = set()
    datetime_aliases: set[str] = set()
    direct_calls: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                if alias.name == "time" or alias.name.startswith("time."):
                    time_aliases.add(local)
                elif alias.name == "datetime" \
                        or alias.name.startswith("datetime."):
                    datetime_aliases.add(local)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in TIME_FUNCTIONS:
                        direct_calls[alias.asname or alias.name] = \
                            f"time.{alias.name}"
            elif node.module == "datetime":
                for alias in node.names:
                    if alias.name in ("datetime", "date"):
                        datetime_aliases.add(alias.asname or alias.name)
    return time_aliases, datetime_aliases, direct_calls
