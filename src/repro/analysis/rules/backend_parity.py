"""RJ013: kernel backend parity.

The kernel layer's contract (:mod:`repro.kernels.dispatch`) is that
alternative backends are *accelerations of one semantic*: every op the
numpy reference backend implements must exist on every other
registered backend with the same signature, or the parity property
tests cannot even dispatch to it and ``REPRO_KERNEL_BACKEND=numba``
silently falls back mid-pipeline.  A per-file linter cannot state
this: the reference and the JIT backend live in different modules.

Using the project index, the rule finds every subclass of
``KernelBackend``, takes the one whose ``name`` class attribute is
``"numpy"`` as the reference, and checks each sibling backend defined
in the file under analysis:

* every public method of the reference must exist on the sibling
  (missing op -> ERROR at the sibling class);
* parameter name lists must match exactly, ``self`` excluded
  (signature drift -> ERROR at the sibling method);
* a public method on a sibling that the reference lacks is reported
  at WARNING severity — it is unreachable through the dispatch
  contract and likely dead or divergent;
* the dispatch contract's **required ops** (:data:`REQUIRED_OPS` —
  the primitives the hw facades call unconditionally, including the
  stacked multi-standard correlator pass) must exist on the reference
  backend itself (missing required op -> ERROR at the reference
  class).  This leg runs only against the real
  ``repro.kernels.dispatch`` base, not fixture stand-ins, so small
  test projects can model the rule without carrying the full op set.

An op that intentionally has no counterpart carries a scoped
``# repro-lint: disable=RJ013`` on the backend class or method line.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.engine import FileContext, Finding, ProjectRule
from repro.analysis.findings import Severity
from repro.analysis.project import ClassInfo, ProjectContext

#: The dispatch registry's reference backend ``name`` attribute.
REFERENCE_BACKEND_NAME = "numpy"

#: Ops every registered backend must implement: the primitives the hw
#: facades dispatch to unconditionally.  Enforced on the reference
#: backend (the sibling checks then propagate them everywhere).
REQUIRED_OPS = ("moving_sums", "xcorr_metric", "xcorr_metric_stacked")

_DISPATCH_BASE = "repro.kernels.dispatch:KernelBackend"


def _backend_classes(project: ProjectContext) -> list[ClassInfo]:
    cached = project.cache.get("rj013.backends")
    if cached is None:
        if _DISPATCH_BASE in project.classes:
            base_qualname = _DISPATCH_BASE
        else:
            # Fixture projects: accept any class literally named
            # KernelBackend as the dispatch base.
            base_qualname = next(
                (qualname for qualname, klass in project.classes.items()
                 if klass.name == "KernelBackend"), None)
        cached = project.subclasses_of(base_qualname) \
            if base_qualname is not None else []
        project.cache["rj013.backends"] = cached
    return cached  # type: ignore[return-value]


def _public_ops(klass: ClassInfo) -> dict[str, list[str]]:
    """Public method name -> parameter names (``self`` excluded)."""
    ops = {}
    for name, method in klass.methods.items():
        if name.startswith("_"):
            continue
        params = method.params
        if params and params[0] == "self":
            params = params[1:]
        ops[name] = list(params)
    return ops


class BackendParityRule(ProjectRule):
    """RJ013: every numpy-backend op has a matching sibling op."""

    code = "RJ013"
    name = "kernel-backend-parity"
    description = (
        "every op on the numpy reference KernelBackend must exist on "
        "every other backend with a matching signature (or carry an "
        "explicit RJ013 exemption); extra backend-only ops are "
        "unreachable through dispatch and reported as warnings"
    )

    def check_project(self, ctx: FileContext,
                      project: ProjectContext) -> Iterator[Finding]:
        if not ctx.is_src:
            return
        backends = _backend_classes(project)
        if not backends:
            return
        reference = next(
            (klass for klass in backends
             if klass.class_attrs.get("name") == REFERENCE_BACKEND_NAME),
            None)
        if reference is None:
            return
        reference_ops = _public_ops(reference)
        module = project.module_for(ctx.posix_path)
        if module is None:
            return
        if _DISPATCH_BASE in project.classes \
                and any(klass.qualname == reference.qualname
                        for klass in module.classes.values()):
            for op in REQUIRED_OPS:
                if op not in reference_ops:
                    yield self.finding(
                        ctx, reference.node,
                        f"reference backend '{reference.name}' is missing "
                        f"required dispatch op {op}(); the hw facades "
                        "call it unconditionally on every backend",
                    )
        for klass in module.classes.values():
            if klass.qualname == reference.qualname:
                continue
            if all(klass.qualname != backend.qualname
                   for backend in backends):
                continue
            yield from self._check_backend(ctx, klass, reference,
                                           reference_ops)

    def _check_backend(self, ctx: FileContext, klass: ClassInfo,
                       reference: ClassInfo,
                       reference_ops: dict[str, list[str]]
                       ) -> Iterator[Finding]:
        ops = _public_ops(klass)
        for op, params in sorted(reference_ops.items()):
            if op not in ops:
                yield self.finding(
                    ctx, klass.node,
                    f"backend '{klass.name}' has no counterpart for "
                    f"reference op {reference.name}.{op}(); implement "
                    "it or exempt the op with a scoped "
                    "'# repro-lint: disable=RJ013'",
                )
            elif ops[op] != params:
                yield self.finding(
                    ctx, klass.methods[op].node,
                    f"backend op {klass.name}.{op}({', '.join(ops[op])}) "
                    f"does not match the reference signature "
                    f"{reference.name}.{op}({', '.join(params)}); "
                    "dispatch passes identical arguments to every "
                    "backend",
                )
        for op in sorted(set(ops) - set(reference_ops)):
            yield self.finding(
                ctx, klass.methods[op].node,
                f"backend op {klass.name}.{op}() has no reference "
                f"counterpart on {reference.name}; it is unreachable "
                "through the dispatch contract",
                severity=Severity.WARNING,
            )
