"""RJ008: process pools are built only by the runtime sweep engine.

:mod:`repro.runtime.sweep` is the repo's single pool-policy choke
point: it owns the fork-context selection, the deterministic per-trial
seeding discipline, chunked submission, and the serial ``workers=1``
reference path that parallel runs must match byte-for-byte.  An ad-hoc
``ProcessPoolExecutor`` or ``multiprocessing.Pool`` elsewhere under
``src/`` escapes all of that — its trials draw from whatever generator
happens to be ambient, results arrive in scheduling order, and the
byte-identical serial/parallel guarantee quietly disappears.

Code that needs fan-out should call
:func:`repro.runtime.sweep.sweep` (or build a
:class:`~repro.runtime.sweep.SweepRunner`) instead.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Finding, Rule

#: Path fragment allowed to build pools: the sweep engine itself.
ALLOWED_PATH_PARTS: tuple[str, ...] = ("/runtime/",)

#: Pool-spawning constructors on the ``multiprocessing`` module (and
#: its contexts) and in ``concurrent.futures``.
POOL_CONSTRUCTORS: frozenset[str] = frozenset({
    "ProcessPoolExecutor", "Pool", "Process",
})


def _collect_imports(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names under which pool constructors are reachable.

    Returns ``(module_aliases, direct_names)``: local names bound to
    the ``multiprocessing`` / ``concurrent.futures`` modules, and local
    names of from-imported pool constructors.
    """
    module_aliases: set[str] = set()
    direct_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "multiprocessing" \
                        or alias.name.startswith("multiprocessing.") \
                        or alias.name.startswith("concurrent"):
                    module_aliases.add(
                        alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "multiprocessing" \
                    or module.startswith("multiprocessing.") \
                    or module.startswith("concurrent"):
                for alias in node.names:
                    if alias.name in POOL_CONSTRUCTORS:
                        direct_names.add(alias.asname or alias.name)
                    else:
                        # e.g. `from multiprocessing import pool`
                        module_aliases.add(alias.asname or alias.name)
    return module_aliases, direct_names


class PoolConstructionRule(Rule):
    """RJ008: process pools only inside repro.runtime."""

    code = "RJ008"
    name = "ad-hoc-process-pool"
    description = (
        "ProcessPoolExecutor / multiprocessing pools may only be "
        "constructed under repro.runtime; fan work out through "
        "repro.runtime.sweep so seeding stays deterministic and "
        "parallel runs match the serial reference byte-for-byte"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_src:
            return
        if any(part in ctx.posix_path for part in ALLOWED_PATH_PARTS):
            return
        module_aliases, direct_names = _collect_imports(ctx.tree)
        if not module_aliases and not direct_names:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            constructor: str | None = None
            if isinstance(func, ast.Name) and func.id in direct_names:
                constructor = func.id
            elif isinstance(func, ast.Attribute) \
                    and func.attr in POOL_CONSTRUCTORS:
                owner = func.value
                # multiprocessing.Pool(...), futures.ProcessPoolExecutor(...)
                if isinstance(owner, ast.Name) and owner.id in module_aliases:
                    constructor = f"{owner.id}.{func.attr}"
                # multiprocessing.get_context("fork").Pool(...)
                elif isinstance(owner, ast.Call) \
                        and isinstance(owner.func, ast.Attribute) \
                        and isinstance(owner.func.value, ast.Name) \
                        and owner.func.value.id in module_aliases:
                    constructor = f"...{func.attr}"
            if constructor is not None:
                yield self.finding(
                    ctx, node,
                    f"ad-hoc process pool {constructor}() outside "
                    "repro.runtime; use repro.runtime.sweep so the "
                    "per-trial seeding discipline and the serial "
                    "reference path still hold",
                )
