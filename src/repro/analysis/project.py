"""The whole-program index: phase one of the two-phase verifier.

Per-file AST analysis cannot see a float that leaks into the int64
xcorr path *across a call boundary*, an unseeded RNG reached from a
sweep entry point two modules away, or a numpy kernel op with no numba
counterpart.  This module builds the :class:`ProjectContext` those
rules need: a module/import graph over every analyzed file, a symbol
table of functions and classes, an approximate call graph, and
per-function summaries (parameter/return dtype abstractions, decorator
facts) computed by the abstract interpreter in
:mod:`repro.analysis.dtypes`.

The index is *approximate by construction* — calls through variables,
dynamic dispatch, and anything the resolver cannot pin down simply
produce no edge — and the dataflow rules are written so that every
unresolved edge degrades to silence, never to a false positive.

Summaries are computed in two passes: pass one interprets every
function with calls treated as unknown; pass two re-interprets with a
resolver backed by the pass-one summaries.  That propagates dtypes
through exactly one level of intra-project calls, which is the
contract RJ010 documents.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.dtypes import (
    UNKNOWN,
    DtypeInterpreter,
    dtype_of_annotation,
    merge,
)

#: Qualname separator between module and symbol: ``repro.hw.trigger:f``.
QUALSEP = ":"

#: Pseudo-function name holding a module's top-level statements.
MODULE_BODY = "<module>"

#: Decorator terminal names marking a generator as a context manager.
_CONTEXTMANAGER_DECORATORS = frozenset({
    "contextmanager", "asynccontextmanager",
})


def module_name_for_path(path: str) -> str:
    """Dotted module name for a file path.

    Files under a ``src/`` tree get their real import name
    (``src/repro/hw/trigger.py`` -> ``repro.hw.trigger``) so absolute
    imports resolve across the project.  Files outside ``src/`` (tests,
    examples, benchmarks) get a stable pseudo-name derived from the
    whole path; they still index, but nothing imports them by name.
    """
    posix = str(path).replace("\\", "/")
    parts = [part for part in Path(posix).parts if part not in ("/", "\\")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part) or "<root>"


def _dotted(node: ast.expr) -> str | None:
    """Flatten a Name / nested Attribute chain to ``a.b.c``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """Summary of one function or method."""

    qualname: str
    module: str
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    lineno: int
    params: list[str]
    param_dtypes: dict[str, str]
    return_annotation_dtype: str
    decorators: list[str]
    is_contextmanager: bool
    #: Abstract dtype this function certainly returns (pass-two result).
    returns_dtype: str = UNKNOWN
    #: Resolved project callees (qualnames), pass-two result.
    calls: set[str] = field(default_factory=set)

    @property
    def display(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name


@dataclass
class ClassInfo:
    """Summary of one class: bases, methods, simple class attributes."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    lineno: int
    #: Base expressions as written (``KernelBackend``, ``mod.Base``).
    bases_raw: list[str]
    methods: dict[str, FunctionInfo]
    #: Simple constant class attributes (``name = "numpy"``).
    class_attrs: dict[str, object]
    #: ``self.<attr>`` dtypes established in ``__init__``.
    attr_dtypes: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One analyzed file in the project index."""

    name: str
    path: str
    posix_path: str
    tree: ast.Module
    #: local alias -> imported module (``np`` -> ``numpy``).
    imports: dict[str, str]
    #: local name -> (module, attr) for from-imports.
    from_imports: dict[str, tuple[str, str]]
    functions: dict[str, FunctionInfo]
    classes: dict[str, ClassInfo]

    @property
    def is_src(self) -> bool:
        return "src" in Path(self.posix_path).parts


class ProjectContext:
    """The whole-program view handed to :class:`ProjectRule` checks."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.modules_by_path: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: caller qualname -> resolved callee qualnames.
        self.call_graph: dict[str, set[str]] = {}
        #: module name -> project-internal imported module names.
        self.import_graph: dict[str, set[str]] = {}
        #: Scratch space for rules to memoize per-project work
        #: (e.g. RJ011 caches its reachability closure here).
        self.cache: dict[str, object] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, files: "list[tuple[str, ast.Module]]") -> "ProjectContext":
        """Index ``(path, tree)`` pairs into a project context."""
        project = cls()
        for path, tree in files:
            module = _index_module(path, tree)
            # First path wins on module-name collisions (dedup'd paths
            # make collisions rare; pseudo-names are path-unique).
            if module.name not in project.modules:
                project.modules[module.name] = module
            project.modules_by_path[module.posix_path] = module
        for module in project.modules.values():
            for fn in module.functions.values():
                project.functions[fn.qualname] = fn
            for klass in module.classes.values():
                project.classes[klass.qualname] = klass
                for method in klass.methods.values():
                    project.functions[method.qualname] = method
            project.import_graph[module.name] = {
                target for target in module.imports.values()
                if target in project.modules
            } | {
                mod for mod, _attr in module.from_imports.values()
                if mod in project.modules
            }
        project._summarize()
        return project

    def _summarize(self) -> None:
        # Pass one: calls are opaque.
        for fn in self.functions.values():
            self._interpret(fn, resolver=None)
        for klass in self.classes.values():
            self._class_attr_pass(klass, resolver=None)
        # Pass two: calls resolve through pass-one summaries, and the
        # resolved edges become the call graph.
        for fn in self.functions.values():
            edges: set[str] = set()
            self._interpret(fn, resolver=self._make_resolver(fn, edges))
            self._collect_call_edges(fn, edges)
            fn.calls = edges
            self.call_graph[fn.qualname] = edges
        for klass in self.classes.values():
            self._class_attr_pass(
                klass, resolver=self._make_resolver(None, set(),
                                                    module=klass.module))

    def _interpret(self, fn: FunctionInfo, resolver) -> None:
        module = self.modules.get(fn.module)
        self_attrs: dict[str, str] = {}
        if fn.cls is not None and module is not None:
            klass = module.classes.get(fn.cls)
            if klass is not None:
                self_attrs = dict(klass.attr_dtypes)
        interp = DtypeInterpreter(resolver=resolver,
                                  params=dict(fn.param_dtypes),
                                  self_attrs=self_attrs)
        if fn.name == MODULE_BODY:
            # Module bodies: skip nested defs (indexed separately).
            body = [stmt for stmt in fn.node.body
                    if not isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef,
                                             ast.ClassDef))]
        else:
            body = fn.node.body
        interp.run(body)
        returns = UNKNOWN
        if interp.return_dtypes:
            returns = interp.return_dtypes[0]
            for dtype in interp.return_dtypes[1:]:
                returns = merge(returns, dtype)
        if fn.return_annotation_dtype != UNKNOWN:
            returns = fn.return_annotation_dtype
        fn.returns_dtype = returns

    def _collect_call_edges(self, fn: FunctionInfo,
                            edges: set[str]) -> None:
        # The interpreter only visits expressions it understands; the
        # call graph must cover every call site (comprehensions,
        # decorators, nested closures), so walk the whole body too.
        if fn.name == MODULE_BODY:
            body = [stmt for stmt in fn.node.body
                    if not isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef,
                                             ast.ClassDef))]
        else:
            body = fn.node.body
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    callee = self.resolve_call(fn.module, node,
                                               cls=fn.cls)
                    if callee is not None:
                        edges.add(callee.qualname)

    def _class_attr_pass(self, klass: ClassInfo, resolver) -> None:
        init = klass.methods.get("__init__")
        if init is None:
            return
        interp = DtypeInterpreter(resolver=resolver,
                                  params=dict(init.param_dtypes))
        interp.run(init.node.body)
        klass.attr_dtypes = dict(interp.self_attrs)

    def _make_resolver(self, fn: FunctionInfo | None, edges: set[str],
                       module: str | None = None):
        module_name = module if module is not None else (
            fn.module if fn is not None else None)
        cls_name = fn.cls if fn is not None else None

        def resolver(call: ast.Call) -> str | None:
            callee = self.resolve_call(module_name, call, cls=cls_name)
            if callee is None:
                return None
            edges.add(callee.qualname)
            return callee.returns_dtype if callee.returns_dtype \
                else UNKNOWN

        return resolver

    # -- queries -------------------------------------------------------

    def module_for(self, posix_path: str) -> ModuleInfo | None:
        return self.modules_by_path.get(posix_path)

    def dtype_resolver(self, module_name: str, cls: str | None = None):
        """A :mod:`repro.analysis.dtypes` resolver answering call-site
        dtype queries from this project's function summaries."""
        def resolver(call: ast.Call) -> str | None:
            callee = self.resolve_call(module_name, call, cls=cls)
            return callee.returns_dtype if callee is not None else None
        return resolver

    def resolve_call(self, module_name: str | None, call: ast.Call,
                     cls: str | None = None) -> FunctionInfo | None:
        """Best-effort resolution of a call site to a project function.

        Unresolvable calls (locals, dynamic dispatch, externals) return
        None; rules must treat that as "no information".
        """
        module = self.modules.get(module_name) if module_name else None
        if module is None:
            return None
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(module, func.id)
        if isinstance(func, ast.Attribute):
            owner = func.value
            if isinstance(owner, ast.Name):
                if owner.id == "self" and cls is not None:
                    return self._resolve_method(module, cls, func.attr)
                target = module.imports.get(owner.id)
                if target is None and owner.id in module.from_imports:
                    mod, attr = module.from_imports[owner.id]
                    candidate = f"{mod}.{attr}"
                    if candidate in self.modules:
                        target = candidate
                if target is not None:
                    return self._resolve_in_module(target, func.attr)
                return None
            dotted = _dotted(owner)
            if dotted is not None:
                root = dotted.split(".")[0]
                if root in module.imports:
                    resolved_root = module.imports[root]
                    target = resolved_root + dotted[len(root):]
                    return self._resolve_in_module(target, func.attr)
        return None

    def _resolve_name(self, module: ModuleInfo,
                      name: str) -> FunctionInfo | None:
        fn = module.functions.get(name)
        if fn is not None:
            return fn
        klass = module.classes.get(name)
        if klass is not None:
            return klass.methods.get("__init__")
        imported = module.from_imports.get(name)
        if imported is not None:
            mod, attr = imported
            return self._resolve_in_module(mod, attr)
        return None

    def _resolve_in_module(self, module_name: str,
                           attr: str) -> FunctionInfo | None:
        target = self.modules.get(module_name)
        if target is None:
            # ``from repro import kernels`` + ``kernels.ops.f`` style
            # chains land here with a dotted tail; give up quietly.
            return None
        fn = target.functions.get(attr)
        if fn is not None:
            return fn
        klass = target.classes.get(attr)
        if klass is not None:
            return klass.methods.get("__init__")
        return None

    def _resolve_method(self, module: ModuleInfo, cls: str,
                        attr: str) -> FunctionInfo | None:
        klass = module.classes.get(cls)
        seen = 0
        while klass is not None and seen < 4:
            method = klass.methods.get(attr)
            if method is not None:
                return method
            parent = None
            for base in klass.bases_raw:
                resolved = self.resolve_base(module, base)
                if resolved is not None:
                    parent = resolved
                    break
            klass = parent
            seen += 1
        return None

    def resolve_base(self, module: ModuleInfo,
                     base_raw: str) -> ClassInfo | None:
        """Resolve a base-class expression to a project class."""
        if "." not in base_raw:
            klass = module.classes.get(base_raw)
            if klass is not None:
                return klass
            imported = module.from_imports.get(base_raw)
            if imported is not None:
                mod, attr = imported
                target = self.modules.get(mod)
                if target is not None:
                    return target.classes.get(attr)
            return None
        root, _, tail = base_raw.partition(".")
        target_name = module.imports.get(root)
        if target_name is None:
            return None
        mod_name, _, cls_name = (target_name + "." + tail).rpartition(".")
        target = self.modules.get(mod_name)
        if target is not None:
            return target.classes.get(cls_name)
        return None

    def subclasses_of(self, base_qualname: str) -> list[ClassInfo]:
        """Project classes whose (transitive, indexed) bases include
        ``base_qualname``."""
        out = []
        for klass in self.classes.values():
            if self._inherits(klass, base_qualname, depth=0):
                out.append(klass)
        return out

    def _inherits(self, klass: ClassInfo, base_qualname: str,
                  depth: int) -> bool:
        if depth > 4:
            return False
        module = self.modules.get(klass.module)
        if module is None:
            return False
        for base_raw in klass.bases_raw:
            resolved = self.resolve_base(module, base_raw)
            if resolved is None:
                continue
            if resolved.qualname == base_qualname:
                return True
            if self._inherits(resolved, base_qualname, depth + 1):
                return True
        return False

    def reachable_from(self, roots: "set[str] | list[str]") -> set[str]:
        """Transitive closure of the call graph from ``roots``."""
        seen: set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.call_graph.get(current, ()))
        return seen


# -- module indexing ----------------------------------------------------


def _index_module(path: str, tree: ast.Module) -> ModuleInfo:
    posix = str(path).replace("\\", "/")
    name = module_name_for_path(posix)
    imports: dict[str, str] = {}
    from_imports: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.name if alias.asname \
                    else alias.name.split(".")[0]
                if alias.asname is None and "." in alias.name:
                    # ``import repro.kernels.ops`` binds ``repro`` but
                    # makes the dotted chain resolvable; remember it.
                    imports.setdefault(alias.name, alias.name)
        elif isinstance(node, ast.ImportFrom):
            target = node.module or ""
            if node.level:
                # Resolve relative imports against this module's
                # package (__init__ files are their own package).
                base_parts = name.split(".")
                keep = len(base_parts) - node.level
                if posix.endswith("/__init__.py"):
                    keep += 1
                base_parts = base_parts[:max(keep, 0)]
                target = ".".join(
                    part for part in [*base_parts, node.module or ""]
                    if part)
            for alias in node.names:
                if alias.name == "*":
                    continue
                from_imports[alias.asname or alias.name] = (
                    target, alias.name)

    functions: dict[str, FunctionInfo] = {}
    classes: dict[str, ClassInfo] = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[stmt.name] = _function_info(name, None, stmt)
        elif isinstance(stmt, ast.ClassDef):
            classes[stmt.name] = _class_info(name, stmt)

    # The module body itself joins the call graph as a pseudo-function
    # so script-style entry points (examples, __main__ blocks) root
    # reachability queries.
    body_fn = ast.FunctionDef(
        name=MODULE_BODY,
        args=ast.arguments(posonlyargs=[], args=[], vararg=None,
                           kwonlyargs=[], kw_defaults=[], kwarg=None,
                           defaults=[]),
        body=tree.body or [ast.Pass()],
        decorator_list=[],
        returns=None,
    )
    ast.copy_location(body_fn, tree.body[0] if tree.body else ast.Pass())
    ast.fix_missing_locations(body_fn)
    functions[MODULE_BODY] = FunctionInfo(
        qualname=f"{name}{QUALSEP}{MODULE_BODY}",
        module=name, name=MODULE_BODY, cls=None, node=body_fn,
        lineno=1, params=[], param_dtypes={},
        return_annotation_dtype=UNKNOWN, decorators=[],
        is_contextmanager=False,
    )
    return ModuleInfo(name=name, path=str(path), posix_path=posix,
                      tree=tree, imports=imports,
                      from_imports=from_imports, functions=functions,
                      classes=classes)


def _function_info(module: str, cls: str | None,
                   node: ast.FunctionDef | ast.AsyncFunctionDef
                   ) -> FunctionInfo:
    args = node.args
    params = [arg.arg for arg in (*args.posonlyargs, *args.args,
                                  *args.kwonlyargs)]
    param_dtypes = {
        arg.arg: dtype_of_annotation(arg.annotation)
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    decorators = []
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        dotted = _dotted(target)
        if dotted is not None:
            decorators.append(dotted.rpartition(".")[2])
    scope = f"{cls}.{node.name}" if cls else node.name
    return FunctionInfo(
        qualname=f"{module}{QUALSEP}{scope}",
        module=module, name=node.name, cls=cls, node=node,
        lineno=node.lineno, params=params, param_dtypes=param_dtypes,
        return_annotation_dtype=dtype_of_annotation(node.returns),
        decorators=decorators,
        is_contextmanager=bool(
            _CONTEXTMANAGER_DECORATORS.intersection(decorators)),
    )


def _class_info(module: str, node: ast.ClassDef) -> ClassInfo:
    methods: dict[str, FunctionInfo] = {}
    class_attrs: dict[str, object] = {}
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[stmt.name] = _function_info(module, node.name, stmt)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and isinstance(stmt.value, ast.Constant):
            class_attrs[stmt.targets[0].id] = stmt.value.value
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and isinstance(stmt.value, ast.Constant):
            class_attrs[stmt.target.id] = stmt.value.value
    bases = []
    for base in node.bases:
        dotted = _dotted(base)
        if dotted is not None:
            bases.append(dotted)
    return ClassInfo(
        qualname=f"{module}{QUALSEP}{node.name}",
        module=module, name=node.name, node=node, lineno=node.lineno,
        bases_raw=bases, methods=methods, class_attrs=class_attrs,
    )
