"""The machine-readable finding model.

A finding pins one rule violation to one source location.  The model
is deliberately small and stable: future PRs diff JSON reports over
time, so every field here is part of the report schema documented in
``docs/static_analysis.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(str, enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the CI gate; ``WARNING`` findings are
    reported but reserved for advisory rules added later.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int
    severity: Severity = Severity.ERROR

    @property
    def location(self) -> str:
        """``path:line:col`` for terminal output (clickable in IDEs)."""
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, object]:
        """Serialize for the JSON report (schema version 1)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
