"""802.11g OFDM numerology and rate-dependent parameters.

All constants follow IEEE 802.11-2012 clause 18 (the OFDM PHY) for
20 MHz channel spacing: 64-point FFT at 20 MSPS, 0.8 us guard
interval, 48 data + 4 pilot subcarriers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.dsp.ofdm import OfdmParameters
from repro.phy.coding import CodeRate
from repro.phy.modulation import Modulation

#: Native sampling rate of 802.11a/g OFDM (Hz).  The mismatch with the
#: jammer's 25 MSPS data path is the paper's key detection impairment.
WIFI_SAMPLE_RATE = 20_000_000

#: The OFDM numerology: 64-point FFT, 16-sample (0.8 us) cyclic prefix.
WIFI_OFDM = OfdmParameters(fft_size=64, cp_length=16,
                           sample_rate=WIFI_SAMPLE_RATE)

#: Data subcarrier indices (48 of them): +-1..26 minus the pilots.
PILOT_SUBCARRIERS = np.array([-21, -7, 7, 21])
DATA_SUBCARRIERS = np.array(
    [k for k in range(-26, 27)
     if k != 0 and k not in (-21, -7, 7, 21)]
)

#: Pilot base values on subcarriers (-21, -7, 7, 21).
PILOT_VALUES = np.array([1.0, 1.0, 1.0, -1.0])

#: The 127-element pilot polarity sequence p_n (IEEE 802.11-2012
#: §18.3.5.10); entry 0 multiplies the SIGNAL symbol's pilots.
PILOT_POLARITY = np.array([
    1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1,
    -1, -1, 1, 1, -1, 1, 1, -1, 1, 1, 1, 1, 1, 1, -1, 1,
    1, 1, -1, 1, 1, -1, -1, 1, 1, 1, -1, 1, -1, -1, -1, 1,
    -1, 1, -1, -1, 1, -1, -1, 1, 1, 1, 1, 1, -1, -1, 1, 1,
    -1, -1, 1, -1, 1, -1, 1, 1, -1, -1, -1, 1, 1, -1, -1, -1,
    -1, 1, -1, -1, 1, -1, 1, 1, 1, 1, -1, 1, -1, 1, -1, 1,
    -1, -1, -1, -1, -1, 1, -1, 1, 1, -1, 1, -1, 1, 1, 1, -1,
    -1, 1, -1, -1, -1, 1, 1, 1, -1, -1, -1, -1, -1, -1, -1,
], dtype=np.float64)

#: Number of coded bits in the SERVICE field and tail.
SERVICE_BITS = 16
TAIL_BITS = 6

#: Durations from the standard (microseconds).
SHORT_PREAMBLE_US = 8.0
LONG_PREAMBLE_US = 8.0
SIGNAL_US = 4.0
SYMBOL_US = 4.0


class WifiRate(enum.Enum):
    """The eight 802.11g OFDM rates, keyed by Mbps."""

    MBPS_6 = 6
    MBPS_9 = 9
    MBPS_12 = 12
    MBPS_18 = 18
    MBPS_24 = 24
    MBPS_36 = 36
    MBPS_48 = 48
    MBPS_54 = 54

    @property
    def mbps(self) -> int:
        """Nominal PHY rate in Mbps."""
        return self.value


@dataclass(frozen=True)
class RateParameters:
    """Per-rate modulation and coding parameters (802.11 Table 18-4)."""

    modulation: Modulation
    code_rate: CodeRate
    n_bpsc: int   # coded bits per subcarrier
    n_cbps: int   # coded bits per OFDM symbol
    n_dbps: int   # data bits per OFDM symbol
    signal_bits: int  # 4-bit RATE field encoding


RATE_PARAMETERS: dict[WifiRate, RateParameters] = {
    WifiRate.MBPS_6: RateParameters(Modulation.BPSK, CodeRate.R1_2,
                                    1, 48, 24, 0b1101),
    WifiRate.MBPS_9: RateParameters(Modulation.BPSK, CodeRate.R3_4,
                                    1, 48, 36, 0b1111),
    WifiRate.MBPS_12: RateParameters(Modulation.QPSK, CodeRate.R1_2,
                                     2, 96, 48, 0b0101),
    WifiRate.MBPS_18: RateParameters(Modulation.QPSK, CodeRate.R3_4,
                                     2, 96, 72, 0b0111),
    WifiRate.MBPS_24: RateParameters(Modulation.QAM16, CodeRate.R1_2,
                                     4, 192, 96, 0b1001),
    WifiRate.MBPS_36: RateParameters(Modulation.QAM16, CodeRate.R3_4,
                                     4, 192, 144, 0b1011),
    WifiRate.MBPS_48: RateParameters(Modulation.QAM64, CodeRate.R2_3,
                                     6, 288, 192, 0b0001),
    WifiRate.MBPS_54: RateParameters(Modulation.QAM64, CodeRate.R3_4,
                                     6, 288, 216, 0b0011),
}

#: RATE-field value -> rate, for SIGNAL decoding.
SIGNAL_BITS_TO_RATE = {
    params.signal_bits: rate for rate, params in RATE_PARAMETERS.items()
}


def data_symbols_for_psdu(psdu_bytes: int, rate: WifiRate) -> int:
    """Number of DATA OFDM symbols for a PSDU of ``psdu_bytes``.

    Follows the standard's N_SYM computation: SERVICE + PSDU + tail
    bits, padded up to a whole number of symbols.
    """
    params = RATE_PARAMETERS[rate]
    n_bits = SERVICE_BITS + 8 * psdu_bytes + TAIL_BITS
    return -(-n_bits // params.n_dbps)
