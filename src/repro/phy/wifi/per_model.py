"""SINR -> packet-error-rate link model for the MAC simulation.

The iperf experiments (paper Figs. 10/11) run tens of thousands of
frames per operating point; decoding each at the waveform level would
be prohibitively slow, so the MAC simulation uses this semi-analytic
link model instead (the standard approach in ns-3 and friends):

1. symbol SINR -> uncoded BER via the exact Q-function expressions for
   each constellation,
2. uncoded BER -> coded BER via the union bound over the convolutional
   code's distance spectrum (hard-decision pairwise error
   probabilities, i.e. the NIST error-rate model),
3. coded BER -> PER over the frame's bit count, with separately-jammed
   segments multiplied together.

The model also covers preamble/SIGNAL robustness so a frame whose
synchronization is destroyed (e.g. by a jam burst over the preamble)
fails regardless of payload SINR.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats

from repro import units
from repro.errors import ConfigurationError
from repro.phy.coding import CodeRate
from repro.phy.modulation import Modulation
from repro.phy.wifi import params as p

#: Distance spectra (information-bit error weights B_d starting at
#: d_free) for the K=7 code and its 802.11 punctured variants.
#: Source: Frenger et al. / standard convolutional code tables.
_DISTANCE_SPECTRA: dict[CodeRate, tuple[int, list[int]]] = {
    CodeRate.R1_2: (10, [36, 0, 211, 0, 1404, 0, 11633]),
    CodeRate.R2_3: (6, [1, 16, 48, 158, 642, 2435, 9174]),
    CodeRate.R3_4: (5, [8, 31, 160, 892, 4512, 23307, 121077]),
}


def _q(x: float) -> float:
    return float(stats.norm.sf(x))


def uncoded_ber(snr_linear: float, modulation: Modulation) -> float:
    """Exact-ish uncoded BER for Gray-coded square constellations.

    ``snr_linear`` is the per-subcarrier symbol SINR (Es/N0).
    """
    if snr_linear <= 0:
        return 0.5
    if modulation is Modulation.BPSK:
        return _q(math.sqrt(2.0 * snr_linear))
    if modulation is Modulation.QPSK:
        return _q(math.sqrt(snr_linear))
    if modulation is Modulation.QAM16:
        return 0.75 * _q(math.sqrt(snr_linear / 5.0))
    if modulation is Modulation.QAM64:
        return (7.0 / 12.0) * _q(math.sqrt(snr_linear / 21.0))
    raise ConfigurationError(f"no BER expression for {modulation}")


def _pairwise_error(d: int, ber: float) -> float:
    """Hard-decision pairwise error probability for distance d."""
    if ber <= 0.0:
        return 0.0
    if ber >= 0.5:
        return 0.5
    total = 0.0
    if d % 2:
        for k in range((d + 1) // 2, d + 1):
            total += math.comb(d, k) * ber ** k * (1 - ber) ** (d - k)
    else:
        half = d // 2
        total += 0.5 * math.comb(d, half) * ber ** half * (1 - ber) ** half
        for k in range(half + 1, d + 1):
            total += math.comb(d, k) * ber ** k * (1 - ber) ** (d - k)
    return min(total, 0.5)


def coded_ber(snr_linear: float, modulation: Modulation,
              code_rate: CodeRate) -> float:
    """Post-Viterbi BER via the truncated union bound."""
    ber = uncoded_ber(snr_linear, modulation)
    d_free, weights = _DISTANCE_SPECTRA[code_rate]
    total = 0.0
    for offset, weight in enumerate(weights):
        if weight:
            total += weight * _pairwise_error(d_free + offset, ber)
    # Per the union bound the sum is divided by the puncturing period's
    # information bits (already folded into B_d for these tables).
    return min(total, 0.5)


def segment_success(snr_db: float, rate: p.WifiRate, n_bits: int) -> float:
    """Probability that ``n_bits`` information bits decode cleanly."""
    if n_bits <= 0:
        return 1.0
    rp = p.RATE_PARAMETERS[rate]
    ber = coded_ber(units.db_to_linear(snr_db), rp.modulation, rp.code_rate)
    if ber >= 0.5:
        return 0.0
    return (1.0 - ber) ** n_bits


#: SINR (dB) below which preamble synchronization is assumed lost.
#: Anchored to our own waveform-level measurements: the receiver's
#: long-preamble sync survives to roughly 0 dB, and energy capture of
#: a jam burst destroys AGC/sync well above that.
SYNC_LOSS_SNR_DB = 0.0


@dataclass(frozen=True)
class JamExposure:
    """How a jam burst overlaps one PHY frame.

    Attributes:
        preamble_hit: The burst overlaps the preamble/SIGNAL region.
        data_overlap_us: Microseconds of DATA field covered by bursts.
        sinr_jammed_db: SINR during the jammed span.
    """

    preamble_hit: bool
    data_overlap_us: float
    sinr_jammed_db: float


class LinkQualityModel:
    """Frame success probabilities under clean and jammed conditions."""

    def __init__(self, noise_floor_dbm: float = -95.0) -> None:
        self.noise_floor_dbm = float(noise_floor_dbm)

    def snr_db(self, rx_power_dbm: float) -> float:
        """SNR implied by a received power against the noise floor."""
        return rx_power_dbm - self.noise_floor_dbm

    def sinr_db(self, rx_power_dbm: float, interference_dbm: float | None) -> float:
        """SINR with an active interferer of the given received power."""
        noise = units.dbm_to_watts(self.noise_floor_dbm)
        if interference_dbm is not None:
            noise += units.dbm_to_watts(interference_dbm)
        signal = units.dbm_to_watts(rx_power_dbm)
        return units.linear_to_db(signal / noise)

    def frame_success_probability(self, snr_db: float, rate: p.WifiRate,
                                  psdu_bytes: int,
                                  exposure: JamExposure | None = None) -> float:
        """Probability that one PPDU is received intact.

        Combines SIGNAL-field success (always sent at 6 Mbps
        parameters), DATA success over the clean span, and DATA success
        over any jammed span at the degraded SINR.  A jam burst over
        the preamble region fails the frame outright when the jammed
        SINR is below the synchronization threshold.
        """
        if psdu_bytes < 1:
            raise ConfigurationError("psdu_bytes must be >= 1")
        signal_ok = segment_success(snr_db, p.WifiRate.MBPS_6, 24)
        n_bits = 8 * psdu_bytes + p.SERVICE_BITS + p.TAIL_BITS
        duration_us = p.data_symbols_for_psdu(psdu_bytes, rate) * p.SYMBOL_US
        if exposure is None or exposure.data_overlap_us <= 0.0:
            clean_bits = n_bits
            jammed_bits = 0
        else:
            fraction = min(exposure.data_overlap_us / duration_us, 1.0)
            jammed_bits = int(round(n_bits * fraction))
            clean_bits = n_bits - jammed_bits
        success = signal_ok
        success *= segment_success(snr_db, rate, clean_bits)
        if exposure is not None:
            if exposure.preamble_hit:
                if exposure.sinr_jammed_db < SYNC_LOSS_SNR_DB:
                    return 0.0
                # Preamble survived but SIGNAL sees the jammed SINR.
                success = segment_success(exposure.sinr_jammed_db,
                                          p.WifiRate.MBPS_6, 24)
                success *= segment_success(snr_db, rate, clean_bits)
            if jammed_bits:
                success *= segment_success(exposure.sinr_jammed_db, rate,
                                           jammed_bits)
        return success
