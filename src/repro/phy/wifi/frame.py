"""802.11g OFDM PPDU construction (transmitter).

Assembles a complete frame at the standard's native 20 MSPS:

    [short preamble | long preamble | SIGNAL | DATA symbols...]

The DATA field is SERVICE + PSDU + tail + pad bits, scrambled,
convolutionally encoded, interleaved, constellation-mapped, and OFDM
modulated with the standard's pilot insertion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.ofdm import ofdm_modulate
from repro.errors import ConfigurationError
from repro.phy.bits import bytes_to_bits
from repro.phy.coding import ConvolutionalCode
from repro.phy.interleaving import interleave
from repro.phy.modulation import map_bits
from repro.phy.scrambler import scramble
from repro.phy.wifi import params as p
from repro.phy.wifi.preamble import long_preamble, short_preamble
from repro.phy.wifi.signal_field import signal_to_coded_symbol
from repro.runtime.cache import cached_artifact


@dataclass(frozen=True)
class WifiFrameConfig:
    """Transmit-side parameters of one PPDU.

    Attributes:
        rate: PHY rate for the DATA field.
        scrambler_seed: 7-bit non-zero scrambler initial state.
    """

    rate: p.WifiRate = p.WifiRate.MBPS_54
    scrambler_seed: int = 0x5D


def _data_bits(psdu: bytes, rate: p.WifiRate, seed: int) -> np.ndarray:
    """SERVICE + PSDU + tail + pad, scrambled, with tail re-zeroed."""
    rp = p.RATE_PARAMETERS[rate]
    n_sym = p.data_symbols_for_psdu(len(psdu), rate)
    total_bits = n_sym * rp.n_dbps
    bits = np.zeros(total_bits, dtype=np.uint8)
    psdu_bits = bytes_to_bits(psdu)
    bits[p.SERVICE_BITS:p.SERVICE_BITS + psdu_bits.size] = psdu_bits
    scrambled = scramble(bits, seed)
    # Tail bits are forced back to zero after scrambling (§18.3.5.3).
    tail_start = p.SERVICE_BITS + psdu_bits.size
    scrambled[tail_start:tail_start + p.TAIL_BITS] = 0
    return scrambled


def _pilot_polarity(symbol_index: int) -> float:
    """Pilot polarity for DATA symbol n (SIGNAL uses index 0)."""
    return float(p.PILOT_POLARITY[symbol_index % p.PILOT_POLARITY.size])


def _assemble_symbol(data_points: np.ndarray, symbol_index: int) -> np.ndarray:
    """One OFDM symbol: 48 data points + 4 polarity-scaled pilots."""
    carriers = np.concatenate([p.DATA_SUBCARRIERS, p.PILOT_SUBCARRIERS])
    values = np.concatenate([
        data_points,
        p.PILOT_VALUES * _pilot_polarity(symbol_index),
    ])
    return ofdm_modulate(p.WIFI_OFDM, carriers, values)


def build_data_field(psdu: bytes, config: WifiFrameConfig) -> np.ndarray:
    """The DATA portion of a PPDU as time-domain samples."""
    rp = p.RATE_PARAMETERS[config.rate]
    bits = _data_bits(psdu, config.rate, config.scrambler_seed)
    code = ConvolutionalCode(rp.code_rate)
    coded = code.encode(bits)
    interleaved = interleave(coded, rp.n_cbps, rp.n_bpsc)
    points = map_bits(interleaved, rp.modulation)
    points = points.reshape(-1, len(p.DATA_SUBCARRIERS))
    symbols = [
        _assemble_symbol(row, symbol_index=n + 1)  # DATA starts at p_1
        for n, row in enumerate(points)
    ]
    return np.concatenate(symbols)


def build_signal_field(psdu_length: int, rate: p.WifiRate) -> np.ndarray:
    """The SIGNAL symbol as time-domain samples."""
    points = signal_to_coded_symbol(rate, psdu_length)
    return _assemble_symbol(points, symbol_index=0)


@cached_artifact
def build_ppdu(psdu: bytes, config: WifiFrameConfig | None = None) -> np.ndarray:
    """A complete 802.11g OFDM PPDU at 20 MSPS, unit average power.

    This is the paper's "complete WiFi frame with 10 short preambles,
    2 long preambles, the SIGNAL symbol, and the payload".

    Memoized by ``(psdu, config)`` content: repeated builds of the
    same frame (every detection trial, every benchmark round) return
    one shared read-only waveform.  Copy before mutating.
    """
    if not psdu:
        raise ConfigurationError("PSDU must not be empty")
    config = config if config is not None else WifiFrameConfig()
    waveform = np.concatenate([
        short_preamble(),
        long_preamble(),
        build_signal_field(len(psdu), config.rate),
        build_data_field(psdu, config),
    ])
    power = float(np.mean(np.abs(waveform) ** 2))
    return waveform / np.sqrt(power)


def ppdu_duration_us(psdu_bytes: int, rate: p.WifiRate) -> float:
    """Air time of a PPDU in microseconds (preambles + SIGNAL + DATA)."""
    n_sym = p.data_symbols_for_psdu(psdu_bytes, rate)
    return (p.SHORT_PREAMBLE_US + p.LONG_PREAMBLE_US + p.SIGNAL_US
            + n_sym * p.SYMBOL_US)


def ppdu_sample_length(psdu_bytes: int, rate: p.WifiRate) -> int:
    """PPDU length in 20 MSPS samples."""
    n_sym = p.data_symbols_for_psdu(psdu_bytes, rate)
    return 160 + 160 + (1 + n_sym) * p.WIFI_OFDM.symbol_length
