"""The 802.11 OFDM PLCP preamble (IEEE 802.11-2012 §18.3.3).

* **Short training field**: a 16-sample (0.8 us) sequence repeated ten
  times — 160 samples / 8 us.  Used by real receivers for AGC and
  coarse timing, and by the paper's jammer as a 10x-repeating
  correlation target (Fig. 7).
* **Long training field**: a 32-sample guard followed by two identical
  64-sample (3.2 us) symbols — 160 samples / 8 us.  The 64-sample code
  is the natural template for the jammer's 64-tap correlator (Fig. 6),
  except that the correlator samples at 25 MSPS while this code lives
  at 20 MSPS.
"""

from __future__ import annotations

import numpy as np

from repro.phy.wifi.params import WIFI_OFDM
from repro.runtime.cache import cached_artifact

# Short-training frequency values: nonzero on multiples of 4.
_SHORT_CARRIERS = np.array([-24, -20, -16, -12, -8, -4, 4, 8, 12, 16, 20, 24])
_SHORT_VALUES = np.sqrt(13.0 / 6.0) * np.array([
    1 + 1j, -1 - 1j, 1 + 1j, -1 - 1j, -1 - 1j, 1 + 1j,
    -1 - 1j, -1 - 1j, 1 + 1j, 1 + 1j, 1 + 1j, 1 + 1j,
])

# Long-training frequency values on subcarriers -26..-1, 1..26.
_LONG_CARRIERS = np.array([k for k in range(-26, 27) if k != 0])
_LONG_VALUES = np.array([
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1,
    1, -1, 1, 1, 1, 1,
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1,
    1, -1, 1, -1, 1, 1, 1, 1,
], dtype=np.complex128)

#: Number of short-preamble repetitions and their period in samples.
SHORT_REPEATS = 10
SHORT_PERIOD = 16

#: Long-training guard length and symbol length in samples.
LONG_GUARD = 32
LONG_SYMBOL = 64


def _unit_power(samples: np.ndarray) -> np.ndarray:
    power = float(np.mean(np.abs(samples) ** 2))
    return samples / np.sqrt(power)


@cached_artifact
def short_training_symbol() -> np.ndarray:
    """One 16-sample period of the short training sequence (unit power)."""
    freq = np.zeros(WIFI_OFDM.fft_size, dtype=np.complex128)
    freq[np.mod(_SHORT_CARRIERS, WIFI_OFDM.fft_size)] = _SHORT_VALUES
    time = np.fft.ifft(freq) * WIFI_OFDM.fft_size
    # The 64-sample IFFT output is periodic with period 16.
    return _unit_power(time[:SHORT_PERIOD])


@cached_artifact
def short_preamble() -> np.ndarray:
    """The full 160-sample (8 us) short training field, unit power."""
    return np.tile(short_training_symbol(), SHORT_REPEATS)


@cached_artifact
def long_training_symbol() -> np.ndarray:
    """One 64-sample (3.2 us) long training symbol, unit power.

    This is the 64-sample orthogonal code the paper loads into the
    cross-correlator for long-preamble detection.
    """
    freq = np.zeros(WIFI_OFDM.fft_size, dtype=np.complex128)
    freq[np.mod(_LONG_CARRIERS, WIFI_OFDM.fft_size)] = _LONG_VALUES
    time = np.fft.ifft(freq) * WIFI_OFDM.fft_size
    return _unit_power(time)


@cached_artifact
def long_preamble() -> np.ndarray:
    """The full 160-sample (8 us) long training field: GI2 + 2 symbols."""
    symbol = long_training_symbol()
    return np.concatenate([symbol[-LONG_GUARD:], symbol, symbol])
