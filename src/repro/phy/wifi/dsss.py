"""802.11b DSSS PHY (transmit side).

The paper claims the platform jams "WiFi (802.11 a/b/g)"; a/g are the
OFDM PHY implemented in this package's other modules, and b is the
legacy DSSS PHY implemented here: Barker-11 spreading at 11 Mchip/s,
DBPSK at 1 Mb/s (DQPSK at 2 Mb/s for the PSDU), and the long PLCP
preamble of 128 scrambled SYNC ones plus the 16-bit SFD
(IEEE 802.11-2012 clause 17).

Native sample rate is 22 MSPS (2 samples/chip); the detection
experiments resample to the jammer's 25 MSPS as for every other
standard.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.cache import cached_artifact

#: Barker-11 spreading sequence (IEEE 802.11-2012 §17.4.6.6).
BARKER = np.array([1, -1, 1, 1, -1, 1, 1, 1, -1, -1, -1], dtype=np.int8)

#: Chip rate and native sampling rate.
CHIP_RATE = 11_000_000
SAMPLES_PER_CHIP = 2
DSSS_SAMPLE_RATE = CHIP_RATE * SAMPLES_PER_CHIP

#: Long-preamble structure: 128 SYNC bits + 16 SFD bits at 1 Mb/s.
SYNC_BITS = 128
SFD = 0xF3A0  # transmitted LSB first

#: DSSS scrambler seed for the long preamble (§17.2.4).
SCRAMBLER_SEED = 0b1101100


def scramble_bits(bits: np.ndarray, seed: int = SCRAMBLER_SEED) -> np.ndarray:
    """The 802.11 DSSS self-synchronizing scrambler (x^7 + x^4 + 1).

    Unlike the OFDM PHY's frame-synchronous scrambler, the DSSS
    scrambler feeds back the *scrambled* output, so it self-syncs at
    the receiver.
    """
    if not 0 <= seed <= 0x7F:
        raise ConfigurationError("seed must be a 7-bit value")
    state = seed
    out = np.empty(bits.size, dtype=np.uint8)
    for n, bit in enumerate(np.asarray(bits, dtype=np.uint8)):
        feedback = ((state >> 6) ^ (state >> 3)) & 1
        scrambled = bit ^ feedback
        out[n] = scrambled
        state = ((state << 1) | scrambled) & 0x7F
    return out


def differential_encode(bits: np.ndarray) -> np.ndarray:
    """DBPSK phase stream: bit 1 flips the phase, bit 0 keeps it."""
    bits = np.asarray(bits, dtype=np.uint8)
    phases = np.empty(bits.size, dtype=np.int8)
    current = 1
    for n, bit in enumerate(bits):
        if bit:
            current = -current
        phases[n] = current
    return phases


def spread_and_shape(phases: np.ndarray) -> np.ndarray:
    """Barker-spread a bipolar phase stream to chips at 22 MSPS."""
    phases = np.asarray(phases, dtype=np.int8)
    chips = (phases[:, None] * BARKER[None, :]).reshape(-1)
    return np.repeat(chips.astype(np.float64), SAMPLES_PER_CHIP) + 0j


def preamble_bits() -> np.ndarray:
    """The long preamble's unscrambled bits: 128 ones + SFD."""
    sync = np.ones(SYNC_BITS, dtype=np.uint8)
    sfd = np.array([(SFD >> k) & 1 for k in range(16)], dtype=np.uint8)
    return np.concatenate([sync, sfd])


@cached_artifact
def long_preamble_waveform() -> np.ndarray:
    """The 144-bit long PLCP preamble at 22 MSPS, unit power.

    144 us of air time — the paper's observation that legacy DSSS
    preambles give the jammer an enormous reaction window compared to
    OFDM's 16 us.
    """
    bits = scramble_bits(preamble_bits())
    waveform = spread_and_shape(differential_encode(bits))
    power = float(np.mean(np.abs(waveform) ** 2))
    return waveform / np.sqrt(power)


def build_dsss_ppdu(psdu: bytes) -> np.ndarray:
    """A 1 Mb/s DBPSK PPDU: preamble + PLCP header + PSDU, at 22 MSPS.

    The PLCP header (SIGNAL, SERVICE, LENGTH, CRC-16) is included as
    48 DBPSK bits; everything is scrambled as one continuous stream,
    as the standard requires.
    """
    if not psdu:
        raise ConfigurationError("PSDU must not be empty")
    if len(psdu) > 4095:
        raise ConfigurationError("PSDU too long for the LENGTH field")
    signal = 0x0A            # 1 Mb/s in 100 kb/s units
    service = 0x00
    length_us = len(psdu) * 8  # air time of the PSDU at 1 Mb/s
    header = bytes([signal, service,
                    length_us & 0xFF, (length_us >> 8) & 0xFF])
    crc = _crc16(header)
    header += bytes([crc & 0xFF, (crc >> 8) & 0xFF])

    payload_bits = np.unpackbits(
        np.frombuffer(header + psdu, dtype=np.uint8), bitorder="little")
    all_bits = np.concatenate([preamble_bits(), payload_bits])
    waveform = spread_and_shape(
        differential_encode(scramble_bits(all_bits)))
    power = float(np.mean(np.abs(waveform) ** 2))
    return waveform / np.sqrt(power)


def _crc16(data: bytes) -> int:
    """CRC-16 CCITT as used by the PLCP header (ones complement)."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021) & 0xFFFF if crc & 0x8000 \
                else (crc << 1) & 0xFFFF
    return crc ^ 0xFFFF


def dsss_ppdu_duration_s(psdu_bytes: int) -> float:
    """Air time of a 1 Mb/s long-preamble PPDU."""
    return (SYNC_BITS + 16 + 48 + 8 * psdu_bytes) * 1e-6
