"""An 802.11g OFDM receiver.

Used to validate the transmitter, calibrate the SINR->PER link model,
and measure packet corruption under jamming at the waveform level.
The pipeline is the textbook one:

1. timing synchronization by correlating the known 64-sample long
   training symbol,
2. least-squares channel estimation from the two long symbols,
3. SIGNAL decode (rate + length),
4. per-symbol equalization with pilot common-phase-error tracking,
5. soft Viterbi decoding, descrambling, and FCS-agnostic PSDU return
   (the MAC layer owns FCS checking).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.measure import normalized_cross_correlation
from repro.errors import DecodeError
from repro.phy.bits import bits_to_bytes
from repro.phy.coding import ConvolutionalCode
from repro.phy.interleaving import deinterleave
from repro.phy.modulation import demap_bits
from repro.phy.scrambler import scramble, scrambler_sequence
from repro.phy.wifi import params as p
from repro.phy.wifi.preamble import LONG_SYMBOL, long_training_symbol
from repro.phy.wifi.signal_field import decode_signal_symbol

_ALL_CARRIERS = np.array([k for k in range(-26, 27) if k != 0])


@dataclass
class ReceiveResult:
    """Outcome of one receive attempt."""

    psdu: bytes
    rate: p.WifiRate
    length: int
    start_index: int
    snr_estimate_db: float | None = None
    diagnostics: dict = field(default_factory=dict)


class WifiReceiver:
    """Stateless decoder for 20 MSPS 802.11g captures.

    ``correct_cfo`` enables Moose-style carrier-frequency-offset
    estimation from the two identical long training symbols, needed
    when the capture passed through an impaired front end
    (:mod:`repro.hw.impairments`).
    """

    def __init__(self, sync_threshold: float = 0.5,
                 correct_cfo: bool = True) -> None:
        self._lts = long_training_symbol()
        self._sync_threshold = float(sync_threshold)
        self._correct_cfo = bool(correct_cfo)

    # ------------------------------------------------------------------
    # Synchronization

    def synchronize(self, samples: np.ndarray) -> int:
        """Locate the end of the second long training symbol.

        Returns the index of the first SIGNAL sample.  Raises
        :class:`DecodeError` if no plausible preamble is found.
        """
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.size < 2 * LONG_SYMBOL:
            raise DecodeError("capture shorter than one long preamble")
        corr = normalized_cross_correlation(samples, self._lts)
        candidates = np.flatnonzero(corr > self._sync_threshold)
        if candidates.size == 0:
            raise DecodeError("no long-preamble correlation peak found")
        # Look for peak pairs exactly LONG_SYMBOL apart (LTS1 and LTS2
        # ends); pick the strongest pair sum.
        best_score = -1.0
        best_end = -1
        for idx in candidates:
            partner = idx + LONG_SYMBOL
            if partner >= corr.size:
                continue
            if corr[partner] > self._sync_threshold:
                score = corr[idx] + corr[partner]
                if score > best_score:
                    best_score = score
                    best_end = partner
        if best_end < 0:
            # Fall back to the single strongest peak as the LTS2 end.
            best_end = int(candidates[np.argmax(corr[candidates])])
        return best_end + 1

    # ------------------------------------------------------------------
    # Channel estimation

    def estimate_channel(self, samples: np.ndarray, signal_start: int) -> np.ndarray:
        """LS channel estimate over the 52 occupied subcarriers."""
        lts2_start = signal_start - LONG_SYMBOL
        lts1_start = lts2_start - LONG_SYMBOL
        if lts1_start < 0:
            raise DecodeError("synchronization point leaves no room for the LTS")
        known = np.fft.fft(self._lts)
        h_sum = np.zeros(p.WIFI_OFDM.fft_size, dtype=np.complex128)
        for start in (lts1_start, lts2_start):
            observed = np.fft.fft(samples[start:start + LONG_SYMBOL])
            h_sum += observed
        bins = np.mod(_ALL_CARRIERS, p.WIFI_OFDM.fft_size)
        h = np.zeros(p.WIFI_OFDM.fft_size, dtype=np.complex128)
        denom = 2.0 * known[bins]
        if np.any(np.abs(denom) < 1e-12):
            raise DecodeError("degenerate channel estimate")
        h[bins] = h_sum[bins] / denom
        return h

    # ------------------------------------------------------------------
    # Symbol processing

    def _equalized_points(self, samples: np.ndarray, start: int,
                          channel: np.ndarray, symbol_index: int
                          ) -> np.ndarray:
        """Equalized data-subcarrier points of one OFDM symbol."""
        sym = samples[start:start + p.WIFI_OFDM.symbol_length]
        if sym.size < p.WIFI_OFDM.symbol_length:
            raise DecodeError("capture truncated mid-frame")
        core = sym[p.WIFI_OFDM.cp_length:]
        # Undo the modulator's fft_size/sqrt(n_active) bin scaling so
        # equalized points land on the unit-energy constellation grid.
        scale = np.sqrt(_ALL_CARRIERS.size) / p.WIFI_OFDM.fft_size
        freq = np.fft.fft(core) * scale
        data_bins = np.mod(p.DATA_SUBCARRIERS, p.WIFI_OFDM.fft_size)
        pilot_bins = np.mod(p.PILOT_SUBCARRIERS, p.WIFI_OFDM.fft_size)
        eq_data = freq[data_bins] / channel[data_bins]
        eq_pilots = freq[pilot_bins] / channel[pilot_bins]
        # Common-phase-error correction from the pilots.
        polarity = float(p.PILOT_POLARITY[symbol_index % p.PILOT_POLARITY.size])
        expected = p.PILOT_VALUES * polarity
        rotation = np.sum(eq_pilots * np.conj(expected))
        if np.abs(rotation) > 1e-12:
            eq_data = eq_data * (np.abs(rotation) / rotation)
        return eq_data

    # ------------------------------------------------------------------
    # Full receive

    def estimate_cfo(self, samples: np.ndarray, signal_start: int) -> float:
        """CFO estimate (Hz) from the two long training symbols."""
        from repro.dsp.measure import frequency_offset_estimate

        lts_region = samples[signal_start - 2 * LONG_SYMBOL:signal_start]
        return frequency_offset_estimate(lts_region, LONG_SYMBOL,
                                         p.WIFI_SAMPLE_RATE)

    @staticmethod
    def estimate_snr_db(samples: np.ndarray, signal_start: int) -> float:
        """SNR estimate from the two long training symbols.

        The LTS copies are identical on air, so their half-sum is
        signal + correlated noise and their half-difference is pure
        noise — the classic repeated-training SNR estimator.
        """
        lts1 = samples[signal_start - 2 * LONG_SYMBOL:
                       signal_start - LONG_SYMBOL]
        lts2 = samples[signal_start - LONG_SYMBOL:signal_start]
        if lts1.size != LONG_SYMBOL or lts2.size != LONG_SYMBOL:
            raise DecodeError("no room for the long training symbols")
        noise_power = float(np.mean(np.abs(lts2 - lts1) ** 2)) / 2.0
        total_power = float(np.mean(np.abs(lts2) ** 2))
        signal_power = max(total_power - noise_power, 0.0)
        if noise_power <= 0:
            return float("inf")
        if signal_power <= 0:
            return float("-inf")
        return 10.0 * np.log10(signal_power / noise_power)

    def receive(self, samples: np.ndarray) -> ReceiveResult:
        """Decode the first PPDU found in ``samples``."""
        samples = np.asarray(samples, dtype=np.complex128)
        signal_start = self.synchronize(samples)
        cfo_hz = 0.0
        if self._correct_cfo and signal_start >= 2 * LONG_SYMBOL:
            cfo_hz = self.estimate_cfo(samples, signal_start)
            n = np.arange(samples.size)
            samples = samples * np.exp(-2j * np.pi * cfo_hz * n
                                       / p.WIFI_SAMPLE_RATE)
        channel = self.estimate_channel(samples, signal_start)
        signal_points = self._equalized_points(samples, signal_start,
                                               channel, symbol_index=0)
        rate, length = decode_signal_symbol(signal_points)
        rp = p.RATE_PARAMETERS[rate]
        n_sym = p.data_symbols_for_psdu(length, rate)

        soft_bits: list[np.ndarray] = []
        data_start = signal_start + p.WIFI_OFDM.symbol_length
        for n in range(n_sym):
            start = data_start + n * p.WIFI_OFDM.symbol_length
            points = self._equalized_points(samples, start, channel,
                                            symbol_index=n + 1)
            soft = demap_bits(points, rp.modulation)
            soft_bits.append(deinterleave(soft, rp.n_cbps, rp.n_bpsc))
        soft_all = np.concatenate(soft_bits)

        code = ConvolutionalCode(rp.code_rate)
        n_info = n_sym * rp.n_dbps
        scrambled = code.decode(soft_all, n_info)
        seed = self._recover_scrambler_seed(scrambled)
        descrambled = scramble(scrambled, seed)
        psdu_bits = descrambled[p.SERVICE_BITS:p.SERVICE_BITS + 8 * length]
        psdu = bits_to_bytes(psdu_bits)
        return ReceiveResult(
            psdu=psdu, rate=rate, length=length, start_index=signal_start,
            snr_estimate_db=self.estimate_snr_db(samples, signal_start),
            diagnostics={"n_symbols": n_sym, "scrambler_seed": seed,
                         "cfo_hz": cfo_hz},
        )

    @staticmethod
    def _recover_scrambler_seed(scrambled: np.ndarray) -> int:
        """The SERVICE field's first 7 bits are zeros pre-scrambling."""
        prefix = scrambled[:7].astype(np.uint8)
        for seed in range(1, 128):
            if np.array_equal(scrambler_sequence(seed, 7), prefix):
                return seed
        raise DecodeError("could not recover the scrambler seed")
