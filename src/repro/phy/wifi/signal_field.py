"""The 802.11 OFDM SIGNAL field (IEEE 802.11-2012 §18.3.4).

One BPSK, rate-1/2 OFDM symbol carrying 24 bits: RATE (4), a reserved
bit, LENGTH (12, LSB first), an even-parity bit, and 6 tail zeros.
The SIGNAL field is never scrambled.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DecodeError
from repro.phy.coding import CodeRate, ConvolutionalCode
from repro.phy.interleaving import deinterleave, interleave
from repro.phy.modulation import Modulation, demap_bits, map_bits
from repro.phy.wifi.params import (
    RATE_PARAMETERS,
    SIGNAL_BITS_TO_RATE,
    WifiRate,
)

#: Maximum PSDU length encodable in the 12-bit LENGTH field.
MAX_LENGTH = (1 << 12) - 1

_SIGNAL_CODE = ConvolutionalCode(CodeRate.R1_2)
_SIGNAL_NCBPS = 48
_SIGNAL_NBPSC = 1


def encode_signal_bits(rate: WifiRate, length_bytes: int) -> np.ndarray:
    """The 24 uncoded SIGNAL bits for a frame."""
    if not 1 <= length_bytes <= MAX_LENGTH:
        raise ConfigurationError(
            f"PSDU length {length_bytes} outside [1, {MAX_LENGTH}] bytes"
        )
    bits = np.zeros(24, dtype=np.uint8)
    rate_bits = RATE_PARAMETERS[rate].signal_bits
    for k in range(4):
        bits[k] = (rate_bits >> (3 - k)) & 1  # R1 first (MSB of the code)
    # bit 4 reserved = 0; bits 5..16 LENGTH LSB first
    for k in range(12):
        bits[5 + k] = (length_bytes >> k) & 1
    bits[17] = np.sum(bits[:17]) % 2  # even parity over bits 0..16
    # bits 18..23 tail zeros
    return bits


def signal_to_coded_symbol(rate: WifiRate, length_bytes: int) -> np.ndarray:
    """Coded + interleaved + BPSK-mapped SIGNAL constellation points."""
    bits = encode_signal_bits(rate, length_bytes)
    coded = _SIGNAL_CODE.encode(bits)
    interleaved = interleave(coded, _SIGNAL_NCBPS, _SIGNAL_NBPSC)
    return map_bits(interleaved, Modulation.BPSK)


def decode_signal_symbol(points: np.ndarray) -> tuple[WifiRate, int]:
    """Decode equalized SIGNAL constellation points.

    Returns ``(rate, psdu_length_bytes)``.  Raises :class:`DecodeError`
    on parity failure or an unknown RATE pattern.
    """
    soft = demap_bits(np.asarray(points, dtype=np.complex128), Modulation.BPSK)
    soft = deinterleave(soft, _SIGNAL_NCBPS, _SIGNAL_NBPSC)
    bits = _SIGNAL_CODE.decode(soft, 24)
    if int(np.sum(bits[:18])) % 2:
        raise DecodeError("SIGNAL parity check failed")
    rate_bits = 0
    for k in range(4):
        rate_bits = (rate_bits << 1) | int(bits[k])
    rate = SIGNAL_BITS_TO_RATE.get(rate_bits)
    if rate is None:
        raise DecodeError(f"unknown RATE field {rate_bits:04b}")
    length = 0
    for k in range(12):
        length |= int(bits[5 + k]) << k
    if length == 0:
        raise DecodeError("SIGNAL LENGTH of zero")
    return rate, length
