"""An 802.11b DSSS receiver (1 Mb/s DBPSK, long preamble).

Completes the transmit-side :mod:`repro.phy.wifi.dsss`: Barker-11
matched filtering at 22 MSPS, bit-rate symbol timing recovered from
the correlation peaks, differential demodulation (which makes the
receiver carrier-phase agnostic), descrambling via the
self-synchronizing DSSS scrambler, SFD hunting, and PLCP header CRC-16
validation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecodeError
from repro.kernels.ops import convolve
from repro.phy.wifi.dsss import (
    BARKER,
    SAMPLES_PER_CHIP,
    SFD,
    SYNC_BITS,
    _crc16,
)

#: Samples per DBPSK bit at the native 22 MSPS.
_SAMPLES_PER_BIT = 11 * SAMPLES_PER_CHIP


@dataclass
class DsssReceiveResult:
    """Outcome of one DSSS receive attempt."""

    psdu: bytes
    length_us: int
    signal_rate: int
    start_index: int


def _barker_matched_filter(samples: np.ndarray) -> np.ndarray:
    """Correlate against the sample-rate Barker template (causal)."""
    template = np.repeat(BARKER.astype(np.float64), SAMPLES_PER_CHIP)
    corr = convolve(samples, template[::-1].conj())
    return corr[template.size - 1:]


def _bit_timing(corr: np.ndarray) -> int:
    """Phase (0..21) of the bit clock, from correlation-energy folding."""
    usable = corr[:corr.size - corr.size % _SAMPLES_PER_BIT]
    folded = np.abs(usable.reshape(-1, _SAMPLES_PER_BIT)) ** 2
    return int(np.argmax(folded.sum(axis=0)))


class DsssReceiver:
    """Decoder for 22 MSPS 802.11b long-preamble captures."""

    def __init__(self, sync_bits_needed: int = 32) -> None:
        if sync_bits_needed < 8:
            raise DecodeError("need at least 8 SYNC bits to lock")
        self._sync_bits_needed = int(sync_bits_needed)

    def _demodulate_bits(self, samples: np.ndarray) -> tuple[np.ndarray, int]:
        """Hard DBPSK bits for every bit slot, plus the timing phase."""
        corr = _barker_matched_filter(np.asarray(samples,
                                                 dtype=np.complex128))
        phase = _bit_timing(corr)
        peaks = corr[phase::_SAMPLES_PER_BIT]
        if peaks.size < 2:
            raise DecodeError("capture shorter than two DBPSK bits")
        # Differential demod: bit = 1 when the phase flipped.
        rotation = peaks[1:] * np.conj(peaks[:-1])
        bits = (rotation.real < 0).astype(np.uint8)
        return bits, phase

    @staticmethod
    def _descramble(bits: np.ndarray) -> np.ndarray:
        """Self-synchronizing descrambler: state is the received bits."""
        state = 0
        out = np.empty(bits.size, dtype=np.uint8)
        for n, bit in enumerate(bits):
            feedback = ((state >> 6) ^ (state >> 3)) & 1
            out[n] = bit ^ feedback
            state = ((state << 1) | int(bit)) & 0x7F
        return out

    def receive(self, samples: np.ndarray) -> DsssReceiveResult:
        """Decode the first 1 Mb/s PPDU in a 22 MSPS capture."""
        raw_bits, _phase = self._demodulate_bits(samples)
        descrambled = self._descramble(raw_bits)

        # Hunt for the SFD after a run of SYNC ones.  The scrambler
        # self-syncs within 7 bits, so skip the earliest output.
        sfd_bits = np.array([(SFD >> k) & 1 for k in range(16)],
                            dtype=np.uint8)
        sfd_at = -1
        run = 0
        for n in range(8, descrambled.size - 16):
            if descrambled[n] == 1:
                run += 1
                continue
            if run >= self._sync_bits_needed and np.array_equal(
                    descrambled[n:n + 16], sfd_bits):
                sfd_at = n
                break
            run = 0
        if sfd_at < 0:
            raise DecodeError("no SYNC+SFD pattern found")

        header_start = sfd_at + 16
        header_bits = descrambled[header_start:header_start + 48]
        if header_bits.size < 48:
            raise DecodeError("capture truncated inside the PLCP header")
        header = np.packbits(header_bits, bitorder="little").tobytes()
        if _crc16(header[:4]) != int.from_bytes(header[4:6], "little"):
            raise DecodeError("PLCP header CRC failed")
        signal_rate = header[0]
        length_us = int.from_bytes(header[2:4], "little")
        if signal_rate != 0x0A:
            raise DecodeError(
                f"unsupported SIGNAL rate {signal_rate:#x} (only 1 Mb/s)"
            )

        psdu_bits = descrambled[header_start + 48:
                                header_start + 48 + length_us]
        if psdu_bits.size < length_us or length_us % 8:
            raise DecodeError("capture truncated inside the PSDU")
        psdu = np.packbits(psdu_bits, bitorder="little").tobytes()
        return DsssReceiveResult(
            psdu=psdu, length_us=length_us, signal_rate=signal_rate,
            start_index=sfd_at - SYNC_BITS,
        )
