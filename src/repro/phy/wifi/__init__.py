"""IEEE 802.11g (ERP-OFDM) physical layer at its native 20 MSPS.

Implements what the paper's experiments exercise:

* the short and long training preambles (10 x 0.8 us and 2 x 3.2 us +
  guard, paper §3) that the jammer's cross-correlator locks onto,
* the SIGNAL field and fully coded/interleaved/modulated DATA symbols
  for every 802.11g OFDM rate (6..54 Mbps),
* a receiver good enough to calibrate the SINR->PER link model that
  the MAC simulation uses for the iperf experiments.
"""

from __future__ import annotations

from repro.phy.wifi.params import WifiRate, WIFI_OFDM, RATE_PARAMETERS
from repro.phy.wifi.preamble import (
    long_preamble,
    long_training_symbol,
    short_preamble,
    short_training_symbol,
)
from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu, ppdu_duration_us
from repro.phy.wifi.receiver import WifiReceiver, ReceiveResult
from repro.phy.wifi.per_model import LinkQualityModel
from repro.phy.wifi.dsss import build_dsss_ppdu, long_preamble_waveform
from repro.phy.wifi.dsss_receiver import DsssReceiver

__all__ = [
    "WifiRate",
    "WIFI_OFDM",
    "RATE_PARAMETERS",
    "long_preamble",
    "long_training_symbol",
    "short_preamble",
    "short_training_symbol",
    "WifiFrameConfig",
    "build_ppdu",
    "ppdu_duration_us",
    "WifiReceiver",
    "ReceiveResult",
    "LinkQualityModel",
    "build_dsss_ppdu",
    "long_preamble_waveform",
    "DsssReceiver",
]
