"""Bit/byte manipulation and the IEEE CRC-32.

Bit arrays throughout the PHY are ``uint8`` NumPy arrays of 0/1 values,
LSB-first within each byte (the 802.11 transmission order).
"""

from __future__ import annotations

import numpy as np

from repro.errors import StreamError

#: IEEE 802 CRC-32 polynomial (reversed representation).
_CRC32_POLY = 0xEDB88320

_CRC32_TABLE = np.zeros(256, dtype=np.uint32)
for _byte in range(256):
    _crc = _byte
    for _ in range(8):
        _crc = (_crc >> 1) ^ (_CRC32_POLY if _crc & 1 else 0)
    _CRC32_TABLE[_byte] = _crc


def bytes_to_bits(data: bytes | np.ndarray) -> np.ndarray:
    """Expand bytes to an LSB-first bit array."""
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr, bitorder="little")


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack an LSB-first bit array back into bytes.

    The bit count must be a multiple of 8.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8:
        raise StreamError(f"bit count {bits.size} is not a whole number of bytes")
    return np.packbits(bits, bitorder="little").tobytes()


def crc32(data: bytes) -> int:
    """IEEE 802 CRC-32 as used by the 802.11 FCS (and Ethernet)."""
    crc = 0xFFFF_FFFF
    for byte in data:
        crc = (crc >> 8) ^ int(_CRC32_TABLE[(crc ^ byte) & 0xFF])
    return crc ^ 0xFFFF_FFFF


def append_fcs(payload: bytes) -> bytes:
    """Append the 4-byte FCS (little-endian CRC-32) to a MAC frame."""
    return payload + crc32(payload).to_bytes(4, "little")


def check_fcs(frame: bytes) -> bool:
    """Validate a frame that carries a trailing FCS."""
    if len(frame) < 4:
        return False
    return crc32(frame[:-4]) == int.from_bytes(frame[-4:], "little")
