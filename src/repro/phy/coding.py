"""Convolutional coding for 802.11 OFDM (K=7, g0=133o, g1=171o).

Implements the rate-1/2 industry-standard code with the puncturing
patterns that produce the 2/3 and 3/4 rates of 802.11a/g, plus a
soft-decision Viterbi decoder.  The decoder is vectorized over the 64
trellis states so full frames decode in milliseconds.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ConfigurationError, DecodeError, StreamError

#: Constraint length of the 802.11 code.
CONSTRAINT_LENGTH = 7

#: Generator polynomials (octal 133 and 171).
G0 = 0o133
G1 = 0o171

_NUM_STATES = 1 << (CONSTRAINT_LENGTH - 1)


class CodeRate(enum.Enum):
    """Coding rates available in 802.11 OFDM, with puncture patterns.

    The pattern tuples give, per (A, B) output stream, which coded bits
    are transmitted over one puncturing period.
    """

    R1_2 = ((1,), (1,))
    R2_3 = ((1, 1), (1, 0))
    R3_4 = ((1, 1, 0), (1, 0, 1))

    @property
    def numerator(self) -> int:
        """Information bits per puncturing period."""
        return len(self.value[0])

    @property
    def denominator(self) -> int:
        """Transmitted coded bits per puncturing period."""
        return sum(self.value[0]) + sum(self.value[1])

    @property
    def ratio(self) -> float:
        """The code rate as a float (k/n)."""
        return self.numerator / self.denominator


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


def _build_trellis() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tables: next_state[s, b], out_a[s, b], out_b[s, b].

    State ``s`` holds the previous six input bits, most recent in bit 5.
    """
    next_state = np.zeros((_NUM_STATES, 2), dtype=np.int64)
    out_a = np.zeros((_NUM_STATES, 2), dtype=np.int8)
    out_b = np.zeros((_NUM_STATES, 2), dtype=np.int8)
    for state in range(_NUM_STATES):
        for bit in (0, 1):
            register = (bit << 6) | state
            out_a[state, bit] = _parity(register & G0)
            out_b[state, bit] = _parity(register & G1)
            next_state[state, bit] = (bit << 5) | (state >> 1)
    return next_state, out_a, out_b


_NEXT_STATE, _OUT_A, _OUT_B = _build_trellis()

# Predecessor tables for the vectorized add-compare-select step:
# state s' is reached from _PREV_STATE[s', 0] with input bit 0 and from
# _PREV_STATE[s', 1] with input bit 1 -- wait: the *input bit* that
# causes the transition into s' is s' >> 5; the two predecessors differ
# in their oldest bit.  We tabulate (prev_state, input_bit, out_a,
# out_b) for both incoming branches of each state.
_PREV_STATE = np.zeros((_NUM_STATES, 2), dtype=np.int64)
_PREV_BIT = np.zeros((_NUM_STATES, 2), dtype=np.int8)
_PREV_OUT_A = np.zeros((_NUM_STATES, 2), dtype=np.int8)
_PREV_OUT_B = np.zeros((_NUM_STATES, 2), dtype=np.int8)
for _s in range(_NUM_STATES):
    _branch = 0
    for _b in (0, 1):
        for _p in range(_NUM_STATES):
            if _NEXT_STATE[_p, _b] == _s:
                _PREV_STATE[_s, _branch] = _p
                _PREV_BIT[_s, _branch] = _b
                _PREV_OUT_A[_s, _branch] = _OUT_A[_p, _b]
                _PREV_OUT_B[_s, _branch] = _OUT_B[_p, _b]
                _branch += 1
assert int(_PREV_STATE.shape[0]) == _NUM_STATES


class ConvolutionalCode:
    """The 802.11 K=7 convolutional code at a selectable rate."""

    def __init__(self, rate: CodeRate = CodeRate.R1_2) -> None:
        self.rate = rate

    @property
    def rate(self) -> CodeRate:
        """Selected code rate."""
        return self._rate

    @rate.setter
    def rate(self, value: CodeRate) -> None:
        if not isinstance(value, CodeRate):
            raise ConfigurationError(f"rate must be a CodeRate, got {value!r}")
        self._rate = value

    # ------------------------------------------------------------------
    # Encoding

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode information bits (caller appends tail bits if needed).

        Returns the punctured coded bit stream.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise StreamError("encode expects a 1-D bit array")
        state = 0
        coded_a = np.empty(bits.size, dtype=np.uint8)
        coded_b = np.empty(bits.size, dtype=np.uint8)
        for n, bit in enumerate(bits):
            coded_a[n] = _OUT_A[state, bit]
            coded_b[n] = _OUT_B[state, bit]
            state = _NEXT_STATE[state, bit]
        return self._puncture(coded_a, coded_b)

    def _puncture(self, coded_a: np.ndarray, coded_b: np.ndarray) -> np.ndarray:
        pattern_a, pattern_b = self._rate.value
        period = len(pattern_a)
        out: list[int] = []
        for n in range(coded_a.size):
            pos = n % period
            if pattern_a[pos]:
                out.append(int(coded_a[n]))
            if pattern_b[pos]:
                out.append(int(coded_b[n]))
        return np.array(out, dtype=np.uint8)

    def coded_length(self, n_info_bits: int) -> int:
        """Number of transmitted coded bits for ``n_info_bits`` inputs."""
        pattern_a, pattern_b = self._rate.value
        period = len(pattern_a)
        full, rem = divmod(n_info_bits, period)
        count = full * self._rate.denominator
        for pos in range(rem):
            count += pattern_a[pos] + pattern_b[pos]
        return count

    # ------------------------------------------------------------------
    # Decoding

    def _depuncture(self, soft: np.ndarray, n_info_bits: int) -> tuple[np.ndarray, np.ndarray]:
        """Spread punctured soft bits back onto the A/B streams.

        Erased positions get metric 0 (no information).
        """
        pattern_a, pattern_b = self._rate.value
        period = len(pattern_a)
        soft_a = np.zeros(n_info_bits, dtype=np.float64)
        soft_b = np.zeros(n_info_bits, dtype=np.float64)
        idx = 0
        for n in range(n_info_bits):
            pos = n % period
            if pattern_a[pos]:
                if idx >= soft.size:
                    raise DecodeError("soft input shorter than expected")
                soft_a[n] = soft[idx]
                idx += 1
            if pattern_b[pos]:
                if idx >= soft.size:
                    raise DecodeError("soft input shorter than expected")
                soft_b[n] = soft[idx]
                idx += 1
        if idx != soft.size:
            raise DecodeError(
                f"soft input length {soft.size} does not match "
                f"{n_info_bits} information bits at rate {self._rate.name}"
            )
        return soft_a, soft_b

    def decode(self, soft: np.ndarray, n_info_bits: int) -> np.ndarray:
        """Soft-decision Viterbi decode.

        ``soft`` holds one value per *transmitted* coded bit with the
        bipolar convention: positive means bit 0 is more likely
        (soft = 1 - 2*bit for hard decisions).  The encoder is assumed
        to start in state 0; if the caller included tail bits they are
        part of ``n_info_bits`` and can be stripped afterwards.
        """
        soft = np.asarray(soft, dtype=np.float64)
        if n_info_bits < 1:
            raise DecodeError("n_info_bits must be >= 1")
        soft_a, soft_b = self._depuncture(soft, n_info_bits)

        metrics = np.full(_NUM_STATES, -np.inf)
        metrics[0] = 0.0
        decisions = np.zeros((n_info_bits, _NUM_STATES), dtype=np.uint8)
        # Bipolar branch outputs for both incoming branches of each state.
        bip_a = 1.0 - 2.0 * _PREV_OUT_A
        bip_b = 1.0 - 2.0 * _PREV_OUT_B
        for n in range(n_info_bits):
            cand = (metrics[_PREV_STATE]
                    + soft_a[n] * bip_a + soft_b[n] * bip_b)
            best = np.argmax(cand, axis=1)
            decisions[n] = best
            metrics = cand[np.arange(_NUM_STATES), best]

        state = int(np.argmax(metrics))
        bits = np.empty(n_info_bits, dtype=np.uint8)
        for n in range(n_info_bits - 1, -1, -1):
            branch = decisions[n, state]
            bits[n] = _PREV_BIT[state, branch]
            state = int(_PREV_STATE[state, branch])
        return bits

    def decode_hard(self, coded_bits: np.ndarray, n_info_bits: int) -> np.ndarray:
        """Viterbi decode from hard decisions (0/1 coded bits)."""
        coded_bits = np.asarray(coded_bits, dtype=np.float64)
        return self.decode(1.0 - 2.0 * coded_bits, n_info_bits)
