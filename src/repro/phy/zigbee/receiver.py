"""An 802.15.4 receiver: chip correlation and symbol decisions.

Completes :mod:`repro.phy.zigbee.frame`: O-QPSK chip-rail sampling,
bank correlation against the sixteen PN sequences for each symbol
slot, SFD verification, and PSDU extraction via the frame-length
octet.  Like real 802.15.4 receivers it exploits the near-orthogonal
chip sequences: a symbol decision needs only the best of sixteen
32-chip correlations, giving large coding gain at low SNR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecodeError
from repro.phy.zigbee import params as p

#: Samples per chip slot on each rail.
_SPC = p.SAMPLES_PER_CHIP


@dataclass
class ZigbeeReceiveResult:
    """Outcome of one 802.15.4 receive attempt."""

    psdu: bytes
    frame_start: int
    symbol_errors_corrected: int


def _chip_estimates(samples: np.ndarray, start: int,
                    n_chips: int) -> np.ndarray:
    """Soft chip values from the half-sine O-QPSK rails.

    Chip ``k`` peaks at sample ``start + k*SPC + SPC`` (the half-sine
    maximum), on the I rail for even chips, Q (delayed one chip) for
    odd chips.
    """
    soft = np.empty(n_chips, dtype=np.float64)
    for k in range(n_chips):
        index = start + k * _SPC + _SPC
        if index >= samples.size:
            raise DecodeError("capture truncated inside a symbol")
        value = samples[index]
        soft[k] = value.real if k % 2 == 0 else value.imag
    return soft


_BIPOLAR_BANK = np.array([1 - 2 * p.chip_sequence(s).astype(np.int64)
                          for s in range(16)], dtype=np.float64)


def _decide_symbol(soft_chips: np.ndarray) -> tuple[int, float]:
    """Best-matching symbol and its normalized correlation score."""
    scores = _BIPOLAR_BANK @ soft_chips
    best = int(np.argmax(scores))
    norm = np.linalg.norm(soft_chips) * np.sqrt(32.0)
    score = float(scores[best] / norm) if norm > 0 else 0.0
    return best, score


class ZigbeeReceiver:
    """Decoder for 4 MSPS 802.15.4 captures."""

    def __init__(self, sync_threshold: float = 0.5) -> None:
        self._sync_threshold = float(sync_threshold)
        self._preamble_chips = 1 - 2 * p.chip_sequence(0).astype(np.float64)

    def synchronize(self, samples: np.ndarray) -> int:
        """Find the frame start via the repeated symbol-0 sequence.

        Returns the sample index where chip 0 of the preamble begins
        (i.e. one chip-period before the first half-sine peak).
        """
        samples = np.asarray(samples, dtype=np.complex128)
        span = p.CHIPS_PER_SYMBOL * _SPC
        if samples.size < 3 * span:
            raise DecodeError("capture shorter than three symbols")
        best_offset = -1
        best_score = 0.0
        # Chip-slot search over two symbol periods; the preamble
        # repeats, so any alignment inside it locks.
        for offset in range(0, 2 * span, _SPC):
            try:
                soft = _chip_estimates(samples, offset - _SPC,
                                       p.CHIPS_PER_SYMBOL)
            except DecodeError:
                break
            score = float(np.dot(self._preamble_chips, soft)
                          / (np.linalg.norm(soft) * np.sqrt(32.0) + 1e-12))
            if score > best_score:
                best_score = score
                best_offset = offset
        if best_score < self._sync_threshold or best_offset < 0:
            raise DecodeError("no 802.15.4 preamble found")
        return best_offset

    def receive(self, samples: np.ndarray) -> ZigbeeReceiveResult:
        """Decode the first PPDU in a 4 MSPS capture."""
        samples = np.asarray(samples, dtype=np.complex128)
        start = self.synchronize(samples)
        span = p.CHIPS_PER_SYMBOL * _SPC

        # Walk symbols until the SFD octet (0xA7 = symbols 7, A).
        symbols = []
        offset = start
        max_symbols = (samples.size - start) // span
        for _ in range(min(max_symbols, 2 * (6 + p.MAX_PSDU_BYTES))):
            soft = _chip_estimates(samples, offset - _SPC,
                                   p.CHIPS_PER_SYMBOL)
            symbol, _score = _decide_symbol(soft)
            symbols.append(symbol)
            offset += span
        # Find the SFD pair (7, 10) after at least two zero symbols.
        sfd_at = -1
        for n in range(2, len(symbols) - 1):
            if symbols[n] == 0x7 and symbols[n + 1] == 0xA \
                    and symbols[n - 1] == 0 and symbols[n - 2] == 0:
                sfd_at = n
                break
        if sfd_at < 0:
            raise DecodeError("no SFD found after the preamble")

        after_sfd = symbols[sfd_at + 2:]
        if len(after_sfd) < 2:
            raise DecodeError("capture truncated at the frame length")
        length = after_sfd[0] | (after_sfd[1] << 4)
        if not 1 <= length <= p.MAX_PSDU_BYTES:
            raise DecodeError(f"implausible frame length {length}")
        needed = 2 * length
        payload_symbols = after_sfd[2:2 + needed]
        if len(payload_symbols) < needed:
            raise DecodeError("capture truncated inside the PSDU")
        psdu = bytes(
            payload_symbols[2 * k] | (payload_symbols[2 * k + 1] << 4)
            for k in range(length)
        )
        return ZigbeeReceiveResult(
            psdu=psdu, frame_start=start, symbol_errors_corrected=0,
        )
