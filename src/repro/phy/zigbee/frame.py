"""802.15.4 PPDU assembly and half-sine O-QPSK modulation.

A PPDU is: preamble (4 zero octets) | SFD (0xA7) | frame length |
PSDU.  The chip stream is modulated O-QPSK: even-indexed chips drive
the I rail and odd-indexed chips the Q rail, each chip shaped as a
half-sine spanning two chip periods, with the Q rail offset by one
chip period (IEEE 802.15.4-2006 §6.5.3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.zigbee import params as p
from repro.runtime.cache import cached_artifact


def _rail(chips: np.ndarray, n_total_chips: int) -> np.ndarray:
    """One O-QPSK rail: half-sine pulses at 2-chip spacing.

    ``chips`` holds the rail's chip values (+-1); pulse ``k`` is
    centred on chip slot ``2k`` of the full chip grid and spans two
    chip periods.
    """
    spc = p.SAMPLES_PER_CHIP
    out = np.zeros((n_total_chips + 2) * spc, dtype=np.float64)
    pulse = np.sin(np.pi * np.arange(2 * spc) / (2 * spc))
    for k, chip in enumerate(chips):
        start = 2 * k * spc
        out[start:start + pulse.size] += chip * pulse
    return out


def oqpsk_modulate(chips: np.ndarray) -> np.ndarray:
    """Half-sine O-QPSK waveform for a chip stream at 4 MSPS.

    Returns complex baseband with mean power ~1.0 over the burst.
    """
    chips = np.asarray(chips, dtype=np.int64)
    if chips.size % 2:
        raise ConfigurationError("O-QPSK needs an even number of chips")
    bipolar = 1 - 2 * chips
    i_rail = _rail(bipolar[0::2], chips.size)
    q_rail = _rail(bipolar[1::2], chips.size)
    # The Q rail is delayed by one chip period.
    spc = p.SAMPLES_PER_CHIP
    q_delayed = np.zeros_like(q_rail)
    q_delayed[spc:] = q_rail[:-spc]
    waveform = i_rail + 1j * q_delayed
    power = float(np.mean(np.abs(waveform) ** 2))
    return waveform / np.sqrt(power)


def _phy_header_octets(psdu_len: int) -> bytes:
    if not 1 <= psdu_len <= p.MAX_PSDU_BYTES:
        raise ConfigurationError(
            f"PSDU length {psdu_len} outside 1..{p.MAX_PSDU_BYTES}"
        )
    return bytes([0, 0, 0, 0, p.SFD_OCTET, psdu_len])


def build_ppdu(psdu: bytes) -> np.ndarray:
    """A complete 802.15.4 PPDU as complex baseband at 4 MSPS."""
    if not psdu:
        raise ConfigurationError("PSDU must not be empty")
    octets = _phy_header_octets(len(psdu)) + psdu
    symbols = p.octets_to_symbols(octets)
    chips = p.symbols_to_chips(symbols)
    return oqpsk_modulate(chips)


@cached_artifact
def preamble_waveform() -> np.ndarray:
    """Just the 128 us preamble (8 zero symbols), for templates."""
    symbols = np.zeros(p.PREAMBLE_SYMBOLS, dtype=np.uint8)
    chips = p.symbols_to_chips(symbols)
    return oqpsk_modulate(chips)


def ppdu_duration_s(psdu_bytes: int) -> float:
    """Air time of a PPDU in seconds."""
    octets = 6 + psdu_bytes  # preamble + SFD + length + PSDU
    return octets * 2 * p.CHIPS_PER_SYMBOL / p.CHIP_RATE


def preamble_duration_s() -> float:
    """Air time of the preamble alone (128 us)."""
    return p.PREAMBLE_SYMBOLS * p.CHIPS_PER_SYMBOL / p.CHIP_RATE
