"""802.15.4 2.4 GHz PHY constants and the symbol-to-chip table.

IEEE 802.15.4-2006 §6.5.2: each 4-bit symbol maps to one of sixteen
nearly-orthogonal 32-chip PN sequences; symbols 1..7 are 4-chip cyclic
shifts of the symbol-0 base sequence, and symbols 8..15 are the same
sequences with the odd-indexed (Q) chips inverted.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: Chip rate of the 2.4 GHz PHY (chips/s).
CHIP_RATE = 2_000_000

#: Native simulation sampling rate: 2 samples per chip.
SAMPLES_PER_CHIP = 2
ZIGBEE_SAMPLE_RATE = CHIP_RATE * SAMPLES_PER_CHIP

#: Chips per symbol and bits per symbol.
CHIPS_PER_SYMBOL = 32
BITS_PER_SYMBOL = 4

#: Symbol rate (62.5 ksym/s) and bit rate (250 kb/s).
SYMBOL_RATE = CHIP_RATE / CHIPS_PER_SYMBOL
BIT_RATE = SYMBOL_RATE * BITS_PER_SYMBOL

#: The symbol-0 base chip sequence (IEEE 802.15.4-2006 Table 24).
_BASE_CHIPS = np.array([
    1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
    0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0,
], dtype=np.uint8)

#: Preamble: 8 zero symbols (4 octets of 0x00) = 256 chips = 128 us.
PREAMBLE_SYMBOLS = 8

#: Start-of-frame delimiter octet.
SFD_OCTET = 0xA7

#: Maximum PSDU length (bytes).
MAX_PSDU_BYTES = 127


def chip_sequence(symbol: int) -> np.ndarray:
    """The 32-chip PN sequence for a 4-bit symbol (0..15)."""
    if not 0 <= symbol <= 15:
        raise ConfigurationError(f"symbol {symbol} outside 0..15")
    shift = 4 * (symbol % 8)
    chips = np.roll(_BASE_CHIPS, shift).copy()
    if symbol >= 8:
        chips[1::2] ^= 1  # invert the Q chips
    return chips


def octets_to_symbols(octets: bytes) -> np.ndarray:
    """Split octets into 4-bit symbols, low nibble first (§6.5.2.2)."""
    symbols = np.empty(2 * len(octets), dtype=np.uint8)
    for n, octet in enumerate(octets):
        symbols[2 * n] = octet & 0x0F
        symbols[2 * n + 1] = octet >> 4
    return symbols


def symbols_to_chips(symbols: np.ndarray) -> np.ndarray:
    """Spread a symbol stream to its chip stream."""
    if len(symbols) == 0:
        return np.zeros(0, dtype=np.uint8)
    return np.concatenate([chip_sequence(int(s)) for s in symbols])
