"""IEEE 802.15.4 (Zigbee) 2.4 GHz O-QPSK physical layer.

The paper's sole prior-art real-time SDR reactive jammer is Wilhelm et
al. (WiSec 2011), which operates on "low-rate, Zigbee-based 802.15.4
networks"; the paper's contribution is extending reactive jamming to
*high-speed* standards.  This package implements the 802.15.4 PHY so
that baseline scenario can be reproduced on the same framework and
compared against the WiFi/WiMAX results: at 250 kb/s with a 128 us
preamble, the jammer's 2.64 us response time is overwhelming — which
is exactly why the paper calls low-rate reactive jamming the easy
case.

Implements the 2.4 GHz DSSS PHY of IEEE 802.15.4-2006 §6.5: 4-bit
symbols spread to 32-chip PN sequences at 2 Mchip/s, modulated with
half-sine-shaped O-QPSK at a native 4 MSPS (2 samples/chip).
"""

from __future__ import annotations

from repro.phy.zigbee.params import (
    CHIP_RATE,
    ZIGBEE_SAMPLE_RATE,
    chip_sequence,
)
from repro.phy.zigbee.frame import (
    build_ppdu,
    oqpsk_modulate,
    ppdu_duration_s,
    preamble_waveform,
)

__all__ = [
    "CHIP_RATE",
    "ZIGBEE_SAMPLE_RATE",
    "chip_sequence",
    "build_ppdu",
    "oqpsk_modulate",
    "ppdu_duration_s",
    "preamble_waveform",
]
