"""Constellation mapping for 802.11 OFDM (BPSK through 64-QAM).

Mappings follow IEEE 802.11-2012 §18.3.5.8: Gray-coded square
constellations with the standard normalization factors so every
modulation has unit average energy.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import StreamError

_BPSK_TABLE = np.array([-1.0, 1.0])

_QPSK_LEVELS = np.array([-1.0, 1.0]) / np.sqrt(2.0)

# Axis tables are indexed by the LSB-first integer formed from the
# axis bits; the orderings below realize the standard's Gray code
# (e.g. 16-QAM I axis: b0b1 = 00->-3, 01->-1, 11->+1, 10->+3).
_16QAM_LEVELS = np.array([-3.0, 3.0, -1.0, 1.0]) / np.sqrt(10.0)

_64QAM_LEVELS = np.array([-7.0, 7.0, -1.0, 1.0, -5.0, 5.0, -3.0, 3.0]) / np.sqrt(42.0)


class Modulation(enum.Enum):
    """Subcarrier modulations with their bit widths."""

    BPSK = 1
    QPSK = 2
    QAM16 = 4
    QAM64 = 6

    @property
    def bits_per_symbol(self) -> int:
        """Coded bits carried per subcarrier."""
        return self.value


def _axis_levels(modulation: Modulation) -> np.ndarray:
    if modulation is Modulation.QPSK:
        return _QPSK_LEVELS
    if modulation is Modulation.QAM16:
        return _16QAM_LEVELS
    if modulation is Modulation.QAM64:
        return _64QAM_LEVELS
    raise StreamError(f"no axis levels for {modulation}")


def map_bits(bits: np.ndarray, modulation: Modulation) -> np.ndarray:
    """Map a coded bit stream to constellation points.

    Bits are consumed ``bits_per_symbol`` at a time; for the QAM
    constellations the first half addresses the I axis and the second
    half the Q axis (LSB-first Gray coding per the standard tables).
    """
    bits = np.asarray(bits, dtype=np.uint8)
    width = modulation.bits_per_symbol
    if bits.size % width:
        raise StreamError(
            f"bit count {bits.size} not a multiple of {width} for {modulation.name}"
        )
    groups = bits.reshape(-1, width)
    if modulation is Modulation.BPSK:
        return _BPSK_TABLE[groups[:, 0]].astype(np.complex128)
    levels = _axis_levels(modulation)
    half = width // 2
    weights = 1 << np.arange(half)
    i_index = groups[:, :half] @ weights
    q_index = groups[:, half:] @ weights
    return levels[i_index] + 1j * levels[q_index]


def demap_bits(symbols: np.ndarray, modulation: Modulation,
               noise_var: float = 1.0) -> np.ndarray:
    """Soft demap constellation points to per-bit bipolar metrics.

    Returns one soft value per coded bit with positive meaning "bit 0"
    (the Viterbi decoder's convention).  Uses the max-log-MAP
    approximation; ``noise_var`` scales the metric but does not change
    hard decisions.
    """
    symbols = np.asarray(symbols, dtype=np.complex128)
    width = modulation.bits_per_symbol
    if modulation is Modulation.BPSK:
        return (-symbols.real * 2.0 / noise_var).reshape(-1)
    levels = _axis_levels(modulation)
    half = width // 2
    soft = np.empty((symbols.size, width), dtype=np.float64)
    for axis, values in ((0, symbols.real), (1, symbols.imag)):
        # Distance from each received coordinate to each axis level.
        dist = (values[:, None] - levels[None, :]) ** 2
        for bit in range(half):
            mask = ((np.arange(levels.size) >> bit) & 1).astype(bool)
            d0 = np.min(dist[:, ~mask], axis=1)
            d1 = np.min(dist[:, mask], axis=1)
            soft[:, axis * half + bit] = (d1 - d0) / noise_var
    return soft.reshape(-1)


def hard_decide(symbols: np.ndarray, modulation: Modulation) -> np.ndarray:
    """Hard-decision demapping (nearest constellation point)."""
    soft = demap_bits(symbols, modulation)
    return (soft < 0).astype(np.uint8)
