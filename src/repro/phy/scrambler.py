"""The 802.11 frame-synchronous scrambler.

The DATA field of an 802.11 OFDM PPDU is scrambled with a 7-bit LFSR
implementing ``S(x) = x^7 + x^4 + 1`` (IEEE 802.11-2012 §18.3.5.5).
The scrambler is self-synchronizing in the sense that descrambling is
the same operation with the same initial state; the receiver recovers
the transmitter's initial state from the seven SERVICE-field zero bits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def scrambler_sequence(seed: int, length: int) -> np.ndarray:
    """The scrambler's pseudo-random bit sequence for a given seed.

    ``seed`` is the 7-bit initial register state (non-zero).
    """
    if not 1 <= seed <= 0x7F:
        raise ConfigurationError("scrambler seed must be a non-zero 7-bit value")
    state = seed
    out = np.empty(length, dtype=np.uint8)
    for n in range(length):
        feedback = ((state >> 6) ^ (state >> 3)) & 1
        out[n] = feedback
        state = ((state << 1) | feedback) & 0x7F
    return out


def scramble(bits: np.ndarray, seed: int) -> np.ndarray:
    """Scramble (or descramble) a bit array with the 802.11 LFSR."""
    bits = np.asarray(bits, dtype=np.uint8)
    return bits ^ scrambler_sequence(seed, bits.size)


def recover_seed(descrambled_prefix: np.ndarray, scrambled_prefix: np.ndarray) -> int:
    """Recover the scrambler seed from the first 7 bits.

    The SERVICE field starts with 7 zero bits, so the first 7 scrambled
    bits *are* the scrambler sequence; running the LFSR backwards from
    them yields the initial state.  ``descrambled_prefix`` is the known
    plaintext (all zeros for 802.11) and ``scrambled_prefix`` the
    received bits.
    """
    descrambled_prefix = np.asarray(descrambled_prefix, dtype=np.uint8)
    scrambled_prefix = np.asarray(scrambled_prefix, dtype=np.uint8)
    if descrambled_prefix.size < 7 or scrambled_prefix.size < 7:
        raise ConfigurationError("need at least 7 bits to recover the seed")
    sequence = (descrambled_prefix[:7] ^ scrambled_prefix[:7]).astype(np.uint8)
    # The first 7 output bits, oldest first, reconstruct the state: the
    # LFSR state after 7 shifts is exactly those 7 bits; rewinding 7
    # shifts gives the seed.  Feedback bit n is state[6]^state[3] before
    # shift; simulate all 127 states and match instead of inverting —
    # robust and cheap.
    for seed in range(1, 128):
        if np.array_equal(scrambler_sequence(seed, 7), sequence):
            return seed
    raise ConfigurationError("no scrambler seed reproduces the observed prefix")
