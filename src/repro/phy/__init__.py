"""Physical-layer implementations of the paper's two target standards.

* :mod:`repro.phy.wifi` — 802.11g OFDM (ERP-OFDM): preambles, SIGNAL
  field, and full data frames at 20 MSPS, plus a receiver used for
  calibration and a SINR->PER link model used by the MAC simulation.
* :mod:`repro.phy.wimax` — mobile WiMAX 802.16e OFDMA downlink:
  preamble carrier sets with their PN modulation, and TDD downlink
  frames at the Airspan base station's 11.4 MHz sampling rate.

Shared building blocks (scrambling, convolutional coding, interleaving,
constellation mapping, CRC) live at this level because both standards
draw from the same toolbox.
"""

from __future__ import annotations

from repro.phy.bits import (
    bits_to_bytes,
    bytes_to_bits,
    crc32,
)
from repro.phy.modulation import Modulation
from repro.phy.coding import ConvolutionalCode, CodeRate

__all__ = [
    "bits_to_bytes",
    "bytes_to_bits",
    "crc32",
    "Modulation",
    "ConvolutionalCode",
    "CodeRate",
]
