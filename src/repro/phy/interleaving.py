"""The 802.11 OFDM block interleaver (IEEE 802.11-2012 §18.3.5.7).

Operates on one OFDM symbol's worth of coded bits (``n_cbps``).  The
two-step permutation spreads adjacent coded bits across non-adjacent
subcarriers and alternating significance positions:

* first permutation: ``i = (n_cbps/16) * (k mod 16) + floor(k/16)``
* second permutation:
  ``j = s*floor(i/s) + (i + n_cbps - floor(16*i/n_cbps)) mod s``
  with ``s = max(n_bpsc/2, 1)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, StreamError


def interleave_indices(n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Permutation such that ``out[j] = in[k]`` maps coded bit k -> j."""
    if n_cbps % 16:
        raise ConfigurationError("n_cbps must be a multiple of 16")
    if n_bpsc < 1:
        raise ConfigurationError("n_bpsc must be >= 1")
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbps)
    i = (n_cbps // 16) * (k % 16) + k // 16
    j = s * (i // s) + (i + n_cbps - (16 * i // n_cbps)) % s
    return j


def interleave(bits: np.ndarray, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Interleave a multiple of ``n_cbps`` coded bits symbol-by-symbol."""
    bits = np.asarray(bits)
    if bits.size % n_cbps:
        raise StreamError(
            f"bit count {bits.size} not a multiple of the symbol size {n_cbps}"
        )
    idx = interleave_indices(n_cbps, n_bpsc)
    out = np.empty_like(bits)
    for start in range(0, bits.size, n_cbps):
        block = bits[start:start + n_cbps]
        scrambled = np.empty_like(block)
        scrambled[idx] = block
        out[start:start + n_cbps] = scrambled
    return out


def deinterleave(bits: np.ndarray, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Inverse of :func:`interleave` (also works on soft values)."""
    bits = np.asarray(bits)
    if bits.size % n_cbps:
        raise StreamError(
            f"bit count {bits.size} not a multiple of the symbol size {n_cbps}"
        )
    idx = interleave_indices(n_cbps, n_bpsc)
    out = np.empty_like(bits)
    for start in range(0, bits.size, n_cbps):
        block = bits[start:start + n_cbps]
        out[start:start + n_cbps] = block[idx]
    return out
