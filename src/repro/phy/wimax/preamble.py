"""The 802.16e OFDMA downlink preamble symbol.

Each TDD frame opens with a single OFDMA symbol whose subcarriers are
BPSK-modulated by a PN sequence.  Three carrier sets exist::

    PreambleCarrierSet_n = n + 3 * k,   k = 0 .. 283

offset into the used band (86 guard carriers per edge), so each set
occupies every third subcarrier and the sets are disjoint.  The set —
and the 284-value PN sequence on it — is selected by the base
station's IDcell and Segment (paper §5: Cell ID 1, Segment 0).

**Substitution note (DESIGN.md §2):** the standard specifies the PN
values as a long hex table per (IDcell, segment); reproducing that
table verbatim is not needed for any of the paper's observables — the
jammer treats the preamble as an unknown-but-stable low-entropy code.
We generate the 284 values from a maximal-length LFSR seeded by
(IDcell, segment), preserving the structure that matters: a
deterministic, set-specific, +-1 pseudo-noise modulation.

In the time domain, occupying every third subcarrier makes the symbol
(pseudo-)periodic with period ``fft_size / 3`` ~ 341 samples ~ 30 us;
the paper rounds this to "an orthogonal code of 284 samples that
repeats itself 3 times ... total duration 25 us".  Either way the code
is far longer than the jammer's 64-sample correlation window — the
root of the 2/3 misdetection rate in Fig. 12.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.ofdm import ofdm_modulate
from repro.dsp.sequences import pn_sequence
from repro.errors import ConfigurationError
from repro.phy.wimax import params as p
from repro.runtime.cache import cached_artifact


def preamble_carriers(segment: int) -> np.ndarray:
    """Logical subcarrier indices of one preamble carrier set.

    Returns 284 indices in [-fft/2, fft/2), every third carrier of the
    used band starting at offset ``segment``.
    """
    if not 0 <= segment < p.NUM_PREAMBLE_SETS:
        raise ConfigurationError(f"segment {segment} out of range")
    # Used band spans carrier 86 .. 86 + 851 in FFT-shifted indexing.
    first_used = p.PREAMBLE_GUARD_CARRIERS
    physical = first_used + segment + 3 * np.arange(p.PREAMBLE_PN_LENGTH)
    logical = physical - p.WIMAX_FFT_SIZE // 2
    # Skip DC if a set lands on it (carrier 512 physical = 0 logical).
    return logical[logical != 0] if np.any(logical == 0) else logical


def preamble_pn_sequence(cell_id: int, segment: int) -> np.ndarray:
    """The +-1 modulation sequence for one (IDcell, segment) pair."""
    if not 0 <= cell_id <= 31:
        raise ConfigurationError("cell_id must be in [0, 31]")
    if not 0 <= segment < p.NUM_PREAMBLE_SETS:
        raise ConfigurationError(f"segment {segment} out of range")
    seed = (cell_id * p.NUM_PREAMBLE_SETS + segment) * 37 + 11
    return pn_sequence(p.PREAMBLE_PN_LENGTH, seed=seed & 0x7FF or 11)


@cached_artifact
def preamble_symbol(cell_id: int = 1, segment: int = 0) -> np.ndarray:
    """One preamble OFDMA symbol (CP included) at unit average power.

    1152 samples = 101 us at 11.4 MHz, matching the paper's
    "single OFDMA symbol ... lasting for 100.8 us".
    """
    carriers = preamble_carriers(segment)
    values = preamble_pn_sequence(cell_id, segment)[:carriers.size]
    symbol = ofdm_modulate(p.WIMAX_OFDM, carriers,
                           values.astype(np.complex128))
    power = float(np.mean(np.abs(symbol) ** 2))
    return symbol / np.sqrt(power)
