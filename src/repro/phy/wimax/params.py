"""802.16e OFDMA numerology for the paper's base-station configuration.

Values follow the experiment in paper §5: TDD, 10 MHz channel,
11.4 MHz sampling rate, 1024-point FFT, preamble carrier sets selected
by Cell ID and Segment ID.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsp.ofdm import OfdmParameters
from repro.errors import ConfigurationError

#: Hardware sampling rate the paper's base station uses (Hz).
WIMAX_SAMPLE_RATE = 11_400_000

#: FFT size for the 10 MHz OFDMA profile.
WIMAX_FFT_SIZE = 1024

#: Cyclic prefix fraction (G = 1/8, the common WiMAX profile).
WIMAX_CP_LENGTH = WIMAX_FFT_SIZE // 8

WIMAX_OFDM = OfdmParameters(
    fft_size=WIMAX_FFT_SIZE,
    cp_length=WIMAX_CP_LENGTH,
    sample_rate=WIMAX_SAMPLE_RATE,
)

#: Guard subcarriers on each spectrum edge for the preamble symbol
#: (paper: "86 guard band subcarriers on each side").
PREAMBLE_GUARD_CARRIERS = 86

#: Values per preamble PN sequence (paper: "a different 284-value PN
#: sequence" per carrier set).
PREAMBLE_PN_LENGTH = 284

#: Number of preamble carrier sets (segments 0..2).
NUM_PREAMBLE_SETS = 3

#: TDD frame duration (5 ms, the standard WiMAX TDD frame).
FRAME_DURATION_S = 0.005

#: Downlink subframe length in OFDMA symbols (preamble included); the
#: remainder of the 5 ms frame is uplink/idle as seen from the BS.
DEFAULT_DL_SYMBOLS = 29


@dataclass(frozen=True)
class WimaxConfig:
    """Base-station identity and TDD split.

    Attributes:
        cell_id: IDcell, 0..31.
        segment: Segment ID, 0..2 — selects the preamble carrier set.
        dl_symbols: Downlink OFDMA symbols per frame, preamble included.
    """

    cell_id: int = 1
    segment: int = 0
    dl_symbols: int = DEFAULT_DL_SYMBOLS

    def __post_init__(self) -> None:
        if not 0 <= self.cell_id <= 31:
            raise ConfigurationError("cell_id must be in [0, 31]")
        if not 0 <= self.segment < NUM_PREAMBLE_SETS:
            raise ConfigurationError(
                f"segment must be in [0, {NUM_PREAMBLE_SETS})"
            )
        if self.dl_symbols < 1:
            raise ConfigurationError("dl_symbols must be >= 1")
        frame_samples = int(FRAME_DURATION_S * WIMAX_SAMPLE_RATE)
        if self.dl_symbols * WIMAX_OFDM.symbol_length > frame_samples:
            raise ConfigurationError(
                "downlink subframe does not fit the 5 ms TDD frame"
            )

    @property
    def frame_samples(self) -> int:
        """Total samples in one 5 ms TDD frame at 11.4 MHz."""
        return int(FRAME_DURATION_S * WIMAX_SAMPLE_RATE)
