"""The WiMAX Frame Control Header (FCH / DL Frame Prefix).

The OFDMA symbol after the preamble opens with the FCH: 24 bits of
DL Frame Prefix (used-subchannel bitmap, repetition and coding of the
DL-MAP, its length) protected by rate-1/2 convolutional coding and
4x repetition, QPSK-modulated on the first subchannels.  Every
receiver must decode it before anything else in the frame — which is
exactly why the paper's "surgical jamming ... its ability to target
critical information contained in a wireless PHY packet" applies: a
microsecond burst on the FCH blinds the whole frame.

The structure here follows IEEE 802.16e-2005 §8.4.4.3 at symbol-level
fidelity (bit fields, coding, repetition); subchannel permutation is
simplified to the first carriers of the symbol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DecodeError
from repro.phy.coding import CodeRate, ConvolutionalCode
from repro.phy.modulation import Modulation, demap_bits, map_bits

#: DL Frame Prefix width in bits.
DLFP_BITS = 24

#: Repetition factor applied after coding (the standard's R=4).
REPETITION = 4

#: Coded-and-repeated bit count: 24 -> 48 -> 192.
FCH_CODED_BITS = 2 * DLFP_BITS * REPETITION

#: QPSK symbols the FCH occupies (192 bits / 2).
FCH_SYMBOLS = FCH_CODED_BITS // 2

_CODE = ConvolutionalCode(CodeRate.R1_2)


@dataclass(frozen=True)
class DlFramePrefix:
    """The decoded DL Frame Prefix fields.

    Attributes:
        used_subchannels: 6-bit bitmap of used subchannel groups.
        repetition_coding: 2-bit repetition code of the DL-MAP.
        coding_indication: 3-bit FEC selector for the DL-MAP.
        dlmap_length: DL-MAP length in slots (8 bits).
    """

    used_subchannels: int = 0b111111
    repetition_coding: int = 0
    coding_indication: int = 0
    dlmap_length: int = 10

    def __post_init__(self) -> None:
        if not 0 <= self.used_subchannels < (1 << 6):
            raise ConfigurationError("used_subchannels must fit 6 bits")
        if not 0 <= self.repetition_coding < (1 << 2):
            raise ConfigurationError("repetition_coding must fit 2 bits")
        if not 0 <= self.coding_indication < (1 << 3):
            raise ConfigurationError("coding_indication must fit 3 bits")
        if not 0 <= self.dlmap_length < (1 << 8):
            raise ConfigurationError("dlmap_length must fit 8 bits")

    def to_bits(self) -> np.ndarray:
        """The 24-bit DLFP, MSB-first per field, reserved bits zero."""
        bits = np.zeros(DLFP_BITS, dtype=np.uint8)
        fields = [
            (self.used_subchannels, 6),
            (0, 1),                       # reserved
            (self.repetition_coding, 2),
            (self.coding_indication, 3),
            (self.dlmap_length, 8),
            (0, 4),                       # reserved
        ]
        pos = 0
        for value, width in fields:
            for k in range(width):
                bits[pos + k] = (value >> (width - 1 - k)) & 1
            pos += width
        return bits

    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "DlFramePrefix":
        """Parse 24 decoded bits back into fields."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size != DLFP_BITS:
            raise DecodeError(f"DLFP needs {DLFP_BITS} bits, got {bits.size}")

        def take(pos: int, width: int) -> int:
            value = 0
            for k in range(width):
                value = (value << 1) | int(bits[pos + k])
            return value

        if take(6, 1) or take(20, 4):
            raise DecodeError("DLFP reserved bits are set")
        return cls(
            used_subchannels=take(0, 6),
            repetition_coding=take(7, 2),
            coding_indication=take(9, 3),
            dlmap_length=take(12, 8),
        )


def encode_fch(prefix: DlFramePrefix) -> np.ndarray:
    """DLFP -> QPSK constellation points (96 of them)."""
    coded = _CODE.encode(prefix.to_bits())
    repeated = np.tile(coded, REPETITION)
    return map_bits(repeated, Modulation.QPSK)


def decode_fch(points: np.ndarray) -> DlFramePrefix:
    """QPSK points -> DLFP, soft-combining the four repetitions."""
    points = np.asarray(points, dtype=np.complex128)
    if points.size != FCH_SYMBOLS:
        raise DecodeError(
            f"the FCH occupies {FCH_SYMBOLS} QPSK symbols, got {points.size}"
        )
    soft = demap_bits(points, Modulation.QPSK)
    combined = soft.reshape(REPETITION, 2 * DLFP_BITS).sum(axis=0)
    bits = _CODE.decode(combined, DLFP_BITS)
    return DlFramePrefix.from_bits(bits)
