"""WiMAX downlink preamble receiver: frame sync and cell search.

The paper "lack[ed] a functional WiMAX receiver" and evaluated at the
PHY level with an oscilloscope.  This module supplies the receive-side
piece the paper's protocol-aware attacks would want: given a downlink
capture, find the frame timing and identify *which* base station is
transmitting — the (IDcell, segment) pair selects the preamble carrier
set and PN sequence, so a bank correlator over the candidate preambles
recovers it.

This enables targeted jamming ("jam only cell 7") and is the WiMAX
analogue of the 802.11 receiver's role in the framework: calibration
and protocol awareness, not data recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.measure import normalized_cross_correlation
from repro.errors import DecodeError
from repro.phy.wimax import params as p
from repro.phy.wimax.preamble import preamble_symbol


@dataclass(frozen=True)
class CellSearchResult:
    """Outcome of one cell search."""

    cell_id: int
    segment: int
    frame_start: int
    correlation: float


class WimaxCellSearcher:
    """Identifies (IDcell, segment) from a downlink capture.

    The search correlates the capture against the candidate preamble
    waveforms (CP excluded, so timing needs only symbol-level
    alignment) and picks the strongest.  Real handsets search all 114
    preamble indices; restrict ``cell_ids`` to keep tests fast.
    """

    def __init__(self, cell_ids: list[int] | None = None,
                 segments: list[int] | None = None,
                 threshold: float = 0.25) -> None:
        self._cell_ids = cell_ids if cell_ids is not None else list(range(4))
        self._segments = segments if segments is not None else [0, 1, 2]
        self._threshold = float(threshold)
        self._bank: dict[tuple[int, int], np.ndarray] = {}
        for cell_id in self._cell_ids:
            for segment in self._segments:
                symbol = preamble_symbol(cell_id, segment)
                self._bank[(cell_id, segment)] = symbol[p.WIMAX_CP_LENGTH:]

    def search(self, capture: np.ndarray) -> CellSearchResult:
        """Find the best-matching cell in an 11.4 MHz capture.

        Raises :class:`DecodeError` when nothing in the bank clears
        the correlation threshold.
        """
        capture = np.asarray(capture, dtype=np.complex128)
        shortest = min(template.size for template in self._bank.values())
        if capture.size < shortest:
            raise DecodeError("capture shorter than one preamble symbol")
        best: CellSearchResult | None = None
        for (cell_id, segment), template in self._bank.items():
            corr = normalized_cross_correlation(capture, template)
            peak_index = int(np.argmax(corr))
            peak = float(corr[peak_index])
            if best is None or peak > best.correlation:
                # The correlator peaks where the template's last
                # sample lands; the frame starts one CP earlier.
                start = peak_index - template.size + 1 - p.WIMAX_CP_LENGTH
                best = CellSearchResult(
                    cell_id=cell_id, segment=segment,
                    frame_start=max(start, 0), correlation=peak,
                )
        assert best is not None
        if best.correlation < self._threshold:
            raise DecodeError(
                f"no candidate preamble exceeded correlation "
                f"{self._threshold} (best {best.correlation:.2f})"
            )
        return best

    def track_frames(self, capture: np.ndarray,
                     max_frames: int = 16) -> list[int]:
        """Frame-start indices of successive TDD frames in a capture.

        Uses the identified cell's template and the known 5 ms frame
        period to walk the stream.
        """
        first = self.search(capture)
        template = self._bank[(first.cell_id, first.segment)]
        frame_len = int(p.FRAME_DURATION_S * p.WIMAX_SAMPLE_RATE)
        starts = [first.frame_start]
        while len(starts) < max_frames:
            expected = starts[-1] + frame_len
            window_lo = expected - 64
            window_hi = expected + 64 + template.size + p.WIMAX_CP_LENGTH
            if window_hi > capture.size:
                break
            window = capture[max(window_lo, 0):window_hi]
            corr = normalized_cross_correlation(window, template)
            peak_index = int(np.argmax(corr))
            if corr[peak_index] < self._threshold:
                break
            start = (max(window_lo, 0) + peak_index - template.size + 1
                     - p.WIMAX_CP_LENGTH)
            starts.append(start)
        return starts
